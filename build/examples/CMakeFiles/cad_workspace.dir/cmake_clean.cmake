file(REMOVE_RECURSE
  "CMakeFiles/cad_workspace.dir/cad_workspace.cpp.o"
  "CMakeFiles/cad_workspace.dir/cad_workspace.cpp.o.d"
  "cad_workspace"
  "cad_workspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cad_workspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
