# Empty dependencies file for cad_workspace.
# This may be replaced when dependencies are built.
