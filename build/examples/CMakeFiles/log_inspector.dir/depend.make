# Empty dependencies file for log_inspector.
# This may be replaced when dependencies are built.
