file(REMOVE_RECURSE
  "CMakeFiles/check_db.dir/check_db.cpp.o"
  "CMakeFiles/check_db.dir/check_db.cpp.o.d"
  "check_db"
  "check_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
