# Empty compiler generated dependencies file for check_db.
# This may be replaced when dependencies are built.
