file(REMOVE_RECURSE
  "libfinelog_core.a"
)
