# Empty compiler generated dependencies file for finelog_core.
# This may be replaced when dependencies are built.
