file(REMOVE_RECURSE
  "CMakeFiles/finelog_core.dir/oracle.cc.o"
  "CMakeFiles/finelog_core.dir/oracle.cc.o.d"
  "CMakeFiles/finelog_core.dir/system.cc.o"
  "CMakeFiles/finelog_core.dir/system.cc.o.d"
  "CMakeFiles/finelog_core.dir/workload.cc.o"
  "CMakeFiles/finelog_core.dir/workload.cc.o.d"
  "libfinelog_core.a"
  "libfinelog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
