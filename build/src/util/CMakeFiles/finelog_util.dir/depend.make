# Empty dependencies file for finelog_util.
# This may be replaced when dependencies are built.
