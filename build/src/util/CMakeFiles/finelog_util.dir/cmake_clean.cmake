file(REMOVE_RECURSE
  "CMakeFiles/finelog_util.dir/crc32.cc.o"
  "CMakeFiles/finelog_util.dir/crc32.cc.o.d"
  "libfinelog_util.a"
  "libfinelog_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
