file(REMOVE_RECURSE
  "libfinelog_util.a"
)
