file(REMOVE_RECURSE
  "CMakeFiles/finelog_log.dir/log_manager.cc.o"
  "CMakeFiles/finelog_log.dir/log_manager.cc.o.d"
  "CMakeFiles/finelog_log.dir/log_record.cc.o"
  "CMakeFiles/finelog_log.dir/log_record.cc.o.d"
  "libfinelog_log.a"
  "libfinelog_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
