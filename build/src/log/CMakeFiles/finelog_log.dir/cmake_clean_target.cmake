file(REMOVE_RECURSE
  "libfinelog_log.a"
)
