# Empty compiler generated dependencies file for finelog_log.
# This may be replaced when dependencies are built.
