file(REMOVE_RECURSE
  "libfinelog_client.a"
)
