# Empty dependencies file for finelog_client.
# This may be replaced when dependencies are built.
