file(REMOVE_RECURSE
  "CMakeFiles/finelog_client.dir/client.cc.o"
  "CMakeFiles/finelog_client.dir/client.cc.o.d"
  "CMakeFiles/finelog_client.dir/client_recovery.cc.o"
  "CMakeFiles/finelog_client.dir/client_recovery.cc.o.d"
  "libfinelog_client.a"
  "libfinelog_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
