# Empty compiler generated dependencies file for finelog_common.
# This may be replaced when dependencies are built.
