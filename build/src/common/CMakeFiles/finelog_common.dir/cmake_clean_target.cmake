file(REMOVE_RECURSE
  "libfinelog_common.a"
)
