file(REMOVE_RECURSE
  "CMakeFiles/finelog_common.dir/status.cc.o"
  "CMakeFiles/finelog_common.dir/status.cc.o.d"
  "libfinelog_common.a"
  "libfinelog_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
