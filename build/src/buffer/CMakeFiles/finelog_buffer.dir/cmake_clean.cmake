file(REMOVE_RECURSE
  "CMakeFiles/finelog_buffer.dir/buffer_pool.cc.o"
  "CMakeFiles/finelog_buffer.dir/buffer_pool.cc.o.d"
  "libfinelog_buffer.a"
  "libfinelog_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
