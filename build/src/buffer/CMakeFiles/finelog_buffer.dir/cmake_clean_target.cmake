file(REMOVE_RECURSE
  "libfinelog_buffer.a"
)
