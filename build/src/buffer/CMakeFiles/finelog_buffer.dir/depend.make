# Empty dependencies file for finelog_buffer.
# This may be replaced when dependencies are built.
