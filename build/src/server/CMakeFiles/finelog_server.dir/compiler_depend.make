# Empty compiler generated dependencies file for finelog_server.
# This may be replaced when dependencies are built.
