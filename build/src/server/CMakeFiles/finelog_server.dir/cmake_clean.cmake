file(REMOVE_RECURSE
  "CMakeFiles/finelog_server.dir/dct.cc.o"
  "CMakeFiles/finelog_server.dir/dct.cc.o.d"
  "CMakeFiles/finelog_server.dir/page_merge.cc.o"
  "CMakeFiles/finelog_server.dir/page_merge.cc.o.d"
  "CMakeFiles/finelog_server.dir/server.cc.o"
  "CMakeFiles/finelog_server.dir/server.cc.o.d"
  "CMakeFiles/finelog_server.dir/server_recovery.cc.o"
  "CMakeFiles/finelog_server.dir/server_recovery.cc.o.d"
  "libfinelog_server.a"
  "libfinelog_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
