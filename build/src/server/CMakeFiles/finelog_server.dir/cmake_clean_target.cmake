file(REMOVE_RECURSE
  "libfinelog_server.a"
)
