# Empty dependencies file for finelog_lock.
# This may be replaced when dependencies are built.
