file(REMOVE_RECURSE
  "CMakeFiles/finelog_lock.dir/glm.cc.o"
  "CMakeFiles/finelog_lock.dir/glm.cc.o.d"
  "CMakeFiles/finelog_lock.dir/llm.cc.o"
  "CMakeFiles/finelog_lock.dir/llm.cc.o.d"
  "libfinelog_lock.a"
  "libfinelog_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
