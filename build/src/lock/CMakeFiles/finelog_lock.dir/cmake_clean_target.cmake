file(REMOVE_RECURSE
  "libfinelog_lock.a"
)
