file(REMOVE_RECURSE
  "CMakeFiles/finelog_net.dir/message.cc.o"
  "CMakeFiles/finelog_net.dir/message.cc.o.d"
  "libfinelog_net.a"
  "libfinelog_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
