# Empty dependencies file for finelog_net.
# This may be replaced when dependencies are built.
