file(REMOVE_RECURSE
  "libfinelog_net.a"
)
