
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/disk_manager.cc" "src/storage/CMakeFiles/finelog_storage.dir/disk_manager.cc.o" "gcc" "src/storage/CMakeFiles/finelog_storage.dir/disk_manager.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/finelog_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/finelog_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/space_map.cc" "src/storage/CMakeFiles/finelog_storage.dir/space_map.cc.o" "gcc" "src/storage/CMakeFiles/finelog_storage.dir/space_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/finelog_common.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/finelog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
