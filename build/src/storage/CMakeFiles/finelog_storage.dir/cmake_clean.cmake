file(REMOVE_RECURSE
  "CMakeFiles/finelog_storage.dir/disk_manager.cc.o"
  "CMakeFiles/finelog_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/finelog_storage.dir/page.cc.o"
  "CMakeFiles/finelog_storage.dir/page.cc.o.d"
  "CMakeFiles/finelog_storage.dir/space_map.cc.o"
  "CMakeFiles/finelog_storage.dir/space_map.cc.o.d"
  "libfinelog_storage.a"
  "libfinelog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finelog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
