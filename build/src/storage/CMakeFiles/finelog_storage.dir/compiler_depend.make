# Empty compiler generated dependencies file for finelog_storage.
# This may be replaced when dependencies are built.
