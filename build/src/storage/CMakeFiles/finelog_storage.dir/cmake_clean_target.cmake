file(REMOVE_RECURSE
  "libfinelog_storage.a"
)
