# Empty compiler generated dependencies file for e6_complex_crash.
# This may be replaced when dependencies are built.
