file(REMOVE_RECURSE
  "CMakeFiles/e6_complex_crash.dir/e6_complex_crash.cc.o"
  "CMakeFiles/e6_complex_crash.dir/e6_complex_crash.cc.o.d"
  "e6_complex_crash"
  "e6_complex_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_complex_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
