# Empty compiler generated dependencies file for e3_message_table.
# This may be replaced when dependencies are built.
