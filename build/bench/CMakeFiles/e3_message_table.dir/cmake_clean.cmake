file(REMOVE_RECURSE
  "CMakeFiles/e3_message_table.dir/e3_message_table.cc.o"
  "CMakeFiles/e3_message_table.dir/e3_message_table.cc.o.d"
  "e3_message_table"
  "e3_message_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_message_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
