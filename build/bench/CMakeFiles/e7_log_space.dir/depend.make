# Empty dependencies file for e7_log_space.
# This may be replaced when dependencies are built.
