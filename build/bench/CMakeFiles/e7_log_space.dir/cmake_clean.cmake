file(REMOVE_RECURSE
  "CMakeFiles/e7_log_space.dir/e7_log_space.cc.o"
  "CMakeFiles/e7_log_space.dir/e7_log_space.cc.o.d"
  "e7_log_space"
  "e7_log_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_log_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
