# Empty compiler generated dependencies file for e5_server_recovery.
# This may be replaced when dependencies are built.
