file(REMOVE_RECURSE
  "CMakeFiles/e5_server_recovery.dir/e5_server_recovery.cc.o"
  "CMakeFiles/e5_server_recovery.dir/e5_server_recovery.cc.o.d"
  "e5_server_recovery"
  "e5_server_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_server_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
