# Empty compiler generated dependencies file for e4_client_recovery.
# This may be replaced when dependencies are built.
