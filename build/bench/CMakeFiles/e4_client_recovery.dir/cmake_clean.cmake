file(REMOVE_RECURSE
  "CMakeFiles/e4_client_recovery.dir/e4_client_recovery.cc.o"
  "CMakeFiles/e4_client_recovery.dir/e4_client_recovery.cc.o.d"
  "e4_client_recovery"
  "e4_client_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_client_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
