file(REMOVE_RECURSE
  "CMakeFiles/e8_checkpoints.dir/e8_checkpoints.cc.o"
  "CMakeFiles/e8_checkpoints.dir/e8_checkpoints.cc.o.d"
  "e8_checkpoints"
  "e8_checkpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_checkpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
