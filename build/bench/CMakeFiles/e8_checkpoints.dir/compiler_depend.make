# Empty compiler generated dependencies file for e8_checkpoints.
# This may be replaced when dependencies are built.
