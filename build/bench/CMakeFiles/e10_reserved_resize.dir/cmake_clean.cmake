file(REMOVE_RECURSE
  "CMakeFiles/e10_reserved_resize.dir/e10_reserved_resize.cc.o"
  "CMakeFiles/e10_reserved_resize.dir/e10_reserved_resize.cc.o.d"
  "e10_reserved_resize"
  "e10_reserved_resize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_reserved_resize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
