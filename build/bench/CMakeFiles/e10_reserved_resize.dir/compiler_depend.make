# Empty compiler generated dependencies file for e10_reserved_resize.
# This may be replaced when dependencies are built.
