# Empty dependencies file for e9_merge_ablation.
# This may be replaced when dependencies are built.
