file(REMOVE_RECURSE
  "CMakeFiles/e9_merge_ablation.dir/e9_merge_ablation.cc.o"
  "CMakeFiles/e9_merge_ablation.dir/e9_merge_ablation.cc.o.d"
  "e9_merge_ablation"
  "e9_merge_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_merge_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
