file(REMOVE_RECURSE
  "CMakeFiles/e1_commit_cost.dir/e1_commit_cost.cc.o"
  "CMakeFiles/e1_commit_cost.dir/e1_commit_cost.cc.o.d"
  "e1_commit_cost"
  "e1_commit_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_commit_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
