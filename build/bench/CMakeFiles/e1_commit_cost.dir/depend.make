# Empty dependencies file for e1_commit_cost.
# This may be replaced when dependencies are built.
