# Empty dependencies file for e2_same_page.
# This may be replaced when dependencies are built.
