file(REMOVE_RECURSE
  "CMakeFiles/e2_same_page.dir/e2_same_page.cc.o"
  "CMakeFiles/e2_same_page.dir/e2_same_page.cc.o.d"
  "e2_same_page"
  "e2_same_page.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_same_page.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
