file(REMOVE_RECURSE
  "CMakeFiles/durability_property_test.dir/durability_property_test.cc.o"
  "CMakeFiles/durability_property_test.dir/durability_property_test.cc.o.d"
  "durability_property_test"
  "durability_property_test.pdb"
  "durability_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durability_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
