file(REMOVE_RECURSE
  "CMakeFiles/deescalation_test.dir/deescalation_test.cc.o"
  "CMakeFiles/deescalation_test.dir/deescalation_test.cc.o.d"
  "deescalation_test"
  "deescalation_test.pdb"
  "deescalation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deescalation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
