# Empty compiler generated dependencies file for deescalation_test.
# This may be replaced when dependencies are built.
