
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crash_storm_test.cc" "tests/CMakeFiles/crash_storm_test.dir/crash_storm_test.cc.o" "gcc" "tests/CMakeFiles/crash_storm_test.dir/crash_storm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/finelog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/finelog_client.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/finelog_server.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/finelog_log.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/finelog_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/finelog_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/finelog_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/finelog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/finelog_util.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/finelog_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
