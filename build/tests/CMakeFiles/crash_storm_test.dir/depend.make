# Empty dependencies file for crash_storm_test.
# This may be replaced when dependencies are built.
