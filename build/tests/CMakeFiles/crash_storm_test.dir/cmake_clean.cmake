file(REMOVE_RECURSE
  "CMakeFiles/crash_storm_test.dir/crash_storm_test.cc.o"
  "CMakeFiles/crash_storm_test.dir/crash_storm_test.cc.o.d"
  "crash_storm_test"
  "crash_storm_test.pdb"
  "crash_storm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_storm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
