file(REMOVE_RECURSE
  "CMakeFiles/psn_property_test.dir/psn_property_test.cc.o"
  "CMakeFiles/psn_property_test.dir/psn_property_test.cc.o.d"
  "psn_property_test"
  "psn_property_test.pdb"
  "psn_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
