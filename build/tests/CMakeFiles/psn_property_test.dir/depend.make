# Empty dependencies file for psn_property_test.
# This may be replaced when dependencies are built.
