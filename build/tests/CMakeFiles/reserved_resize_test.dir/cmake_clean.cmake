file(REMOVE_RECURSE
  "CMakeFiles/reserved_resize_test.dir/reserved_resize_test.cc.o"
  "CMakeFiles/reserved_resize_test.dir/reserved_resize_test.cc.o.d"
  "reserved_resize_test"
  "reserved_resize_test.pdb"
  "reserved_resize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reserved_resize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
