# Empty compiler generated dependencies file for reserved_resize_test.
# This may be replaced when dependencies are built.
