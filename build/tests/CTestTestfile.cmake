# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/page_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_test[1]_include.cmake")
include("/root/repo/build/tests/dct_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/log_space_test[1]_include.cmake")
include("/root/repo/build/tests/durability_property_test[1]_include.cmake")
include("/root/repo/build/tests/psn_property_test[1]_include.cmake")
include("/root/repo/build/tests/coding_test[1]_include.cmake")
include("/root/repo/build/tests/client_api_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/crash_storm_test[1]_include.cmake")
include("/root/repo/build/tests/reserved_resize_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/deescalation_test[1]_include.cmake")
