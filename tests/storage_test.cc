#include <gtest/gtest.h>

#include "server/page_merge.h"
#include "storage/disk_manager.h"
#include "storage/space_map.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

// ---------------------------------------------------------------------------
// DiskManager
// ---------------------------------------------------------------------------

class DiskManagerTest : public ::testing::Test {
 protected:
  DiskManagerTest() : dir_(MakeTempDir("disk")) {}
  std::string dir_;
};

TEST_F(DiskManagerTest, WriteReadRoundTrip) {
  auto dm = DiskManager::Open(dir_ + "/db", 1024).value();
  Page page(1024);
  page.Format(PageId(3), Psn(7));
  ASSERT_TRUE(page.CreateObject("persisted").ok());
  ASSERT_TRUE(dm->WritePage(PageId(3), &page).ok());

  Page out(1024);
  ASSERT_TRUE(dm->ReadPage(PageId(3), &out).ok());
  EXPECT_EQ(out.id(), PageId(3));
  EXPECT_EQ(out.psn(), Psn(7));
  EXPECT_EQ(out.ReadObject(0).value(), "persisted");
}

TEST_F(DiskManagerTest, NeverWrittenPageNotFound) {
  auto dm = DiskManager::Open(dir_ + "/db", 1024).value();
  Page out(1024);
  EXPECT_TRUE(dm->ReadPage(PageId(9), &out).IsNotFound());
  EXPECT_FALSE(dm->PageOnDisk(PageId(9)));
}

TEST_F(DiskManagerTest, SurvivesReopen) {
  {
    auto dm = DiskManager::Open(dir_ + "/db", 1024).value();
    Page page(1024);
    page.Format(PageId(0), Psn(1));
    ASSERT_TRUE(dm->WritePage(PageId(0), &page).ok());
  }
  auto dm = DiskManager::Open(dir_ + "/db", 1024).value();
  Page out(1024);
  EXPECT_TRUE(dm->ReadPage(PageId(0), &out).ok());
  EXPECT_TRUE(dm->PageOnDisk(PageId(0)));
}

TEST_F(DiskManagerTest, InPlaceOverwrite) {
  auto dm = DiskManager::Open(dir_ + "/db", 1024).value();
  Page page(1024);
  page.Format(PageId(0), Psn(1));
  ASSERT_TRUE(dm->WritePage(PageId(0), &page).ok());
  page.set_psn(Psn(42));
  ASSERT_TRUE(dm->WritePage(PageId(0), &page).ok());
  Page out(1024);
  ASSERT_TRUE(dm->ReadPage(PageId(0), &out).ok());
  EXPECT_EQ(out.psn(), Psn(42));
}

// ---------------------------------------------------------------------------
// SpaceMap
// ---------------------------------------------------------------------------

class SpaceMapTest : public ::testing::Test {
 protected:
  SpaceMapTest() : dir_(MakeTempDir("spacemap")) {}
  std::string dir_;
};

TEST_F(SpaceMapTest, AllocateDistinctPages) {
  auto sm = SpaceMap::Open(dir_ + "/map", 8).value();
  auto a = sm->AllocatePage().value();
  auto b = sm->AllocatePage().value();
  EXPECT_NE(a.page, b.page);
  EXPECT_TRUE(sm->IsAllocated(a.page));
  EXPECT_EQ(sm->allocated_count(), 2u);
}

TEST_F(SpaceMapTest, PsnMonotonicAcrossReallocation) {
  // The core [18] property: a reallocated page starts past every PSN its
  // previous incarnation carried.
  auto sm = SpaceMap::Open(dir_ + "/map", 4).value();
  auto a = sm->AllocatePage().value();
  Psn final_psn(a.initial_psn.value() + 100);
  ASSERT_TRUE(sm->DeallocatePage(a.page, final_psn).ok());
  auto b = sm->AllocatePage().value();
  EXPECT_EQ(b.page, a.page);  // First-fit reuses the page.
  EXPECT_GT(b.initial_psn, final_psn);
}

TEST_F(SpaceMapTest, PersistsAcrossReopen) {
  PageId page;
  Psn psn;
  {
    auto sm = SpaceMap::Open(dir_ + "/map", 4).value();
    auto a = sm->AllocatePage().value();
    page = a.page;
    psn = a.initial_psn;
  }
  auto sm = SpaceMap::Open(dir_ + "/map", 4).value();
  EXPECT_TRUE(sm->IsAllocated(page));
  EXPECT_EQ(sm->BasePsn(page).value(), psn);
}

TEST_F(SpaceMapTest, FullDatabaseRejected) {
  auto sm = SpaceMap::Open(dir_ + "/map", 2).value();
  ASSERT_TRUE(sm->AllocatePage().ok());
  ASSERT_TRUE(sm->AllocatePage().ok());
  EXPECT_EQ(sm->AllocatePage().status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Page merging (Sections 2 and 3.1)
// ---------------------------------------------------------------------------

class PageMergeTest : public ::testing::Test {
 protected:
  PageMergeTest() : base_(1024) {
    base_.Format(PageId(1), Psn(10));
    EXPECT_TRUE(base_.CreateObject("object-0").ok());
    EXPECT_TRUE(base_.CreateObject("object-1").ok());
    EXPECT_TRUE(base_.CreateObject("object-2").ok());
  }

  ShippedPage MakeShip(const Page& page, std::vector<SlotId> slots,
                       bool structural = false) {
    ShippedPage s;
    s.page = page.id();
    s.image = page.raw();
    s.modified_slots = std::move(slots);
    s.structural = structural;
    return s;
  }

  Page base_;
};

TEST_F(PageMergeTest, OverlaysOnlyModifiedSlots) {
  Page local = base_;
  Page remote = base_;
  ASSERT_TRUE(local.WriteObject(0, "LOCAL-0!").ok());
  local.BumpPsn();  // 11
  ASSERT_TRUE(remote.WriteObject(1, "REMOTE-1").ok());
  remote.BumpPsn();  // 11

  ASSERT_TRUE(MergeShippedPage(&local, MakeShip(remote, {1})).ok());
  EXPECT_EQ(local.ReadObject(0).value(), "LOCAL-0!");   // Preserved.
  EXPECT_EQ(local.ReadObject(1).value(), "REMOTE-1");   // Overlaid.
  EXPECT_EQ(local.ReadObject(2).value(), "object-2");
}

TEST_F(PageMergeTest, MergedPsnIsMaxPlusOne) {
  Page local = base_;
  Page remote = base_;
  local.set_psn(Psn(20));
  remote.set_psn(Psn(35));
  ASSERT_TRUE(MergeShippedPage(&local, MakeShip(remote, {})).ok());
  EXPECT_EQ(local.psn(), Psn(36));
}

TEST_F(PageMergeTest, EqualPsnsStillAdvance) {
  // The "+1" exists precisely so two copies with the same PSN produce a new
  // PSN (Section 2).
  Page local = base_;
  Page remote = base_;
  ASSERT_TRUE(MergeShippedPage(&local, MakeShip(remote, {})).ok());
  EXPECT_EQ(local.psn(), Psn(11));
}

TEST_F(PageMergeTest, DeletionPropagates) {
  Page local = base_;
  Page remote = base_;
  ASSERT_TRUE(remote.DeleteObject(2).ok());
  ASSERT_TRUE(MergeShippedPage(&local, MakeShip(remote, {2})).ok());
  EXPECT_FALSE(local.SlotExists(2));
}

TEST_F(PageMergeTest, CreationPropagates) {
  Page local = base_;
  Page remote = base_;
  auto slot = remote.CreateObject("new-object");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(MergeShippedPage(&local, MakeShip(remote, {slot.value()})).ok());
  EXPECT_EQ(local.ReadObject(slot.value()).value(), "new-object");
}

TEST_F(PageMergeTest, SizeChangingOverlay) {
  Page local = base_;
  Page remote = base_;
  ASSERT_TRUE(remote.ResizeObject(0, "a considerably longer object value").ok());
  ASSERT_TRUE(MergeShippedPage(&local, MakeShip(remote, {0})).ok());
  EXPECT_EQ(local.ReadObject(0).value(), "a considerably longer object value");
  EXPECT_EQ(local.ReadObject(1).value(), "object-1");
}

TEST_F(PageMergeTest, StructuralShipReplacesWholesale) {
  Page local = base_;
  Page remote = base_;
  ASSERT_TRUE(local.WriteObject(0, "LOCAL-0!").ok());
  ASSERT_TRUE(remote.DeleteObject(1).ok());
  remote.set_psn(Psn(50));
  ASSERT_TRUE(MergeShippedPage(&local, MakeShip(remote, {1}, true)).ok());
  // Structural ship is authoritative: local's un-shipped overwrite vanishes
  // (it cannot exist in reality: a structural ship implies a page X lock).
  EXPECT_EQ(local.ReadObject(0).value(), "object-0");
  EXPECT_FALSE(local.SlotExists(1));
  EXPECT_EQ(local.psn(), Psn(51));
}

TEST_F(PageMergeTest, MismatchedPagesRejected) {
  Page local = base_;
  Page other(1024);
  other.Format(PageId(99), Psn(1));
  EXPECT_EQ(MergeShippedPage(&local, MakeShip(other, {})).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PageMergeTest, InstallObjectCatchesUpToServerPsn) {
  Page local = base_;  // psn 10
  ASSERT_TRUE(InstallObject(&local, 0, std::string("fresh-00"), Psn(25)).ok());
  EXPECT_EQ(local.ReadObject(0).value(), "fresh-00");
  EXPECT_EQ(local.psn(), Psn(25));
  // And never regresses.
  ASSERT_TRUE(InstallObject(&local, 1, std::string("fresh-11"), Psn(5)).ok());
  EXPECT_EQ(local.psn(), Psn(25));
}

TEST_F(PageMergeTest, InstallObjectDeletion) {
  Page local = base_;
  ASSERT_TRUE(InstallObject(&local, 1, std::nullopt, Psn(12)).ok());
  EXPECT_FALSE(local.SlotExists(1));
}

}  // namespace
}  // namespace finelog
