// Property tests of the contention-sweep workload generator's Zipf sampler
// and phase machinery (core/workload_gen.h). The sampler is the statistical
// heart of E14: if its skew is wrong, the whole contention sweep measures
// the wrong workload, so empirical frequencies are checked against the
// sampler's own closed-form probabilities, and the determinism contract
// (same seed, same sequence; theta = 0 identical to a plain uniform draw)
// is pinned exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/oracle.h"
#include "core/system.h"
#include "core/workload_gen.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

TEST(ZipfSamplerTest, ProbabilitiesFormADistribution) {
  for (double theta : {0.0, 0.5, 0.8, 1.0, 1.2}) {
    SCOPED_TRACE("theta=" + std::to_string(theta));
    ZipfSampler sampler(64, theta);
    double total = 0.0;
    for (uint32_t k = 0; k < 64; ++k) {
      double p = sampler.Probability(k);
      EXPECT_GT(p, 0.0);
      if (k > 0) {
        // Zipf mass is non-increasing in rank.
        EXPECT_LE(p, sampler.Probability(k - 1) + 1e-12);
      }
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ZipfSamplerTest, EmpiricalFrequencyMatchesTheory) {
  constexpr uint32_t kN = 64;
  constexpr uint64_t kDraws = 200000;
  for (double theta : {0.8, 1.2}) {
    SCOPED_TRACE("theta=" + std::to_string(theta));
    ZipfSampler sampler(kN, theta);
    Rng rng(12345);
    std::vector<uint64_t> counts(kN, 0);
    for (uint64_t i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
    // Head ranks carry enough mass for a tight relative check; the long
    // tail is covered in aggregate.
    double tail_expected = 0.0, tail_actual = 0.0;
    for (uint32_t k = 0; k < kN; ++k) {
      double expected = sampler.Probability(k) * kDraws;
      if (expected >= 500.0) {
        EXPECT_NEAR(counts[k], expected, 0.10 * expected)
            << "rank " << k << " theta " << theta;
      } else {
        tail_expected += expected;
        tail_actual += static_cast<double>(counts[k]);
      }
    }
    if (tail_expected > 0.0) {
      EXPECT_NEAR(tail_actual, tail_expected,
                  0.10 * tail_expected + 3.0 * std::sqrt(tail_expected));
    }
  }
}

TEST(ZipfSamplerTest, SkewConcentratesMassOnHeadRanks) {
  constexpr uint32_t kN = 256;
  ZipfSampler uniform(kN, 0.0);
  ZipfSampler mild(kN, 0.8);
  ZipfSampler heavy(kN, 1.2);
  auto head_mass = [](const ZipfSampler& s) {
    double total = 0.0;
    for (uint32_t k = 0; k < 16; ++k) total += s.Probability(k);
    return total;
  };
  EXPECT_NEAR(head_mass(uniform), 16.0 / kN, 1e-9);
  EXPECT_GT(head_mass(mild), head_mass(uniform) * 3);
  EXPECT_GT(head_mass(heavy), head_mass(mild));
}

TEST(ZipfSamplerTest, SameSeedSameSequence) {
  ZipfSampler sampler(128, 0.9);
  Rng a(777), b(777), c(778);
  bool any_difference_across_seeds = false;
  for (int i = 0; i < 1000; ++i) {
    uint32_t sa = sampler.Sample(a);
    uint32_t sb = sampler.Sample(b);
    ASSERT_EQ(sa, sb) << "draw " << i;
    if (sampler.Sample(c) != sa) any_difference_across_seeds = true;
  }
  EXPECT_TRUE(any_difference_across_seeds);
}

TEST(ZipfSamplerTest, ThetaZeroIsExactlyOneUniformDraw) {
  constexpr uint32_t kN = 48;
  ZipfSampler sampler(kN, 0.0);
  Rng via_sampler(4242), via_uniform(4242);
  for (int i = 0; i < 2000; ++i) {
    // Same draw count AND same values: the theta-0 fast path consumes the
    // RNG stream exactly like AccessPattern::kUniform's page/slot picks,
    // which is what makes a theta-0 schedule byte-identical to one that
    // never heard of the generator.
    ASSERT_EQ(sampler.Sample(via_sampler),
              static_cast<uint32_t>(via_uniform.Uniform(kN)));
  }
}

// ---------------------------------------------------------------------------
// Phase machinery smoke: phases run in order through the ordinary driver
// with oracle verification, and per-phase stats come out separated.
// ---------------------------------------------------------------------------

TEST(WorkloadGenTest, PhasesRunToCompletionWithZeroDivergence) {
  SystemConfig config = SmallConfig("workload_gen_phases");
  auto system = System::Create(config).value();
  Oracle oracle;

  WorkloadGenOptions options;
  options.seed = 99;
  PhaseOptions skewed;
  skewed.kind = PhaseKind::kMixed;
  skewed.zipf_theta = 1.0;
  skewed.txns_per_client = 4;
  skewed.ops_per_txn = 3;
  PhaseOptions storm;
  storm.kind = PhaseKind::kMergeStorm;
  storm.storm_pages = 2;
  storm.txns_per_client = 3;
  storm.ops_per_txn = 3;
  storm.write_fraction = 0.8;
  options.phases = {skewed, storm};

  WorkloadGen gen(system.get(), &oracle, options);
  EXPECT_EQ(gen.current_phase(), 0u);
  ASSERT_TRUE(gen.Run().ok());
  EXPECT_TRUE(gen.done());

  ASSERT_EQ(gen.phase_stats().size(), 2u);
  const WorkloadStats& p0 = gen.phase_stats()[0].workload;
  const WorkloadStats& p1 = gen.phase_stats()[1].workload;
  // Aborted attempts are retried until the quota commits, so commits are
  // exact per phase.
  EXPECT_EQ(p0.commits, uint64_t{config.num_clients} * skewed.txns_per_client);
  EXPECT_EQ(p1.commits, uint64_t{config.num_clients} * storm.txns_per_client);
  EXPECT_EQ(p0.read_mismatches, 0u);
  EXPECT_EQ(p1.read_mismatches, 0u);

  WorkloadStats totals = gen.TotalWorkloadStats();
  EXPECT_EQ(totals.commits, p0.commits + p1.commits);
  uint64_t per_client = 0;
  for (size_t i = 0; i < config.num_clients; ++i) {
    per_client += gen.client_commits(i);
  }
  EXPECT_EQ(per_client, totals.commits);

  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);
}

TEST(WorkloadGenTest, StepBudgetNeverSpansPhases) {
  SystemConfig config = SmallConfig("workload_gen_steps");
  auto system = System::Create(config).value();
  Oracle oracle;

  WorkloadGenOptions options;
  options.seed = 7;
  PhaseOptions tiny;
  tiny.txns_per_client = 1;
  tiny.ops_per_txn = 1;
  options.phases = {tiny, tiny, tiny};

  WorkloadGen gen(system.get(), &oracle, options);
  // A huge step budget still advances at most one phase per call: the
  // harness's chaos injection points stay where they were aimed.
  size_t calls = 0;
  while (!gen.done()) {
    size_t before = gen.current_phase();
    auto done = gen.RunSteps(1000000);
    ASSERT_TRUE(done.ok());
    EXPECT_LE(gen.current_phase() - before, 1u);
    ASSERT_LT(++calls, 100u);
  }
  EXPECT_EQ(calls, 3u);
}

}  // namespace
}  // namespace finelog
