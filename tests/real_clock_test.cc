// Real-clock execution mode (DESIGN.md section 17): the same protocol
// stack, driven by std::threads against a monotonic clock, with the
// QueueTransport reactor behind the Rpc chokepoint and fdatasync behind
// every log force.
//
// Two obligations, two halves:
//  - The parameterized smoke suite runs each scenario in BOTH modes --
//    kSimulated from the main thread (the deterministic oracle) and
//    kRealClock with one thread per client -- and asserts the protocol
//    outcomes match. Under FINELOG_SANITIZE=thread this is the data-race
//    gate for the whole locking sweep.
//  - The fingerprint test proves the simulated schedule did not move: a
//    default-config seeded run and an explicit ExecMode::kSimulated run
//    must agree on every message count, the simulated clock, and the exact
//    bytes of the client log.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "log/log_sink.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class ExecModeTest : public ::testing::TestWithParam<ExecMode> {
 protected:
  bool real() const { return GetParam() == ExecMode::kRealClock; }

  SystemConfig Config(const std::string& name) {
    SystemConfig config = SmallConfig(
        name + (real() ? "_real" : "_sim"));
    config.exec_mode = GetParam();
    return config;
  }

  // Runs `fn(i)` once per client: concurrently (one thread per client) in
  // real-clock mode, sequentially in the simulation (whose SimClock is not
  // a concurrent structure -- that is the whole point of the split).
  void PerClient(size_t n, const std::function<void(size_t)>& fn) {
    if (!real()) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) threads.emplace_back(fn, i);
    for (auto& t : threads) t.join();
  }

  // Moves time forward `us` microseconds: by advancing the SimClock, or by
  // actually waiting for the wall clock.
  void PassTime(System* system, uint64_t us) {
    if (real()) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
    } else {
      system->clock().Advance(us);
    }
  }
};

TEST_P(ExecModeTest, ConcurrentCommitsAreAllApplied) {
  SystemConfig config = Config("rc_commit");
  auto system = System::Create(config).value();

  constexpr int kTxns = 6;
  std::atomic<int> failures{0};
  PerClient(system->num_clients(), [&](size_t i) {
    Client& c = system->client(i);
    // Each client owns a disjoint page, so every transaction commits.
    PageId pid = static_cast<PageId>(i);
    for (int t = 0; t < kTxns; ++t) {
      auto txn = c.Begin();
      if (!txn.ok()) { failures.fetch_add(1); return; }
      std::string val(64, static_cast<char>('a' + (t % 26)));
      if (!c.Write(txn.value(), ObjectId{pid, 0}, val).ok() ||
          !c.Commit(txn.value()).ok()) {
        failures.fetch_add(1);
        return;
      }
    }
  });
  EXPECT_EQ(failures.load(), 0);
  for (size_t i = 0; i < system->num_clients(); ++i) {
    EXPECT_EQ(system->client(i).commits(), static_cast<uint64_t>(kTxns));
  }
  // Committed data is readable afterwards (through fresh transactions).
  for (size_t i = 0; i < system->num_clients(); ++i) {
    Client& c = system->client(i);
    TxnId probe = c.Begin().value();
    auto got = c.Read(probe, ObjectId{static_cast<PageId>(i), 0});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), std::string(64, 'a' + ((kTxns - 1) % 26)));
    EXPECT_TRUE(c.Commit(probe).ok());
  }
  if (real()) {
    ASSERT_NE(system->transport(), nullptr);
    EXPECT_GT(system->transport()->frames_executed(), 0u);
    EXPECT_EQ(system->transport()->frames_abandoned(), 0u);
    // Real durability: commits force through fdatasync.
    ASSERT_NE(system->log_sink(), nullptr);
    EXPECT_GT(system->log_sink()->sync_count(), 0u);
  }
}

TEST_P(ExecModeTest, GroupCommitDefersForcesInBothModes) {
  SystemConfig config = Config("rc_group");
  config.num_clients = 1;
  config.group_commit_window = 1000ull * 1000 * 1000;  // Count trigger only.
  config.group_commit_max_txns = 4;
  auto system = System::Create(config).value();
  Client& c = system->client(0);

  uint64_t forces0 = c.log().force_count();
  for (int i = 0; i < 4; ++i) {
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(
        c.Write(txn, ObjectId{static_cast<PageId>(i), 0}, std::string(64, 'g'))
            .ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }
  // The 4th commit hit group_commit_max_txns: exactly one force for all.
  EXPECT_EQ(c.pending_group_commits(), 0u);
  EXPECT_EQ(c.log().force_count(), forces0 + 1);
  EXPECT_EQ(system->metrics().Get(Counter::kClientGroupCommitTxns), 4u);
}

TEST_P(ExecModeTest, BatchedWritesAndReadsRoundTrip) {
  SystemConfig config = Config("rc_batch");
  config.max_batch_items = 8;
  auto system = System::Create(config).value();

  std::atomic<int> failures{0};
  PerClient(system->num_clients(), [&](size_t i) {
    Client& c = system->client(i);
    PageId pid = static_cast<PageId>(i);
    auto txn = c.Begin();
    if (!txn.ok()) { failures.fetch_add(1); return; }
    std::vector<std::pair<ObjectId, std::string>> writes;
    std::vector<ObjectId> oids;
    for (SlotId s = 0; s < 4; ++s) {
      writes.emplace_back(ObjectId{pid, s},
                          std::string(64, static_cast<char>('A' + s)));
      oids.push_back(ObjectId{pid, s});
    }
    if (!c.WriteBatch(txn.value(), writes).ok()) {
      failures.fetch_add(1);
      return;
    }
    auto read = c.ReadBatch(txn.value(), oids);
    if (!read.ok() || read.value().size() != 4) {
      failures.fetch_add(1);
      return;
    }
    for (SlotId s = 0; s < 4; ++s) {
      if (read.value()[s] != std::string(64, static_cast<char>('A' + s))) {
        failures.fetch_add(1);
      }
    }
    if (!c.Commit(txn.value()).ok()) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST_P(ExecModeTest, LeaseExpiryDeclaresIdleClientDeadAndZombieRecovers) {
  SystemConfig config = Config("rc_liveness");
  config.num_clients = 2;
  config.heartbeat_interval_us = 10 * 1000;
  config.lease_duration_us = 50 * 1000;
  auto system = System::Create(config).value();

  // Client 0 talks once: its first call heartbeats and starts a lease.
  Client& c0 = system->client(0);
  TxnId t0 = c0.Begin().value();
  Status w0 =
      c0.Write(t0, ObjectId{static_cast<PageId>(0), 0}, std::string(64, 'z'));
  ASSERT_TRUE(w0.ok()) << w0.ToString();
  Status cm0 = c0.Commit(t0);
  ASSERT_TRUE(cm0.ok()) << cm0.ToString();
  EXPECT_TRUE(system->server().liveness().HasLease(static_cast<ClientId>(0)));

  // Client 0 then goes silent past its lease horizon; client 1's next
  // admitted request sweeps the lease table and declares it presumed dead.
  PassTime(system.get(), 3 * config.lease_duration_us);
  Client& c1 = system->client(1);
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(
      c1.Write(t1, ObjectId{static_cast<PageId>(1), 0}, std::string(64, 'y'))
          .ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_TRUE(system->server().IsPresumedDead(static_cast<ClientId>(0)));

  // The zombie is fenced; crash recovery is its only way back in.
  Status fenced = c0.Begin().status();
  EXPECT_TRUE(fenced.IsZombieFenced() || fenced.IsWouldBlock())
      << fenced.ToString();
  ASSERT_TRUE(system->RecoverZombie(0).ok());
  EXPECT_FALSE(system->server().IsPresumedDead(static_cast<ClientId>(0)));
  TxnId t2 = c0.Begin().value();
  ASSERT_TRUE(c0.Commit(t2).ok());
}

TEST_P(ExecModeTest, ContendedPagesSerializeThroughCallbacks) {
  SystemConfig config = Config("rc_contend");
  config.num_clients = 3;
  auto system = System::Create(config).value();

  // All clients increment disjoint slots of the SAME two pages, so every
  // transaction needs callbacks against the other clients' cached copies.
  constexpr int kTxns = 5;
  std::atomic<int> committed{0};
  PerClient(system->num_clients(), [&](size_t i) {
    Client& c = system->client(i);
    for (int t = 0; t < kTxns; ++t) {
      auto txn = c.Begin();
      if (!txn.ok()) continue;
      PageId pid = static_cast<PageId>(t % 2);
      std::string val(64, static_cast<char>('0' + i));
      bool ok =
          c.Write(txn.value(), ObjectId{pid, static_cast<SlotId>(i)}, val).ok();
      if (ok && c.Commit(txn.value()).ok()) {
        committed.fetch_add(1);
      } else {
        (void)c.Abort(txn.value());
      }
    }
  });
  // No lost updates: every commit's value must be in place.
  EXPECT_GT(committed.load(), 0);
  int verified = 0;
  for (size_t i = 0; i < system->num_clients(); ++i) {
    Client& c = system->client(i);
    TxnId probe = c.Begin().value();
    for (uint32_t p = 0; p < 2; ++p) {
      PageId pid = static_cast<PageId>(p);
      auto got = c.Read(probe, ObjectId{pid, static_cast<SlotId>(i)});
      if (got.ok() && got.value() == std::string(64, '0' + i)) ++verified;
    }
    EXPECT_TRUE(c.Commit(probe).ok());
  }
  // Each client wrote its slot on both pages at least once (kTxns >= 2).
  EXPECT_EQ(verified, static_cast<int>(system->num_clients()) * 2);
}

TEST_P(ExecModeTest, HotStandbyFailoverServesThroughPrimaryKill) {
  SystemConfig config = Config("rc_failover");
  config.hot_standby = true;
  config.mastership_lease_us = 30 * 1000;
  config.failover_timeout_us = 4000;
  auto system = System::Create(config).value();

  // Phase 1: every client commits on its own page against node 0.
  constexpr int kTxnsPerPhase = 3;
  std::atomic<int> failures{0};
  auto commit_phase = [&](char fill, size_t page_offset) {
    PerClient(system->num_clients(), [&](size_t i) {
      Client& c = system->client(i);
      // Each phase touches a page the client has no cached lock on, so the
      // first write must reach the server (a cached lock plus client-local
      // commit would otherwise never notice the primary died).
      PageId pid = static_cast<PageId>(i + page_offset);
      for (int t = 0; t < kTxnsPerPhase; ++t) {
        auto txn = c.Begin();
        if (!txn.ok()) { failures.fetch_add(1); return; }
        // Ride out the mastership gap: a WouldBlock op made no progress and
        // is safe to retry (the router probes the standby underneath).
        Status w;
        for (int attempt = 0; attempt < 5000; ++attempt) {
          w = c.Write(txn.value(), ObjectId{pid, 0},
                      std::string(64, static_cast<char>(fill + t)));
          if (!w.IsWouldBlock()) break;
          PassTime(system.get(), 1000);
        }
        if (!w.ok()) { failures.fetch_add(1); return; }
        Status cm;
        for (int attempt = 0; attempt < 5000; ++attempt) {
          cm = c.Commit(txn.value());
          if (!cm.IsWouldBlock()) break;
          PassTime(system.get(), 1000);
        }
        if (!cm.ok()) { failures.fetch_add(1); return; }
      }
    });
  };
  commit_phase('a', 0);
  ASSERT_EQ(failures.load(), 0);
  ASSERT_EQ(system->active_server_node(), 0);

  // Kill the primary (client threads are quiesced between phases), then
  // commit again: the first retries probe the standby, which takes over.
  ASSERT_TRUE(system->CrashServer().ok());
  commit_phase('n', system->num_clients());
  EXPECT_EQ(failures.load(), 0);

  EXPECT_EQ(system->active_server_node(), 1);
  EXPECT_EQ(system->metrics().Get(Counter::kFailoverTakeovers), 1u);
  for (size_t i = 0; i < system->num_clients(); ++i) {
    EXPECT_EQ(system->client(i).commits(),
              static_cast<uint64_t>(2 * kTxnsPerPhase));
  }
  // Both the pre-kill and post-failover data are readable through fresh
  // transactions.
  for (size_t i = 0; i < system->num_clients(); ++i) {
    Client& c = system->client(i);
    TxnId probe = c.Begin().value();
    auto pre = c.Read(probe, ObjectId{static_cast<PageId>(i), 0});
    ASSERT_TRUE(pre.ok()) << pre.status().ToString();
    EXPECT_EQ(pre.value(),
              std::string(64, static_cast<char>('a' + kTxnsPerPhase - 1)));
    auto post = c.Read(
        probe, ObjectId{static_cast<PageId>(i + system->num_clients()), 0});
    ASSERT_TRUE(post.ok()) << post.status().ToString();
    EXPECT_EQ(post.value(),
              std::string(64, static_cast<char>('n' + kTxnsPerPhase - 1)));
    EXPECT_TRUE(c.Commit(probe).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, ExecModeTest,
                         ::testing::Values(ExecMode::kSimulated,
                                           ExecMode::kRealClock),
                         [](const ::testing::TestParamInfo<ExecMode>& info) {
                           return info.param == ExecMode::kRealClock
                                      ? "RealClock"
                                      : "Simulated";
                         });

// ---------------------------------------------------------------------------
// Simulation parity: the real-clock feature must not move the oracle.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  uint64_t total_messages = 0;
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  uint64_t sim_us = 0;
  uint64_t forces = 0;
  uint64_t commits = 0;
  std::string log_bytes;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RunFingerprint RunSeededWorkload(const SystemConfig& config) {
  auto system = System::Create(config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 8;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 99;
  Workload workload(system.get(), &oracle, options);
  EXPECT_TRUE(workload.Run().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  RunFingerprint fp;
  fp.total_messages = system->channel().total_messages();
  fp.total_items = system->channel().total_items();
  fp.total_bytes = system->channel().total_bytes();
  fp.sim_us = system->clock().now_us();
  fp.forces = system->client(0).log().force_count();
  fp.commits = system->client(0).commits();
  fp.log_bytes = ReadFile(config.dir + "/client0.log");
  EXPECT_FALSE(fp.log_bytes.empty());
  return fp;
}

// The regression that keeps the tentpole honest: with exec_mode at its
// default, a seeded workload must behave *identically* to an explicit
// kSimulated run -- same message counts, same simulated time, same client
// log, byte for byte. The recursive SimMutex, the virtual clock and the
// null transport/sink must all be invisible to the schedule.
TEST(RealClockFingerprintTest, SimulatedScheduleIsByteIdentical) {
  SystemConfig defaults = SmallConfig("rc_parity_default");
  RunFingerprint base = RunSeededWorkload(defaults);

  SystemConfig explicit_sim = SmallConfig("rc_parity_explicit");
  explicit_sim.exec_mode = ExecMode::kSimulated;
  RunFingerprint sim = RunSeededWorkload(explicit_sim);
  EXPECT_EQ(base, sim);

  // And the simulation never touches a durable sink: the volatility
  // boundary (fflush only) is part of the oracle's crash semantics.
  auto probe = System::Create(SmallConfig("rc_parity_sink")).value();
  EXPECT_EQ(probe->log_sink(), nullptr);
  EXPECT_EQ(probe->transport(), nullptr);
}

}  // namespace
}  // namespace finelog
