// Tests of the footnote-3 extension: objects created with reserved capacity
// can be resized *in place*, which makes size changes mergeable -- they need
// only an object-level lock and coexist with other clients' updates on the
// same page.

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class ReservedResizeTest : public ::testing::Test {
 protected:
  void Start(double reserve) {
    SystemConfig config = SmallConfig("reserved_resize");
    config.resize_reserve = reserve;
    auto sys = System::Create(config);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }
  std::unique_ptr<System> system_;
};

TEST_F(ReservedResizeTest, InPlaceResizeNeedsNoPageLock) {
  Start(/*reserve=*/1.0);  // 2x headroom.
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);

  // c0 creates a reserved object; creation itself is structural.
  TxnId setup = c0.Begin().value();
  auto oid = c0.Create(setup, PageId(1), "tiny");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(setup).ok());

  // Another client's ACTIVE transaction writes a different object on the
  // same page. Under plain resize semantics c0's growth would need a page X
  // lock and block; within reservation it proceeds concurrently.
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(
      c1.Write(t1, ObjectId{PageId(1), 0}, std::string(system_->config().object_size,
                                               'b'))
          .ok());

  TxnId t0 = c0.Begin().value();
  Status grow = c0.Resize(t0, oid.value(), "tinyplus");  // Fits 2x reserve.
  EXPECT_TRUE(grow.ok()) << grow.ToString();
  ASSERT_TRUE(c0.Commit(t0).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_GT(system_->metrics().Get("client.resizes_in_place"), 0u);

  // Both survive merging.
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());
  ASSERT_TRUE(c1.ShipAllDirtyPages().ok());
  Client& c2 = system_->client(2);
  TxnId check = c2.Begin().value();
  EXPECT_EQ(c2.Read(check, oid.value()).value(), "tinyplus");
  ASSERT_TRUE(c2.Commit(check).ok());
}

TEST_F(ReservedResizeTest, GrowthPastReservationFallsBackToPageLock) {
  Start(/*reserve=*/0.5);
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);

  TxnId setup = c0.Begin().value();
  auto oid = c0.Create(setup, PageId(2), "12345678");  // Capacity 12.
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(setup).ok());

  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(
      c1.Write(t1, ObjectId{PageId(2), 0}, std::string(system_->config().object_size,
                                               'c'))
          .ok());

  // Past the reservation: structural, needs page X, blocked by c1's txn.
  TxnId t0 = c0.Begin().value();
  EXPECT_TRUE(c0.Resize(t0, oid.value(), std::string(64, 'z')).IsWouldBlock());
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_TRUE(c0.Resize(t0, oid.value(), std::string(64, 'z')).ok());
  ASSERT_TRUE(c0.Commit(t0).ok());
}

TEST_F(ReservedResizeTest, NoReservationAlwaysStructural) {
  Start(/*reserve=*/0.0);
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);

  TxnId setup = c0.Begin().value();
  auto oid = c0.Create(setup, PageId(3), "exact");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(setup).ok());

  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(
      c1.Write(t1, ObjectId{PageId(3), 0}, std::string(system_->config().object_size,
                                               'd'))
          .ok());
  TxnId t0 = c0.Begin().value();
  // Growth without reservation conflicts with the active same-page writer.
  EXPECT_TRUE(c0.Resize(t0, oid.value(), "grown-past").IsWouldBlock());
  // Shrink stays within capacity and remains mergeable even at reserve=0.
  EXPECT_TRUE(c0.Resize(t0, oid.value(), "ex").ok());
  ASSERT_TRUE(c0.Commit(t0).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
}

TEST_F(ReservedResizeTest, InPlaceResizeSurvivesClientCrash) {
  Start(/*reserve=*/1.0);
  Client& c0 = system_->client(0);
  TxnId setup = c0.Begin().value();
  auto oid = c0.Create(setup, PageId(4), "base");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(setup).ok());

  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Resize(txn, oid.value(), "basePlus").ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());

  Client& c1 = system_->client(1);
  TxnId check = c1.Begin().value();
  EXPECT_EQ(c1.Read(check, oid.value()).value(), "basePlus");
  ASSERT_TRUE(c1.Commit(check).ok());
}

TEST_F(ReservedResizeTest, InPlaceResizeSurvivesServerCrash) {
  Start(/*reserve=*/1.0);
  Client& c0 = system_->client(0);
  TxnId setup = c0.Begin().value();
  auto oid = c0.Create(setup, PageId(5), "root");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(setup).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->server().FlushAllPages().ok());

  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Resize(txn, oid.value(), "rootier").ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());

  Client& c1 = system_->client(1);
  TxnId check = c1.Begin().value();
  EXPECT_EQ(c1.Read(check, oid.value()).value(), "rootier");
  ASSERT_TRUE(c1.Commit(check).ok());
}

TEST_F(ReservedResizeTest, AbortUndoesInPlaceResize) {
  Start(/*reserve=*/1.0);
  Client& c0 = system_->client(0);
  TxnId setup = c0.Begin().value();
  auto oid = c0.Create(setup, PageId(6), "before");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(setup).ok());

  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Resize(txn, oid.value(), "midway-value").ok());
  ASSERT_TRUE(c0.Abort(txn).ok());
  TxnId check = c0.Begin().value();
  EXPECT_EQ(c0.Read(check, oid.value()).value(), "before");
  ASSERT_TRUE(c0.Commit(check).ok());
}

}  // namespace
}  // namespace finelog
