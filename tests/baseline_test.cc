// Tests of the baseline policies the paper compares against (Sections 3.1
// and 4.1): ARIES/CSA-style log shipping at commit, Versant-style page
// shipping at commit, page-level locking, and the update-token approach.

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void Start(SystemConfig config) {
    auto sys = System::Create(config);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }

  void CommittedWrite(size_t client, ObjectId oid, const std::string& value) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.Write(txn, oid, value).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }

  std::string ReadCommitted(size_t client, ObjectId oid) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    auto value = c.Read(txn, oid);
    EXPECT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_TRUE(c.Commit(txn).ok());
    return value.ok() ? value.value() : std::string();
  }

  std::string Val(char fill) {
    return std::string(system_->config().object_size, fill);
  }

  std::unique_ptr<System> system_;
};

TEST_F(BaselineTest, ShipLogsAtCommitSendsCommitTraffic) {
  SystemConfig config = SmallConfig("b_shiplogs");
  config.logging_policy = LoggingPolicy::kShipLogsAtCommit;
  Start(config);
  CommittedWrite(0, ObjectId{PageId(1), 0}, Val('A'));
  EXPECT_GT(system_->channel().stats(MessageType::kCommitShipLogs).count, 0u);
  EXPECT_GT(system_->channel().stats(MessageType::kCommitShipLogs).bytes, 0u);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(1), 0}), Val('A'));
}

TEST_F(BaselineTest, ClientLocalPolicySendsNoCommitTraffic) {
  SystemConfig config = SmallConfig("b_local");
  Start(config);
  CommittedWrite(0, ObjectId{PageId(1), 0}, Val('B'));
  EXPECT_EQ(system_->channel().stats(MessageType::kCommitShipLogs).count, 0u);
  EXPECT_EQ(system_->channel().stats(MessageType::kCommitShipPages).count, 0u);
}

TEST_F(BaselineTest, ShipPagesAtCommitPushesDataToServer) {
  SystemConfig config = SmallConfig("b_shippages");
  config.logging_policy = LoggingPolicy::kShipPagesAtCommit;
  Start(config);
  CommittedWrite(0, ObjectId{PageId(2), 0}, Val('C'));
  EXPECT_GT(system_->channel().stats(MessageType::kCommitShipPages).count, 0u);
  // The page reached the server at commit time (no replacement needed):
  // the server's copy already carries the committed value.
  BufferPool::Frame* frame = system_->server().pool().Peek(PageId(2));
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->page.ReadObject(0).value(), Val('C'));
}

TEST_F(BaselineTest, PageLockingBlocksSamePageConcurrency) {
  SystemConfig config = SmallConfig("b_pagelock");
  config.lock_granularity = LockGranularity::kPage;
  Start(config);
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);
  TxnId t0 = c0.Begin().value();
  ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(3), 0}, Val('D')).ok());
  // Different object, same page: blocked under page-level locking (this is
  // exactly what fine-granularity locking avoids, Section 3.1).
  TxnId t1 = c1.Begin().value();
  EXPECT_TRUE(c1.Write(t1, ObjectId{PageId(3), 1}, Val('E')).IsWouldBlock());
  ASSERT_TRUE(c0.Commit(t0).ok());
  EXPECT_TRUE(c1.Write(t1, ObjectId{PageId(3), 1}, Val('E')).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(3), 0}), Val('D'));
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(3), 1}), Val('E'));
}

TEST_F(BaselineTest, PageLockingRecoversFromClientCrash) {
  SystemConfig config = SmallConfig("b_pagelock_rec");
  config.lock_granularity = LockGranularity::kPage;
  Start(config);
  CommittedWrite(0, ObjectId{PageId(4), 0}, Val('F'));
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(4), 0}), Val('F'));
}

TEST_F(BaselineTest, UpdateTokenSerializesPhysicalUpdates) {
  SystemConfig config = SmallConfig("b_token");
  config.same_page_policy = SamePageUpdatePolicy::kUpdateToken;
  Start(config);
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);
  TxnId t0 = c0.Begin().value();
  ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(5), 0}, Val('G')).ok());
  ASSERT_TRUE(c0.Commit(t0).ok());
  // c1 updates a different object on the same page: allowed by the locks,
  // but the update token must travel (with the page) through the server.
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(c1.Write(t1, ObjectId{PageId(5), 1}, Val('H')).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_GT(system_->channel().stats(MessageType::kTokenRequest).count, 0u);
  EXPECT_GT(system_->metrics().Get("server.token_transfers"), 0u);
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(5), 0}), Val('G'));
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(5), 1}), Val('H'));
}

TEST_F(BaselineTest, UpdateTokenPingPongCostsMessages) {
  SystemConfig config = SmallConfig("b_token_ping");
  config.same_page_policy = SamePageUpdatePolicy::kUpdateToken;
  Start(config);
  uint64_t before = system_->channel().stats(MessageType::kTokenRequest).count;
  for (int i = 0; i < 4; ++i) {
    CommittedWrite(0, ObjectId{PageId(6), 0}, Val('I'));
    CommittedWrite(1, ObjectId{PageId(6), 1}, Val('J'));
  }
  uint64_t requests =
      system_->channel().stats(MessageType::kTokenRequest).count - before;
  EXPECT_GE(requests, 7u);  // The token bounces on nearly every switch.
}

TEST_F(BaselineTest, MergeCopiesNeedsNoTokenTraffic) {
  SystemConfig config = SmallConfig("b_merge_ping");
  Start(config);
  for (int i = 0; i < 4; ++i) {
    CommittedWrite(0, ObjectId{PageId(6), 0}, Val('I'));
    CommittedWrite(1, ObjectId{PageId(6), 1}, Val('J'));
  }
  EXPECT_EQ(system_->channel().stats(MessageType::kTokenRequest).count, 0u);
}

TEST_F(BaselineTest, SynchronizedCheckpointContactsAllClients) {
  SystemConfig config = SmallConfig("b_syncckpt");
  Start(config);
  ASSERT_TRUE(system_->server().TakeSynchronizedCheckpoint().ok());
  EXPECT_EQ(system_->channel().stats(MessageType::kCheckpointSync).count,
            system_->num_clients());
  // The paper's independent client checkpoints need no messages at all.
  uint64_t msgs = system_->channel().total_messages();
  ASSERT_TRUE(system_->client(0).TakeCheckpoint().ok());
  EXPECT_EQ(system_->channel().total_messages(), msgs);
}

}  // namespace
}  // namespace finelog
