// Contention sweep: the scalable workload generator across client counts x
// Zipf skews, every cell oracle-verified (EXPERIMENTS.md E14's correctness
// twin). Three layers:
//
//   1. The sweep matrix: clients {4, 16, 64} x theta {0, 0.8, 1.2}. Every
//      cell must complete with zero oracle divergence and non-decreasing
//      durable page PSNs across the run.
//   2. Skew must actually concentrate contention: at fixed client count,
//      heavier theta produces at least as many lock conflicts
//      (WouldBlocks) as uniform access.
//   3. A defaults fingerprint: a generator run with one theta-0 mixed
//      phase is byte-identical (message counts, simulated clock, raw log
//      bytes) to a plain uniform Workload that never heard of the
//      generator -- the seam costs nothing when unused.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "core/workload_gen.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

SystemConfig SweepConfig(const std::string& dir, uint32_t clients) {
  SystemConfig config;
  config.dir = dir;
  config.num_clients = clients;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 32;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 8;
  config.server_cache_pages = 64;
  return config;
}

struct CellResult {
  uint64_t commits = 0;
  uint64_t would_blocks = 0;
};

// Runs one (clients, theta) cell; returns a failure description or "".
std::string RunCell(uint32_t clients, double theta, CellResult* out) {
  std::string tag = "sweep_c" + std::to_string(clients) + "_t" +
                    std::to_string(static_cast<int>(theta * 10));
  SystemConfig config = SweepConfig(MakeTempDir(tag), clients);
  auto sys_or = System::Create(config);
  if (!sys_or.ok()) return "create: " + sys_or.status().ToString();
  auto system = std::move(sys_or).value();
  Oracle oracle;

  // Hold total committed work roughly constant across client counts so the
  // matrix stays CI-sized while still crossing the old 64-client comfort
  // zone.
  uint32_t txns = std::max<uint32_t>(1, 48 / clients);

  WorkloadGenOptions options;
  options.seed = 1400 + clients;
  PhaseOptions mixed;
  mixed.kind = PhaseKind::kMixed;
  mixed.zipf_theta = theta;
  mixed.txns_per_client = txns;
  mixed.ops_per_txn = 3;
  mixed.write_fraction = 0.6;
  options.phases = {mixed};

  WorkloadGen gen(system.get(), &oracle, options);

  // Durable-PSN baseline after a slice of work, so monotonicity is checked
  // against a non-trivial on-disk state.
  if (auto done = gen.RunSteps(clients * 6); !done.ok()) {
    return "warmup: " + done.status().ToString();
  }
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "warmup flush: " + st.ToString();
  }
  std::vector<uint64_t> before = ReadDurablePsns(config);

  if (Status st = gen.Run(); !st.ok()) return "run: " + st.ToString();
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "flush: " + st.ToString();
  }

  WorkloadStats totals = gen.TotalWorkloadStats();
  if (totals.commits != uint64_t{clients} * txns) {
    return "expected " + std::to_string(uint64_t{clients} * txns) +
           " commits, got " + std::to_string(totals.commits);
  }
  if (totals.read_mismatches != 0) {
    return std::to_string(totals.read_mismatches) + " stale reads";
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  if (!mismatches.ok()) return "verify: " + mismatches.status().ToString();
  if (mismatches.value() != 0) {
    return std::to_string(mismatches.value()) + " oracle mismatches";
  }
  std::vector<uint64_t> after = ReadDurablePsns(config);
  for (size_t p = 0; p < before.size(); ++p) {
    if (after[p] < before[p]) {
      return "page " + std::to_string(p) + " durable PSN went backwards";
    }
  }
  out->commits = totals.commits;
  out->would_blocks = totals.would_blocks;
  return "";
}

TEST(ContentionSweepTest, MatrixVerifiesAtEveryScaleAndSkew) {
  constexpr uint32_t kClients[] = {4, 16, 64};
  constexpr double kThetas[] = {0.0, 0.8, 1.2};
  for (uint32_t clients : kClients) {
    CellResult uniform_cell;
    for (double theta : kThetas) {
      SCOPED_TRACE("clients=" + std::to_string(clients) +
                   " theta=" + std::to_string(theta));
      CellResult cell;
      EXPECT_EQ(RunCell(clients, theta, &cell), "");
      EXPECT_GT(cell.commits, 0u);
      if (theta == 0.0) uniform_cell = cell;
      // Layer 2: skew cannot produce *less* contention than uniform at
      // the same scale (it concentrates accesses on the head ranks).
      if (theta >= 1.0 && clients >= 16) {
        EXPECT_GE(cell.would_blocks, uniform_cell.would_blocks);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layer 3: defaults fingerprint.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  uint64_t total_messages = 0;
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  uint64_t sim_us = 0;
  uint64_t commits = 0;
  std::string log_bytes;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

template <typename DriverFn>
RunFingerprint Fingerprint(const std::string& tag, DriverFn drive) {
  SystemConfig config = SweepConfig(MakeTempDir(tag), 4);
  auto system = System::Create(config).value();
  Oracle oracle;
  drive(system.get(), &oracle);
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  RunFingerprint fp;
  fp.total_messages = system->channel().total_messages();
  fp.total_items = system->channel().total_items();
  fp.total_bytes = system->channel().total_bytes();
  fp.sim_us = system->clock().now_us();
  fp.commits = system->client(0).commits();
  fp.log_bytes = ReadFile(config.dir + "/client0.log");
  EXPECT_FALSE(fp.log_bytes.empty());
  return fp;
}

// One theta-0 mixed phase through the generator must be byte-identical to
// a plain uniform Workload with the matching per-phase seed: no extra RNG
// draws, no extra messages, no clock skew. This is the regression fence
// that keeps the generator seam free for every pre-existing test.
TEST(ContentionSweepTest, ThetaZeroFingerprintMatchesPlainWorkload) {
  constexpr uint64_t kSeed = 9001;
  constexpr uint32_t kTxns = 8;
  constexpr uint32_t kOps = 4;
  constexpr double kWriteFraction = 0.7;

  RunFingerprint via_gen =
      Fingerprint("fp_gen", [&](System* system, Oracle* oracle) {
        WorkloadGenOptions options;
        options.seed = kSeed;
        PhaseOptions phase;
        phase.kind = PhaseKind::kMixed;
        phase.zipf_theta = 0.0;
        phase.txns_per_client = kTxns;
        phase.ops_per_txn = kOps;
        phase.write_fraction = kWriteFraction;
        options.phases = {phase};
        WorkloadGen gen(system, oracle, options);
        EXPECT_TRUE(gen.Run().ok());
      });

  RunFingerprint via_plain =
      Fingerprint("fp_plain", [&](System* system, Oracle* oracle) {
        WorkloadOptions options;
        // The generator derives a per-phase stream from its base seed;
        // phase 0 uses exactly this offset.
        options.seed = kSeed + 0x9E37;
        options.pattern = AccessPattern::kUniform;
        options.txns_per_client = kTxns;
        options.ops_per_txn = kOps;
        options.write_fraction = kWriteFraction;
        Workload workload(system, oracle, options);
        EXPECT_TRUE(workload.Run().ok());
      });

  EXPECT_EQ(via_gen.total_messages, via_plain.total_messages);
  EXPECT_EQ(via_gen.total_items, via_plain.total_items);
  EXPECT_EQ(via_gen.total_bytes, via_plain.total_bytes);
  EXPECT_EQ(via_gen.sim_us, via_plain.sim_us);
  EXPECT_EQ(via_gen.commits, via_plain.commits);
  EXPECT_TRUE(via_gen.log_bytes == via_plain.log_bytes)
      << "client log diverged (" << via_gen.log_bytes.size() << " vs "
      << via_plain.log_bytes.size() << " bytes)";
}

}  // namespace
}  // namespace finelog
