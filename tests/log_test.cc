#include "log/log_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "log/log_record.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class LogTest : public ::testing::Test {
 protected:
  LogTest() : dir_(MakeTempDir("log")) {}

  std::unique_ptr<LogManager> OpenLog(uint64_t capacity = 0) {
    auto lm = LogManager::Open(dir_ + "/test.log", capacity);
    EXPECT_TRUE(lm.ok());
    return std::move(lm).value();
  }

  std::string dir_;
};

// Raw-integer convenience wrapper: tests name counters by small literals.
LogRecord SampleUpdate(uint64_t txn, Lsn prev, uint32_t page, uint64_t psn) {
  return LogRecord::Update(TxnId(txn), prev, PageId(page), 3,
                           UpdateOp::kOverwrite, Psn(psn), "redo-payload",
                           "undo-payload");
}

TEST_F(LogTest, AppendAssignsIncreasingLsns) {
  auto log = OpenLog();
  auto l1 = log->Append(SampleUpdate(1, kNullLsn, 0, 10));
  auto l2 = log->Append(SampleUpdate(1, l1.value(), 0, 11));
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_GT(l2.value(), l1.value());
  EXPECT_EQ(l1.value(), log->begin_lsn());
}

TEST_F(LogTest, ReadBackBufferedRecord) {
  auto log = OpenLog();
  auto lsn = log->Append(SampleUpdate(7, kNullLsn, 42, 99));
  ASSERT_TRUE(lsn.ok());
  auto rec = log->Read(lsn.value());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().txn, TxnId(7));
  EXPECT_EQ(rec.value().page, PageId(42));
  EXPECT_EQ(rec.value().psn, Psn(99));
  EXPECT_EQ(rec.value().redo, "redo-payload");
  EXPECT_EQ(rec.value().undo, "undo-payload");
  EXPECT_EQ(rec.value().lsn, lsn.value());
}

TEST_F(LogTest, UnforcedTailLostOnReopen) {
  Lsn forced_lsn, lost_lsn;
  {
    auto log = OpenLog();
    forced_lsn = log->Append(SampleUpdate(1, kNullLsn, 0, 1)).value();
    ASSERT_TRUE(log->Force().ok());
    lost_lsn = log->Append(SampleUpdate(1, forced_lsn, 0, 2)).value();
    // No force: this record must vanish at reopen.
  }
  auto log = OpenLog();
  EXPECT_TRUE(log->Read(forced_lsn).ok());
  EXPECT_FALSE(log->Read(lost_lsn).ok());
  EXPECT_EQ(log->end_lsn(), log->durable_lsn());
}

TEST_F(LogTest, ScanVisitsRecordsInOrder) {
  auto log = OpenLog();
  std::vector<Lsn> lsns;
  for (int i = 0; i < 5; ++i) {
    lsns.push_back(
        log->Append(SampleUpdate(1, kNullLsn, static_cast<uint32_t>(i),
                                 static_cast<uint64_t>(i)))
            .value());
  }
  ASSERT_TRUE(log->Force().ok());
  std::vector<PageId> pages;
  ASSERT_TRUE(log->Scan(log->begin_lsn(), [&](const LogRecord& rec) {
                   pages.push_back(rec.page);
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(pages, (std::vector<PageId>{PageId(0), PageId(1), PageId(2),
                                        PageId(3), PageId(4)}));
}

TEST_F(LogTest, ScanFromMiddle) {
  auto log = OpenLog();
  log->Append(SampleUpdate(1, kNullLsn, 0, 0)).value();
  Lsn mid = log->Append(SampleUpdate(1, kNullLsn, 1, 1)).value();
  log->Append(SampleUpdate(1, kNullLsn, 2, 2)).value();
  int count = 0;
  ASSERT_TRUE(log->Scan(mid, [&](const LogRecord&) {
                   ++count;
                   return Status::OK();
                 }).ok());
  EXPECT_EQ(count, 2);
}

TEST_F(LogTest, CheckpointLsnSurvivesReopen) {
  {
    auto log = OpenLog();
    Lsn lsn = log->Append(LogRecord::ClientCheckpoint({}, {})).value();
    ASSERT_TRUE(log->Force().ok());
    ASSERT_TRUE(log->SetCheckpointLsn(lsn).ok());
  }
  auto log = OpenLog();
  EXPECT_NE(log->checkpoint_lsn(), kNullLsn);
  auto rec = log->Read(log->checkpoint_lsn());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().type, LogRecordType::kClientCheckpoint);
}

TEST_F(LogTest, BoundedLogReportsFull) {
  auto log = OpenLog(512);
  Status last = Status::OK();
  for (int i = 0; i < 100; ++i) {
    auto lsn = log->Append(SampleUpdate(1, kNullLsn, 0, static_cast<uint64_t>(i)));
    if (!lsn.ok()) {
      last = lsn.status();
      break;
    }
  }
  EXPECT_TRUE(last.IsLogFull());
}

TEST_F(LogTest, ReclaimAdvanceFreesSpace) {
  auto log = OpenLog(512);
  Lsn last = kNullLsn;
  while (true) {
    auto lsn = log->Append(SampleUpdate(1, kNullLsn, 0, 0));
    if (!lsn.ok()) break;
    last = lsn.value();
  }
  ASSERT_NE(last, kNullLsn);
  log->SetReclaimLsn(last);
  EXPECT_TRUE(log->Append(SampleUpdate(1, kNullLsn, 0, 0)).ok());
}

TEST_F(LogTest, PunchedReclaimSpaceFreesBlocksKeepsLsns) {
  auto log = OpenLog();
  std::vector<Lsn> lsns;
  // ~40KB of records so whole filesystem blocks become reclaimable.
  for (int i = 0; i < 200; ++i) {
    lsns.push_back(
        log->Append(SampleUpdate(1, kNullLsn, static_cast<uint32_t>(i),
                                 static_cast<uint64_t>(i)))
            .value());
  }
  ASSERT_TRUE(log->Force().ok());
  Lsn tail = log->end_lsn();

  log->SetReclaimLsn(lsns[150]);
  auto punched = log->PunchReclaimedSpace();
  ASSERT_TRUE(punched.ok());
  if (punched.value() == 0) {
    GTEST_SKIP() << "filesystem does not support hole punching";
  }
  EXPECT_GE(punched.value(), 4096u);

  // Records at and past the reclaim point remain readable at their LSNs.
  for (int i = 150; i < 200; ++i) {
    auto rec = log->Read(lsns[i]);
    ASSERT_TRUE(rec.ok()) << "lsn " << lsns[i];
    EXPECT_EQ(rec.value().page, PageId(static_cast<uint32_t>(i)));
  }
  // And appends continue exactly where they left off.
  Lsn next = log->Append(SampleUpdate(2, kNullLsn, 999, 0)).value();
  EXPECT_EQ(next, tail);
}

TEST_F(LogTest, AllRecordTypesRoundTrip) {
  LogRecord cb = LogRecord::Callback(TxnId(9), Lsn(100),
                                     ObjectId{PageId(4), 2}, ClientId(3),
                                     Psn(77));
  LogRecord clr = LogRecord::Clr(TxnId(9), Lsn(100), PageId(4), 2,
                                 UpdateOp::kCreate, Psn(5), "img", Lsn(60));
  LogRecord ckpt = LogRecord::ClientCheckpoint(
      {TxnCheckpointInfo{TxnId(1), Lsn(10), Lsn(20)}},
      {DptEntry{PageId(5), Lsn(30)}});
  LogRecord repl = LogRecord::Replacement(
      PageId(8), Psn(123), {DctEntry{PageId(8), ClientId(2), Psn(50), Lsn(40)}});

  auto cb2 = LogRecord::Decode(cb.Encode());
  ASSERT_TRUE(cb2.ok());
  EXPECT_EQ(cb2.value().cb_object, (ObjectId{PageId(4), 2}));
  EXPECT_EQ(cb2.value().cb_responder, ClientId(3));
  EXPECT_EQ(cb2.value().cb_psn, Psn(77));

  auto clr2 = LogRecord::Decode(clr.Encode());
  ASSERT_TRUE(clr2.ok());
  EXPECT_EQ(clr2.value().undo_next_lsn, Lsn(60));
  EXPECT_EQ(clr2.value().op, UpdateOp::kCreate);

  auto ckpt2 = LogRecord::Decode(ckpt.Encode());
  ASSERT_TRUE(ckpt2.ok());
  ASSERT_EQ(ckpt2.value().active_txns.size(), 1u);
  EXPECT_EQ(ckpt2.value().active_txns[0].txn, TxnId(1));
  ASSERT_EQ(ckpt2.value().dpt.size(), 1u);
  EXPECT_EQ(ckpt2.value().dpt[0].page, PageId(5));

  auto repl2 = LogRecord::Decode(repl.Encode());
  ASSERT_TRUE(repl2.ok());
  EXPECT_EQ(repl2.value().page, PageId(8));
  EXPECT_EQ(repl2.value().page_psn, Psn(123));
  ASSERT_EQ(repl2.value().dct.size(), 1u);
  EXPECT_EQ(repl2.value().dct[0].psn, Psn(50));
}

TEST_F(LogTest, TruncatedRecordDetected) {
  LogRecord rec = SampleUpdate(1, kNullLsn, 0, 0);
  std::string bytes = rec.Encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(LogRecord::Decode(bytes).ok());
}

// Torn-tail recovery: a crash (or injected torn force) can leave the file
// ending mid-record. Reopen must CRC-scan to the last complete frame and
// discard everything after it.

class TornTailTest : public LogTest {
 protected:
  // Writes three forced records; returns their LSNs plus the end LSN.
  std::vector<Lsn> WriteThreeRecords() {
    auto log = OpenLog();
    std::vector<Lsn> lsns;
    for (int i = 0; i < 3; ++i) {
      lsns.push_back(
        log->Append(SampleUpdate(1, kNullLsn, static_cast<uint32_t>(i),
                                 static_cast<uint64_t>(i)))
            .value());
    }
    EXPECT_TRUE(log->Force().ok());
    lsns.push_back(log->end_lsn());
    return lsns;
  }

  void TruncateTo(Lsn size) {
    std::filesystem::resize_file(dir_ + "/test.log", size.value());
  }

  void FlipByteAt(Lsn lsn) {
    uint64_t offset = lsn.value();
    std::FILE* f = std::fopen((dir_ + "/test.log").c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }

  // Recovery must stop exactly at the end of record 2 and the log must
  // accept new appends there.
  void ExpectTailDiscarded(const std::vector<Lsn>& lsns) {
    auto log = OpenLog();
    EXPECT_EQ(log->durable_lsn(), lsns[2]);
    EXPECT_EQ(log->end_lsn(), log->durable_lsn());
    EXPECT_TRUE(log->Read(lsns[0]).ok());
    EXPECT_TRUE(log->Read(lsns[1]).ok());
    EXPECT_FALSE(log->Read(lsns[2]).ok());
    int count = 0;
    EXPECT_TRUE(log->Scan(log->begin_lsn(), [&](const LogRecord&) {
                     ++count;
                     return Status::OK();
                   }).ok());
    EXPECT_EQ(count, 2);
    Lsn next = log->Append(SampleUpdate(2, kNullLsn, 9, 9)).value();
    EXPECT_EQ(next, lsns[2]);
    EXPECT_TRUE(log->Force().ok());
  }
};

TEST_F(TornTailTest, TruncatedMidBodyDiscarded) {
  std::vector<Lsn> lsns = WriteThreeRecords();
  // Cut the last record in the middle of its body.
  TruncateTo(lsns[2] + LogManager::kFrameHeaderSize +
             (lsns[3] - lsns[2] - LogManager::kFrameHeaderSize) / 2);
  ExpectTailDiscarded(lsns);
}

TEST_F(TornTailTest, TruncatedMidFrameHeaderDiscarded) {
  std::vector<Lsn> lsns = WriteThreeRecords();
  // Only half of the last record's 8-byte frame header reached the disk.
  TruncateTo(lsns[2] + LogManager::kFrameHeaderSize / 2);
  ExpectTailDiscarded(lsns);
}

TEST_F(TornTailTest, CorruptedTailBodyDiscarded) {
  std::vector<Lsn> lsns = WriteThreeRecords();
  // Full length on disk, but one body byte of the last record flipped: the
  // CRC must reject it.
  FlipByteAt(lsns[2] + LogManager::kFrameHeaderSize + 3);
  ExpectTailDiscarded(lsns);
}

TEST_F(TornTailTest, CorruptedMidLogStopsScanThere) {
  std::vector<Lsn> lsns = WriteThreeRecords();
  // Corrupt the SECOND record: everything from it on is discarded, even
  // though the third record is intact (no valid chain past a bad frame).
  FlipByteAt(lsns[1] + LogManager::kFrameHeaderSize + 3);
  auto log = OpenLog();
  EXPECT_EQ(log->durable_lsn(), lsns[1]);
  EXPECT_TRUE(log->Read(lsns[0]).ok());
  EXPECT_FALSE(log->Read(lsns[1]).ok());
}

}  // namespace
}  // namespace finelog
