// Tests of log space management (Section 3.6): a client with a bounded
// private log frees space by forcing min-RedoLSN pages through the server.

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class LogSpaceTest : public ::testing::Test {
 protected:
  void Start(uint64_t capacity, const std::string& name) {
    SystemConfig config = SmallConfig(name);
    config.client_log_capacity = capacity;
    auto sys = System::Create(config);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }

  std::string Val(char fill) {
    return std::string(system_->config().object_size, fill);
  }

  std::unique_ptr<System> system_;
};

TEST_F(LogSpaceTest, BoundedLogSustainsManyTransactions) {
  // The log holds only a handful of update records; without Section 3.6 the
  // client would wedge almost immediately.
  Start(8192, "ls_sustain");
  Client& c0 = system_->client(0);
  for (int i = 0; i < 100; ++i) {
    TxnId txn = c0.Begin().value();
    ObjectId oid{static_cast<PageId>(i % 8), static_cast<SlotId>(i % 4)};
    ASSERT_TRUE(c0.Write(txn, oid, Val('a' + (i % 26))).ok()) << "txn " << i;
    ASSERT_TRUE(c0.Commit(txn).ok()) << "txn " << i;
  }
  EXPECT_GT(system_->metrics().Get("client.log_full_events"), 0u);
  EXPECT_GT(system_->metrics().Get("client.log_space_forces"), 0u);
  EXPECT_GT(system_->metrics().Get("server.force_page_requests"), 0u);
}

TEST_F(LogSpaceTest, FlushNotificationAdvancesRedoLsn) {
  Start(0, "ls_notify");
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(1), 0}, Val('A')).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_EQ(c0.dpt().count(PageId(1)), 1u);
  Lsn redo_before = c0.dpt().at(PageId(1));

  // Ship + force: the flush notification must clear the DPT entry (no
  // updates since the ship).
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->server().FlushAllPages().ok());
  EXPECT_EQ(c0.dpt().count(PageId(1)), 0u);
  (void)redo_before;
}

TEST_F(LogSpaceTest, RedoLsnAdvancesButEntryKeptWhenUpdatedAgain) {
  Start(0, "ls_advance");
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(1), 0}, Val('B')).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());

  // Update the page again before the server flushes.
  TxnId txn2 = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn2, ObjectId{PageId(1), 1}, Val('C')).ok());
  ASSERT_TRUE(c0.Commit(txn2).ok());
  Lsn redo_before = c0.dpt().at(PageId(1));

  ASSERT_TRUE(system_->server().FlushAllPages().ok());
  // Entry kept (new updates unflushed), but RedoLSN advanced past the
  // records covered by the first ship.
  ASSERT_EQ(c0.dpt().count(PageId(1)), 1u);
  EXPECT_GT(c0.dpt().at(PageId(1)), redo_before);
}

TEST_F(LogSpaceTest, LogFullWithPinnedTransactionAborts) {
  // A single transaction that overflows the whole log cannot be saved by
  // page forcing (its own first record pins the tail): the client reports
  // kLogFull and the driver aborts.
  Start(4096, "ls_pinned");
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  Status last = Status::OK();
  for (int i = 0; i < 64 && last.ok(); ++i) {
    last = c0.Write(txn, ObjectId{static_cast<PageId>(i % 8), 0}, Val('D'));
  }
  EXPECT_TRUE(last.IsLogFull()) << last.ToString();
  ASSERT_TRUE(c0.Abort(txn).ok());
}

TEST_F(LogSpaceTest, RecoveryAfterLogSpaceReuse) {
  // Transactions whose records were logically reclaimed must still be
  // durable: their pages were forced to disk as part of Section 3.6.
  Start(8192, "ls_recover");
  Client& c0 = system_->client(0);
  std::string last_val;
  for (int i = 0; i < 60; ++i) {
    TxnId txn = c0.Begin().value();
    last_val = Val('a' + (i % 26));
    ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(2), 1}, last_val).ok());
    ASSERT_TRUE(c0.Commit(txn).ok());
  }
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  Client& c1 = system_->client(1);
  TxnId txn = c1.Begin().value();
  EXPECT_EQ(c1.Read(txn, ObjectId{PageId(2), 1}).value(), last_val);
  ASSERT_TRUE(c1.Commit(txn).ok());
}

}  // namespace
}  // namespace finelog
