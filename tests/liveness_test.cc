// Lease-based client liveness (DESIGN.md section 14).
//
// The paper's protocols assume clients eventually answer callbacks and
// announce their own crashes; these tests cover the gap a silently-dead
// client leaves. A client whose lease expires is *presumed dead*: its
// shared locks are released, its clean exclusive locks reclaimed, and its
// DCT-dirty pages quarantined behind a machine-distinguishable WouldBlock
// reason. If it returns it is a *zombie* -- fenced at every endpoint until
// it reruns crash recovery. With the heartbeat knob at its default (off),
// a seeded run is byte-identical to one that never heard of leases.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/status.h"
#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "log/log_record.h"
#include "server/liveness.h"
#include "tests/test_util.h"
#include "util/metrics.h"

namespace finelog {
namespace {

// ---------------------------------------------------------------------------
// Unit layer: the status refinement, the log record, the lease table.
// ---------------------------------------------------------------------------

TEST(WouldBlockReasonTest, ReasonIsCarriedAndDistinguishable) {
  Status plain = Status::WouldBlock("try later");
  EXPECT_TRUE(plain.IsWouldBlock());
  EXPECT_EQ(plain.would_block_reason(), WouldBlockReason::kNone);
  EXPECT_FALSE(plain.IsZombieFenced());

  Status q = Status::WouldBlock(WouldBlockReason::kQuarantinedPage, "page");
  EXPECT_TRUE(q.IsWouldBlock());
  EXPECT_EQ(q.would_block_reason(), WouldBlockReason::kQuarantinedPage);
  EXPECT_FALSE(q.IsZombieFenced());

  Status z = Status::WouldBlock(WouldBlockReason::kZombieFenced, "fenced");
  EXPECT_TRUE(z.IsZombieFenced());
  EXPECT_NE(z.ToString().find("ZombieFenced"), std::string::npos);

  // A non-WouldBlock status never reads as fenced.
  EXPECT_FALSE(Status::Crashed("down").IsZombieFenced());
}

TEST(MembershipRecordTest, EncodeDecodeRoundTrip) {
  LogRecord declare = LogRecord::Membership(ClientId(7), /*presumed_dead=*/true);
  auto declare2 = LogRecord::Decode(declare.Encode());
  ASSERT_TRUE(declare2.ok());
  EXPECT_EQ(declare2->type, LogRecordType::kMembership);
  EXPECT_EQ(declare2->member, ClientId(7));
  EXPECT_TRUE(declare2->presumed_dead);

  LogRecord clear = LogRecord::Membership(ClientId(7), /*presumed_dead=*/false);
  auto clear2 = LogRecord::Decode(clear.Encode());
  ASSERT_TRUE(clear2.ok());
  EXPECT_EQ(clear2->type, LogRecordType::kMembership);
  EXPECT_EQ(clear2->member, ClientId(7));
  EXPECT_FALSE(clear2->presumed_dead);
}

TEST(LivenessTableTest, LeaseStateMachine) {
  LivenessTable table(/*lease_duration_us=*/1000);
  ClientId a(0), b(1);

  // Untracked clients never expire: membership is heartbeat-driven.
  EXPECT_TRUE(table.CollectExpired(1u << 20).empty());

  table.Renew(a, 100);   // Valid until 1100.
  table.Renew(b, 500);   // Valid until 1500.
  EXPECT_TRUE(table.HasLease(a));
  EXPECT_TRUE(table.CollectExpired(1000).empty());
  EXPECT_EQ(table.CollectExpired(1200), std::vector<ClientId>{a});

  // Both expired: deterministic id order.
  auto both = table.CollectExpired(2000);
  ASSERT_EQ(both.size(), 2u);
  EXPECT_EQ(both[0], a);
  EXPECT_EQ(both[1], b);

  table.MarkPresumedDead(a);
  EXPECT_TRUE(table.IsPresumedDead(a));
  EXPECT_FALSE(table.HasLease(a));
  // Already-declared clients drop out of the expired set.
  EXPECT_EQ(table.CollectExpired(2000), std::vector<ClientId>{b});
  // A zombie cannot renew its way back to life.
  table.Renew(a, 3000);
  EXPECT_TRUE(table.IsPresumedDead(a));
  EXPECT_FALSE(table.HasLease(a));

  // Suspend (explicit crash) drops the lease but keeps presumed-dead: only
  // completed crash recovery clears it.
  table.Suspend(a);
  EXPECT_TRUE(table.IsPresumedDead(a));
  table.MarkRecovered(a, 4000);
  EXPECT_FALSE(table.IsPresumedDead(a));
  EXPECT_TRUE(table.HasLease(a));

  // Server restart wipes volatile deadlines, keeps the presumed-dead set.
  table.MarkPresumedDead(b);
  table.DropLeases();
  EXPECT_FALSE(table.HasLease(a));
  EXPECT_TRUE(table.IsPresumedDead(b));
  EXPECT_TRUE(table.AnyPresumedDead());
}

// ---------------------------------------------------------------------------
// Defaults fingerprint: heartbeats off means byte-identical behavior.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  uint64_t total_messages = 0;
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  uint64_t sim_us = 0;
  uint64_t commits = 0;
  std::string log_bytes;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RunFingerprint RunSeededWorkload(const SystemConfig& config) {
  auto system = System::Create(config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 8;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 99;
  Workload workload(system.get(), &oracle, options);
  EXPECT_TRUE(workload.Run().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  RunFingerprint fp;
  fp.total_messages = system->channel().total_messages();
  fp.total_items = system->channel().total_items();
  fp.total_bytes = system->channel().total_bytes();
  fp.sim_us = system->clock().now_us();
  fp.commits = system->client(0).commits();
  fp.log_bytes = ReadFile(config.dir + "/client0.log");
  EXPECT_FALSE(fp.log_bytes.empty());
  EXPECT_EQ(system->metrics().Get(Counter::kLivenessHeartbeatsSent), 0u);
  return fp;
}

TEST(LivenessTest, DefaultsFingerprintIsByteIdentical) {
  RunFingerprint base = RunSeededWorkload(SmallConfig("liveness_fp_base"));

  // A config that has heard of every liveness knob -- but with heartbeats
  // still at their default (off) -- must not change one byte or one
  // simulated microsecond. The lease duration is a dead knob until
  // heartbeat_interval_us turns the subsystem on.
  SystemConfig tuned = SmallConfig("liveness_fp_tuned");
  tuned.heartbeat_interval_us = 0;
  tuned.lease_duration_us = 777777;
  RunFingerprint with_knobs = RunSeededWorkload(tuned);

  EXPECT_EQ(base, with_knobs);
}

// ---------------------------------------------------------------------------
// Integration layer.
// ---------------------------------------------------------------------------

SystemConfig LivenessConfig(const std::string& name) {
  SystemConfig config = SmallConfig(name);
  config.num_clients = 2;
  config.heartbeat_interval_us = 1000;
  config.lease_duration_us = 200000;
  return config;
}

// One small committed transaction on `client`, also renewing its lease.
Status ProbeTxn(System* system, size_t i, ObjectId oid) {
  auto txn = system->client(i).Begin();
  FINELOG_RETURN_IF_ERROR(txn.status());
  auto got = system->client(i).Read(txn.value(), oid);
  if (!got.ok()) {
    (void)system->client(i).Abort(txn.value());
    return got.status();
  }
  return system->client(i).Commit(txn.value());
}

// Retry wrapper for ordinary (lock-conflict) WouldBlocks.
Result<std::string> ReadCommitted(System* system, size_t i, ObjectId oid) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto txn = system->client(i).Begin();
    if (!txn.ok()) return txn.status();
    auto got = system->client(i).Read(txn.value(), oid);
    if (got.ok()) {
      FINELOG_RETURN_IF_ERROR(system->client(i).Commit(txn.value()));
      return got;
    }
    FINELOG_RETURN_IF_ERROR(system->client(i).Abort(txn.value()));
    if (!got.status().IsWouldBlock()) return got.status();
  }
  return Status::Internal("read never granted");
}

TEST(LivenessTest, HeartbeatsRenewLeasesUnderWorkload) {
  SystemConfig config = LivenessConfig("liveness_heartbeats");
  config.num_clients = 3;
  auto system = System::Create(config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 6;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 4242;
  Workload workload(system.get(), &oracle, options);
  ASSERT_TRUE(workload.Run().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  Metrics& m = system->metrics();
  EXPECT_GT(m.Get(Counter::kLivenessHeartbeatsSent), 0u);
  // The fault-free wire delivers every heartbeat.
  EXPECT_EQ(m.Get(Counter::kLivenessHeartbeatsReceived),
            m.Get(Counter::kLivenessHeartbeatsSent));
  // Everyone kept renewing: no expiries, no declarations, live leases.
  EXPECT_EQ(m.Get(Counter::kLivenessLeaseExpiries), 0u);
  EXPECT_EQ(m.Get(Counter::kLivenessPresumedDead), 0u);
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    EXPECT_TRUE(system->server().liveness().HasLease(ClientId(c)));
    EXPECT_FALSE(system->server().IsPresumedDead(ClientId(c)));
  }
}

// The tentpole scenario, end to end on a fault-free wire: client 1 commits
// an update (dirty page cached under client-based logging, DCT entry at the
// server), takes a shared lock elsewhere, then falls silent. The active
// client's traffic drives lease expiry; the declaration must release the
// shared lock, quarantine the dirty page, and fence the returning zombie
// until RecoverZombie reruns client crash recovery.
TEST(LivenessTest, SilentClientIsDeclaredQuarantinedAndRecovered) {
  SystemConfig config = LivenessConfig("liveness_silent");
  auto system = System::Create(config).value();

  const ObjectId dirty_obj{PageId(2), 0};   // Client 1 will dirty page 2.
  const ObjectId shared_obj{PageId(5), 0};  // Client 1 only reads page 5.
  const ObjectId probe_obj{PageId(9), 0};   // Client 0's lease-renewal probe.

  // Client 1: one committed write (page stays dirty in its cache -- commit
  // ships log records, not pages) and one committed read elsewhere.
  std::string committed(config.object_size, 'z');
  {
    auto txn = system->client(1).Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(system->client(1).Write(txn.value(), dirty_obj, committed).ok());
    auto got = system->client(1).Read(txn.value(), shared_obj);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(system->client(1).Commit(txn.value()).ok());
  }
  ASSERT_TRUE(ProbeTxn(system.get(), 0, probe_obj).ok());

  // Client 1 falls silent. Advance in sub-lease increments with client 0
  // staying chatty, so only the silent lease crosses its deadline (a single
  // jump past the lease would expire the survivor too -- exactly the
  // cascade the lease-sizing guidance in config.h warns about).
  Metrics& m = system->metrics();
  for (int i = 0; i < 12 && !system->server().IsPresumedDead(ClientId(1));
       ++i) {
    system->clock().Advance(config.lease_duration_us / 4);
    ASSERT_TRUE(ProbeTxn(system.get(), 0, probe_obj).ok());
  }
  ASSERT_TRUE(system->server().IsPresumedDead(ClientId(1)));
  EXPECT_FALSE(system->server().IsPresumedDead(ClientId(0)));
  EXPECT_GE(m.Get(Counter::kLivenessLeaseExpiries), 1u);
  EXPECT_EQ(m.Get(Counter::kLivenessPresumedDead), 1u);

  // Shared locks were released at declaration: client 0 can write the
  // object client 1 had only read, with no callback to the dead client.
  {
    auto txn = system->client(0).Begin();
    ASSERT_TRUE(txn.ok());
    std::string v(config.object_size, 'w');
    Status w = system->client(0).Write(txn.value(), shared_obj, v);
    ASSERT_TRUE(w.ok()) << w.ToString();
    ASSERT_TRUE(system->client(0).Commit(txn.value()).ok());
  }

  // The dirty page is quarantined: its only copy of the committed update
  // is the dead client's log, so handing it out would serve stale data.
  {
    auto txn = system->client(0).Begin();
    ASSERT_TRUE(txn.ok());
    auto got = system->client(0).Read(txn.value(), dirty_obj);
    ASSERT_FALSE(got.ok());
    EXPECT_TRUE(got.status().IsWouldBlock());
    EXPECT_EQ(got.status().would_block_reason(),
              WouldBlockReason::kQuarantinedPage);
    ASSERT_TRUE(system->client(0).Abort(txn.value()).ok());
  }
  EXPECT_GE(m.Get(Counter::kLivenessQuarantineDenials), 1u);

  // The zombie returns: every endpoint fences it with a distinguishable
  // status until it reruns crash recovery.
  auto zombie = system->client(1).Begin();
  ASSERT_FALSE(zombie.ok());
  EXPECT_TRUE(zombie.status().IsZombieFenced()) << zombie.status().ToString();
  EXPECT_GE(m.Get(Counter::kLivenessZombieFenced), 1u);

  // RecoverZombie = client crash recovery + re-register; the quarantine
  // lifts and the committed update is intact.
  Status rz = system->RecoverZombie(1);
  ASSERT_TRUE(rz.ok()) << rz.ToString();
  EXPECT_FALSE(system->server().IsPresumedDead(ClientId(1)));
  EXPECT_EQ(m.Get(Counter::kLivenessRecoveredZombies), 1u);
  auto after = ReadCommitted(system.get(), 0, dirty_obj);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value(), committed);

  // The recovered client is a first-class citizen again.
  ASSERT_TRUE(ProbeTxn(system.get(), 1, probe_obj).ok());
}

// Satellite: the server crashes while a client is presumed dead. The
// membership record makes the declaration durable and the checkpointed DCT
// lets restart rebuild the quarantine without talking to the dead client.
TEST(LivenessTest, QuarantineSurvivesServerRestart) {
  SystemConfig config = LivenessConfig("liveness_restart");
  auto system = System::Create(config).value();

  const ObjectId dirty_obj{PageId(3), 1};
  const ObjectId probe_obj{PageId(9), 0};

  std::string committed(config.object_size, 'q');
  {
    auto txn = system->client(1).Begin();
    ASSERT_TRUE(txn.ok());
    ASSERT_TRUE(system->client(1).Write(txn.value(), dirty_obj, committed).ok());
    ASSERT_TRUE(system->client(1).Commit(txn.value()).ok());
  }
  // Server checkpoint while client 1 is still reachable: the checkpointed
  // DCT is what seeds the quarantine placeholder after the restart.
  ASSERT_TRUE(system->server().TakeCheckpoint().ok());

  // Client 1 falls silent; client 0's traffic drives the declaration.
  for (int i = 0; i < 12 && !system->server().IsPresumedDead(ClientId(1));
       ++i) {
    system->clock().Advance(config.lease_duration_us / 4);
    ASSERT_TRUE(ProbeTxn(system.get(), 0, probe_obj).ok());
  }
  ASSERT_TRUE(system->server().IsPresumedDead(ClientId(1)));

  // Server crash + restart. The zombie is not crashed from the harness's
  // point of view: restart must skip it (it is unreachable for state
  // collection) and reload its presumed-dead status from the membership
  // records alone.
  ASSERT_TRUE(system->CrashServer().ok());
  Status restart = system->RecoverServer();
  ASSERT_TRUE(restart.ok()) << restart.ToString();
  ASSERT_TRUE(system->server().IsPresumedDead(ClientId(1)));

  // The quarantine came back with it.
  {
    auto txn = system->client(0).Begin();
    ASSERT_TRUE(txn.ok());
    auto got = system->client(0).Read(txn.value(), dirty_obj);
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().would_block_reason(),
              WouldBlockReason::kQuarantinedPage);
    ASSERT_TRUE(system->client(0).Abort(txn.value()).ok());
  }

  // Zombie recovery replays the committed update from its private log.
  ASSERT_TRUE(system->RecoverZombie(1).ok());
  EXPECT_FALSE(system->server().IsPresumedDead(ClientId(1)));
  auto after = ReadCommitted(system.get(), 0, dirty_obj);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value(), committed);
}

}  // namespace
}  // namespace finelog
