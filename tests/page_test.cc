#include "storage/page.h"

#include <gtest/gtest.h>

#include <string>

namespace finelog {
namespace {

class PageTest : public ::testing::Test {
 protected:
  PageTest() : page_(1024) { page_.Format(PageId(7), Psn(100)); }
  Page page_;
};

TEST_F(PageTest, FormatInitializesHeader) {
  EXPECT_EQ(page_.id(), PageId(7));
  EXPECT_EQ(page_.psn(), Psn(100));
  EXPECT_EQ(page_.slot_count(), 0u);
  EXPECT_TRUE(page_.LiveSlots().empty());
}

TEST_F(PageTest, CreateAndReadObject) {
  auto slot = page_.CreateObject("hello world");
  ASSERT_TRUE(slot.ok());
  auto data = page_.ReadObject(slot.value());
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value(), "hello world");
}

TEST_F(PageTest, CreateManyObjectsDistinctSlots) {
  std::vector<SlotId> slots;
  for (int i = 0; i < 10; ++i) {
    auto slot = page_.CreateObject("obj" + std::to_string(i));
    ASSERT_TRUE(slot.ok());
    slots.push_back(slot.value());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(page_.ReadObject(slots[i]).value(), "obj" + std::to_string(i));
  }
  EXPECT_EQ(page_.LiveSlots().size(), 10u);
}

TEST_F(PageTest, WriteObjectSameSizeInPlace) {
  auto slot = page_.CreateObject("aaaa");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page_.WriteObject(slot.value(), "bbbb").ok());
  EXPECT_EQ(page_.ReadObject(slot.value()).value(), "bbbb");
}

TEST_F(PageTest, WriteObjectRejectsSizeChange) {
  auto slot = page_.CreateObject("aaaa");
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(page_.WriteObject(slot.value(), "toolong").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(PageTest, ResizeObjectGrowAndShrink) {
  auto slot = page_.CreateObject("aaaa");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page_.ResizeObject(slot.value(), "much longer value").ok());
  EXPECT_EQ(page_.ReadObject(slot.value()).value(), "much longer value");
  ASSERT_TRUE(page_.ResizeObject(slot.value(), "x").ok());
  EXPECT_EQ(page_.ReadObject(slot.value()).value(), "x");
}

TEST_F(PageTest, DeleteFreesSlotForReuse) {
  auto s1 = page_.CreateObject("first");
  auto s2 = page_.CreateObject("second");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(page_.DeleteObject(s1.value()).ok());
  EXPECT_FALSE(page_.SlotExists(s1.value()));
  EXPECT_TRUE(page_.ReadObject(s1.value()).status().IsNotFound());
  auto s3 = page_.CreateObject("third");
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(s3.value(), s1.value());  // Slot reused.
  EXPECT_EQ(page_.ReadObject(s2.value()).value(), "second");
}

TEST_F(PageTest, CreateObjectAtSpecificSlot) {
  ASSERT_TRUE(page_.CreateObjectAt(5, "at five").ok());
  EXPECT_EQ(page_.ReadObject(5).value(), "at five");
  EXPECT_EQ(page_.slot_count(), 6u);
  EXPECT_FALSE(page_.SlotExists(4));
  // Occupied slot is rejected.
  EXPECT_EQ(page_.CreateObjectAt(5, "again").code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PageTest, CompactionReclaimsHoles) {
  // Fill, delete every other object, then allocate something large that only
  // fits after compaction.
  std::vector<SlotId> slots;
  std::string payload(80, 'x');
  while (true) {
    auto slot = page_.CreateObject(payload);
    if (!slot.ok()) break;
    slots.push_back(slot.value());
  }
  ASSERT_GT(slots.size(), 4u);
  size_t freed = 0;
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.DeleteObject(slots[i]).ok());
    freed += 80;
  }
  std::string big(freed - 16, 'y');
  auto slot = page_.CreateObject(big);
  ASSERT_TRUE(slot.ok()) << slot.status().ToString();
  EXPECT_EQ(page_.ReadObject(slot.value()).value(), big);
  // Survivors intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(page_.ReadObject(slots[i]).value(), payload);
  }
}

TEST_F(PageTest, PageFullReported) {
  std::string payload(100, 'z');
  Status last = Status::OK();
  for (int i = 0; i < 100; ++i) {
    auto slot = page_.CreateObject(payload);
    if (!slot.ok()) {
      last = slot.status();
      break;
    }
  }
  EXPECT_EQ(last.code(), StatusCode::kFailedPrecondition);
}

TEST_F(PageTest, PsnBumpAndSet) {
  page_.BumpPsn();
  EXPECT_EQ(page_.psn(), Psn(101));
  page_.set_psn(Psn(500));
  EXPECT_EQ(page_.psn(), Psn(500));
}

TEST_F(PageTest, ChecksumRoundTrip) {
  auto slot = page_.CreateObject("checksummed");
  ASSERT_TRUE(slot.ok());
  page_.UpdateChecksum();
  EXPECT_TRUE(page_.VerifyChecksum());
  // Corrupt a byte.
  page_.raw()[700] ^= 0x5A;
  EXPECT_FALSE(page_.VerifyChecksum());
}

TEST_F(PageTest, ZeroLengthObject) {
  auto slot = page_.CreateObject("");
  ASSERT_TRUE(slot.ok());
  EXPECT_TRUE(page_.SlotExists(slot.value()));
  EXPECT_EQ(page_.ReadObject(slot.value()).value(), "");
}

TEST_F(PageTest, FreeSpaceDecreasesWithAllocations) {
  size_t before = page_.FreeSpace();
  ASSERT_TRUE(page_.CreateObject(std::string(100, 'a')).ok());
  EXPECT_LT(page_.FreeSpace(), before);
}

}  // namespace
}  // namespace finelog
