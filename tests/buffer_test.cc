#include "buffer/buffer_pool.h"

#include <gtest/gtest.h>

namespace finelog {
namespace {

Page MakePage(PageId id) {
  Page p(512);
  p.Format(id, Psn(1));
  return p;
}

TEST(BufferPoolTest, PutGetRoundTrip) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), nullptr).ok());
  BufferPool::Frame* f = pool.Get(PageId(1));
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->page.id(), PageId(1));
  EXPECT_EQ(pool.Get(PageId(2)), nullptr);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(2);
  std::vector<PageId> evicted;
  auto handler = [&](PageId pid, BufferPool::Frame&) {
    evicted.push_back(pid);
    return Status::OK();
  };
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), handler).ok());
  ASSERT_TRUE(pool.Put(PageId(2), MakePage(PageId(2)), handler).ok());
  pool.Get(PageId(1));  // Touch 1 so 2 becomes LRU.
  ASSERT_TRUE(pool.Put(PageId(3), MakePage(PageId(3)), handler).ok());
  ASSERT_EQ(evicted, (std::vector<PageId>{PageId(2)}));
  EXPECT_TRUE(pool.Contains(PageId(1)));
  EXPECT_TRUE(pool.Contains(PageId(3)));
}

TEST(BufferPoolTest, PinnedFramesNotEvicted) {
  BufferPool pool(2);
  std::vector<PageId> evicted;
  auto handler = [&](PageId pid, BufferPool::Frame&) {
    evicted.push_back(pid);
    return Status::OK();
  };
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), handler).ok());
  ASSERT_TRUE(pool.Put(PageId(2), MakePage(PageId(2)), handler).ok());
  pool.Get(PageId(1));
  pool.Pin(PageId(2));  // 2 is LRU but pinned.
  ASSERT_TRUE(pool.Put(PageId(3), MakePage(PageId(3)), handler).ok());
  ASSERT_EQ(evicted, (std::vector<PageId>{PageId(1)}));
  EXPECT_TRUE(pool.Contains(PageId(2)));
}

TEST(BufferPoolTest, EvictionFailureAbortsInsert) {
  BufferPool pool(1);
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), nullptr).ok());
  auto failing = [](PageId, BufferPool::Frame&) {
    return Status::IoError("ship failed");
  };
  EXPECT_FALSE(pool.Put(PageId(2), MakePage(PageId(2)), failing).ok());
  EXPECT_TRUE(pool.Contains(PageId(1)));
}

TEST(BufferPoolTest, ExplicitEvictCallsHandler) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), nullptr).ok());
  bool called = false;
  ASSERT_TRUE(pool.Evict(PageId(1), [&](PageId, BufferPool::Frame&) {
                    called = true;
                    return Status::OK();
                  }).ok());
  EXPECT_TRUE(called);
  EXPECT_FALSE(pool.Contains(PageId(1)));
  EXPECT_TRUE(pool.Evict(PageId(1), nullptr).IsNotFound());
}

TEST(BufferPoolTest, DropSkipsHandler) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), nullptr).ok());
  pool.Drop(PageId(1));
  EXPECT_FALSE(pool.Contains(PageId(1)));
  EXPECT_EQ(pool.size(), 0u);
}

TEST(BufferPoolTest, PutExistingReplacesWithoutEviction) {
  BufferPool pool(1);
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), nullptr).ok());
  Page p2 = MakePage(PageId(1));
  p2.set_psn(Psn(99));
  int evictions = 0;
  auto counting = [&](PageId, BufferPool::Frame&) {
    ++evictions;
    return Status::OK();
  };
  ASSERT_TRUE(pool.Put(PageId(1), std::move(p2), counting).ok());
  EXPECT_EQ(evictions, 0);
  EXPECT_EQ(pool.Get(PageId(1))->page.psn(), Psn(99));
}

TEST(BufferPoolTest, ClearEmptiesEverything) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), nullptr).ok());
  ASSERT_TRUE(pool.Put(PageId(2), MakePage(PageId(2)), nullptr).ok());
  pool.Clear();
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.Get(PageId(1)), nullptr);
}

TEST(BufferPoolTest, FrameMetadataPersists) {
  BufferPool pool(4);
  ASSERT_TRUE(pool.Put(PageId(1), MakePage(PageId(1)), nullptr).ok());
  BufferPool::Frame* f = pool.Get(PageId(1));
  f->dirty = true;
  f->modified_slots.insert(3);
  f->structurally_modified = true;
  BufferPool::Frame* again = pool.Get(PageId(1));
  EXPECT_TRUE(again->dirty);
  EXPECT_EQ(again->modified_slots.count(3), 1u);
  EXPECT_TRUE(again->structurally_modified);
}

}  // namespace
}  // namespace finelog
