// Seeded lint fixture: src/ headers must use a FINELOG_<path>_H_ include
// guard and repo-root-relative includes. This file is never compiled.

#ifndef WRONG_GUARD_NAME_H  // bad: guard does not match FINELOG_<path>_H_
#define WRONG_GUARD_NAME_H

#include "../storage/page.h"  // bad: path traversal

#endif  // WRONG_GUARD_NAME_H
