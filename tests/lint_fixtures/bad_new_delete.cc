// Seeded lint fixture: raw new/delete are banned; ownership must go through
// smart pointers (the `unique_ptr<T>(new T(...))` factory idiom is the one
// sanctioned use of `new`). This file is never compiled.

struct Widget {
  int x = 0;
};

int BadOwnership() {
  Widget* w = new Widget();  // bad: raw new, no owning smart pointer
  int x = w->x;
  delete w;  // bad: raw delete
  return x;
}
