// Seeded-bad fixture for the `would-block-sweep` rule: the enum declares
// kRecoveringPage (the instant-restart degraded-path reason) but the
// WouldBlockReasonName table forgot its case, so Status::ToString() would
// print "Unknown" exactly where an operator most needs to see why a
// request was refused. The stale kRetiredReason case is the drift in the
// other direction. Parsed (not compiled) by lint_self_test.

namespace finelog {

enum class WouldBlockReason : uint8_t {
  kNone = 0,
  kLockConflict,
  kRecoveringPage,  // BAD: no case below.
};

std::string_view WouldBlockReasonName(WouldBlockReason reason) {
  switch (reason) {
    case WouldBlockReason::kNone: return "None";
    case WouldBlockReason::kLockConflict: return "LockConflict";
    case WouldBlockReason::kRetiredReason: return "Retired";  // BAD: stale.
  }
  return "Unknown";
}

}  // namespace finelog
