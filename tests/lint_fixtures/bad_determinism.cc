// Seeded lint fixture: wall-clock and process randomness are banned outside
// common/rng.h and common/clock.h. Every line below must trip the
// `determinism` rule. This file is never compiled.

#include <cstdlib>
#include <ctime>
#include <random>

int BadSeed() {
  std::srand(static_cast<unsigned>(time(nullptr)));  // bad: time()
  std::random_device rd;                             // bad: random_device
  return rand() + static_cast<int>(rd());            // bad: rand()
}
