// Seeded-bad fixture for the net-fail-point rule: wire fail points must
// follow net.<side>.<endpoint>.<fault> with side in {client,server} and
// fault in {drop,dup,delay,reorder}.
#include "util/fault.h"

namespace finelog {

void BadNetFailPoints(FaultInjector* injector) {
  // Unknown fault verb: "corrupt" is not a delivery-layer fault.
  (void)injector->Evaluate("net.server.lock_object.corrupt", 0, false);
  // Unknown side: only client and server speak on the wire.
  (void)injector->Evaluate("net.peer.fetch_page.drop", 0, false);
}

}  // namespace finelog
