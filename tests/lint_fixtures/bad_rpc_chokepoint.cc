// Seeded-bad fixture for the rpc-chokepoint rule: message accounting goes
// through Rpc::Call / Rpc::Send; direct Channel::Count / CountBatch calls
// outside src/net/ bypass wire faults, retries and dedup.
#include "net/channel.h"

namespace finelog {

void BadDirectCount(Channel* channel) {
  channel->Count(MessageType::kLockRequest, 32);
  channel->CountBatch(MessageType::kLockReply, 4, 128);
}

}  // namespace finelog
