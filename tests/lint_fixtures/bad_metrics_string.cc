// Seeded violation for the metrics-string-key rule: a pure string-literal
// counter key bypasses the interned Counter enum and pays a map lookup plus
// a string construction on every increment. `"fault." + point` style dynamic
// names stay legal -- only whole-literal keys are flagged.

#include "util/metrics.h"

namespace finelog {

void BadMetricsKey(Metrics* metrics) {
  metrics->Add("client.brand_new_counter");
}

}  // namespace finelog
