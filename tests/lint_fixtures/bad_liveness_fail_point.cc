// Seeded-bad fixture for the liveness-fail-point rule: liveness fail points
// must follow liveness.<node>.<op> with node in {server,client} and a
// lower_snake op.
#include "util/fault.h"

namespace finelog {

void BadLivenessFailPoints(FaultInjector* injector) {
  // Unknown node: only the server and the clients participate in leasing.
  (void)injector->Evaluate("liveness.watchdog.expire", 0, false);
  // Op is not lower_snake.
  (void)injector->Evaluate("liveness.server.ExpireNow", 0, false);
}

}  // namespace finelog
