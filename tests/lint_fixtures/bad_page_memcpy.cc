// Seeded lint fixture: a memcpy/memset into a Page buffer (buf_.data())
// must carry a FINELOG_CHECK bounds assertion within the preceding lines.
// This file is never compiled.

#include <cstring>
#include <string>

class FakePage {
 public:
  void UncheckedWrite(unsigned off, const std::string& data) {
    // No bounds assertion anywhere near: the lint must flag this.
    std::memcpy(buf_.data() + off, data.data(), data.size());  // bad
  }

 private:
  std::string buf_;
};
