// Seeded lint fixture: fail-point strings must match the
// <node>.<component>.<op> grammar and be unique across call sites.
// This file is never compiled.

struct FakeInjector {
  int Evaluate(const char* point, unsigned long size) {
    (void)point;
    (void)size;
    return 0;
  }
};

int BadFailPoints(FakeInjector* injector) {
  int n = 0;
  n += injector->Evaluate("server.disk", 0);        // bad: only two segments
  n += injector->Evaluate("Server.Disk.Page", 0);   // bad: not lower_snake
  n += injector->Evaluate("client0.log.force", 0);  // ok (first use)
  n += injector->Evaluate("client0.log.force", 0);  // bad: duplicate point
  return n;
}
