// Crash/recovery tests for Sections 3.3 (client crash), 3.4 (server crash)
// and 3.5 (complex crash).

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void Start(SystemConfig config) {
    auto sys = System::Create(config);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }
  void Start(const std::string& name) { Start(SmallConfig(name)); }

  void CommittedWrite(size_t client, ObjectId oid, const std::string& value) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.Write(txn, oid, value).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }

  std::string ReadCommitted(size_t client, ObjectId oid) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    auto value = c.Read(txn, oid);
    EXPECT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_TRUE(c.Commit(txn).ok());
    return value.ok() ? value.value() : std::string();
  }

  std::string Val(char fill) {
    return std::string(system_->config().object_size, fill);
  }

  std::unique_ptr<System> system_;
};

// ---------------------------------------------------------------------------
// Client crash (Section 3.3)
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, ClientCrashCommittedUnshippedUpdateSurvives) {
  Start("cc_committed");
  std::string v = Val('A');
  CommittedWrite(0, ObjectId{PageId(1), 0}, v);
  // The dirty page sits only in client 0's cache; the private log has the
  // committed update. Crash loses the cache.
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(1), 0}), v);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(1), 0}), v);
}

TEST_F(RecoveryTest, ClientCrashUncommittedUpdateRolledBack) {
  Start("cc_uncommitted");
  std::string v_old = Val('B');
  std::string v_new = Val('C');
  CommittedWrite(0, ObjectId{PageId(1), 1}, v_old);
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(1), 1}, v_new).ok());
  // Force the log so the uncommitted update is durable, then ship the dirty
  // page (steal): the server now holds uncommitted data.
  ASSERT_TRUE(c0.log().Force().ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  // The loser transaction must have been rolled back at restart.
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(1), 1}), v_old);
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(1), 1}), v_old);
}

TEST_F(RecoveryTest, ClientCrashLosesUnforcedUncommittedWork) {
  Start("cc_unforced");
  std::string v_old = Val('D');
  CommittedWrite(0, ObjectId{PageId(1), 2}, v_old);
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(1), 2}, Val('E')).ok());
  // No force, no ship: the update exists only in volatile state.
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(1), 2}), v_old);
}

TEST_F(RecoveryTest, ClientCrashSamePageOtherClientUpdatesPreserved) {
  // Section 1: "the database state is recovered correctly even if ... the
  // updates performed by different clients on a page are not present on the
  // disk version of the page".
  Start("cc_same_page");
  std::string v0 = Val('F');
  std::string v1 = Val('G');
  CommittedWrite(0, ObjectId{PageId(2), 0}, v0);
  CommittedWrite(1, ObjectId{PageId(2), 1}, v1);  // Same page, different object.
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(2), 0}), v0);
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(2), 1}), v1);
}

TEST_F(RecoveryTest, OperationalClientsContinueDuringClientCrash) {
  Start("cc_continue");
  std::string v = Val('H');
  CommittedWrite(0, ObjectId{PageId(3), 0}, v);
  ASSERT_TRUE(system_->CrashClient(0).ok());
  // Client 1 works on unrelated data while client 0 is down.
  CommittedWrite(1, ObjectId{PageId(4), 0}, v);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(4), 0}), v);
  // But data exclusively held by the crashed client blocks.
  Client& c1 = system_->client(1);
  TxnId txn = c1.Begin().value();
  EXPECT_TRUE(c1.Read(txn, ObjectId{PageId(3), 0}).status().IsWouldBlock());
  ASSERT_TRUE(c1.Commit(txn).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(3), 0}), v);
}

TEST_F(RecoveryTest, ClientCrashStructuralOpsRecovered) {
  Start("cc_structural");
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  auto oid = c0.Create(txn, PageId(5), "created before crash");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  EXPECT_EQ(ReadCommitted(1, oid.value()), "created before crash");
}

TEST_F(RecoveryTest, ClientCrashRepeatedCycleStable) {
  Start("cc_repeat");
  for (int round = 0; round < 4; ++round) {
    std::string v = Val(static_cast<char>('a' + round));
    CommittedWrite(0, ObjectId{PageId(6), 0}, v);
    ASSERT_TRUE(system_->CrashClient(0).ok());
    ASSERT_TRUE(system_->RecoverClient(0).ok());
    EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(6), 0}), v) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Server crash (Section 3.4)
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, ServerCrashCachedClientPagesRemerged) {
  Start("sc_cached");
  std::string v = Val('I');
  CommittedWrite(0, ObjectId{PageId(7), 0}, v);
  // The dirty page is still in client 0's cache; the server pool dies.
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(7), 0}), v);
}

TEST_F(RecoveryTest, ServerCrashReplacedPageRecoveredFromClientLog) {
  Start("sc_replaced");
  std::string v = Val('J');
  CommittedWrite(0, ObjectId{PageId(8), 0}, v);
  // Ship the page to the server (replacement), then lose the server pool
  // before any flush: the only copies are the disk original and client 0's
  // private log.
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(8), 0}), v);
  EXPECT_GT(system_->metrics().Get("server.coordinated_page_recoveries"), 0u);
}

TEST_F(RecoveryTest, ServerCrashMultiClientSamePageRecovered) {
  Start("sc_same_page");
  std::string v0 = Val('K');
  std::string v1 = Val('L');
  CommittedWrite(0, ObjectId{PageId(9), 0}, v0);
  CommittedWrite(1, ObjectId{PageId(9), 1}, v1);
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->client(1).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(9), 0}), v0);
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(9), 1}), v1);
}

TEST_F(RecoveryTest, ServerCrashCallbackOrderPreserved) {
  // Two clients update the SAME object in sequence (X callback between
  // them); the merged page is lost with the server. The callback log record
  // written by client 1 must ensure client 1's (newer) value wins.
  Start("sc_order");
  std::string v0 = Val('M');
  std::string v1 = Val('N');
  CommittedWrite(0, ObjectId{PageId(10), 0}, v0);
  CommittedWrite(1, ObjectId{PageId(10), 0}, v1);  // Callback: c0 ships, c1 updates.
  ASSERT_TRUE(system_->client(1).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(10), 0}), v1);
}

TEST_F(RecoveryTest, ServerCrashOrderedHandshakeBetweenRecoveringClients) {
  // Both the earlier updater (c0) and the later one (c1) have replaced the
  // page: both recover it in parallel; c1's callback record forces the
  // handshake through the server into c0's recovery (Section 3.4, step 3).
  Start("sc_handshake");
  std::string v0a = Val('O');
  std::string v0b = Val('P');
  std::string v1 = Val('Q');
  CommittedWrite(0, ObjectId{PageId(11), 0}, v0a);  // c0 updates object 0.
  CommittedWrite(0, ObjectId{PageId(11), 1}, v0b);  // c0 updates object 1.
  CommittedWrite(1, ObjectId{PageId(11), 0}, v1);   // c1 takes over object 0.
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->client(1).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(11), 0}), v1);
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(11), 1}), v0b);
}

TEST_F(RecoveryTest, ServerCrashAfterFlushUsesReplacementRecords) {
  // Updates flushed to disk before the crash must not be redone blindly:
  // Property 2 (replacement log records) tells the server which client
  // updates are already on disk.
  Start("sc_flushed");
  std::string v = Val('R');
  CommittedWrite(0, ObjectId{PageId(12), 0}, v);
  ASSERT_TRUE(system_->FlushEverything().ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(12), 0}), v);
}

TEST_F(RecoveryTest, ServerCrashWithCheckpointBoundsScan) {
  Start("sc_checkpoint");
  std::string v1 = Val('S');
  CommittedWrite(0, ObjectId{PageId(13), 0}, v1);
  ASSERT_TRUE(system_->FlushEverything().ok());
  ASSERT_TRUE(system_->server().TakeCheckpoint().ok());
  std::string v2 = Val('T');
  CommittedWrite(0, ObjectId{PageId(13), 1}, v2);
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(13), 0}), v1);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(13), 1}), v2);
}

TEST_F(RecoveryTest, UncommittedDataAtServerRolledBackAfterServerCrash) {
  // Steal: uncommitted data reaches the server, the server crashes, the
  // client (operational) later aborts -- the rollback must land correctly.
  Start("sc_steal");
  std::string v_old = Val('U');
  std::string v_new = Val('V');
  CommittedWrite(0, ObjectId{PageId(14), 0}, v_old);
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(14), 0}, v_new).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());  // Uncommitted data at server.
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  ASSERT_TRUE(c0.Abort(txn).ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(14), 0}), v_old);
}

// ---------------------------------------------------------------------------
// Complex crash (Section 3.5)
// ---------------------------------------------------------------------------

TEST_F(RecoveryTest, ComplexCrashClientAndServer) {
  Start("cx_basic");
  std::string v = Val('W');
  CommittedWrite(0, ObjectId{PageId(15), 0}, v);
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(15), 0}), v);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(15), 0}), v);
}

TEST_F(RecoveryTest, ComplexCrashUnshippedCommittedUpdate) {
  Start("cx_unshipped");
  std::string v = Val('X');
  CommittedWrite(0, ObjectId{PageId(15), 2}, v);
  // Nothing shipped: only client 0's log knows. Both crash.
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(15), 2}), v);
}

TEST_F(RecoveryTest, ComplexCrashAllClientsAndServer) {
  Start("cx_all");
  std::string v0 = Val('Y');
  std::string v1 = Val('Z');
  std::string v2 = Val('0');
  CommittedWrite(0, ObjectId{PageId(1), 0}, v0);
  CommittedWrite(1, ObjectId{PageId(1), 1}, v1);  // Same page as client 0's object.
  CommittedWrite(2, ObjectId{PageId(2), 0}, v2);
  ASSERT_TRUE(system_->client(1).ShipAllDirtyPages().ok());
  for (size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(system_->CrashClient(i).ok());
  }
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(1), 0}), v0);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(1), 1}), v1);
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(2), 0}), v2);
}

TEST_F(RecoveryTest, ComplexCrashMixedOperationalAndCrashed) {
  Start("cx_mixed");
  std::string v0 = Val('1');
  std::string v1 = Val('2');
  CommittedWrite(0, ObjectId{PageId(3), 0}, v0);
  CommittedWrite(1, ObjectId{PageId(3), 1}, v1);
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->client(1).ShipAllDirtyPages().ok());
  // Client 0 and the server die; client 1 stays up.
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(3), 0}), v0);
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(3), 1}), v1);
}

TEST_F(RecoveryTest, ComplexCrashOrderingDependencyOnCrashedClient) {
  // c1's recovery depends on crashed c0's updates (case 3 handshake hits a
  // crashed client): the server defers the page recovery until c0 restarts
  // (Section 3.5).
  Start("cx_deferred");
  std::string v0 = Val('3');
  std::string v1 = Val('4');
  CommittedWrite(0, ObjectId{PageId(4), 0}, v0);   // c0 first.
  CommittedWrite(1, ObjectId{PageId(4), 0}, v1);   // c1 takes the object over.
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->client(1).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(4), 0}), v1);
}

TEST_F(RecoveryTest, RecoverAllIdempotentWhenNothingCrashed) {
  Start("noop_recover");
  std::string v = Val('5');
  CommittedWrite(0, ObjectId{PageId(5), 0}, v);
  ASSERT_TRUE(system_->RecoverAll().ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(5), 0}), v);
}

}  // namespace
}  // namespace finelog
