// Instant restart (DESIGN.md section 18): after a server crash the restart
// opens admission as soon as membership, GLM and DCT are authoritative, and
// repairs pages lazily -- on first touch (demand-prioritized) or through the
// background sweep. These tests pin the per-page state machine:
//
//  - admission opens while pages are still pending, and a touch repairs the
//    touched page ahead of the sweep order;
//  - an armed interruption degrades the touch to WouldBlock(kRecoveringPage)
//    and re-queues the page at the front of the sweep;
//  - an armed consistency-check failure routes the page through single-page
//    repair (drop + replay from the responsible clients' logs);
//  - a second server crash mid-drain re-derives the backlog from scratch;
//  - with the feature off, a seeded run (including a mid-run server crash)
//    is byte-identical to the defaults.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace finelog {
namespace {

class InstantRestartTest : public ::testing::Test {
 protected:
  void Start(SystemConfig config) {
    auto sys = System::Create(config);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }

  SystemConfig LazyConfig(const std::string& name) {
    SystemConfig config = SmallConfig(name);
    config.instant_restart = true;
    return config;
  }

  void CommittedWrite(size_t client, ObjectId oid, const std::string& value) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.Write(txn, oid, value).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }

  std::string ReadCommitted(size_t client, ObjectId oid) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    auto value = c.Read(txn, oid);
    EXPECT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_TRUE(c.Commit(txn).ok());
    return value.ok() ? value.value() : std::string();
  }

  std::string Val(char fill) {
    return std::string(system_->config().object_size, fill);
  }

  // Six dirty pages spread over the three clients: client 0's two pages are
  // shipped to the (about to die) server pool, so their lazy repair runs
  // coordinated log replay; clients 1 and 2 keep theirs cached, so their
  // repair pulls the cached copies. Returns via out-params the values.
  void SeedSixDirtyPages(std::string values[6]) {
    for (int i = 0; i < 6; ++i) values[i] = Val(static_cast<char>('a' + i));
    CommittedWrite(0, ObjectId{PageId(1), 0}, values[0]);
    CommittedWrite(0, ObjectId{PageId(2), 0}, values[1]);
    CommittedWrite(1, ObjectId{PageId(3), 0}, values[2]);
    CommittedWrite(1, ObjectId{PageId(4), 0}, values[3]);
    CommittedWrite(2, ObjectId{PageId(5), 0}, values[4]);
    CommittedWrite(2, ObjectId{PageId(6), 0}, values[5]);
    ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  }

  void VerifySixPages(const std::string values[6], size_t reader) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(ReadCommitted(reader, ObjectId{PageId(1 + i), 0}), values[i])
          << "page " << (1 + i);
    }
  }

  std::unique_ptr<System> system_;
};

TEST_F(InstantRestartTest, AdmissionOpensBeforeFullRecovery) {
  Start(LazyConfig("ir_admission"));
  std::string values[6];
  SeedSixDirtyPages(values);

  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());

  // Admission is open with the whole backlog still pending.
  EXPECT_EQ(system_->RecoveryPagesPending(), 6u);
  EXPECT_EQ(system_->metrics().Get(Counter::kRecoveryPagesMarked), 6u);
  EXPECT_EQ(system_->metrics().Get(Counter::kRecoveryPagesPendingHighWater),
            6u);
  EXPECT_GT(system_->metrics().Get(Counter::kRecoveryTimeToFirstAdmitUs), 0u);
  // Not fully recovered yet: the terminal timestamp has not been cut.
  EXPECT_EQ(system_->metrics().Get(Counter::kRecoveryTimeToFullyRecoveredUs),
            0u);

  // First touch: a shipped-then-lost page comes back via client 0's log.
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(1), 0}), values[0]);
  EXPECT_FALSE(system_->server().PagePendingRecoveryForTest(PageId(1)));
  EXPECT_GE(system_->metrics().Get(Counter::kRecoveryDemandRepairs), 1u);
  // The touch also advanced the background sweep (batch default 1).
  EXPECT_GE(system_->metrics().Get(Counter::kRecoverySweepRepairs), 1u);
  size_t pending = system_->RecoveryPagesPending();
  EXPECT_LT(pending, 6u);
  EXPECT_GE(pending, 1u);

  // Drain the rest; the system converges to the eager-restart state.
  ASSERT_TRUE(system_->DrainRecovery().ok());
  EXPECT_EQ(system_->RecoveryPagesPending(), 0u);
  EXPECT_EQ(system_->metrics().Get(Counter::kRecoveryPagesRepaired), 6u);
  const uint64_t first =
      system_->metrics().Get(Counter::kRecoveryTimeToFirstAdmitUs);
  const uint64_t full =
      system_->metrics().Get(Counter::kRecoveryTimeToFullyRecoveredUs);
  EXPECT_GT(full, first) << "repair work must happen after admission opened";

  VerifySixPages(values, 2);
}

TEST_F(InstantRestartTest, TouchedPageIsRepairedBeforeSweepOrder) {
  Start(LazyConfig("ir_touch_order"));
  std::string values[6];
  SeedSixDirtyPages(values);

  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  ASSERT_EQ(system_->RecoveryPagesPending(), 6u);

  // Touch page 5 -- last in sweep order. Demand repair must fix it
  // immediately while earlier-ordered pages are still pending.
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(5), 0}), values[4]);
  EXPECT_FALSE(system_->server().PagePendingRecoveryForTest(PageId(5)));
  EXPECT_TRUE(system_->server().PagePendingRecoveryForTest(PageId(3)));
  EXPECT_TRUE(system_->server().PagePendingRecoveryForTest(PageId(4)));

  ASSERT_TRUE(system_->DrainRecovery().ok());
  VerifySixPages(values, 2);
}

TEST_F(InstantRestartTest, InterruptedRepairDegradesAndFrontsSweepQueue) {
  FaultInjector injector;
  SystemConfig config = LazyConfig("ir_degraded");
  config.fault_injector = &injector;
  Start(config);
  std::string values[6];
  SeedSixDirtyPages(values);

  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  ASSERT_EQ(system_->RecoveryPagesPending(), 6u);

  // Arm a one-shot interruption of the next lazy repair: the touch must
  // degrade to a distinguishable WouldBlock instead of stalling.
  injector.ResetCounts();
  injector.ArmPoint("recovery.server.lazy_repair", 1, FaultAction::kError,
                    0.5);
  Client& c1 = system_->client(1);
  TxnId txn = c1.Begin().value();
  auto blocked = c1.Read(txn, ObjectId{PageId(5), 0});
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsRecoveringPage())
      << blocked.status().ToString();
  ASSERT_TRUE(c1.Abort(txn).ok());
  ASSERT_TRUE(injector.triggered());
  EXPECT_GE(system_->metrics().Get(Counter::kRecoveryDegradedResponses), 1u);
  EXPECT_TRUE(system_->server().PagePendingRecoveryForTest(PageId(5)));

  // The interrupted page jumped the sweep queue: a budget-1 sweep repairs it
  // before any of the pages ahead of it in map order.
  ASSERT_TRUE(system_->DrainRecovery(1).ok());
  EXPECT_FALSE(system_->server().PagePendingRecoveryForTest(PageId(5)));
  EXPECT_EQ(system_->RecoveryPagesPending(), 5u);

  // And the degraded request succeeds verbatim on retry.
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(5), 0}), values[4]);
  ASSERT_TRUE(system_->DrainRecovery().ok());
  VerifySixPages(values, 2);
}

TEST_F(InstantRestartTest, FailedConsistencyCheckTriggersSinglePageRepair) {
  FaultInjector injector;
  SystemConfig config = LazyConfig("ir_page_check");
  config.fault_injector = &injector;
  Start(config);
  std::string values[6];
  SeedSixDirtyPages(values);

  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  ASSERT_EQ(system_->RecoveryPagesPending(), 6u);

  // The first consistency check fails (one-shot): the page must be rebuilt
  // from its durable base plus the responsible clients' logs, transparently
  // to the request that touched it.
  injector.ResetCounts();
  injector.ArmPoint("recovery.server.page_check", 1, FaultAction::kError, 0.5);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(1), 0}), values[0]);
  ASSERT_TRUE(injector.triggered());
  EXPECT_EQ(system_->metrics().Get(Counter::kRecoveryFailedChecks), 1u);
  EXPECT_EQ(system_->metrics().Get(Counter::kRecoverySinglePageRepairs), 1u);
  EXPECT_FALSE(system_->server().PagePendingRecoveryForTest(PageId(1)));

  ASSERT_TRUE(system_->DrainRecovery().ok());
  VerifySixPages(values, 2);
}

TEST_F(InstantRestartTest, SecondServerCrashMidDrainRederivesBacklog) {
  Start(LazyConfig("ir_second_crash"));
  std::string values[6];
  SeedSixDirtyPages(values);

  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  ASSERT_EQ(system_->RecoveryPagesPending(), 6u);

  // Partially drain, then lose the server again with pages still pending.
  ASSERT_TRUE(system_->DrainRecovery(2).ok());
  ASSERT_GT(system_->RecoveryPagesPending(), 0u);
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());

  // The second restart re-derived its own backlog (whatever the first drain
  // already merged and flushed no longer needs repair).
  ASSERT_TRUE(system_->DrainRecovery().ok());
  EXPECT_EQ(system_->RecoveryPagesPending(), 0u);
  VerifySixPages(values, 2);
}

TEST_F(InstantRestartTest, ComplexCrashDefersReplayUntilClientRestart) {
  Start(LazyConfig("ir_complex"));
  std::string v = Val('Z');
  CommittedWrite(0, ObjectId{PageId(7), 0}, v);
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());

  // Complex crash: the responsible client dies with the server. RecoverAll
  // restarts the server lazily, then client 0; its replayed state must be
  // visible to everyone once recovery completes.
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->CrashServer().ok());
  ASSERT_TRUE(system_->RecoverAll().ok());
  ASSERT_TRUE(system_->DrainRecovery().ok());
  EXPECT_EQ(system_->RecoveryPagesPending(), 0u);
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(7), 0}), v);
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(7), 0}), v);
}

// ---------------------------------------------------------------------------
// Defaults fingerprint: feature off means byte-identical behavior.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  uint64_t total_messages = 0;
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  uint64_t sim_us = 0;
  uint64_t commits = 0;
  std::string log_bytes;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Seeded workload with a mid-run server crash + eager recovery, so the
// fingerprint covers the exact code paths instant restart rewires.
RunFingerprint RunSeededWorkload(const SystemConfig& config) {
  auto system = System::Create(config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 8;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 2026;
  Workload workload(system.get(), &oracle, options);
  auto mid = workload.RunSteps(20);
  EXPECT_TRUE(mid.ok()) << mid.status().ToString();
  EXPECT_TRUE(system->CrashServer().ok());
  EXPECT_TRUE(system->RecoverAll().ok());
  EXPECT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  // The eager path must never touch the lazy machinery.
  EXPECT_EQ(system->RecoveryPagesPending(), 0u);
  EXPECT_EQ(system->metrics().Get(Counter::kRecoveryPagesMarked), 0u);
  EXPECT_EQ(system->metrics().Get(Counter::kRecoveryDemandRepairs), 0u);

  RunFingerprint fp;
  fp.total_messages = system->channel().total_messages();
  fp.total_items = system->channel().total_items();
  fp.total_bytes = system->channel().total_bytes();
  fp.sim_us = system->clock().now_us();
  fp.commits = system->client(0).commits();
  fp.log_bytes = ReadFile(config.dir + "/client0.log");
  EXPECT_FALSE(fp.log_bytes.empty());
  return fp;
}

TEST(InstantRestartFingerprintTest, DefaultsAreByteIdenticalWithFeatureOff) {
  RunFingerprint base = RunSeededWorkload(SmallConfig("ir_fp_base"));

  // A config that has heard of every new knob -- but with instant_restart
  // still off -- must not change one byte or one simulated microsecond.
  // recovery_sweep_batch is dead until instant_restart arms the backlog, and
  // rec_plane_priority is dead while network faults are off.
  SystemConfig tuned = SmallConfig("ir_fp_tuned");
  tuned.instant_restart = false;
  tuned.recovery_sweep_batch = 9;
  tuned.net_faults.rec_plane_priority = 5;
  RunFingerprint with_knobs = RunSeededWorkload(tuned);

  EXPECT_EQ(base, with_knobs);
}

}  // namespace
}  // namespace finelog
