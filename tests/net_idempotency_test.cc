// Idempotency of every endpoint under unreliable delivery (DESIGN.md
// section 13).
//
// The broad tests turn one fault knob all the way up (dup_rate = 1.0,
// reorder_rate = 1.0, delay_rate = 1.0) and run the standard seeded
// workload: every request/reply exchange and every one-way notification --
// all server endpoints, the client callback handler, and the flush-notify
// handler -- is then delivered twice (or followed by a stale out-of-order
// copy), and the run must end in exactly the state of a fault-free twin.
//
// The targeted tests arm one-shot net.<side>.<endpoint>.<fault> fail points
// for fully deterministic single-fault scenarios: a duplicated request
// executes its body once and resends the cached reply; a dropped reply is
// recovered through retry + dedup without re-executing the body; a request
// that never arrives degrades to a clean kWouldBlock; a restarted client's
// epoch fences ghosts addressed to its previous incarnation.

#include <gtest/gtest.h>

#include <string>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace finelog {
namespace {

constexpr uint64_t kWorkloadSeed = 4242;

// Small caches force ships, evictions and flush notifications, so the
// workload crosses every endpoint family.
SystemConfig NetConfig(const std::string& name, const NetFaultConfig& net) {
  SystemConfig config = SmallConfig(name);
  config.client_cache_pages = 4;
  config.server_cache_pages = 8;
  config.net_faults = net;
  return config;
}

WorkloadOptions NetWorkload() {
  WorkloadOptions options;
  options.txns_per_client = 6;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = kWorkloadSeed;
  return options;
}

Result<std::string> ProbeRead(System* system, ObjectId oid) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto txn = system->client(0).Begin();
    if (!txn.ok()) return txn.status();
    auto got = system->client(0).Read(txn.value(), oid);
    if (got.ok()) {
      FINELOG_RETURN_IF_ERROR(system->client(0).Commit(txn.value()));
      return got;
    }
    FINELOG_RETURN_IF_ERROR(system->client(0).Abort(txn.value()));
    if (!got.status().IsWouldBlock()) return got.status();
  }
  return Status::Internal("probe read never granted");
}

// Every preloaded object's committed value, concatenated. Run on a healed,
// quiescent system; equality of digests is equality of database state.
std::string StateDigest(System* system) {
  std::string out;
  for (uint32_t p = 0; p < system->config().preloaded_pages; ++p) {
    for (uint32_t s = 0; s < system->config().objects_per_page; ++s) {
      auto got =
          ProbeRead(system, ObjectId{PageId(p), static_cast<SlotId>(s)});
      EXPECT_TRUE(got.ok()) << got.status().ToString();
      if (!got.ok()) return "<probe failed>";
      out += got.value();
      out += '|';
    }
  }
  return out;
}

struct TwinRun {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t ops = 0;
  uint64_t messages = 0;
  uint64_t sim_us = 0;
  std::string digest;
};

// Runs the standard workload under `net`, heals the network, quiesces,
// verifies against the oracle and digests the final state.
TwinRun RunUnder(const std::string& name, const NetFaultConfig& net) {
  TwinRun out;
  auto system = System::Create(NetConfig(name, net)).value();
  Oracle oracle;
  Workload workload(system.get(), &oracle, NetWorkload());
  Status st = workload.Run();
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  out.commits = workload.stats().commits;
  out.aborts = workload.stats().aborts;
  out.ops = workload.stats().ops;
  out.messages = system->channel().total_messages();
  out.sim_us = system->clock().now_us();
  system->rpc().faults() = NetFaultConfig{};  // Heal before verification.
  EXPECT_TRUE(system->FlushEverything().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok()) << mismatches.status().ToString();
  EXPECT_EQ(mismatches.value(), 0u);
  out.digest = StateDigest(system.get());
  return out;
}

// ---------------------------------------------------------------------------
// Broad sweeps: one knob at 1.0 hits every endpoint and handler.
// ---------------------------------------------------------------------------

// Every message delivered twice: request dups are absorbed by the sequence
// number shield (body runs once, cached reply resent), one-way dups run the
// handler twice and its own idempotency absorbs them. The run must be
// byte-identical to the clean twin in results -- only message counts grow.
TEST(NetIdempotencyTest, DuplicateEveryMessageMatchesCleanRun) {
  TwinRun clean = RunUnder("net_dup_clean", NetFaultConfig{});

  NetFaultConfig net;
  net.dup_rate = 1.0;
  net.seed = 7;
  TwinRun dup = RunUnder("net_dup_faulty", net);

  EXPECT_EQ(dup.commits, clean.commits);
  EXPECT_EQ(dup.aborts, clean.aborts);
  EXPECT_EQ(dup.ops, clean.ops);
  EXPECT_EQ(dup.digest, clean.digest);
  EXPECT_GT(dup.messages, clean.messages);
}

// Every message additionally surfaces later as a stale out-of-order copy.
// Ghost deliveries are fenced by sequence number and never re-execute a
// body, so results again match the clean twin exactly.
TEST(NetIdempotencyTest, ReorderEveryMessageMatchesCleanRun) {
  TwinRun clean = RunUnder("net_reorder_clean", NetFaultConfig{});

  NetFaultConfig net;
  net.reorder_rate = 1.0;
  net.seed = 13;
  TwinRun reorder = RunUnder("net_reorder_faulty", net);

  EXPECT_EQ(reorder.commits, clean.commits);
  EXPECT_EQ(reorder.aborts, clean.aborts);
  EXPECT_EQ(reorder.digest, clean.digest);
  EXPECT_GT(reorder.messages, clean.messages);
}

// Delays cost only simulated time: results identical, clock strictly later.
TEST(NetIdempotencyTest, DelayEveryMessageOnlyCostsTime) {
  TwinRun clean = RunUnder("net_delay_clean", NetFaultConfig{});

  NetFaultConfig net;
  net.delay_rate = 1.0;
  net.delay_us = 2000;
  net.seed = 17;
  TwinRun delayed = RunUnder("net_delay_faulty", net);

  EXPECT_EQ(delayed.commits, clean.commits);
  EXPECT_EQ(delayed.digest, clean.digest);
  EXPECT_GT(delayed.sim_us, clean.sim_us);
}

// A lossy (but not hopeless) network: retries and the dedup cache must carry
// every exchange to exactly-once completion, with zero oracle divergence.
TEST(NetIdempotencyTest, DropsRetryToExactlyOnce) {
  NetFaultConfig net;
  net.drop_rate = 0.25;
  net.seed = 11;
  auto system = System::Create(NetConfig("net_drop", net)).value();
  Oracle oracle;
  Workload workload(system.get(), &oracle, NetWorkload());
  Status st = workload.Run();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  EXPECT_GT(system->metrics().Get(Counter::kNetDrops), 0u);
  EXPECT_GT(system->metrics().Get(Counter::kNetRpcTimeouts), 0u);
  EXPECT_GT(system->metrics().Get(Counter::kNetRpcRetries), 0u);

  system->rpc().faults() = NetFaultConfig{};
  ASSERT_TRUE(system->FlushEverything().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok()) << mismatches.status().ToString();
  EXPECT_EQ(mismatches.value(), 0u);
}

// ---------------------------------------------------------------------------
// Targeted one-shot fail points: single-fault determinism.
// ---------------------------------------------------------------------------

// One duplicated lock request: the body runs once, the duplicate is a dedup
// hit whose cached reply is resent. Exactly two extra messages (the request
// copy and the resent reply) and an identical final state.
TEST(NetIdempotencyTest, DuplicateRequestExecutesBodyOnce) {
  auto script = [](System* system) {
    Client& c = system->client(0);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(
        c.Write(txn, ObjectId{PageId(1), 0},
                std::string(system->config().object_size, 'x')).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  };

  SystemConfig clean_config = NetConfig("net_point_dup_clean", NetFaultConfig{});
  auto clean = System::Create(clean_config).value();
  script(clean.get());

  FaultInjector injector;
  NetFaultConfig net;
  net.use_fail_points = true;
  SystemConfig config = NetConfig("net_point_dup", net);
  config.fault_injector = &injector;
  auto system = System::Create(config).value();
  injector.ResetCounts();
  injector.ArmPoint("net.client.lock_object.dup", 1, FaultAction::kError, 0.5);
  script(system.get());
  ASSERT_TRUE(injector.triggered());

  EXPECT_EQ(system->metrics().Get(Counter::kNetDups), 1u);
  EXPECT_EQ(system->metrics().Get(Counter::kNetDedupHits), 1u);
  EXPECT_EQ(system->channel().total_messages(),
            clean->channel().total_messages() + 2);
  EXPECT_EQ(StateDigest(system.get()), StateDigest(clean.get()));
}

// One dropped lock reply: the caller times out and retries, the server sees
// an already-executed sequence number, and the cached reply completes the
// exchange -- the grant is not re-executed and no state diverges.
TEST(NetIdempotencyTest, ReplyDropRecoversViaDedupCache) {
  FaultInjector injector;
  NetFaultConfig net;
  net.use_fail_points = true;
  SystemConfig config = NetConfig("net_point_reply_drop", net);
  config.fault_injector = &injector;
  auto system = System::Create(config).value();
  injector.ResetCounts();
  injector.ArmPoint("net.server.lock_object.drop", 1, FaultAction::kError, 0.5);

  uint64_t before_us = system->clock().now_us();
  Client& c = system->client(0);
  TxnId txn = c.Begin().value();
  std::string value(system->config().object_size, 'y');
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(2), 1}, value).ok());
  ASSERT_TRUE(c.Commit(txn).ok());
  ASSERT_TRUE(injector.triggered());

  EXPECT_EQ(system->metrics().Get(Counter::kNetDrops), 1u);
  EXPECT_EQ(system->metrics().Get(Counter::kNetRpcTimeouts), 1u);
  EXPECT_EQ(system->metrics().Get(Counter::kNetRpcRetries), 1u);
  EXPECT_EQ(system->metrics().Get(Counter::kNetDedupHits), 1u);
  // The lost reply cost at least one timeout of simulated time.
  EXPECT_GE(system->clock().now_us() - before_us,
            system->config().net_faults.rpc_timeout_us);

  auto got = ProbeRead(system.get(), ObjectId{PageId(2), 1});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), value);
}

// A request that never gets through exhausts its retries and surfaces a
// clean kWouldBlock -- the transaction can abort or retry; nothing wedges.
// After healing, the same operation succeeds.
TEST(NetIdempotencyTest, ExhaustedRetriesDegradeToCleanWouldBlock) {
  NetFaultConfig net;
  net.drop_rate = 1.0;
  net.max_attempts = 3;
  net.seed = 23;
  auto system = System::Create(NetConfig("net_exhaust", net)).value();

  Client& c = system->client(0);
  TxnId txn = c.Begin().value();
  std::string value(system->config().object_size, 'z');
  Status st = c.Write(txn, ObjectId{PageId(3), 2}, value);
  EXPECT_TRUE(st.IsWouldBlock()) << st.ToString();
  EXPECT_GE(system->metrics().Get(Counter::kNetRpcExhausted), 1u);

  system->rpc().faults() = NetFaultConfig{};
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(3), 2}, value).ok());
  ASSERT_TRUE(c.Commit(txn).ok());
  auto got = ProbeRead(system.get(), ObjectId{PageId(3), 2});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), value);
}

// Ghost copies addressed to a client that crashed and restarted carry the
// previous session epoch and must be fenced, not mistaken for live traffic.
TEST(NetIdempotencyTest, EpochBumpFencesPreCrashGhosts) {
  NetFaultConfig net;
  net.reorder_rate = 1.0;
  net.seed = 29;
  auto system = System::Create(NetConfig("net_epoch", net)).value();

  // A burst of client-0 traffic leaves fresh ghosts in flight.
  Client& c0 = system->client(0);
  TxnId txn = c0.Begin().value();
  for (SlotId s = 0; s < 4; ++s) {
    ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(4), s},
                         std::string(system->config().object_size, 'g'))
                    .ok());
  }
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_GT(system->rpc().ghost_count(), 0u);

  ASSERT_TRUE(system->CrashClient(0).ok());
  ASSERT_TRUE(system->RecoverClient(0).ok());
  EXPECT_EQ(system->rpc().session_epoch(RpcDir::kClientToServer, ClientId(0)),
            1u);
  EXPECT_EQ(system->rpc().session_epoch(RpcDir::kServerToClient, ClientId(0)),
            1u);

  // More traffic pumps the in-flight ghosts out; the pre-crash ones are
  // epoch-fenced.
  Client& c1 = system->client(1);
  TxnId txn1 = c1.Begin().value();
  for (SlotId s = 0; s < 4; ++s) {
    ASSERT_TRUE(c1.Write(txn1, ObjectId{PageId(5), s},
                         std::string(system->config().object_size, 'h'))
                    .ok());
  }
  ASSERT_TRUE(c1.Commit(txn1).ok());
  EXPECT_GT(system->metrics().Get(Counter::kNetStaleEpochFenced), 0u);
  EXPECT_GT(system->metrics().Get(Counter::kNetEpochBumps), 0u);
}

}  // namespace
}  // namespace finelog
