// Chaos sweep: the standard multi-client workload under a matrix of wire
// fault mixes x seeds, with oracle verification that committed state
// survives, durable page PSNs stay monotone across a full crash/recovery,
// and the log prefix that recovery replays agrees with every committed
// update (DESIGN.md section 13).
//
// Three layers:
//   1. A defaults fingerprint: with every network-fault knob off, a seeded
//      run is byte-identical (message counts, simulated clock, raw client
//      log bytes) to a run that never heard of NetFaultConfig.
//   2. The matrix: 3 fault mixes x 8 net seeds; each run must complete,
//      survive a full crash with faults still live on the wire, recover,
//      and verify with zero oracle divergence and non-decreasing durable
//      PSNs. Per-seed summary lines go to stdout and, when the
//      FINELOG_CHAOS_SUMMARY environment variable names a file, into that
//      file (the CI chaos-smoke job uploads it as an artifact).
//   3. Combined wire + disk faults: the PR 1 crash-point sweep re-run with
//      a lossy network underneath -- a one-shot disk fault fires mid-run,
//      every node crashes, and recovery + resume + verify must still hold.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace finelog {
namespace {

constexpr uint64_t kWorkloadSeed = 4242;

SystemConfig ChaosConfig(const std::string& dir, const NetFaultConfig& net,
                         FaultInjector* injector) {
  SystemConfig config;
  config.dir = dir;
  config.num_clients = 3;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 16;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 4;
  config.server_cache_pages = 8;
  config.net_faults = net;
  config.fault_injector = injector;
  return config;
}

WorkloadOptions ChaosOptions() {
  WorkloadOptions options;
  options.txns_per_client = 6;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = kWorkloadSeed;
  return options;
}

Result<std::string> ProbeRead(System* system, ObjectId oid) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto txn = system->client(0).Begin();
    if (!txn.ok()) return txn.status();
    auto got = system->client(0).Read(txn.value(), oid);
    if (got.ok()) {
      FINELOG_RETURN_IF_ERROR(system->client(0).Commit(txn.value()));
      return got;
    }
    FINELOG_RETURN_IF_ERROR(system->client(0).Abort(txn.value()));
    if (!got.status().IsWouldBlock()) return got.status();
  }
  return Status::Internal("probe read never granted");
}

void AppendSummary(const std::string& line) {
  std::printf("[chaos] %s\n", line.c_str());
  const char* path = std::getenv("FINELOG_CHAOS_SUMMARY");
  if (path == nullptr || path[0] == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << line << '\n';
}

// ---------------------------------------------------------------------------
// Layer 1: defaults fingerprint.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  uint64_t total_messages = 0;
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  uint64_t sim_us = 0;
  uint64_t commits = 0;
  std::string log_bytes;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RunFingerprint RunSeededWorkload(const SystemConfig& config) {
  auto system = System::Create(config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 8;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 99;
  Workload workload(system.get(), &oracle, options);
  EXPECT_TRUE(workload.Run().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  RunFingerprint fp;
  fp.total_messages = system->channel().total_messages();
  fp.total_items = system->channel().total_items();
  fp.total_bytes = system->channel().total_bytes();
  fp.sim_us = system->clock().now_us();
  fp.commits = system->client(0).commits();
  fp.log_bytes = ReadFile(config.dir + "/client0.log");
  EXPECT_FALSE(fp.log_bytes.empty());
  return fp;
}

// With every fault rate at zero and fail points off, the delivery layer and
// RPC chokepoint must be invisible: same message counts, same simulated
// clock, same log bytes -- even when the auxiliary knobs (timeout, retry
// budget, dedup cache size, seed) are set to unusual values.
TEST(ChaosNetTest, DefaultsFingerprintIsByteIdentical) {
  SystemConfig defaults = SmallConfig("chaos_fp_default");
  RunFingerprint base = RunSeededWorkload(defaults);

  SystemConfig tuned = SmallConfig("chaos_fp_tuned");
  tuned.net_faults.rpc_timeout_us = 12345;
  tuned.net_faults.max_attempts = 2;
  tuned.net_faults.backoff_base_us = 7;
  tuned.net_faults.dedup_cache_size = 1;
  tuned.net_faults.seed = 987654321;
  RunFingerprint off = RunSeededWorkload(tuned);

  EXPECT_EQ(base, off);
}

// ---------------------------------------------------------------------------
// Layer 2: the fault-mix x seed matrix.
// ---------------------------------------------------------------------------

struct FaultMix {
  const char* name;
  double drop, dup, reorder, delay;
};

// One cell of the matrix. Returns an empty string on success, a description
// of the first divergence otherwise.
std::string RunMatrixCell(const FaultMix& mix, uint64_t net_seed,
                          uint64_t* commits, uint64_t* drops) {
  NetFaultConfig net;
  net.drop_rate = mix.drop;
  net.dup_rate = mix.dup;
  net.reorder_rate = mix.reorder;
  net.delay_rate = mix.delay;
  net.seed = net_seed;
  SystemConfig config = ChaosConfig(
      MakeTempDir("chaos_" + std::string(mix.name) + std::to_string(net_seed)),
      net, nullptr);
  auto sys_or = System::Create(config);
  if (!sys_or.ok()) return "create: " + sys_or.status().ToString();
  auto system = std::move(sys_or).value();

  Oracle oracle;
  Workload workload(system.get(), &oracle, ChaosOptions());
  if (Status st = workload.Run(); !st.ok()) return "run: " + st.ToString();
  if (workload.stats().read_mismatches > 0) {
    return std::to_string(workload.stats().read_mismatches) + " stale reads";
  }
  *commits = workload.stats().commits;
  *drops = system->metrics().Get(Counter::kNetDrops);

  // Crash every node with the faults still live on the wire, then recover.
  // Recovery traffic rides the exempt recovery plane (fault_recovery off).
  std::vector<uint64_t> before = ReadDurablePsns(config);
  for (size_t i = 0; i < system->num_clients(); ++i) {
    if (Status st = system->CrashClient(i); !st.ok()) {
      return "crash client: " + st.ToString();
    }
    oracle.CrashClient(static_cast<ClientId>(i));
  }
  if (Status st = system->CrashServer(); !st.ok()) {
    return "crash server: " + st.ToString();
  }
  if (Status st = system->RecoverAll(); !st.ok()) {
    return "recovery: " + st.ToString();
  }

  // Heal before verification: Oracle::Verify treats kWouldBlock as "skip",
  // so reads must not be lossy while it runs.
  system->rpc().faults() = NetFaultConfig{};
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "flush: " + st.ToString();
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  if (!mismatches.ok()) return "verify: " + mismatches.status().ToString();
  if (mismatches.value() != 0) {
    return std::to_string(mismatches.value()) + " oracle mismatches";
  }

  std::vector<uint64_t> after = ReadDurablePsns(config);
  for (size_t p = 0; p < before.size(); ++p) {
    if (after[p] < before[p]) {
      return "page " + std::to_string(p) + " durable PSN went backwards: " +
             std::to_string(before[p]) + " -> " + std::to_string(after[p]);
    }
  }
  return "";
}

// The tentpole matrix: every mix x seed cell completes, survives a crash
// with faults live, recovers, and verifies with zero divergence.
TEST(ChaosNetTest, MatrixPreservesInvariants) {
  constexpr FaultMix kMixes[] = {
      {"light", 0.02, 0.02, 0.02, 0.02},
      {"drop_heavy", 0.10, 0.05, 0.05, 0.0},
      {"chaos", 0.15, 0.10, 0.10, 0.10},
  };
  constexpr uint64_t kNetSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};

  uint64_t total_commits = 0;
  uint64_t total_drops = 0;
  for (const FaultMix& mix : kMixes) {
    for (uint64_t seed : kNetSeeds) {
      SCOPED_TRACE(std::string(mix.name) + " net_seed=" + std::to_string(seed));
      uint64_t commits = 0, drops = 0;
      std::string failure = RunMatrixCell(mix, seed, &commits, &drops);
      EXPECT_EQ(failure, "");
      total_commits += commits;
      total_drops += drops;
      std::ostringstream line;
      line << "mix=" << mix.name << " net_seed=" << seed
           << " commits=" << commits << " drops=" << drops
           << " result=" << (failure.empty() ? "ok" : failure);
      AppendSummary(line.str());
    }
  }
  // The matrix must actually have exercised the fault paths.
  EXPECT_GT(total_commits, 0u);
  EXPECT_GT(total_drops, 0u);
}

// ---------------------------------------------------------------------------
// Layer 3: combined wire faults + disk crash points.
// ---------------------------------------------------------------------------

// A lossy-but-survivable mix for the combined runs. Retries change the
// message schedule, so the enumeration pass below runs under the *same*
// mix -- hit k indexes the same disk operation in both passes.
NetFaultConfig CombinedMix() {
  NetFaultConfig net;
  net.drop_rate = 0.05;
  net.dup_rate = 0.02;
  net.reorder_rate = 0.02;
  net.seed = 31;
  return net;
}

uint64_t EnumerateHitsUnderFaults(FaultInjector* injector,
                                  const std::string& dir_tag) {
  injector->Disarm();
  auto system = System::Create(ChaosConfig(MakeTempDir(dir_tag), CombinedMix(),
                                           injector))
                    .value();
  injector->ResetCounts();
  Oracle oracle;
  Workload workload(system.get(), &oracle, ChaosOptions());
  bool complete = false;
  while (!complete) {
    auto done = workload.RunSteps(1);
    EXPECT_TRUE(done.ok()) << done.status().ToString();
    if (!done.ok()) break;
    complete = done.value();
  }
  return injector->total_hits();
}

// One combined run: wire faults live the whole time, a one-shot disk fault
// armed at global hit `k`. Mirrors crash_sweep_test's RunCrashPoint with the
// network healed only for the final verification.
std::string RunCombinedCrashPoint(FaultInjector* injector, uint64_t k,
                                  FaultAction action, double cut) {
  injector->Disarm();
  SystemConfig config = ChaosConfig(
      MakeTempDir("chaos_combined_" + std::to_string(k)), CombinedMix(),
      injector);
  auto sys_or = System::Create(config);
  if (!sys_or.ok()) return "create: " + sys_or.status().ToString();
  auto system = std::move(sys_or).value();
  injector->ResetCounts();
  injector->ArmGlobalHit(k, action, cut);

  Oracle oracle;
  Workload workload(system.get(), &oracle, ChaosOptions());
  std::optional<TxnId> in_doubt;
  bool complete = false;
  while (!injector->triggered() && !complete) {
    auto done = workload.RunSteps(1);
    if (!done.ok()) {
      if (!injector->triggered()) {
        return "uninjected workload error: " + done.status().ToString();
      }
      const auto& fail = workload.last_failure();
      if (fail.has_value() && fail->during_commit) {
        oracle.MarkInDoubt(fail->txn);
        in_doubt = fail->txn;
      }
      break;
    }
    complete = done.value();
  }
  if (!injector->triggered()) {
    return "fault at hit " + std::to_string(k) + " never fired";
  }

  for (size_t i = 0; i < system->num_clients(); ++i) {
    if (Status st = system->CrashClient(i); !st.ok()) {
      return "crash client: " + st.ToString();
    }
    oracle.CrashClient(static_cast<ClientId>(i));
    workload.OnClientCrashed(i);
  }
  if (Status st = system->CrashServer(); !st.ok()) {
    return "crash server: " + st.ToString();
  }
  if (Status st = system->RecoverAll(); !st.ok()) {
    return "recovery: " + st.ToString();
  }
  for (size_t i = 0; i < system->num_clients(); ++i) {
    workload.OnClientRecovered(i);
  }

  if (in_doubt.has_value() && oracle.InDoubt(*in_doubt) != nullptr) {
    const auto* writes = oracle.InDoubt(*in_doubt);
    bool committed = false;
    for (const auto& [oid, value] : *writes) {
      auto prior = oracle.CommittedValue(oid);
      std::optional<std::string> if_aborted =
          prior.has_value()
              ? *prior
              : std::optional<std::string>(
                    std::string(config.object_size, '\0'));
      if (value == if_aborted) continue;
      auto got = ProbeRead(system.get(), oid);
      if (!got.ok()) return "in-doubt probe: " + got.status().ToString();
      committed = value.has_value() && got.value() == *value;
      break;
    }
    oracle.ResolveInDoubt(*in_doubt, committed);
  }

  // Resume under the same lossy network: the recovered system must absorb
  // retries, dups and ghosts exactly like the pre-crash one.
  if (Status st = workload.Run(); !st.ok()) {
    return "resume: " + st.ToString();
  }
  if (workload.stats().read_mismatches > 0) {
    return std::to_string(workload.stats().read_mismatches) +
           " stale reads after recovery";
  }

  system->rpc().faults() = NetFaultConfig{};  // Heal for verification only.
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "flush: " + st.ToString();
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  if (!mismatches.ok()) return "verify: " + mismatches.status().ToString();
  if (mismatches.value() != 0) {
    return std::to_string(mismatches.value()) + " oracle mismatches";
  }
  return "";
}

TEST(ChaosNetTest, CombinedWireFaultAndCrashPointRecovers) {
  FaultInjector injector;
  uint64_t m = EnumerateHitsUnderFaults(&injector, "chaos_combined_enum");
  ASSERT_GE(m, 10u) << "workload too small to sweep";

  struct Case {
    uint64_t k;
    FaultAction action;
    double cut;
  };
  const Case kCases[] = {
      {std::max<uint64_t>(1, m / 4), FaultAction::kTornWrite, 0.5},
      {std::max<uint64_t>(1, m / 2), FaultAction::kError, 0.5},
      {std::max<uint64_t>(1, 3 * m / 4), FaultAction::kShortWrite, 0.25},
  };
  for (const Case& cs : kCases) {
    SCOPED_TRACE("k=" + std::to_string(cs.k) + " of " + std::to_string(m) +
                 " action=" + std::string(FaultActionName(cs.action)));
    std::string failure =
        RunCombinedCrashPoint(&injector, cs.k, cs.action, cs.cut);
    EXPECT_EQ(failure, "");
    AppendSummary("combined k=" + std::to_string(cs.k) + "/" +
                  std::to_string(m) +
                  " action=" + std::string(FaultActionName(cs.action)) +
                  " result=" + (failure.empty() ? "ok" : failure));
  }
}

}  // namespace
}  // namespace finelog
