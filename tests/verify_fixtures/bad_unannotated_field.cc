// Seeded-bad fixture for the finelog-verify `shared-state-annotations` rule:
// every non-static data member of a FINELOG_SHARED_STATE_CLASS must carry
// FINELOG_GUARDED_BY / FINELOG_PT_GUARDED_BY or an explicit
// FINELOG_UNGUARDED("reason"); only the SimMutex capability member (mu_) is
// exempt.
//
// Parsed (not compiled) by `verify_self_test` as an isolated mini-program.
#include "common/annotations.h"

namespace finelog {

class FINELOG_SHARED_STATE_CLASS LeaseCache {
 public:
  LeaseCache() = default;

 private:
  SimMutex mu_;
  std::map<ClientId, uint64_t> deadlines_ FINELOG_GUARDED_BY(mu_);
  // BAD: shared field with neither a guard nor an UNGUARDED justification;
  // the real-clock mode would race on it invisibly.
  std::set<ClientId> presumed_dead_;
};

}  // namespace finelog
