// Seeded-bad fixture for the finelog-verify `wal-before-mutate` rule: a
// function that calls a FINELOG_MUTATES_PAGE primitive must append a log
// record covering the mutation in its own body, push the obligation to its
// callers by being FINELOG_MUTATES_PAGE itself, or carry an explicit
// FINELOG_REPLAY_PATH("reason").
//
// Parsed (not compiled) by `verify_self_test` as an isolated mini-program:
// it declares its own mutator root, mirroring storage/page.h.
#include "common/annotations.h"

namespace finelog {

class Page {
 public:
  FINELOG_MUTATES_PAGE Status WriteObject(SlotId slot, Slice data);
};

// BAD: mutates page contents with no covering log append and no
// justification annotation. If this committed and the client crashed before
// some later force, the update would be unrecoverable.
Status UnloggedPoke(Page& page, SlotId slot, Slice data) {
  return page.WriteObject(slot, data);
}

}  // namespace finelog
