// Seeded-bad fixture for the finelog-verify `rpc-chokepoint` rule (the AST
// successor of the retired finelog_lint regex rule): message accounting goes
// through Rpc::Call / Rpc::Send; direct Channel::Count / CountBatch calls
// outside src/net/ bypass wire faults, retries, dedup and session fencing.
//
// Parsed (not compiled) by `verify_self_test` as if it lived in src/common/.
#include "net/channel.h"

namespace finelog {

// BAD: both calls below reach the channel without going through Rpc.
void BadDirectCount(Channel* channel) {
  channel->Count(MessageType::kLockRequest, 32);
  channel->CountBatch(MessageType::kLockReply, 4, 128);
}

}  // namespace finelog
