// Seeded-bad fixture for the finelog-verify `recovery-guard` rule: any
// non-Rec ServerEndpoint method that reaches the buffer pool must call
// EnsurePageRecovered() first (and only after LivenessAdmission()), or a
// request admitted right after an instant restart could be served from a
// page whose lazy repair has not run yet (DESIGN.md section 18).
//
// Parsed (not compiled) by `verify_self_test` as an isolated mini-program:
// it carries its own miniature ServerEndpoint/Server pair so it cannot
// collide with the real tree's classes.
#include "common/annotations.h"

namespace finelog {

class ServerEndpoint {
 public:
  virtual ~ServerEndpoint() = default;
  virtual Status FetchPage(ClientId client, PageId pid) = 0;
};

class Server : public ServerEndpoint {
 public:
  Status FetchPage(ClientId client, PageId pid) override;

 private:
  Status LivenessAdmission(ClientId client);
  Status EnsurePageRecovered(PageId pid);
  Status ReadFrame(PageId pid);
  BufferPool pool_;
};

// BAD: admission runs, but the page is pulled out of the pool (via the
// ReadFrame helper -- the rule expands helpers interprocedurally) without
// the per-page recovery guard. After an instant restart this hands out a
// stale pre-crash image while the page still owes CallBack_P collection
// and log replay.
Status Server::FetchPage(ClientId client, PageId pid) {
  FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
  return ReadFrame(pid);
}

Status Server::ReadFrame(PageId pid) {
  BufferPool::Frame* frame = pool_.Get(pid);
  return SendFrame(frame);
}

}  // namespace finelog
