// Seeded-bad fixture for the finelog-verify `admission-before-state` rule:
// every non-Rec ServerEndpoint method must reach LivenessAdmission() before
// touching protected server state, or a presumed-dead zombie could mutate
// lock/DCT/log state it no longer owns.
//
// Parsed (not compiled) by `verify_self_test` as an isolated mini-program:
// it carries its own miniature ServerEndpoint/Server pair so it cannot
// collide with the real tree's classes.
#include "common/annotations.h"

namespace finelog {

class ServerEndpoint {
 public:
  virtual ~ServerEndpoint() = default;
  virtual Status ShipPage(ClientId client, const ShippedPage& page) = 0;
};

class Server : public ServerEndpoint {
 public:
  Status ShipPage(ClientId client, const ShippedPage& page) override;

 private:
  Status LivenessAdmission(ClientId client);
  GlobalLockManager glm_;
};

// BAD: releases locks in the GLM before the zombie fence runs. A client the
// server has already presumed dead (and whose locks it may have given away)
// would still get its release applied.
Status Server::ShipPage(ClientId client, const ShippedPage& page) {
  glm_.ReleaseSharedLocksOf(client);
  FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
  return ApplyShippedPage(client, page);
}

}  // namespace finelog
