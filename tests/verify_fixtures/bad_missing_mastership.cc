// Seeded-bad fixture for the finelog-verify `mastership-fence` rule: every
// non-Rec ServerEndpoint method must reach MastershipAdmission() (the hot-
// standby epoch fence, DESIGN.md section 19) before LivenessAdmission().
// A deposed primary that consulted per-client liveness first could keep
// granting locks after the standby fenced its epoch -- split-brain.
//
// Parsed (not compiled) by `verify_self_test` as an isolated mini-program:
// it carries its own miniature ServerEndpoint/Server pair so it cannot
// collide with the real tree's classes.
#include "common/annotations.h"

namespace finelog {

class ServerEndpoint {
 public:
  virtual ~ServerEndpoint() = default;
  virtual Status LockObject(ClientId client, ObjectId oid) = 0;
};

class Server : public ServerEndpoint {
 public:
  Status LockObject(ClientId client, ObjectId oid) override;

 private:
  Status MastershipAdmission();
  Status LivenessAdmission(ClientId client);
  GlobalLockManager glm_;
};

// BAD: the liveness fence runs before the mastership fence. On a node the
// standby has already deposed, the per-client lease check still passes (the
// stale table says the client is alive), so this endpoint would grant the
// lock under an epoch that is no longer serving.
Status Server::LockObject(ClientId client, ObjectId oid) {
  FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
  FINELOG_RETURN_IF_ERROR(MastershipAdmission());
  return glm_.Acquire(client, oid);
}

}  // namespace finelog
