// Property-based durability tests: randomized multi-client workloads with
// crashes injected at randomized interleaving points. The invariant, checked
// by the oracle after recovery, is the paper's correctness claim (Section 1):
// every committed update survives and no uncommitted update does -- for
// client crashes, server crashes, and complex crashes, under every policy
// combination.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

struct PropertyCase {
  const char* name;
  uint64_t seed;
  AccessPattern pattern;
  LockGranularity granularity;
  SamePageUpdatePolicy same_page;
  enum class CrashKind { kClient, kServer, kComplex, kAll } crash;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  return info.param.name + std::to_string(info.param.seed);
}

class DurabilityPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(DurabilityPropertyTest, CommittedStateSurvivesCrashes) {
  const PropertyCase& pc = GetParam();

  SystemConfig config = SmallConfig(std::string("prop_") + pc.name +
                                    std::to_string(pc.seed));
  config.num_clients = 4;
  config.client_cache_pages = 6;  // Small cache: plenty of replacements.
  config.lock_granularity = pc.granularity;
  config.same_page_policy = pc.same_page;
  auto sys_or = System::Create(config);
  ASSERT_TRUE(sys_or.ok()) << sys_or.status().ToString();
  std::unique_ptr<System> system = std::move(sys_or).value();

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 12;
  options.ops_per_txn = 5;
  options.write_fraction = 0.6;
  options.pattern = pc.pattern;
  options.seed = pc.seed;
  Workload workload(system.get(), &oracle, options);

  Rng rng(pc.seed * 7919 + 13);
  // Run in bursts; crash between bursts; recover; continue.
  for (int burst = 0; burst < 6; ++burst) {
    auto done = workload.RunSteps(20 + rng.Uniform(40));
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    if (done.value()) break;

    bool crash_client = pc.crash == PropertyCase::CrashKind::kClient ||
                        pc.crash == PropertyCase::CrashKind::kComplex ||
                        pc.crash == PropertyCase::CrashKind::kAll;
    bool crash_server = pc.crash == PropertyCase::CrashKind::kServer ||
                        pc.crash == PropertyCase::CrashKind::kComplex ||
                        pc.crash == PropertyCase::CrashKind::kAll;
    if (burst % 2 == 1) continue;  // Crash on every other burst.

    if (crash_client) {
      size_t victims = pc.crash == PropertyCase::CrashKind::kAll
                           ? system->num_clients()
                           : 1 + rng.Uniform(2);
      for (size_t v = 0; v < victims; ++v) {
        size_t i = pc.crash == PropertyCase::CrashKind::kAll
                       ? v
                       : rng.Uniform(system->num_clients());
        if (system->client(i).crashed()) continue;
        ASSERT_TRUE(system->CrashClient(i).ok());
        oracle.CrashClient(static_cast<ClientId>(i));
        workload.OnClientCrashed(i);
      }
    }
    if (crash_server) {
      ASSERT_TRUE(system->CrashServer().ok());
    }
    Status rec = system->RecoverAll();
    ASSERT_TRUE(rec.ok()) << rec.ToString();
    for (size_t i = 0; i < system->num_clients(); ++i) {
      if (!system->client(i).crashed()) workload.OnClientRecovered(i);
    }
  }
  // Finish the workload without further crashes.
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  EXPECT_GT(workload.stats().commits, 0u);

  // Quiesce and verify the full committed state.
  ASSERT_TRUE(system->FlushEverything().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok()) << mismatches.status().ToString();
  EXPECT_EQ(mismatches.value(), 0u) << "committed state diverged";
}

constexpr PropertyCase kCases[] = {
    // Client crashes across patterns and seeds.
    {"client_uniform_", 1, AccessPattern::kUniform, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kClient},
    {"client_uniform_", 2, AccessPattern::kUniform, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kClient},
    {"client_hotcold_", 3, AccessPattern::kHotCold, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kClient},
    {"client_shared_", 4, AccessPattern::kSharedHot, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kClient},
    {"client_private_", 5, AccessPattern::kPrivate, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kClient},
    // Server crashes.
    {"server_uniform_", 6, AccessPattern::kUniform, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kServer},
    {"server_shared_", 7, AccessPattern::kSharedHot, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kServer},
    {"server_hotcold_", 8, AccessPattern::kHotCold, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kServer},
    // Complex crashes (clients + server together).
    {"complex_uniform_", 9, AccessPattern::kUniform, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kComplex},
    {"complex_shared_", 10, AccessPattern::kSharedHot, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kComplex},
    {"complex_shared_", 11, AccessPattern::kSharedHot, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kComplex},
    {"complex_hotcold_", 12, AccessPattern::kHotCold, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kComplex},
    // Everything crashes at once.
    {"all_uniform_", 13, AccessPattern::kUniform, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kAll},
    {"all_shared_", 14, AccessPattern::kSharedHot, LockGranularity::kObject,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kAll},
    // Baseline policies must be just as durable.
    {"pagelock_client_", 15, AccessPattern::kUniform, LockGranularity::kPage,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kClient},
    {"pagelock_server_", 16, AccessPattern::kUniform, LockGranularity::kPage,
     SamePageUpdatePolicy::kMergeCopies, PropertyCase::CrashKind::kServer},
    {"token_client_", 17, AccessPattern::kSharedHot, LockGranularity::kObject,
     SamePageUpdatePolicy::kUpdateToken, PropertyCase::CrashKind::kClient},
};

INSTANTIATE_TEST_SUITE_P(Randomized, DurabilityPropertyTest,
                         ::testing::ValuesIn(kCases), CaseName);

// Crash-free sanity: the workload itself (all patterns) is consistent.
class WorkloadSanityTest
    : public ::testing::TestWithParam<std::tuple<AccessPattern, uint64_t>> {};

TEST_P(WorkloadSanityTest, NoCrashConsistency) {
  auto [pattern, seed] = GetParam();
  SystemConfig config =
      SmallConfig("wl_sanity_" + std::to_string(static_cast<int>(pattern)) +
                  "_" + std::to_string(seed));
  config.num_clients = 4;
  auto system = System::Create(config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 20;
  options.ops_per_txn = 6;
  options.pattern = pattern;
  options.seed = seed;
  Workload workload(system.get(), &oracle, options);
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  auto mismatches = oracle.Verify(system.get(), 1);
  ASSERT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, WorkloadSanityTest,
    ::testing::Combine(::testing::Values(AccessPattern::kUniform,
                                         AccessPattern::kHotCold,
                                         AccessPattern::kPrivate,
                                         AccessPattern::kSharedHot),
                       ::testing::Values(100, 200)));

}  // namespace
}  // namespace finelog
