// Property tests for the PSN discipline (Section 2): monotonicity under
// arbitrary merge/update/install interleavings, the max+1 rule, and overlay
// semantics of copy merging.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "server/page_merge.h"
#include "storage/page.h"

namespace finelog {
namespace {

constexpr uint32_t kPageSize = 1024;
constexpr int kSlots = 6;

Page MakeBase(Psn psn) {
  Page page(kPageSize);
  page.Format(PageId(1), psn);
  for (int i = 0; i < kSlots; ++i) {
    (void)page.CreateObject("value-" + std::to_string(i));
  }
  return page;
}

ShippedPage Ship(const Page& page, std::vector<SlotId> slots) {
  ShippedPage s;
  s.page = page.id();
  s.image = page.raw();
  s.modified_slots = std::move(slots);
  return s;
}

// ---------------------------------------------------------------------------
// Randomized monotonicity: replaying any interleaving of updates and merges
// across several divergent copies never decreases any copy's PSN, and merges
// strictly advance past both inputs.
// ---------------------------------------------------------------------------

class PsnMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PsnMonotonicityTest, RandomInterleavings) {
  Rng rng(GetParam());
  std::vector<Page> copies;
  for (int i = 0; i < 4; ++i) copies.push_back(MakeBase(Psn(10)));

  for (int step = 0; step < 200; ++step) {
    size_t i = rng.Uniform(copies.size());
    Psn before = copies[i].psn();
    if (rng.Bernoulli(0.6)) {
      // Local update: bump by one.
      SlotId slot = static_cast<SlotId>(rng.Uniform(kSlots));
      ASSERT_TRUE(copies[i]
                      .WriteObject(slot, "value-" + std::to_string(slot))
                      .ok());
      copies[i].BumpPsn();
      EXPECT_EQ(copies[i].psn(), before.Next());
    } else {
      // Merge another copy in.
      size_t j = rng.Uniform(copies.size());
      if (j == i) continue;
      Psn other = copies[j].psn();
      SlotId slot = static_cast<SlotId>(rng.Uniform(kSlots));
      ASSERT_TRUE(MergeShippedPage(&copies[i], Ship(copies[j], {slot})).ok());
      // Strictly greater than BOTH inputs -- the max+1 rule.
      EXPECT_GT(copies[i].psn(), before);
      EXPECT_GT(copies[i].psn(), other);
      EXPECT_EQ(copies[i].psn(), Psn::Merge(before, other));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsnMonotonicityTest,
                         ::testing::Values(1, 2, 3, 4, 5, 42, 1234, 99999));

// ---------------------------------------------------------------------------
// Overlay semantics: merging ships from several writers, each owning a
// disjoint slot set, converges to the union of the latest values regardless
// of merge order.
// ---------------------------------------------------------------------------

class MergeConvergenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MergeConvergenceTest, DisjointWritersConverge) {
  Rng rng(GetParam());
  Page server = MakeBase(Psn(1));
  std::vector<Page> writers;
  for (int w = 0; w < 3; ++w) writers.push_back(server);

  // Each writer owns slots {w, w+3}; perform random update rounds.
  std::vector<std::string> expected(kSlots);
  for (int i = 0; i < kSlots; ++i) expected[i] = "value-" + std::to_string(i);
  for (int round = 0; round < 30; ++round) {
    int w = static_cast<int>(rng.Uniform(3));
    SlotId slot = static_cast<SlotId>(w + 3 * rng.Uniform(2));
    std::string value(expected[slot].size(), '.');  // Same-size overwrite.
    std::string tag = "w";
    tag += std::to_string(w);
    tag += "-r";
    tag += std::to_string(round);
    for (size_t ci = 0; ci < value.size() && ci < tag.size(); ++ci) {
      value[ci] = tag[ci];
    }
    ASSERT_TRUE(writers[w].WriteObject(slot, value).ok());
    writers[w].BumpPsn();
    expected[slot] = value;
    // Occasionally ship this writer's copy to the server.
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(
          MergeShippedPage(&server, Ship(writers[w], {static_cast<SlotId>(w),
                                                      static_cast<SlotId>(w + 3)}))
              .ok());
    }
  }
  // Final ships in random order.
  std::vector<int> order = {0, 1, 2};
  std::swap(order[rng.Uniform(3)], order[rng.Uniform(3)]);
  for (int w : order) {
    ASSERT_TRUE(MergeShippedPage(
                    &server, Ship(writers[w], {static_cast<SlotId>(w),
                                               static_cast<SlotId>(w + 3)}))
                    .ok());
  }
  for (int i = 0; i < kSlots; ++i) {
    EXPECT_EQ(server.ReadObject(static_cast<SlotId>(i)).value(), expected[i])
        << "slot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeConvergenceTest,
                         ::testing::Values(7, 11, 13, 17, 19, 23));

// ---------------------------------------------------------------------------
// Merge idempotence: re-applying the same ship is harmless for data (PSN
// still advances -- by design, two equal-PSN copies must produce a fresh
// PSN).
// ---------------------------------------------------------------------------

TEST(MergeProperties, ReapplyingShipIsDataIdempotent) {
  Page server = MakeBase(Psn(5));
  Page writer = server;
  ASSERT_TRUE(writer.WriteObject(2, "newval-").ok());
  writer.BumpPsn();
  ShippedPage ship = Ship(writer, {2});

  ASSERT_TRUE(MergeShippedPage(&server, ship).ok());
  std::string after_first = server.ReadObject(2).value();
  Psn psn_first = server.psn();
  ASSERT_TRUE(MergeShippedPage(&server, ship).ok());
  EXPECT_EQ(server.ReadObject(2).value(), after_first);
  EXPECT_GT(server.psn(), psn_first);
}

TEST(MergeProperties, EmptyShipOnlyBumpsPsn) {
  Page server = MakeBase(Psn(5));
  Page other = MakeBase(Psn(9));
  std::string before = server.ReadObject(0).value();
  ASSERT_TRUE(MergeShippedPage(&server, Ship(other, {})).ok());
  EXPECT_EQ(server.ReadObject(0).value(), before);
  EXPECT_EQ(server.psn(), Psn(10));
}

TEST(MergeProperties, InstallNeverRegressesPsn) {
  Page local = MakeBase(Psn(50));
  ASSERT_TRUE(InstallObject(&local, 0, std::string("catchup!"), Psn(20)).ok());
  EXPECT_EQ(local.psn(), Psn(50));  // Server older: keep ours.
  ASSERT_TRUE(InstallObject(&local, 0, std::string("forward!"), Psn(80)).ok());
  EXPECT_EQ(local.psn(), Psn(80));  // Server newer: catch up exactly.
}

}  // namespace
}  // namespace finelog
