// Integration tests for lock escalation and de-escalation (Section 3.2,
// page-level conflict handling, and the adaptive scheme of [3]).

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class DeescalationTest : public ::testing::Test {
 protected:
  void Start(uint32_t threshold) {
    SystemConfig config = SmallConfig("deesc");
    config.escalation_threshold = threshold;
    auto sys = System::Create(config);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }
  std::string Val(char fill) {
    return std::string(system_->config().object_size, fill);
  }
  std::unique_ptr<System> system_;
};

TEST_F(DeescalationTest, EscalatedPageLockDeescalatesOnConflict) {
  Start(/*threshold=*/2);
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);

  // c0 crosses the escalation threshold and obtains a page X lock.
  TxnId t0 = c0.Begin().value();
  for (SlotId s = 0; s < 4; ++s) {
    ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(1), s}, Val('a')).ok());
  }
  ASSERT_TRUE(c0.Commit(t0).ok());
  ASSERT_TRUE(system_->server().glm().HoldsPage(ClientId(0), PageId(1), LockMode::kExclusive));

  // c1's access to a *different* object forces c0 to de-escalate: c0 trades
  // its page lock for object locks on the objects it accessed.
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(c1.Write(t1, ObjectId{PageId(1), 6}, Val('b')).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_FALSE(system_->server().glm().HoldsPage(ClientId(0), PageId(1), LockMode::kShared));
  EXPECT_TRUE(system_->server().glm().HoldsObject(ClientId(0), ObjectId{PageId(1), 0},
                                                  LockMode::kExclusive));
  EXPECT_GT(system_->metrics().Get("server.deescalations"), 0u);

  // c0's cached object locks still work locally after de-escalation.
  uint64_t misses = system_->metrics().Get("client.lock_misses");
  TxnId t2 = c0.Begin().value();
  ASSERT_TRUE(c0.Write(t2, ObjectId{PageId(1), 0}, Val('c')).ok());
  ASSERT_TRUE(c0.Commit(t2).ok());
  EXPECT_EQ(system_->metrics().Get("client.lock_misses"), misses);
}

TEST_F(DeescalationTest, DeescalationDeniedDuringStructuralTxn) {
  Start(/*threshold=*/100);  // No auto-escalation; Create takes page X.
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);

  TxnId t0 = c0.Begin().value();
  ASSERT_TRUE(c0.Create(t0, PageId(2), "structural-in-flight").ok());

  // While the structural transaction is active, c1 cannot even read the
  // page's objects (the page X lock cannot be de-escalated mid-structure).
  TxnId t1 = c1.Begin().value();
  EXPECT_TRUE(c1.Read(t1, ObjectId{PageId(2), 0}).status().IsWouldBlock());

  ASSERT_TRUE(c0.Commit(t0).ok());
  // Afterwards the de-escalation succeeds and the read proceeds.
  EXPECT_TRUE(c1.Read(t1, ObjectId{PageId(2), 0}).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
}

TEST_F(DeescalationTest, DeescalationShipsDirtyPage) {
  Start(/*threshold=*/1);
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);

  TxnId t0 = c0.Begin().value();
  ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(3), 0}, Val('d')).ok());
  ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(3), 1}, Val('e')).ok());
  ASSERT_TRUE(c0.Commit(t0).ok());

  // The de-escalation response must carry c0's dirty copy so c1 sees the
  // committed values immediately.
  TxnId t1 = c1.Begin().value();
  EXPECT_EQ(c1.Read(t1, ObjectId{PageId(3), 0}).value(), Val('d'));
  EXPECT_EQ(c1.Read(t1, ObjectId{PageId(3), 1}).value(), Val('e'));
  ASSERT_TRUE(c1.Commit(t1).ok());
}

TEST_F(DeescalationTest, EscalationSkippedUnderContention) {
  Start(/*threshold=*/2);
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);

  // c1 actively holds an object on the page: c0's escalation attempt is
  // denied but its object-level work proceeds.
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(c1.Write(t1, ObjectId{PageId(4), 7}, Val('f')).ok());

  TxnId t0 = c0.Begin().value();
  for (SlotId s = 0; s < 5; ++s) {
    ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(4), s}, Val('g')).ok()) << "slot " << s;
  }
  ASSERT_TRUE(c0.Commit(t0).ok());
  EXPECT_FALSE(system_->server().glm().HoldsPage(ClientId(0), PageId(4), LockMode::kShared));
  ASSERT_TRUE(c1.Commit(t1).ok());
}

}  // namespace
}  // namespace finelog
