// Crash-point sweep: systematic fault injection at every durability-critical
// I/O site (DESIGN.md "Fault model").
//
// One seeded workload is run once with an unarmed FaultInjector (a pure
// counting probe) to enumerate the M fail-point hits it performs. Then, for a
// strided sample of k in 1..M, the same workload is re-run against a fresh
// directory with a one-shot fault armed at global hit k -- a clean EIO, a
// torn write (a deterministic prefix of the payload reaches the file) or a
// short write. When the fault fires, every node is crashed on the spot,
// RecoverAll() runs, any in-doubt commit is settled by probing the database,
// the workload resumes to completion and the Oracle verifies that every
// committed update survived and no uncommitted one did.
//
// Two "teeth" tests prove the sweep can actually fail: deliberately broken
// recovery modes (trusting the log tail without the CRC scan; ignoring the
// doublewrite journal) must turn at least one swept crash point into a
// detected failure.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace finelog {
namespace {

constexpr uint64_t kSeed = 4242;

// Small caches force client->server ships and server evictions, so the
// workload exercises every fail-point family: client log appends/forces,
// server replacement-log appends/forces, and journaled page writes.
SystemConfig SweepConfig(const std::string& dir, FaultInjector* injector) {
  SystemConfig config;
  config.dir = dir;
  config.num_clients = 3;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 16;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 4;
  config.server_cache_pages = 8;
  config.fault_injector = injector;
  return config;
}

WorkloadOptions SweepOptions() {
  WorkloadOptions options;
  options.txns_per_client = 6;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = kSeed;
  return options;
}

// Reads one object through a fresh transaction on client 0, retrying lock
// conflicts. Used to settle in-doubt commits after recovery.
Result<std::string> ProbeRead(System* system, ObjectId oid) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto txn = system->client(0).Begin();
    if (!txn.ok()) return txn.status();
    auto got = system->client(0).Read(txn.value(), oid);
    if (got.ok()) {
      FINELOG_RETURN_IF_ERROR(system->client(0).Commit(txn.value()));
      return got;
    }
    FINELOG_RETURN_IF_ERROR(system->client(0).Abort(txn.value()));
    if (!got.status().IsWouldBlock()) return got.status();
  }
  return Status::Internal("probe read never granted");
}

struct CrashPointOutcome {
  bool triggered = false;
  std::string point;    // Fail-point that fired.
  std::string failure;  // Empty = survived the crash end-to-end.
};

// Runs the seeded workload with a one-shot fault armed at global hit `k`
// (counted from the end of bootstrap), crashes everything when it fires,
// recovers, resumes, and verifies. Never uses gtest assertions so the teeth
// tests can count failures instead of aborting.
//
// With `instant_restart`, the server restart is lazy (DESIGN.md section 18):
// the workload resumes against a backlog of unrecovered pages, and an armed
// `recovery.server.lazy_repair` interruption degrades one mid-recovery
// repair. With `double_crash` additionally, every node crashes a second time
// while pages are still unrecovered -- the hardest mid-recovery fail point.
CrashPointOutcome RunCrashPoint(FaultInjector* injector, uint64_t k,
                                FaultAction action, double cut_fraction,
                                bool trust_log_tail, bool skip_journal_replay,
                                const std::string& dir_tag,
                                bool instant_restart = false,
                                bool double_crash = false) {
  CrashPointOutcome out;
  std::string dir = MakeTempDir("sweep_" + dir_tag + std::to_string(k));
  SystemConfig config = SweepConfig(dir, injector);
  config.debug_trust_log_tail = trust_log_tail;
  config.debug_skip_journal_replay = skip_journal_replay;
  config.instant_restart = instant_restart;

  injector->Disarm();
  auto sys_or = System::Create(config);
  if (!sys_or.ok()) {
    out.failure = "create: " + sys_or.status().ToString();
    return out;
  }
  auto system = std::move(sys_or).value();
  // Count hits from here so `k` indexes the workload window, matching the
  // enumeration pass (bootstrap performs the same deterministic hit prefix).
  injector->ResetCounts();
  injector->ArmGlobalHit(k, action, cut_fraction);

  Oracle oracle;
  Workload workload(system.get(), &oracle, SweepOptions());
  std::optional<TxnId> in_doubt;
  bool complete = false;
  while (!injector->triggered() && !complete) {
    auto done = workload.RunSteps(1);
    if (!done.ok()) {
      if (!injector->triggered()) {
        out.failure = "uninjected workload error: " + done.status().ToString();
        return out;
      }
      // A hard error surfaced from the injected fault. A failed Commit() is
      // in-doubt: the commit record may have reached the log before the
      // failure was reported.
      const auto& fail = workload.last_failure();
      if (fail.has_value() && fail->during_commit) {
        oracle.MarkInDoubt(fail->txn);
        in_doubt = fail->txn;
      }
      break;
    }
    complete = done.value();
  }
  if (!injector->triggered()) {
    out.failure = "fault at hit " + std::to_string(k) + " never fired";
    return out;
  }
  out.triggered = true;
  out.point = injector->fired()->point;

  // Crash every node. Volatile state is dropped; whatever the injector left
  // half-written on disk stays exactly as it is.
  for (size_t i = 0; i < system->num_clients(); ++i) {
    if (Status st = system->CrashClient(i); !st.ok()) {
      out.failure = "crash client: " + st.ToString();
      return out;
    }
    oracle.CrashClient(static_cast<ClientId>(i));
    workload.OnClientCrashed(i);
  }
  if (Status st = system->CrashServer(); !st.ok()) {
    out.failure = "crash server: " + st.ToString();
    return out;
  }

  if (Status st = system->RecoverAll(); !st.ok()) {
    out.failure = "recovery: " + st.ToString();
    return out;
  }
  for (size_t i = 0; i < system->num_clients(); ++i) {
    workload.OnClientRecovered(i);
  }

  if (instant_restart && double_crash &&
      system->RecoveryPagesPending() > 0) {
    // Second crash during lazy recovery: the re-derived backlog must be just
    // as recoverable as the first one.
    for (size_t i = 0; i < system->num_clients(); ++i) {
      if (Status st = system->CrashClient(i); !st.ok()) {
        out.failure = "second crash client: " + st.ToString();
        return out;
      }
      oracle.CrashClient(static_cast<ClientId>(i));
      workload.OnClientCrashed(i);
    }
    if (Status st = system->CrashServer(); !st.ok()) {
      out.failure = "second crash server: " + st.ToString();
      return out;
    }
    if (Status st = system->RecoverAll(); !st.ok()) {
      out.failure = "second recovery: " + st.ToString();
      return out;
    }
    for (size_t i = 0; i < system->num_clients(); ++i) {
      workload.OnClientRecovered(i);
    }
  }
  if (instant_restart) {
    // One mid-recovery repair degrades to WouldBlock(kRecoveringPage); the
    // workload's generic retry must absorb it with no oracle divergence.
    injector->ArmPoint("recovery.server.lazy_repair", 1, FaultAction::kError,
                       0.5);
  }

  // Settle the in-doubt commit: find an object whose value differs between
  // the committed and aborted outcomes and read it back. Recovery made the
  // transaction atomic, so one distinguishing object decides it (the final
  // Verify cross-checks every other object anyway).
  if (in_doubt.has_value() && oracle.InDoubt(*in_doubt) != nullptr) {
    const auto* writes = oracle.InDoubt(*in_doubt);
    bool committed = false;
    for (const auto& [oid, value] : *writes) {
      auto prior = oracle.CommittedValue(oid);
      std::optional<std::string> if_aborted =
          prior.has_value()
              ? *prior
              : std::optional<std::string>(
                    std::string(config.object_size, '\0'));
      if (value == if_aborted) continue;  // Indistinguishable outcomes.
      auto got = ProbeRead(system.get(), oid);
      if (!got.ok()) {
        out.failure = "in-doubt probe: " + got.status().ToString();
        return out;
      }
      committed = value.has_value() && got.value() == *value;
      break;
    }
    oracle.ResolveInDoubt(*in_doubt, committed);
  }

  // The recovered system must be fully usable: resume the workload to
  // completion, quiesce, and verify against the oracle.
  if (Status st = workload.Run(); !st.ok()) {
    out.failure = "resume: " + st.ToString();
    return out;
  }
  if (workload.stats().read_mismatches > 0) {
    out.failure = std::to_string(workload.stats().read_mismatches) +
                  " stale reads after recovery";
    return out;
  }
  if (instant_restart) {
    // The armed interruption may never have been consumed (the resumed
    // workload might not touch a pending page); clear it and drain whatever
    // the demand traffic left behind.
    injector->Disarm();
    if (Status st = system->DrainRecovery(); !st.ok()) {
      out.failure = "drain: " + st.ToString();
      return out;
    }
    if (system->RecoveryPagesPending() != 0) {
      out.failure = "recovery backlog did not drain";
      return out;
    }
  }
  if (Status st = system->FlushEverything(); !st.ok()) {
    out.failure = "flush: " + st.ToString();
    return out;
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  if (!mismatches.ok()) {
    out.failure = "verify: " + mismatches.status().ToString();
    return out;
  }
  if (mismatches.value() != 0) {
    out.failure = std::to_string(mismatches.value()) + " oracle mismatches";
    return out;
  }
  return out;
}

// Runs the workload once with the injector as a pure counting probe and
// returns the number of fail-point hits in the workload window. Drives one
// step at a time -- the exact loop RunCrashPoint uses -- so the hit sequence
// enumerated here is the sequence every sweep run replays (RunSteps restarts
// its client scan each call, so chunk size is part of the schedule).
uint64_t EnumerateHits(FaultInjector* injector, const std::string& dir_tag) {
  injector->Disarm();
  auto system =
      System::Create(SweepConfig(MakeTempDir(dir_tag), injector)).value();
  injector->ResetCounts();
  Oracle oracle;
  Workload workload(system.get(), &oracle, SweepOptions());
  bool complete = false;
  while (!complete) {
    auto done = workload.RunSteps(1);
    EXPECT_TRUE(done.ok()) << done.status().ToString();
    if (!done.ok()) break;
    complete = done.value();
  }
  return injector->total_hits();
}

// Two enumeration passes with the same seed must produce identical hit
// sequences -- the property that makes a crash point reproducible from its
// (seed, hit_index) pair.
TEST(CrashSweepTest, EnumerationIsDeterministic) {
  FaultInjector a, b;
  a.EnableTrace(true);
  b.EnableTrace(true);
  uint64_t hits_a = EnumerateHits(&a, "sweep_enum_a");
  uint64_t hits_b = EnumerateHits(&b, "sweep_enum_b");
  EXPECT_GT(hits_a, 0u);
  EXPECT_EQ(hits_a, hits_b);
  EXPECT_EQ(a.hit_counts(), b.hit_counts());
  EXPECT_EQ(a.trace(), b.trace());
}

// Every hit must also be mirrored into the system's Metrics registry, and
// those counters must be deterministic across runs too.
TEST(CrashSweepTest, HitMetricsAreDeterministic) {
  auto run = [](const std::string& tag) {
    FaultInjector injector;
    auto system =
        System::Create(SweepConfig(MakeTempDir(tag), &injector)).value();
    Oracle oracle;
    Workload workload(system.get(), &oracle, SweepOptions());
    EXPECT_TRUE(workload.Run().ok());
    std::map<std::string, uint64_t> fault_counters;
    uint64_t mirrored = 0;
    for (const auto& [name, value] : system->metrics().counters()) {
      if (name.rfind("fault.", 0) == 0) {
        fault_counters[name] = value;
        mirrored += value;
      }
    }
    // The Metrics mirror must agree with the injector's own counters
    // (bootstrap hits land in metrics too, hence >=).
    EXPECT_GE(mirrored, injector.total_hits());
    for (const auto& [point, count] : injector.hit_counts()) {
      EXPECT_EQ(system->metrics().Get("fault." + point), count) << point;
    }
    return fault_counters;
  };
  EXPECT_EQ(run("sweep_met_a"), run("sweep_met_b"));
}

// The tentpole: sweep a strided sample of every fail-point hit the workload
// performs, crash at each, and require a clean recovery every time.
TEST(CrashSweepTest, EveryCrashPointRecovers) {
  FaultInjector injector;
  uint64_t m = EnumerateHits(&injector, "sweep_enum");
  ASSERT_GE(m, 100u) << "workload too small to sweep";

  constexpr FaultAction kActions[] = {FaultAction::kTornWrite,
                                      FaultAction::kError,
                                      FaultAction::kShortWrite};
  constexpr double kCuts[] = {0.5, 0.25, 0.75};
  uint64_t stride = std::max<uint64_t>(1, m / 110);
  std::set<std::string> points;
  size_t swept = 0;
  for (uint64_t k = 1; k <= m; k += stride, ++swept) {
    FaultAction action = kActions[swept % 3];
    double cut = kCuts[(swept / 3) % 3];
    CrashPointOutcome out =
        RunCrashPoint(&injector, k, action, cut, false, false, "k");
    ASSERT_TRUE(out.triggered) << "k=" << k << ": " << out.failure;
    EXPECT_EQ(out.failure, "")
        << "crash at hit " << k << " of " << m << " (" << out.point << ", "
        << FaultActionName(action) << ", cut " << cut
        << "): reproduce with seed " << kSeed;
    points.insert(out.point);
  }
  EXPECT_GE(swept, 100u);

  // The sample must have crashed all three durability domains.
  bool client_log = false, server_log = false, server_disk = false;
  for (const std::string& p : points) {
    if (p.rfind("client", 0) == 0) client_log = true;
    if (p.rfind("server.log", 0) == 0) server_log = true;
    if (p.rfind("server.disk", 0) == 0) server_disk = true;
  }
  EXPECT_TRUE(client_log) << "no client-log crash point swept";
  EXPECT_TRUE(server_log) << "no server-log crash point swept";
  EXPECT_TRUE(server_disk) << "no server-disk crash point swept";
}

// Same sweep through the instant-restart path: recovery is lazy, the resumed
// workload runs against the unrecovered backlog (demand repairs + degraded
// responses), every third point crashes everything a second time while pages
// are still unrecovered, and one mid-recovery repair is interrupted via the
// recovery.server.lazy_repair fail point. Zero oracle divergence required
// throughout.
TEST(CrashSweepTest, LazyRestartCrashPointsRecover) {
  FaultInjector injector;
  uint64_t m = EnumerateHits(&injector, "sweep_enum_lazy");
  ASSERT_GE(m, 100u) << "workload too small to sweep";

  constexpr FaultAction kActions[] = {FaultAction::kTornWrite,
                                      FaultAction::kError,
                                      FaultAction::kShortWrite};
  constexpr double kCuts[] = {0.5, 0.25, 0.75};
  uint64_t stride = std::max<uint64_t>(1, m / 30);
  size_t swept = 0;
  for (uint64_t k = 1; k <= m; k += stride, ++swept) {
    FaultAction action = kActions[swept % 3];
    double cut = kCuts[(swept / 3) % 3];
    bool double_crash = swept % 3 == 2;
    CrashPointOutcome out =
        RunCrashPoint(&injector, k, action, cut, false, false, "lz",
                      /*instant_restart=*/true, double_crash);
    ASSERT_TRUE(out.triggered) << "k=" << k << ": " << out.failure;
    EXPECT_EQ(out.failure, "")
        << "lazy crash at hit " << k << " of " << m << " (" << out.point
        << ", " << FaultActionName(action) << ", cut " << cut
        << (double_crash ? ", double crash" : "")
        << "): reproduce with seed " << kSeed;
  }
  EXPECT_GE(swept, 25u);
}

// Group commit under fire: a crash inside the one force that covers a whole
// commit group must leave every member transaction all-or-nothing, and the
// transactions that did survive must form a prefix of the group's commit
// order (their records entered the log sequentially, and a torn force
// persists a prefix of the pending buffer). Swept over all fault actions and
// several torn-write cut fractions.
TEST(CrashSweepTest, GroupedForceCrashIsAtomicPerTransaction) {
  struct Case {
    FaultAction action;
    double cut;
  };
  constexpr Case kCases[] = {{FaultAction::kTornWrite, 0.15},
                             {FaultAction::kTornWrite, 0.4},
                             {FaultAction::kTornWrite, 0.6},
                             {FaultAction::kTornWrite, 0.85},
                             {FaultAction::kError, 0.5},
                             {FaultAction::kShortWrite, 0.5}};
  int case_idx = 0;
  for (const Case& cs : kCases) {
    SCOPED_TRACE(std::string(FaultActionName(cs.action)) + " cut " +
                 std::to_string(cs.cut));
    FaultInjector injector;
    SystemConfig config = SweepConfig(
        MakeTempDir("sweep_group_" + std::to_string(case_idx++)), &injector);
    config.num_clients = 1;
    config.client_cache_pages = 16;  // No eviction forces mid-group.
    config.group_commit_window = 1000ull * 1000 * 1000;
    config.group_commit_max_txns = 4;
    auto system = System::Create(config).value();
    Client& c = system->client(0);
    injector.ResetCounts();
    injector.ArmPoint("client0.log.force", 1, cs.action, cs.cut);

    // Four transactions, two objects each; the 4th commit closes the group
    // and runs into the armed fault.
    auto oid = [](int t, SlotId slot) {
      return ObjectId{static_cast<PageId>(t), slot};
    };
    auto value = [&](int t) { return std::string(config.object_size, 'A' + t); };
    for (int t = 0; t < 4; ++t) {
      TxnId txn = c.Begin().value();
      ASSERT_TRUE(c.Write(txn, oid(t, 0), value(t)).ok());
      ASSERT_TRUE(c.Write(txn, oid(t, 1), value(t)).ok());
      Status st = c.Commit(txn);
      if (t < 3) {
        ASSERT_TRUE(st.ok()) << st.ToString();
        EXPECT_EQ(c.log().force_count(), 0u);  // Still deferred.
      } else {
        EXPECT_FALSE(st.ok()) << "grouped force should have failed";
      }
    }
    ASSERT_TRUE(injector.triggered());

    ASSERT_TRUE(system->CrashClient(0).ok());
    ASSERT_TRUE(system->CrashServer().ok());
    ASSERT_TRUE(system->RecoverAll().ok());

    // Each transaction either committed whole (both objects carry its value)
    // or vanished whole (both carry the preloaded zero fill), and the
    // committed ones form a prefix of the commit order.
    const std::string preloaded(config.object_size, '\0');
    bool lost_seen = false;
    for (int t = 0; t < 4; ++t) {
      auto got0 = ProbeRead(system.get(), oid(t, 0));
      auto got1 = ProbeRead(system.get(), oid(t, 1));
      ASSERT_TRUE(got0.ok()) << got0.status().ToString();
      ASSERT_TRUE(got1.ok()) << got1.status().ToString();
      bool committed0 = got0.value() == value(t);
      bool committed1 = got1.value() == value(t);
      EXPECT_EQ(committed0, committed1) << "txn " << t << " torn in half";
      if (!committed0) {
        EXPECT_EQ(got0.value(), preloaded);
      }
      if (!committed1) {
        EXPECT_EQ(got1.value(), preloaded);
      }
      if (committed0) {
        EXPECT_FALSE(lost_seen)
            << "txn " << t << " survived after an earlier group member was "
            << "lost -- durable commits must form a prefix";
      } else {
        lost_seen = true;
      }
    }
    // A clean EIO leaves no bytes behind: the whole group must be gone.
    if (cs.action == FaultAction::kError) {
      EXPECT_TRUE(lost_seen);
    }
  }
}

// Picks up to `max` evenly spaced 1-based hit indices whose traced point
// satisfies `pred`.
template <typename Pred>
std::vector<uint64_t> CandidateHits(const std::vector<std::string>& trace,
                                    size_t max, Pred pred) {
  std::vector<uint64_t> all;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (pred(trace[i])) all.push_back(i + 1);
  }
  if (all.size() <= max) return all;
  std::vector<uint64_t> picked;
  for (size_t j = 0; j < max; ++j) {
    picked.push_back(all[j * all.size() / max]);
  }
  return picked;
}

// Teeth test 1: a recovery that trusts the log tail without the CRC scan
// must be caught by the sweep. A torn client-log force leaves garbage after
// the last complete frame; believing it is durable log breaks restart.
TEST(CrashSweepTest, BrokenLogTailScanIsCaught) {
  FaultInjector injector;
  injector.EnableTrace(true);
  EnumerateHits(&injector, "sweep_teeth_log");
  std::vector<uint64_t> candidates =
      CandidateHits(injector.trace(), 8, [](const std::string& p) {
        return p.rfind("client", 0) == 0 &&
               p.size() >= 10 && p.compare(p.size() - 10, 10, ".log.force") == 0;
      });
  injector.EnableTrace(false);
  ASSERT_FALSE(candidates.empty()) << "workload never forces a client log";

  size_t failures = 0;
  for (uint64_t k : candidates) {
    CrashPointOutcome out = RunCrashPoint(&injector, k, FaultAction::kTornWrite,
                                          0.5, /*trust_log_tail=*/true,
                                          /*skip_journal_replay=*/false, "tl");
    if (!out.triggered || !out.failure.empty()) ++failures;
  }
  EXPECT_GT(failures, 0u)
      << "skipping the log-tail CRC scan went undetected across "
      << candidates.size() << " torn-force crash points";
}

// Teeth test 2: a recovery that ignores the doublewrite journal must be
// caught. A torn in-place page write leaves a checksum-invalid page; only
// journal replay at reopen repairs it.
TEST(CrashSweepTest, BrokenJournalReplayIsCaught) {
  FaultInjector injector;
  injector.EnableTrace(true);
  EnumerateHits(&injector, "sweep_teeth_disk");
  std::vector<uint64_t> candidates = CandidateHits(
      injector.trace(), 8,
      [](const std::string& p) { return p == "server.disk.page"; });
  injector.EnableTrace(false);
  ASSERT_FALSE(candidates.empty()) << "workload never writes a server page";

  constexpr double kCuts[] = {0.5, 0.25, 0.75};
  size_t failures = 0;
  for (size_t j = 0; j < candidates.size(); ++j) {
    CrashPointOutcome out =
        RunCrashPoint(&injector, candidates[j], FaultAction::kTornWrite,
                      kCuts[j % 3], /*trust_log_tail=*/false,
                      /*skip_journal_replay=*/true, "sj");
    if (!out.triggered || !out.failure.empty()) ++failures;
  }
  EXPECT_GT(failures, 0u)
      << "skipping journal replay went undetected across "
      << candidates.size() << " torn-page crash points";
}

}  // namespace
}  // namespace finelog
