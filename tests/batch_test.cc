// Message batching (DESIGN.md section 12): lock misses, page fetches and
// page ships travel as multi-item messages of up to config.max_batch_items,
// paying the per-message overhead once per batch. These tests pin the
// message-count savings, the exact equivalence of batch size 1 with the
// sequential paths, and failure propagation out of a batch.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

SystemConfig BatchConfig(const std::string& name, uint32_t batch) {
  SystemConfig config = SmallConfig(name);
  config.num_clients = 2;
  config.max_batch_items = batch;
  return config;
}

std::vector<std::pair<ObjectId, std::string>> ColdWrites(char fill) {
  std::vector<std::pair<ObjectId, std::string>> writes;
  for (uint32_t p = 0; p < 8; ++p) {
    writes.emplace_back(ObjectId{static_cast<PageId>(p), 0},
                        std::string(64, fill));
  }
  return writes;
}

TEST(BatchTest, WriteBatchCoalescesLockMisses) {
  auto seq = System::Create(BatchConfig("batch_w_seq", 1)).value();
  auto bat = System::Create(BatchConfig("batch_w_bat", 8)).value();

  uint64_t msgs_seq, items_seq, msgs_bat, items_bat;
  {
    Client& c = seq->client(0);
    TxnId txn = c.Begin().value();
    uint64_t m0 = seq->channel().total_messages();
    uint64_t i0 = seq->channel().total_items();
    ASSERT_TRUE(c.WriteBatch(txn, ColdWrites('s')).ok());
    msgs_seq = seq->channel().total_messages() - m0;
    items_seq = seq->channel().total_items() - i0;
    ASSERT_TRUE(c.Commit(txn).ok());
  }
  {
    Client& c = bat->client(0);
    TxnId txn = c.Begin().value();
    uint64_t m0 = bat->channel().total_messages();
    uint64_t i0 = bat->channel().total_items();
    ASSERT_TRUE(c.WriteBatch(txn, ColdWrites('s')).ok());
    msgs_bat = bat->channel().total_messages() - m0;
    items_bat = bat->channel().total_items() - i0;
    ASSERT_TRUE(c.Commit(txn).ok());
  }

  // 8 cold object locks: 16 messages sequentially, one request/reply pair
  // when batched. The logical item count is identical either way.
  EXPECT_EQ(msgs_seq, 16u);
  EXPECT_EQ(msgs_bat, 2u);
  EXPECT_EQ(items_seq, items_bat);
  EXPECT_EQ(bat->metrics().Get(Counter::kClientBatchLockRequests), 1u);
  EXPECT_EQ(bat->metrics().Get(Counter::kClientBatchLockItems), 8u);

  // Same data in both deployments.
  for (const auto& [oid, value] : ColdWrites('s')) {
    for (System* system : {seq.get(), bat.get()}) {
      TxnId txn = system->client(0).Begin().value();
      auto got = system->client(0).Read(txn, oid);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), value);
      ASSERT_TRUE(system->client(0).Commit(txn).ok());
    }
  }
}

TEST(BatchTest, BatchSizeOneMatchesSequentialWritesExactly) {
  auto loop_sys = System::Create(BatchConfig("batch_par_loop", 1)).value();
  auto batch_sys = System::Create(BatchConfig("batch_par_batch", 1)).value();

  {
    Client& c = loop_sys->client(0);
    TxnId txn = c.Begin().value();
    for (const auto& [oid, value] : ColdWrites('p')) {
      ASSERT_TRUE(c.Write(txn, oid, value).ok());
    }
    ASSERT_TRUE(c.Commit(txn).ok());
  }
  {
    Client& c = batch_sys->client(0);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.WriteBatch(txn, ColdWrites('p')).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }

  // With max_batch_items == 1 the batched entry points charge the channel
  // and the clock exactly like the sequential ones.
  EXPECT_EQ(loop_sys->channel().total_messages(),
            batch_sys->channel().total_messages());
  EXPECT_EQ(loop_sys->channel().total_items(),
            batch_sys->channel().total_items());
  EXPECT_EQ(loop_sys->channel().total_bytes(),
            batch_sys->channel().total_bytes());
  EXPECT_EQ(loop_sys->clock().now_us(), batch_sys->clock().now_us());
  EXPECT_EQ(batch_sys->metrics().Get(Counter::kClientBatchLockRequests), 0u);
}

TEST(BatchTest, ReadBatchCoalescesPageFetches) {
  auto system = System::Create(BatchConfig("batch_fetch", 8)).value();
  Client& c = system->client(0);
  {
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.WriteBatch(txn, ColdWrites('f')).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }
  // Ship and drop every dirty page; the locks stay cached, so a re-read
  // needs fetches but no lock traffic.
  ASSERT_TRUE(c.ShipAllDirtyPages().ok());

  std::vector<ObjectId> oids;
  for (const auto& [oid, value] : ColdWrites('f')) {
    (void)value;
    oids.push_back(oid);
  }
  uint64_t m0 = system->channel().total_messages();
  TxnId txn = c.Begin().value();
  auto values = c.ReadBatch(txn, oids);
  ASSERT_TRUE(values.ok());
  // 8 uncached pages fetched as one request/reply pair.
  EXPECT_EQ(system->channel().total_messages() - m0, 2u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientBatchFetchRequests), 1u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientBatchFetchItems), 8u);
  for (size_t i = 0; i < oids.size(); ++i) {
    EXPECT_EQ(values.value()[i], std::string(64, 'f'));
  }
  ASSERT_TRUE(c.Commit(txn).ok());
}

TEST(BatchTest, BatchedShipDeliversEveryPageToTheServer) {
  auto system = System::Create(BatchConfig("batch_ship", 4)).value();
  Client& c = system->client(0);
  {
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.WriteBatch(txn, ColdWrites('m')).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }
  uint64_t m0 = system->channel().total_messages();
  ASSERT_TRUE(c.ShipAllDirtyPages().ok());
  // 8 dirty pages in chunks of 4: two ship messages, two acks.
  EXPECT_EQ(system->channel().total_messages() - m0, 4u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientBatchShipRequests), 2u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientBatchShipItems), 8u);

  // The server's merged copies carry the data: another client reads every
  // object back (client 0 no longer caches the pages).
  Client& other = system->client(1);
  for (const auto& [oid, value] : ColdWrites('m')) {
    TxnId txn = other.Begin().value();
    auto got = other.Read(txn, oid);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got.value(), value);
    ASSERT_TRUE(other.Commit(txn).ok());
  }
}

TEST(BatchTest, LockConflictInsideABatchSurfacesWouldBlock) {
  auto system = System::Create(BatchConfig("batch_conflict", 8)).value();
  Client& holder = system->client(1);
  ObjectId contested{static_cast<PageId>(3), 0};
  TxnId hold_txn = holder.Begin().value();
  ASSERT_TRUE(holder.Write(hold_txn, contested, std::string(64, 'h')).ok());

  // The batch contains the contested object: its callback is denied while
  // the holder's transaction is active, and the whole call reports it.
  Client& c = system->client(0);
  TxnId txn = c.Begin().value();
  Status st = c.WriteBatch(txn, ColdWrites('c'));
  EXPECT_TRUE(st.IsWouldBlock()) << st.ToString();

  // After the holder commits and releases, the same batch goes through.
  ASSERT_TRUE(holder.Commit(hold_txn).ok());
  ASSERT_TRUE(holder.ReleaseIdleLocks().ok());
  EXPECT_TRUE(c.WriteBatch(txn, ColdWrites('c')).ok());
  ASSERT_TRUE(c.Commit(txn).ok());
}

}  // namespace
}  // namespace finelog
