// Crash storms: multi-round randomized workloads with repeated crash +
// recovery cycles -- the harness that hardened the recovery protocol.
// Each round runs a burst of interleaved transactions, crashes a randomized
// subset of nodes (possibly everything), recovers, and continues. The
// invariants, checked continuously and at the end:
//   * reads never observe a value other than the oracle's expected one,
//   * after the final quiesce, every committed update is present and every
//     uncommitted one absent.

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"
#include "util/fault.h"

namespace finelog {
namespace {

enum class CrashKind { kClients, kServer, kComplex, kEverything };

struct StormCase {
  const char* name;
  CrashKind kind;
  AccessPattern pattern;
  uint64_t seed;
  LockGranularity granularity = LockGranularity::kObject;
  SamePageUpdatePolicy same_page = SamePageUpdatePolicy::kMergeCopies;
  double resize_reserve = 0.0;
};

std::string StormName(const ::testing::TestParamInfo<StormCase>& info) {
  return std::string(info.param.name) + "_s" + std::to_string(info.param.seed);
}

class CrashStormTest : public ::testing::TestWithParam<StormCase> {};

TEST_P(CrashStormTest, SurvivesRepeatedCrashes) {
  const StormCase& sc = GetParam();
  SystemConfig config = SmallConfig(std::string("storm_") + sc.name + "_" +
                                    std::to_string(sc.seed));
  config.num_clients = 4;
  config.client_cache_pages = 6;
  config.lock_granularity = sc.granularity;
  config.same_page_policy = sc.same_page;
  config.resize_reserve = sc.resize_reserve;
  auto system = System::Create(config).value();

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 14;
  options.ops_per_txn = 5;
  options.write_fraction = 0.6;
  options.pattern = sc.pattern;
  options.seed = sc.seed;
  Workload workload(system.get(), &oracle, options);

  Rng rng(sc.seed * 7919 + 13);
  for (int round = 0; round < 8; ++round) {
    auto done = workload.RunSteps(15 + rng.Uniform(45));
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    if (done.value()) break;
    if (round % 2 == 1) continue;

    bool crash_clients = sc.kind != CrashKind::kServer;
    bool crash_server = sc.kind != CrashKind::kClients;
    if (crash_clients) {
      size_t victims = sc.kind == CrashKind::kEverything
                           ? system->num_clients()
                           : 1 + rng.Uniform(2);
      for (size_t v = 0; v < victims; ++v) {
        size_t i = sc.kind == CrashKind::kEverything
                       ? v
                       : rng.Uniform(system->num_clients());
        if (system->client(i).crashed()) continue;
        ASSERT_TRUE(system->CrashClient(i).ok());
        oracle.CrashClient(static_cast<ClientId>(i));
        workload.OnClientCrashed(i);
      }
    }
    if (crash_server) {
      ASSERT_TRUE(system->CrashServer().ok());
    }
    ASSERT_TRUE(system->RecoverAll().ok());
    for (size_t i = 0; i < system->num_clients(); ++i) {
      if (!system->client(i).crashed()) workload.OnClientRecovered(i);
    }
    EXPECT_EQ(workload.stats().read_mismatches, 0u)
        << "stale read after round " << round;
  }

  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  EXPECT_GT(workload.stats().commits, 0u);
  ASSERT_TRUE(system->FlushEverything().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok()) << mismatches.status().ToString();
  EXPECT_EQ(mismatches.value(), 0u);
}

constexpr StormCase kStorms[] = {
    {"clients_uniform", CrashKind::kClients, AccessPattern::kUniform, 301},
    {"clients_hotcold", CrashKind::kClients, AccessPattern::kHotCold, 302},
    {"clients_shared", CrashKind::kClients, AccessPattern::kSharedHot, 303},
    {"server_uniform", CrashKind::kServer, AccessPattern::kUniform, 304},
    {"server_hotcold", CrashKind::kServer, AccessPattern::kHotCold, 305},
    {"server_shared", CrashKind::kServer, AccessPattern::kSharedHot, 306},
    {"complex_uniform", CrashKind::kComplex, AccessPattern::kUniform, 307},
    {"complex_hotcold", CrashKind::kComplex, AccessPattern::kHotCold, 308},
    {"complex_shared", CrashKind::kComplex, AccessPattern::kSharedHot, 309},
    {"complex_private", CrashKind::kComplex, AccessPattern::kPrivate, 310},
    {"everything_uniform", CrashKind::kEverything, AccessPattern::kUniform, 311},
    {"everything_hotcold", CrashKind::kEverything, AccessPattern::kHotCold, 312},
    {"everything_shared", CrashKind::kEverything, AccessPattern::kSharedHot, 313},
    {"complex_hotcold", CrashKind::kComplex, AccessPattern::kHotCold, 314},
    {"complex_shared", CrashKind::kComplex, AccessPattern::kSharedHot, 315},
    {"everything_uniform", CrashKind::kEverything, AccessPattern::kUniform, 316},
    // Baseline policies under the harshest crash kinds. (The page-locking
    // baseline is exercised up to complex crashes; the all-nodes-at-once
    // storm is a documented limitation of that baseline's approximated
    // recovery -- see DESIGN.md section 8, item 14.)
    {"pagelock_complex", CrashKind::kComplex, AccessPattern::kHotCold, 317,
     LockGranularity::kPage},
    {"token_server", CrashKind::kServer, AccessPattern::kSharedHot, 319,
     LockGranularity::kObject, SamePageUpdatePolicy::kUpdateToken},
    {"token_complex", CrashKind::kComplex, AccessPattern::kSharedHot, 320,
     LockGranularity::kObject, SamePageUpdatePolicy::kUpdateToken},
    // Footnote-3 reservation active during crash storms.
    {"reserve_complex", CrashKind::kComplex, AccessPattern::kHotCold, 321,
     LockGranularity::kObject, SamePageUpdatePolicy::kMergeCopies, 1.0},
    {"reserve_everything", CrashKind::kEverything, AccessPattern::kSharedHot,
     322, LockGranularity::kObject, SamePageUpdatePolicy::kMergeCopies, 1.0},
};

INSTANTIATE_TEST_SUITE_P(Storms, CrashStormTest, ::testing::ValuesIn(kStorms),
                         StormName);

// The same storm with instant restart on (DESIGN.md section 18): after every
// server crash the workload resumes against an unrecovered backlog, with
// three extra mid-recovery hazards layered in round-robin --
//   * an armed recovery.server.lazy_repair interruption (one repair degrades
//     to WouldBlock(kRecoveringPage); the workload's retry absorbs it),
//   * a second crash of everything while pages are still unrecovered,
//   * a partial drain (budget 1-3) so later rounds crash a half-repaired
//     backlog.
// The oracle invariants are identical: no stale read ever, and zero
// divergence after the final quiesce.
class InstantRestartStormTest : public ::testing::TestWithParam<StormCase> {};

TEST_P(InstantRestartStormTest, SurvivesRepeatedCrashesMidRecovery) {
  const StormCase& sc = GetParam();
  FaultInjector injector;
  SystemConfig config = SmallConfig(std::string("lazystorm_") + sc.name + "_" +
                                    std::to_string(sc.seed));
  config.num_clients = 4;
  config.client_cache_pages = 6;
  config.lock_granularity = sc.granularity;
  config.same_page_policy = sc.same_page;
  config.resize_reserve = sc.resize_reserve;
  config.instant_restart = true;
  config.fault_injector = &injector;
  auto system = System::Create(config).value();

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 14;
  options.ops_per_txn = 5;
  options.write_fraction = 0.6;
  options.pattern = sc.pattern;
  options.seed = sc.seed;
  Workload workload(system.get(), &oracle, options);

  auto crash_everything = [&] {
    for (size_t i = 0; i < system->num_clients(); ++i) {
      if (system->client(i).crashed()) continue;
      ASSERT_TRUE(system->CrashClient(i).ok());
      oracle.CrashClient(static_cast<ClientId>(i));
      workload.OnClientCrashed(i);
    }
    ASSERT_TRUE(system->CrashServer().ok());
  };
  auto recover_all = [&] {
    ASSERT_TRUE(system->RecoverAll().ok());
    for (size_t i = 0; i < system->num_clients(); ++i) {
      if (!system->client(i).crashed()) workload.OnClientRecovered(i);
    }
  };

  Rng rng(sc.seed * 104729 + 7);
  for (int round = 0; round < 8; ++round) {
    auto done = workload.RunSteps(15 + rng.Uniform(45));
    ASSERT_TRUE(done.ok()) << done.status().ToString();
    if (done.value()) break;
    if (round % 2 == 1) continue;

    crash_everything();
    recover_all();
    switch (round / 2 % 3) {
      case 0:
        // Interrupt the next lazy repair mid-stream.
        injector.ArmPoint("recovery.server.lazy_repair", 1,
                          FaultAction::kError, 0.5);
        break;
      case 1:
        // Second crash while N pages are still unrecovered.
        if (system->RecoveryPagesPending() > 0) {
          crash_everything();
          recover_all();
        }
        break;
      case 2: {
        // Partial drain: later rounds crash a half-repaired backlog.
        Status st = system->DrainRecovery(1 + rng.Uniform(3));
        ASSERT_TRUE(st.ok() || st.IsWouldBlock()) << st.ToString();
        break;
      }
    }
    EXPECT_EQ(workload.stats().read_mismatches, 0u)
        << "stale read after round " << round;
  }

  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  EXPECT_GT(workload.stats().commits, 0u);
  injector.Disarm();  // An unconsumed interruption must not block the drain.
  ASSERT_TRUE(system->DrainRecovery().ok());
  EXPECT_EQ(system->RecoveryPagesPending(), 0u);
  ASSERT_TRUE(system->FlushEverything().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok()) << mismatches.status().ToString();
  EXPECT_EQ(mismatches.value(), 0u);
}

constexpr StormCase kLazyStorms[] = {
    {"lazy_uniform", CrashKind::kEverything, AccessPattern::kUniform, 701},
    {"lazy_hotcold", CrashKind::kEverything, AccessPattern::kHotCold, 702},
    {"lazy_shared", CrashKind::kEverything, AccessPattern::kSharedHot, 703},
    {"lazy_private", CrashKind::kEverything, AccessPattern::kPrivate, 704},
    {"lazy_token", CrashKind::kEverything, AccessPattern::kSharedHot, 705,
     LockGranularity::kObject, SamePageUpdatePolicy::kUpdateToken},
    {"lazy_reserve", CrashKind::kEverything, AccessPattern::kHotCold, 706,
     LockGranularity::kObject, SamePageUpdatePolicy::kMergeCopies, 1.0},
};

INSTANTIATE_TEST_SUITE_P(LazyStorms, InstantRestartStormTest,
                         ::testing::ValuesIn(kLazyStorms), StormName);

}  // namespace
}  // namespace finelog
