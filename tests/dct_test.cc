#include "server/dct.h"

#include <gtest/gtest.h>

namespace finelog {
namespace {

TEST(DctTest, InsertKeepsExistingEntry) {
  DirtyClientTable dct;
  dct.Insert(1, 0, 10);
  dct.Insert(1, 0, 99);  // First X grant wins; later inserts are no-ops.
  EXPECT_EQ(dct.Get(1, 0)->psn, 10u);
}

TEST(DctTest, SetPsnOverwrites) {
  DirtyClientTable dct;
  dct.Insert(1, 0, 10);
  dct.SetPsn(1, 0, 25);  // Page received from the client.
  EXPECT_EQ(dct.Get(1, 0)->psn, 25u);
}

TEST(DctTest, SetPsnCreatesMissingEntry) {
  DirtyClientTable dct;
  dct.SetPsn(2, 3, 7);
  ASSERT_TRUE(dct.Get(2, 3).has_value());
  EXPECT_EQ(dct.Get(2, 3)->psn, 7u);
}

TEST(DctTest, RedoLsnSetOnlyWhenNull) {
  DirtyClientTable dct;
  dct.Insert(1, 0, 10);
  dct.Insert(1, 2, 12);
  dct.SetRedoLsnIfNull(1, 100);
  dct.SetRedoLsnIfNull(1, 200);  // Second replacement record: no change.
  EXPECT_EQ(dct.Get(1, 0)->redo_lsn, 100u);
  EXPECT_EQ(dct.Get(1, 2)->redo_lsn, 100u);
}

TEST(DctTest, EntriesForPageAndClient) {
  DirtyClientTable dct;
  dct.Insert(1, 0, 10);
  dct.Insert(1, 2, 12);
  dct.Insert(5, 0, 50);
  EXPECT_EQ(dct.EntriesForPage(1).size(), 2u);
  EXPECT_EQ(dct.EntriesForClient(0).size(), 2u);
  EXPECT_EQ(dct.EntriesForClient(7).size(), 0u);
  EXPECT_TRUE(dct.HasPage(5));
  EXPECT_FALSE(dct.HasPage(6));
}

TEST(DctTest, RemoveDropsOnlyOneClient) {
  DirtyClientTable dct;
  dct.Insert(1, 0, 10);
  dct.Insert(1, 2, 12);
  dct.Remove(1, 0);
  EXPECT_FALSE(dct.Get(1, 0).has_value());
  EXPECT_TRUE(dct.Get(1, 2).has_value());
  EXPECT_TRUE(dct.HasPage(1));
  dct.Remove(1, 2);
  EXPECT_FALSE(dct.HasPage(1));
}

TEST(DctTest, MinRedoLsnIgnoresNulls) {
  DirtyClientTable dct;
  dct.Insert(1, 0, 10);  // RedoLSN null.
  EXPECT_EQ(dct.MinRedoLsn(), kMaxLsn);
  dct.Set(2, 1, 5, 300);
  dct.Set(3, 1, 5, 150);
  EXPECT_EQ(dct.MinRedoLsn(), 150u);
}

TEST(DctTest, SizeAndClear) {
  DirtyClientTable dct;
  dct.Insert(1, 0, 10);
  dct.Insert(1, 1, 11);
  dct.Insert(2, 0, 20);
  EXPECT_EQ(dct.size(), 3u);
  EXPECT_EQ(dct.All().size(), 3u);
  dct.Clear();
  EXPECT_EQ(dct.size(), 0u);
}

}  // namespace
}  // namespace finelog
