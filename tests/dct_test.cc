#include "server/dct.h"

#include <gtest/gtest.h>

namespace finelog {
namespace {

TEST(DctTest, InsertKeepsExistingEntry) {
  DirtyClientTable dct;
  dct.Insert(PageId(1), ClientId(0), Psn(10));
  dct.Insert(PageId(1), ClientId(0), Psn(99));  // First X grant wins; later inserts are no-ops.
  EXPECT_EQ(dct.Get(PageId(1), ClientId(0))->psn, Psn(10));
}

TEST(DctTest, SetPsnOverwrites) {
  DirtyClientTable dct;
  dct.Insert(PageId(1), ClientId(0), Psn(10));
  dct.SetPsn(PageId(1), ClientId(0), Psn(25));  // Page received from the client.
  EXPECT_EQ(dct.Get(PageId(1), ClientId(0))->psn, Psn(25));
}

TEST(DctTest, SetPsnCreatesMissingEntry) {
  DirtyClientTable dct;
  dct.SetPsn(PageId(2), ClientId(3), Psn(7));
  ASSERT_TRUE(dct.Get(PageId(2), ClientId(3)).has_value());
  EXPECT_EQ(dct.Get(PageId(2), ClientId(3))->psn, Psn(7));
}

TEST(DctTest, RedoLsnSetOnlyWhenNull) {
  DirtyClientTable dct;
  dct.Insert(PageId(1), ClientId(0), Psn(10));
  dct.Insert(PageId(1), ClientId(2), Psn(12));
  dct.SetRedoLsnIfNull(PageId(1), Lsn(100));
  dct.SetRedoLsnIfNull(PageId(1), Lsn(200));  // Second replacement record: no change.
  EXPECT_EQ(dct.Get(PageId(1), ClientId(0))->redo_lsn, Lsn(100));
  EXPECT_EQ(dct.Get(PageId(1), ClientId(2))->redo_lsn, Lsn(100));
}

TEST(DctTest, EntriesForPageAndClient) {
  DirtyClientTable dct;
  dct.Insert(PageId(1), ClientId(0), Psn(10));
  dct.Insert(PageId(1), ClientId(2), Psn(12));
  dct.Insert(PageId(5), ClientId(0), Psn(50));
  EXPECT_EQ(dct.EntriesForPage(PageId(1)).size(), 2u);
  EXPECT_EQ(dct.EntriesForClient(ClientId(0)).size(), 2u);
  EXPECT_EQ(dct.EntriesForClient(ClientId(7)).size(), 0u);
  EXPECT_TRUE(dct.HasPage(PageId(5)));
  EXPECT_FALSE(dct.HasPage(PageId(6)));
}

TEST(DctTest, RemoveDropsOnlyOneClient) {
  DirtyClientTable dct;
  dct.Insert(PageId(1), ClientId(0), Psn(10));
  dct.Insert(PageId(1), ClientId(2), Psn(12));
  dct.Remove(PageId(1), ClientId(0));
  EXPECT_FALSE(dct.Get(PageId(1), ClientId(0)).has_value());
  EXPECT_TRUE(dct.Get(PageId(1), ClientId(2)).has_value());
  EXPECT_TRUE(dct.HasPage(PageId(1)));
  dct.Remove(PageId(1), ClientId(2));
  EXPECT_FALSE(dct.HasPage(PageId(1)));
}

TEST(DctTest, MinRedoLsnIgnoresNulls) {
  DirtyClientTable dct;
  dct.Insert(PageId(1), ClientId(0), Psn(10));  // RedoLSN null.
  EXPECT_EQ(dct.MinRedoLsn(), kMaxLsn);
  dct.Set(PageId(2), ClientId(1), Psn(5), Lsn(300));
  dct.Set(PageId(3), ClientId(1), Psn(5), Lsn(150));
  EXPECT_EQ(dct.MinRedoLsn(), Lsn(150));
}

TEST(DctTest, SizeAndClear) {
  DirtyClientTable dct;
  dct.Insert(PageId(1), ClientId(0), Psn(10));
  dct.Insert(PageId(1), ClientId(1), Psn(11));
  dct.Insert(PageId(2), ClientId(0), Psn(20));
  EXPECT_EQ(dct.size(), 3u);
  EXPECT_EQ(dct.All().size(), 3u);
  dct.Clear();
  EXPECT_EQ(dct.size(), 0u);
}

}  // namespace
}  // namespace finelog
