// Group commit (DESIGN.md section 12): commits under the client-local policy
// defer their log force into a bounded window; one force then covers the
// whole group. These tests pin the window semantics, the drain-on-any-force
// rule, the crash contract, and -- most importantly -- that the feature is
// byte-identical to the ungrouped behavior when switched off.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

SystemConfig GroupConfig(const std::string& name) {
  SystemConfig config = SmallConfig(name);
  config.num_clients = 1;
  // Only the txn-count trigger fires unless a test shrinks the window.
  config.group_commit_window = 1000ull * 1000 * 1000;
  config.group_commit_max_txns = 4;
  return config;
}

Status WriteOne(Client* c, TxnId txn, PageId pid, SlotId slot, char fill) {
  return c->Write(txn, ObjectId{pid, slot}, std::string(64, fill));
}

TEST(GroupCommitTest, OneForceCoversTheWholeGroup) {
  auto system = System::Create(GroupConfig("gc_group")).value();
  Client& c = system->client(0);

  uint64_t forces0 = c.log().force_count();
  for (int i = 0; i < 4; ++i) {
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(WriteOne(&c, txn, static_cast<PageId>(i), 0, 'a' + i).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
    if (i < 3) {
      EXPECT_EQ(c.pending_group_commits(), static_cast<size_t>(i + 1));
      EXPECT_EQ(c.log().force_count(), forces0);  // Still deferred.
    }
  }
  // The 4th commit reached group_commit_max_txns and forced once for all.
  EXPECT_EQ(c.pending_group_commits(), 0u);
  EXPECT_EQ(c.log().force_count(), forces0 + 1);
  EXPECT_EQ(system->metrics().Get(Counter::kClientGroupCommits), 1u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientGroupCommitTxns), 4u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientGroupCommitMaxBatch), 4u);
}

TEST(GroupCommitTest, WindowExpiryClosesTheGroup) {
  SystemConfig config = GroupConfig("gc_window");
  config.group_commit_window = 1;  // Any later clock motion expires it.
  config.group_commit_max_txns = 100;
  auto system = System::Create(config).value();
  Client& c = system->client(0);

  TxnId t1 = c.Begin().value();
  ASSERT_TRUE(WriteOne(&c, t1, static_cast<PageId>(0), 0, 'x').ok());
  ASSERT_TRUE(c.Commit(t1).ok());
  EXPECT_EQ(c.pending_group_commits(), 1u);

  // The second transaction's lock-miss round trips advance the simulated
  // clock past the window, so its commit closes the group.
  TxnId t2 = c.Begin().value();
  ASSERT_TRUE(WriteOne(&c, t2, static_cast<PageId>(1), 0, 'y').ok());
  ASSERT_TRUE(c.Commit(t2).ok());
  EXPECT_EQ(c.pending_group_commits(), 0u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientGroupCommitTxns), 2u);
}

TEST(GroupCommitTest, AnyForceDrainsThePendingGroup) {
  auto system = System::Create(GroupConfig("gc_drain")).value();
  Client& c = system->client(0);

  TxnId t1 = c.Begin().value();
  ASSERT_TRUE(WriteOne(&c, t1, static_cast<PageId>(0), 0, 'x').ok());
  ASSERT_TRUE(c.Commit(t1).ok());
  EXPECT_EQ(c.pending_group_commits(), 1u);

  // A checkpoint forces the log for its own reasons; the queued commit
  // becomes durable and the group drains with it.
  ASSERT_TRUE(c.TakeCheckpoint().ok());
  EXPECT_EQ(c.pending_group_commits(), 0u);
  EXPECT_EQ(system->metrics().Get(Counter::kClientGroupCommitTxns), 1u);
}

TEST(GroupCommitTest, FlushCommitGroupClosesAPartialWindow) {
  auto system = System::Create(GroupConfig("gc_flush")).value();
  Client& c = system->client(0);

  TxnId t1 = c.Begin().value();
  ASSERT_TRUE(WriteOne(&c, t1, static_cast<PageId>(0), 0, 'x').ok());
  ASSERT_TRUE(c.Commit(t1).ok());
  uint64_t forces0 = c.log().force_count();
  EXPECT_EQ(c.pending_group_commits(), 1u);
  ASSERT_TRUE(c.FlushCommitGroup().ok());
  EXPECT_EQ(c.pending_group_commits(), 0u);
  EXPECT_EQ(c.log().force_count(), forces0 + 1);
  // Idempotent once empty.
  ASSERT_TRUE(c.FlushCommitGroup().ok());
  EXPECT_EQ(c.log().force_count(), forces0 + 1);
}

TEST(GroupCommitTest, CrashBeforeTheForceLosesTheGroup) {
  auto system = System::Create(GroupConfig("gc_crash")).value();
  Client& c = system->client(0);

  TxnId t1 = c.Begin().value();
  ASSERT_TRUE(WriteOne(&c, t1, static_cast<PageId>(0), 0, 'Z').ok());
  ASSERT_TRUE(c.Commit(t1).ok());
  EXPECT_EQ(c.pending_group_commits(), 1u);

  // Crash before any force: the commit record was never durable, so restart
  // recovery rolls the transaction back -- the deferred-durability contract.
  ASSERT_TRUE(system->CrashClient(0).ok());
  ASSERT_TRUE(system->CrashServer().ok());
  ASSERT_TRUE(system->RecoverAll().ok());
  EXPECT_EQ(system->client(0).pending_group_commits(), 0u);

  TxnId probe = system->client(0).Begin().value();
  auto got = system->client(0).Read(probe, ObjectId{static_cast<PageId>(0), 0});
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value(), std::string(64, '\0'));  // Preloaded value survived.
  ASSERT_TRUE(system->client(0).Commit(probe).ok());
}

// Observable fingerprint of one workload run: every channel/message number,
// force counts, commit counts, and the exact bytes of the client's log.
struct RunFingerprint {
  uint64_t total_messages = 0;
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  uint64_t sim_us = 0;
  uint64_t forces = 0;
  uint64_t commits = 0;
  std::string log_bytes;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RunFingerprint RunSeededWorkload(const SystemConfig& config) {
  auto system = System::Create(config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 8;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 99;
  Workload workload(system.get(), &oracle, options);
  EXPECT_TRUE(workload.Run().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  RunFingerprint fp;
  fp.total_messages = system->channel().total_messages();
  fp.total_items = system->channel().total_items();
  fp.total_bytes = system->channel().total_bytes();
  fp.sim_us = system->clock().now_us();
  fp.forces = system->client(0).log().force_count();
  fp.commits = system->client(0).commits();
  fp.log_bytes = ReadFile(config.dir + "/client0.log");
  EXPECT_FALSE(fp.log_bytes.empty());
  return fp;
}

// The regression that keeps the feature honest: with the knobs at their
// defaults (group_commit_window = 0, max_batch_items = 1), a seeded workload
// must behave *identically* to the pre-feature code -- same message counts,
// same simulated time, same log, byte for byte.
TEST(GroupCommitTest, DisabledKnobsReproduceUngroupedBehaviorExactly) {
  SystemConfig defaults = SmallConfig("gc_parity_default");
  RunFingerprint base = RunSeededWorkload(defaults);

  SystemConfig explicit_off = SmallConfig("gc_parity_explicit");
  explicit_off.group_commit_window = 0;
  explicit_off.group_commit_max_txns = 8;
  explicit_off.max_batch_items = 1;
  RunFingerprint off = RunSeededWorkload(explicit_off);
  EXPECT_EQ(base, off);

  // Sanity anchors: the ungrouped run forces at least once per commit, and
  // nothing ever travels as a multi-item message.
  EXPECT_GE(base.forces, base.commits);
  EXPECT_EQ(base.total_messages, base.total_items);
}

// Grouping changes costs, never results: the same seeded workload with an
// aggressive group-commit window ends with the same committed data and
// fewer forces.
TEST(GroupCommitTest, GroupingPreservesResultsWithFewerForces) {
  SystemConfig base_config = SmallConfig("gc_equiv_base");
  RunFingerprint base = RunSeededWorkload(base_config);

  SystemConfig grouped_config = SmallConfig("gc_equiv_grouped");
  grouped_config.group_commit_window = 1000ull * 1000 * 1000;
  grouped_config.group_commit_max_txns = 8;
  auto system = System::Create(grouped_config).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 8;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 99;
  Workload workload(system.get(), &oracle, options);
  ASSERT_TRUE(workload.Run().ok());
  for (size_t i = 0; i < system->num_clients(); ++i) {
    ASSERT_TRUE(system->client(i).FlushCommitGroup().ok());
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);
  EXPECT_LT(system->client(0).log().force_count(), base.forces);
}

}  // namespace
}  // namespace finelog
