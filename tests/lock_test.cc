#include <gtest/gtest.h>

#include "lock/glm.h"
#include "lock/llm.h"

namespace finelog {
namespace {

constexpr ObjectId kObj{PageId(1), 0};
constexpr ObjectId kObj2{PageId(1), 1};

// ---------------------------------------------------------------------------
// GlobalLockManager
// ---------------------------------------------------------------------------

TEST(GlmTest, SharedLocksCompatible) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kShared);
  EXPECT_TRUE(glm.RequiredForObject(ClientId(1), kObj, LockMode::kShared).empty());
}

TEST(GlmTest, ExclusiveRequestCallsBackHolders) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kShared);
  glm.GrantObject(ClientId(2), kObj, LockMode::kShared);
  auto actions = glm.RequiredForObject(ClientId(1), kObj, LockMode::kExclusive);
  ASSERT_EQ(actions.size(), 2u);
  for (const auto& a : actions) {
    EXPECT_EQ(a.what, CallbackAction::What::kReleaseObject);
    EXPECT_EQ(a.object, kObj);
  }
}

TEST(GlmTest, SharedRequestDowngradesExclusiveHolder) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kExclusive);
  auto actions = glm.RequiredForObject(ClientId(1), kObj, LockMode::kShared);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].what, CallbackAction::What::kDowngradeObject);
  EXPECT_EQ(actions[0].target, ClientId(0));
  EXPECT_EQ(actions[0].holder_mode, LockMode::kExclusive);
}

TEST(GlmTest, OwnLocksNeverConflict) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kExclusive);
  EXPECT_TRUE(glm.RequiredForObject(ClientId(0), kObj, LockMode::kExclusive).empty());
  EXPECT_TRUE(glm.RequiredForObject(ClientId(0), kObj, LockMode::kShared).empty());
}

TEST(GlmTest, PageLockConflictsWithObjectRequest) {
  GlobalLockManager glm;
  glm.GrantPage(ClientId(0), PageId(1), LockMode::kExclusive);
  auto actions = glm.RequiredForObject(ClientId(1), kObj, LockMode::kShared);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].what, CallbackAction::What::kDeescalatePage);
  EXPECT_EQ(actions[0].page, PageId(1));
}

TEST(GlmTest, ObjectLocksConflictWithPageRequest) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kExclusive);
  glm.GrantObject(ClientId(2), kObj2, LockMode::kShared);
  auto actions = glm.RequiredForPage(ClientId(1), PageId(1), LockMode::kExclusive);
  EXPECT_EQ(actions.size(), 2u);
}

TEST(GlmTest, SharedPageCompatibleWithSharedObject) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kShared);
  EXPECT_TRUE(glm.RequiredForPage(ClientId(1), PageId(1), LockMode::kShared).empty());
}

TEST(GlmTest, DeescalationTradesPageForObjects) {
  GlobalLockManager glm;
  glm.GrantPage(ClientId(0), PageId(1), LockMode::kExclusive);
  glm.ApplyDeescalation(ClientId(0), PageId(1), {kObj, kObj2}, LockMode::kExclusive);
  EXPECT_FALSE(glm.HoldsPage(ClientId(0), PageId(1), LockMode::kShared));
  EXPECT_TRUE(glm.HoldsObject(ClientId(0), kObj, LockMode::kExclusive));
  EXPECT_TRUE(glm.HoldsObject(ClientId(0), kObj2, LockMode::kExclusive));
}

TEST(GlmTest, ClientCrashReleasesOnlySharedLocks) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kShared);
  glm.GrantObject(ClientId(0), kObj2, LockMode::kExclusive);
  glm.GrantPage(ClientId(0), PageId(5), LockMode::kShared);
  glm.ReleaseSharedLocksOf(ClientId(0));
  EXPECT_FALSE(glm.HoldsObject(ClientId(0), kObj, LockMode::kShared));
  EXPECT_TRUE(glm.HoldsObject(ClientId(0), kObj2, LockMode::kExclusive));
  EXPECT_FALSE(glm.HoldsPage(ClientId(0), PageId(5), LockMode::kShared));
  auto x = glm.ExclusiveObjectLocksOf(ClientId(0));
  ASSERT_EQ(x.size(), 1u);
  EXPECT_EQ(x[0], kObj2);
}

TEST(GlmTest, DowngradeKeepsSharedAccess) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kExclusive);
  glm.DowngradeObject(ClientId(0), kObj);
  EXPECT_TRUE(glm.HoldsObject(ClientId(0), kObj, LockMode::kShared));
  EXPECT_FALSE(glm.HoldsObject(ClientId(0), kObj, LockMode::kExclusive));
  EXPECT_TRUE(glm.RequiredForObject(ClientId(1), kObj, LockMode::kShared).empty());
}

TEST(GlmTest, UpgradeTriggersCallbacksOnOtherSharers) {
  GlobalLockManager glm;
  glm.GrantObject(ClientId(0), kObj, LockMode::kShared);
  glm.GrantObject(ClientId(1), kObj, LockMode::kShared);
  auto actions = glm.RequiredForObject(ClientId(0), kObj, LockMode::kExclusive);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].target, ClientId(1));
}

// ---------------------------------------------------------------------------
// LocalLockManager
// ---------------------------------------------------------------------------

TEST(LlmTest, MissWithoutEntry) {
  LocalLockManager llm;
  EXPECT_EQ(llm.TryAcquireObject(TxnId(1), kObj, LockMode::kShared),
            LocalLockManager::Acquire::kMiss);
}

TEST(LlmTest, CachedLockHitAcrossTransactions) {
  LocalLockManager llm;
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kExclusive);
  llm.OnTxnEnd(TxnId(1));  // Lock becomes cached.
  EXPECT_EQ(llm.TryAcquireObject(TxnId(2), kObj, LockMode::kExclusive),
            LocalLockManager::Acquire::kHit);
}

TEST(LlmTest, SharedEntryDoesNotCoverExclusive) {
  LocalLockManager llm;
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kShared);
  llm.OnTxnEnd(TxnId(1));
  EXPECT_EQ(llm.TryAcquireObject(TxnId(2), kObj, LockMode::kExclusive),
            LocalLockManager::Acquire::kMiss);
}

TEST(LlmTest, LocalWriteWriteConflict) {
  LocalLockManager llm;
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kExclusive);
  EXPECT_EQ(llm.TryAcquireObject(TxnId(2), kObj, LockMode::kExclusive),
            LocalLockManager::Acquire::kLocalConflict);
  llm.OnTxnEnd(TxnId(1));
  EXPECT_EQ(llm.TryAcquireObject(TxnId(2), kObj, LockMode::kExclusive),
            LocalLockManager::Acquire::kHit);
}

TEST(LlmTest, LocalReadersShareEntry) {
  LocalLockManager llm;
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kShared);
  EXPECT_EQ(llm.TryAcquireObject(TxnId(2), kObj, LockMode::kShared),
            LocalLockManager::Acquire::kHit);
}

TEST(LlmTest, PageLockCoversObjectAccess) {
  LocalLockManager llm;
  llm.AddPageLock(TxnId(1), PageId(1), LockMode::kExclusive);
  EXPECT_EQ(llm.TryAcquireObject(TxnId(1), kObj, LockMode::kExclusive),
            LocalLockManager::Acquire::kHit);
  // The implicit entry is recorded for de-escalation.
  llm.OnTxnEnd(TxnId(1));
  auto promoted = llm.Deescalate(PageId(1));
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0].first, kObj);
  EXPECT_EQ(promoted[0].second, LockMode::kExclusive);
  EXPECT_FALSE(llm.CoversPage(PageId(1), LockMode::kShared));
  EXPECT_TRUE(llm.CoversObject(kObj, LockMode::kExclusive));
}

TEST(LlmTest, CallbackDeniedWhileObjectInUse) {
  LocalLockManager llm;
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kExclusive);
  EXPECT_FALSE(llm.CanReleaseObject(kObj));
  EXPECT_FALSE(llm.CanDowngradeObject(kObj));
  llm.OnTxnEnd(TxnId(1));
  EXPECT_TRUE(llm.CanReleaseObject(kObj));
  EXPECT_TRUE(llm.CanDowngradeObject(kObj));
}

TEST(LlmTest, DowngradeAllowedForActiveReaders) {
  LocalLockManager llm;
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kExclusive);
  llm.OnTxnEnd(TxnId(1));
  // Now a later transaction reads under the cached X entry.
  EXPECT_EQ(llm.TryAcquireObject(TxnId(2), kObj, LockMode::kShared),
            LocalLockManager::Acquire::kHit);
  EXPECT_FALSE(llm.CanReleaseObject(kObj));
  EXPECT_TRUE(llm.CanDowngradeObject(kObj));
}

TEST(LlmTest, DeescalateDeniedDuringStructuralTxn) {
  LocalLockManager llm;
  llm.AddPageLock(TxnId(1), PageId(1), LockMode::kExclusive);  // Txn 1 is a page writer.
  EXPECT_FALSE(llm.CanDeescalatePage(PageId(1)));
  llm.OnTxnEnd(TxnId(1));
  EXPECT_TRUE(llm.CanDeescalatePage(PageId(1)));
}

TEST(LlmTest, EscalationCounting) {
  LocalLockManager llm;
  for (SlotId s = 0; s < 5; ++s) {
    llm.AddObjectLock(TxnId(1), ObjectId{PageId(3), s}, LockMode::kExclusive);
  }
  llm.AddObjectLock(TxnId(1), ObjectId{PageId(4), 0}, LockMode::kExclusive);
  EXPECT_EQ(llm.ExclusiveObjectCountOnPage(PageId(3)), 5u);
  EXPECT_EQ(llm.ExclusiveObjectCountOnPage(PageId(4)), 1u);
}

TEST(LlmTest, SnapshotListsEverything) {
  LocalLockManager llm;
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kExclusive);
  llm.AddPageLock(TxnId(1), PageId(9), LockMode::kShared);
  auto snap = llm.GetSnapshot();
  EXPECT_EQ(snap.objects.size(), 1u);
  EXPECT_EQ(snap.pages.size(), 1u);
}

TEST(LlmTest, HasAnyLockOnPage) {
  LocalLockManager llm;
  EXPECT_FALSE(llm.HasAnyLockOnPage(PageId(1)));
  llm.AddObjectLock(TxnId(1), kObj, LockMode::kShared);
  EXPECT_TRUE(llm.HasAnyLockOnPage(PageId(1)));
  llm.ReleaseObject(kObj);
  EXPECT_FALSE(llm.HasAnyLockOnPage(PageId(1)));
}

}  // namespace
}  // namespace finelog
