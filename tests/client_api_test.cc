// Edge-case tests of the client transaction API: misuse, error surfaces,
// and less-traveled combinations (nested savepoints, delete+recreate,
// resize chains, aborted structural transactions).

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class ClientApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = System::Create(SmallConfig("client_api"));
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }

  std::string Val(char fill) {
    return std::string(system_->config().object_size, fill);
  }

  std::unique_ptr<System> system_;
};

TEST_F(ClientApiTest, OperationsOnUnknownTxnRejected) {
  Client& c = system_->client(0);
  EXPECT_EQ(c.Write(TxnId(999999), ObjectId{PageId(0), 0}, Val('a')).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(c.Commit(TxnId(999999)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.Abort(TxnId(999999)).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.Read(TxnId(999999), ObjectId{PageId(0), 0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClientApiTest, DoubleCommitRejected) {
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(0), 0}, Val('b')).ok());
  ASSERT_TRUE(c.Commit(txn).ok());
  EXPECT_EQ(c.Commit(txn).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.Abort(txn).code(), StatusCode::kInvalidArgument);
}

TEST_F(ClientApiTest, WriteAfterAbortRejected) {
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(0), 0}, Val('c')).ok());
  ASSERT_TRUE(c.Abort(txn).ok());
  EXPECT_EQ(c.Write(txn, ObjectId{PageId(0), 1}, Val('d')).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ClientApiTest, SizeChangingWriteRejected) {
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  EXPECT_EQ(c.Write(txn, ObjectId{PageId(0), 0}, "short").code(),
            StatusCode::kInvalidArgument);
  // Resize is the sanctioned path.
  EXPECT_TRUE(c.Resize(txn, ObjectId{PageId(0), 0}, "short").ok());
  ASSERT_TRUE(c.Commit(txn).ok());
}

TEST_F(ClientApiTest, ReadMissingObjectNotFound) {
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  EXPECT_TRUE(c.Read(txn, ObjectId{PageId(0), 999}).status().IsNotFound());
  ASSERT_TRUE(c.Commit(txn).ok());
}

TEST_F(ClientApiTest, CrashedClientRefusesWork) {
  ASSERT_TRUE(system_->CrashClient(0).ok());
  Client& c = system_->client(0);
  EXPECT_TRUE(c.Begin().status().IsCrashed());
  EXPECT_TRUE(c.TakeCheckpoint().IsCrashed());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  EXPECT_TRUE(c.Begin().ok());
}

TEST_F(ClientApiTest, NestedSavepoints) {
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(1), 0}, Val('1')).ok());
  size_t sp1 = c.SetSavepoint(txn).value();
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(1), 1}, Val('2')).ok());
  size_t sp2 = c.SetSavepoint(txn).value();
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(1), 2}, Val('3')).ok());

  // Inner rollback undoes only the third write.
  ASSERT_TRUE(c.RollbackToSavepoint(txn, sp2).ok());
  EXPECT_EQ(c.Read(txn, ObjectId{PageId(1), 1}).value(), Val('2'));
  EXPECT_EQ(c.Read(txn, ObjectId{PageId(1), 2}).value(), Val('\0'));

  // Outer rollback undoes the second as well; sp2 is gone afterwards.
  ASSERT_TRUE(c.RollbackToSavepoint(txn, sp1).ok());
  EXPECT_EQ(c.Read(txn, ObjectId{PageId(1), 1}).value(), Val('\0'));
  EXPECT_EQ(c.RollbackToSavepoint(txn, sp2).code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(c.Read(txn, ObjectId{PageId(1), 0}).value(), Val('1'));
  ASSERT_TRUE(c.Commit(txn).ok());
}

TEST_F(ClientApiTest, RollbackToSavepointTwice) {
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  size_t sp = c.SetSavepoint(txn).value();
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(2), 0}, Val('x')).ok());
  ASSERT_TRUE(c.RollbackToSavepoint(txn, sp).ok());
  // The savepoint survives its own use.
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(2), 0}, Val('y')).ok());
  ASSERT_TRUE(c.RollbackToSavepoint(txn, sp).ok());
  EXPECT_EQ(c.Read(txn, ObjectId{PageId(2), 0}).value(), Val('\0'));
  ASSERT_TRUE(c.Commit(txn).ok());
}

TEST_F(ClientApiTest, DeleteThenRecreateReusesSlot) {
  Client& c = system_->client(0);
  TxnId t1 = c.Begin().value();
  auto oid = c.Create(t1, PageId(3), "first incarnation");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c.Commit(t1).ok());

  TxnId t2 = c.Begin().value();
  ASSERT_TRUE(c.Delete(t2, oid.value()).ok());
  auto oid2 = c.Create(t2, PageId(3), "second incarnation");
  ASSERT_TRUE(oid2.ok());
  EXPECT_EQ(oid2.value(), oid.value());  // Slot reused.
  ASSERT_TRUE(c.Commit(t2).ok());

  TxnId t3 = c.Begin().value();
  EXPECT_EQ(c.Read(t3, oid.value()).value(), "second incarnation");
  ASSERT_TRUE(c.Commit(t3).ok());
}

TEST_F(ClientApiTest, ResizeChainSurvivesCrash) {
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  auto oid = c.Create(txn, PageId(4), "v0");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c.Resize(txn, oid.value(), "v1 is somewhat longer").ok());
  ASSERT_TRUE(c.Resize(txn, oid.value(), "v2").ok());
  ASSERT_TRUE(
      c.Resize(txn, oid.value(), std::string(300, 'z')).ok());
  ASSERT_TRUE(c.Commit(txn).ok());
  ASSERT_TRUE(system_->CrashClient(0).ok());
  ASSERT_TRUE(system_->RecoverClient(0).ok());
  TxnId check = c.Begin().value();
  EXPECT_EQ(c.Read(check, oid.value()).value(), std::string(300, 'z'));
  ASSERT_TRUE(c.Commit(check).ok());
}

TEST_F(ClientApiTest, AbortedStructuralTransaction) {
  Client& c = system_->client(0);
  TxnId t1 = c.Begin().value();
  auto kept = c.Create(t1, PageId(5), "kept");
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(c.Commit(t1).ok());

  TxnId t2 = c.Begin().value();
  auto doomed = c.Create(t2, PageId(5), "doomed");
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(c.Delete(t2, kept.value()).ok());
  ASSERT_TRUE(c.Abort(t2).ok());

  TxnId t3 = c.Begin().value();
  EXPECT_EQ(c.Read(t3, kept.value()).value(), "kept");  // Delete undone.
  EXPECT_TRUE(c.Read(t3, doomed.value()).status().IsNotFound());  // Create undone.
  ASSERT_TRUE(c.Commit(t3).ok());
}

TEST_F(ClientApiTest, InterleavedLocalTransactionsConflict) {
  // Two transactions on the SAME client contend for one object: the LLM
  // must enforce local two-phase locking.
  Client& c = system_->client(0);
  TxnId t1 = c.Begin().value();
  TxnId t2 = c.Begin().value();
  ASSERT_TRUE(c.Write(t1, ObjectId{PageId(6), 0}, Val('p')).ok());
  EXPECT_TRUE(c.Write(t2, ObjectId{PageId(6), 0}, Val('q')).IsWouldBlock());
  EXPECT_TRUE(c.Read(t2, ObjectId{PageId(6), 0}).status().IsWouldBlock());
  // Disjoint objects proceed.
  EXPECT_TRUE(c.Write(t2, ObjectId{PageId(6), 1}, Val('r')).ok());
  ASSERT_TRUE(c.Commit(t1).ok());
  EXPECT_TRUE(c.Write(t2, ObjectId{PageId(6), 0}, Val('q')).ok());
  ASSERT_TRUE(c.Commit(t2).ok());
}

TEST_F(ClientApiTest, PageAllocationExhaustion) {
  SystemConfig config = SmallConfig("alloc_exhaust");
  config.num_pages = 18;       // 16 preloaded + 2 free.
  config.preloaded_pages = 16;
  auto system = System::Create(config).value();
  Client& c = system->client(0);
  TxnId txn = c.Begin().value();
  EXPECT_TRUE(c.AllocatePage(txn).ok());
  EXPECT_TRUE(c.AllocatePage(txn).ok());
  EXPECT_EQ(c.AllocatePage(txn).status().code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(c.Commit(txn).ok());
}

}  // namespace
}  // namespace finelog
