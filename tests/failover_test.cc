// Hot-standby failover (DESIGN.md section 19, EXPERIMENTS.md E17).
//
// Two server instances share the durable store; a mastership lease granted
// through the clock seam decides which one serves, and clients reach the
// pair through a failover router: a primary crash or timeout probes the
// standby, which acquires the lease once the incumbent's horizon passes,
// fences the deposed epoch, and reconstructs the DCT from the durable store
// plus the clients' logs (ordinary server restart recovery, Sections
// 3.4-3.5, on the other node).
//
// Covered here:
//   - clean switchover (StepDown -> probe -> takeover) mid-workload;
//   - primary kill mid-workload: clients walk the mastership gap down with
//     kFailoverInProgress retries, then finish on the standby;
//   - split-brain drill: a partitioned old primary serves only to its local
//     lease horizon, then self-fences; every post-fence request on it is
//     rejected and its replication stream is epoch-rejected;
//   - double failover: the standby dies too, and service falls back to the
//     re-provisioned first node;
//   - defaults-off byte identity: with hot_standby=false the mastership
//     knobs must not move a single message, byte, or clock tick.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"
#include "util/metrics.h"

namespace finelog {
namespace {

SystemConfig FailoverConfig(const std::string& name) {
  SystemConfig config = SmallConfig(name);
  config.hot_standby = true;
  // Small lease so a client retry loop (failover_timeout_us per attempt)
  // walks the mastership gap down well inside the driver's retry budget:
  // ~30ms / 4ms  ->  about 8 attempts.
  config.mastership_lease_us = 30000;
  config.failover_timeout_us = 4000;
  return config;
}

WorkloadOptions FailoverOptions(uint64_t seed) {
  WorkloadOptions options;
  options.txns_per_client = 10;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = seed;
  return options;
}

void ExpectCleanFinish(System* system, Oracle* oracle, Workload* workload) {
  EXPECT_EQ(workload->stats().read_mismatches, 0u);
  ASSERT_TRUE(system->FlushEverything().ok());
  auto mismatches = oracle->Verify(system, 0);
  ASSERT_TRUE(mismatches.ok()) << mismatches.status().ToString();
  EXPECT_EQ(mismatches.value(), 0u);
}

TEST(FailoverTest, CleanSwitchoverCompletesWorkload) {
  SystemConfig config = FailoverConfig("failover_switchover");
  auto system = System::Create(config).value();
  Oracle oracle;
  Workload workload(system.get(), &oracle, FailoverOptions(7));

  ASSERT_TRUE(workload.RunSteps(40).ok());
  ASSERT_TRUE(system->FlushEverything().ok());
  std::vector<uint64_t> before = ReadDurablePsns(config);
  EXPECT_EQ(system->active_server_node(), 0);

  ASSERT_TRUE(system->Switchover().ok());
  ASSERT_TRUE(workload.Run().ok());

  EXPECT_EQ(system->active_server_node(), 1);
  Metrics& m = system->metrics();
  EXPECT_EQ(m.Get(Counter::kFailoverTakeovers), 1u);
  EXPECT_EQ(m.Get(Counter::kFailoverSwitchovers), 1u);
  EXPECT_GE(m.Get(Counter::kFailoverProbes), 1u);
  ExpectCleanFinish(system.get(), &oracle, &workload);
  std::vector<uint64_t> after = ReadDurablePsns(config);
  for (size_t p = 0; p < before.size(); ++p) {
    EXPECT_GE(after[p], before[p]) << "page " << p;
  }
}

TEST(FailoverTest, PrimaryKillMidWorkloadFailsOver) {
  SystemConfig config = FailoverConfig("failover_kill");
  // Liveness on too: the heartbeat path must ride out the mastership gap
  // without tripping the client's time-based self-fence.
  config.heartbeat_interval_us = 2000;
  config.lease_duration_us = 800000;
  auto system = System::Create(config).value();
  Oracle oracle;
  Workload workload(system.get(), &oracle, FailoverOptions(11));

  ASSERT_TRUE(workload.RunSteps(50).ok());
  ASSERT_TRUE(system->FlushEverything().ok());
  std::vector<uint64_t> before = ReadDurablePsns(config);
  // The flush burned more simulated time than the lease window; take a few
  // more steps so the kill lands on a freshly renewed lease and the standby
  // actually has a mastership gap to refuse probes across.
  ASSERT_TRUE(workload.RunSteps(6).ok());

  ASSERT_TRUE(system->CrashServer().ok());
  ASSERT_TRUE(workload.Run().ok());

  EXPECT_EQ(system->active_server_node(), 1);
  Metrics& m = system->metrics();
  EXPECT_EQ(m.Get(Counter::kFailoverTakeovers), 1u);
  EXPECT_EQ(m.Get(Counter::kFailoverSwitchovers), 1u);
  // The standby refused at least one probe while the dead incumbent's lease
  // was still live, and the driver absorbed that as retryable WouldBlocks.
  EXPECT_GE(m.Get(Counter::kFailoverBlocked), 1u);
  EXPECT_GE(workload.stats().failover_blocks, 1u);
  EXPECT_EQ(workload.stats().zombie_fences, 0u);
  ExpectCleanFinish(system.get(), &oracle, &workload);
  std::vector<uint64_t> after = ReadDurablePsns(config);
  for (size_t p = 0; p < before.size(); ++p) {
    EXPECT_GE(after[p], before[p]) << "page " << p;
  }
}

TEST(FailoverTest, PartitionedOldPrimaryIsFenced) {
  SystemConfig config = FailoverConfig("failover_split_brain");
  auto system = System::Create(config).value();
  Oracle oracle;
  Workload workload(system.get(), &oracle, FailoverOptions(13));

  ASSERT_TRUE(workload.RunSteps(40).ok());

  // Cut node 0 off from both the clients and the arbiter. It still holds a
  // lease, so the standby's first probes are refused (kFailoverInProgress)
  // until the shared horizon passes -- split-brain exposure is exactly the
  // lease window, during which the old primary receives no requests anyway.
  ASSERT_TRUE(system->PartitionServerNode(0, true).ok());
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(system->active_server_node(), 1);
  Metrics& m = system->metrics();
  EXPECT_EQ(m.Get(Counter::kFailoverTakeovers), 1u);
  EXPECT_GE(workload.stats().failover_blocks, 1u);

  // Heal the partition. The deposed node's next admission check discovers
  // the new epoch and self-fences: every data-plane request is rejected.
  ASSERT_TRUE(system->PartitionServerNode(0, false).ok());
  const uint64_t fenced_before = m.Get(Counter::kFailoverDeposedFenced);
  Server& deposed = system->server_node(0);
  for (uint32_t c = 0; c < config.num_clients; ++c) {
    Status st = deposed.Heartbeat(ClientId(c));
    EXPECT_TRUE(st.IsFailoverInProgress()) << st.ToString();
  }
  auto lock = deposed.LockObject(ClientId(0), ObjectId{PageId(0), 0},
                                 LockMode::kShared, Psn());
  EXPECT_TRUE(lock.status().IsFailoverInProgress())
      << lock.status().ToString();
  EXPECT_GT(m.Get(Counter::kFailoverDeposedFenced), fenced_before);

  // And its replication stream is dead too: a membership record shipped
  // under the deposed epoch is rejected by the new primary's receiver.
  const uint64_t rejected_before = m.Get(Counter::kFailoverReplEpochRejected);
  system->server_node(1).ApplyReplicatedMembership(ClientId(0), true,
                                                   /*epoch=*/1);
  EXPECT_EQ(m.Get(Counter::kFailoverReplEpochRejected), rejected_before + 1);
  EXPECT_EQ(system->server_node(1).ReplicatedDeadCountForTest(), 0u);

  ExpectCleanFinish(system.get(), &oracle, &workload);
}

TEST(FailoverTest, DoubleFailoverFallsBackToFirstNode) {
  SystemConfig config = FailoverConfig("failover_double");
  auto system = System::Create(config).value();
  Oracle oracle;
  Workload workload(system.get(), &oracle, FailoverOptions(17));

  ASSERT_TRUE(workload.RunSteps(30).ok());
  ASSERT_TRUE(system->CrashServer().ok());
  ASSERT_TRUE(workload.RunSteps(120).ok());
  ASSERT_EQ(system->active_server_node(), 1);

  // Re-provision the dead first node as a cold standby, then kill the new
  // primary: service must fall back, under a fresh (third) epoch.
  ASSERT_TRUE(system->RecoverServer().ok());
  ASSERT_TRUE(system->CrashServer().ok());
  ASSERT_TRUE(workload.Run().ok());

  EXPECT_EQ(system->active_server_node(), 0);
  Metrics& m = system->metrics();
  EXPECT_EQ(m.Get(Counter::kFailoverTakeovers), 2u);
  EXPECT_EQ(m.Get(Counter::kFailoverSwitchovers), 2u);
  EXPECT_GE(system->mastership()->epoch(), 3u);
  ExpectCleanFinish(system.get(), &oracle, &workload);
}

TEST(FailoverTest, StandbyLeaseExpiryFallsBackWithoutTraffic) {
  SystemConfig config = FailoverConfig("failover_lease_expiry");
  auto system = System::Create(config).value();

  // No workload at all: expire the primary's lease by pure clock motion,
  // then probe from the standby side. Acquisition must wait for the
  // horizon (non-overlap) and then succeed without any client's help.
  auto refused = system->server_node(1).FailoverProbe(ClientId(0));
  EXPECT_TRUE(refused.status().IsFailoverInProgress())
      << refused.status().ToString();
  system->channel().clock()->Advance(config.mastership_lease_us + 1);
  auto granted = system->server_node(1).FailoverProbe(ClientId(0));
  ASSERT_TRUE(granted.ok()) << granted.status().ToString();
  EXPECT_GE(granted.value(), 2u);
  EXPECT_EQ(system->metrics().Get(Counter::kFailoverTakeovers), 1u);

  // The deposed node notices on its next admission.
  Status st = system->server_node(0).Heartbeat(ClientId(0));
  EXPECT_TRUE(st.IsFailoverInProgress()) << st.ToString();
}

// ---------------------------------------------------------------------------
// Defaults-off byte identity.
// ---------------------------------------------------------------------------

struct RunFingerprint {
  uint64_t total_messages = 0;
  uint64_t total_items = 0;
  uint64_t total_bytes = 0;
  uint64_t sim_us = 0;
  uint64_t commits = 0;
  std::string log_bytes;

  friend bool operator==(const RunFingerprint&,
                         const RunFingerprint&) = default;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

RunFingerprint RunSeededWorkload(const SystemConfig& config) {
  auto system = System::Create(config).value();
  Oracle oracle;
  Workload workload(system.get(), &oracle, FailoverOptions(99));
  EXPECT_TRUE(workload.Run().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  EXPECT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);

  RunFingerprint fp;
  fp.total_messages = system->channel().total_messages();
  fp.total_items = system->channel().total_items();
  fp.total_bytes = system->channel().total_bytes();
  fp.sim_us = system->clock().now_us();
  fp.commits = system->client(0).commits();
  fp.log_bytes = ReadFile(config.dir + "/client0.log");
  EXPECT_FALSE(fp.log_bytes.empty());
  return fp;
}

// With hot_standby off there is no standby, no router, and no mastership
// table: the auxiliary knobs must be completely inert -- same message
// counts, same simulated clock, same client log bytes.
TEST(FailoverTest, DefaultsOffFingerprintIsByteIdentical) {
  SystemConfig defaults = SmallConfig("failover_fp_default");
  RunFingerprint base = RunSeededWorkload(defaults);

  SystemConfig tuned = SmallConfig("failover_fp_tuned");
  tuned.mastership_lease_us = 123;
  tuned.failover_timeout_us = 999999;
  RunFingerprint off = RunSeededWorkload(tuned);

  EXPECT_EQ(base, off);
}

}  // namespace
}  // namespace finelog
