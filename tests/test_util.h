// Shared helpers for finelog tests.

#ifndef FINELOG_TESTS_TEST_UTIL_H_
#define FINELOG_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "common/config.h"

namespace finelog {

// Fresh scratch directory per test.
inline std::string MakeTempDir(const std::string& name) {
  std::string dir = "/tmp/finelog_test_" + name + "_" + std::to_string(getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A small default deployment for integration tests.
inline SystemConfig SmallConfig(const std::string& test_name) {
  SystemConfig config;
  config.dir = MakeTempDir(test_name);
  config.num_clients = 3;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 16;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 16;
  config.server_cache_pages = 32;
  return config;
}

// Durable PSN of every page slot, read straight from the database file on
// disk -- not through any cache -- so monotonicity is checked against what
// would survive a power cut. Pages never written read as zero.
inline std::vector<uint64_t> ReadDurablePsns(const SystemConfig& config) {
  std::vector<uint64_t> psns(config.num_pages, 0);
  std::ifstream in(config.dir + "/db.pages", std::ios::binary);
  if (!in) return psns;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  for (uint32_t p = 0; p < config.num_pages; ++p) {
    size_t off = size_t{p} * config.page_size + 8;
    if (off + sizeof(uint64_t) > bytes.size()) break;
    std::memcpy(&psns[p], bytes.data() + off, sizeof(uint64_t));
  }
  return psns;
}

}  // namespace finelog

#endif  // FINELOG_TESTS_TEST_UTIL_H_
