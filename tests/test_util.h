// Shared helpers for finelog tests.

#ifndef FINELOG_TESTS_TEST_UTIL_H_
#define FINELOG_TESTS_TEST_UTIL_H_

#include <unistd.h>

#include <filesystem>
#include <string>

#include "common/config.h"

namespace finelog {

// Fresh scratch directory per test.
inline std::string MakeTempDir(const std::string& name) {
  std::string dir = "/tmp/finelog_test_" + name + "_" + std::to_string(getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A small default deployment for integration tests.
inline SystemConfig SmallConfig(const std::string& test_name) {
  SystemConfig config;
  config.dir = MakeTempDir(test_name);
  config.num_clients = 3;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 16;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 16;
  config.server_cache_pages = 32;
  return config;
}

}  // namespace finelog

#endif  // FINELOG_TESTS_TEST_UTIL_H_
