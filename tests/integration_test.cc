// End-to-end tests of normal processing through the public System API.

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void Start(SystemConfig config) {
    auto sys = System::Create(config);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }
  void Start(const std::string& name) { Start(SmallConfig(name)); }

  // Runs a single-op committed write.
  void CommittedWrite(size_t client, ObjectId oid, const std::string& value) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.Write(txn, oid, value).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
  }

  std::string ReadCommitted(size_t client, ObjectId oid) {
    Client& c = system_->client(client);
    TxnId txn = c.Begin().value();
    auto value = c.Read(txn, oid);
    EXPECT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_TRUE(c.Commit(txn).ok());
    return value.ok() ? value.value() : std::string();
  }

  std::unique_ptr<System> system_;
};

std::string Val(const SystemConfig& cfg, char fill) {
  return std::string(cfg.object_size, fill);
}

TEST_F(IntegrationTest, ReadBootstrapObject) {
  Start("read_bootstrap");
  std::string v = ReadCommitted(0, ObjectId{PageId(0), 0});
  EXPECT_EQ(v, std::string(system_->config().object_size, '\0'));
}

TEST_F(IntegrationTest, WriteReadBackSameClient) {
  Start("write_read");
  std::string v = Val(system_->config(), 'A');
  CommittedWrite(0, ObjectId{PageId(1), 2}, v);
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(1), 2}), v);
}

TEST_F(IntegrationTest, CommitIsPurelyLocal) {
  Start("local_commit");
  Client& c = system_->client(0);
  TxnId txn = c.Begin().value();
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(1), 1}, Val(system_->config(), 'B')).ok());
  uint64_t msgs_before = system_->channel().total_messages();
  ASSERT_TRUE(c.Commit(txn).ok());
  // The paper's headline: commit sends nothing to the server.
  EXPECT_EQ(system_->channel().total_messages(), msgs_before);
}

TEST_F(IntegrationTest, CrossClientVisibilityViaCallback) {
  Start("visibility");
  std::string v = Val(system_->config(), 'C');
  CommittedWrite(0, ObjectId{PageId(2), 3}, v);
  // Client 1 reads: the server calls back client 0 (downgrade), which ships
  // its dirty copy; client 1 must see the new value.
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(2), 3}), v);
  EXPECT_GT(system_->metrics().Get("server.callbacks_object"), 0u);
}

TEST_F(IntegrationTest, WriteWriteAcrossClients) {
  Start("ww");
  std::string v0 = Val(system_->config(), 'D');
  std::string v1 = Val(system_->config(), 'E');
  CommittedWrite(0, ObjectId{PageId(3), 0}, v0);
  CommittedWrite(1, ObjectId{PageId(3), 0}, v1);  // Release callback to client 0.
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(3), 0}), v1);
  EXPECT_EQ(ReadCommitted(0, ObjectId{PageId(3), 0}), v1);
}

TEST_F(IntegrationTest, ConcurrentSamePageUpdatesNoConflict) {
  // The core Section 3.1 scenario: different clients update different
  // objects of the same page, concurrently, with active transactions.
  Start("same_page");
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);
  std::string v0 = Val(system_->config(), 'F');
  std::string v1 = Val(system_->config(), 'G');

  TxnId t0 = c0.Begin().value();
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(4), 0}, v0).ok());
  ASSERT_TRUE(c1.Write(t1, ObjectId{PageId(4), 1}, v1).ok());  // Same page, no block.
  ASSERT_TRUE(c0.Commit(t0).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());

  // Both clients ship their divergent copies; the server merges them.
  ASSERT_TRUE(system_->client(0).ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->client(1).ShipAllDirtyPages().ok());
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(4), 0}), v0);
  EXPECT_EQ(ReadCommitted(2, ObjectId{PageId(4), 1}), v1);
  EXPECT_GT(system_->metrics().Get("server.pages_merged"), 0u);
}

TEST_F(IntegrationTest, ActiveLockBlocksConflictingClient) {
  Start("blocking");
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);
  std::string v = Val(system_->config(), 'H');
  TxnId t0 = c0.Begin().value();
  ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(5), 0}, v).ok());

  TxnId t1 = c1.Begin().value();
  EXPECT_TRUE(c1.Write(t1, ObjectId{PageId(5), 0}, v).IsWouldBlock());
  EXPECT_TRUE(c1.Read(t1, ObjectId{PageId(5), 0}).status().IsWouldBlock());

  ASSERT_TRUE(c0.Commit(t0).ok());
  // After commit the lock is only cached: the callback now succeeds.
  EXPECT_TRUE(c1.Write(t1, ObjectId{PageId(5), 0}, v).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
}

TEST_F(IntegrationTest, AbortRestoresOldValues) {
  Start("abort");
  std::string v_old = Val(system_->config(), 'I');
  std::string v_new = Val(system_->config(), 'J');
  CommittedWrite(0, ObjectId{PageId(6), 0}, v_old);

  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(6), 0}, v_new).ok());
  ASSERT_TRUE(c0.Abort(txn).ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(6), 0}), v_old);
}

TEST_F(IntegrationTest, SavepointPartialRollback) {
  Start("savepoint");
  std::string v1 = Val(system_->config(), 'K');
  std::string v2 = Val(system_->config(), 'L');
  std::string v3 = Val(system_->config(), 'M');

  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(7), 0}, v1).ok());
  auto sp = c0.SetSavepoint(txn);
  ASSERT_TRUE(sp.ok());
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(7), 0}, v2).ok());
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(7), 1}, v3).ok());
  ASSERT_TRUE(c0.RollbackToSavepoint(txn, sp.value()).ok());
  // Post-savepoint updates undone; pre-savepoint update kept.
  EXPECT_EQ(c0.Read(txn, ObjectId{PageId(7), 0}).value(), v1);
  EXPECT_EQ(c0.Read(txn, ObjectId{PageId(7), 1}).value(),
            std::string(system_->config().object_size, '\0'));
  ASSERT_TRUE(c0.Commit(txn).ok());
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(7), 0}), v1);
}

TEST_F(IntegrationTest, StructuralOpsCreateResizeDelete) {
  Start("structural");
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  auto oid = c0.Create(txn, PageId(8), "created-object");
  ASSERT_TRUE(oid.ok()) << oid.status().ToString();
  ASSERT_TRUE(c0.Resize(txn, oid.value(), "resized to a longer value").ok());
  ASSERT_TRUE(c0.Commit(txn).ok());

  EXPECT_EQ(ReadCommitted(1, oid.value()), "resized to a longer value");

  TxnId txn2 = c0.Begin().value();
  ASSERT_TRUE(c0.Delete(txn2, oid.value()).ok());
  ASSERT_TRUE(c0.Commit(txn2).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());

  Client& c1 = system_->client(1);
  TxnId txn3 = c1.Begin().value();
  EXPECT_TRUE(c1.Read(txn3, oid.value()).status().IsNotFound());
  ASSERT_TRUE(c1.Commit(txn3).ok());
}

TEST_F(IntegrationTest, StructuralConflictsSerializeViaPageLock) {
  Start("structural_conflict");
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);
  TxnId t0 = c0.Begin().value();
  ASSERT_TRUE(c0.Create(t0, PageId(9), "from c0").ok());
  // c1 cannot structurally modify the same page while t0 is active.
  TxnId t1 = c1.Begin().value();
  EXPECT_TRUE(c1.Create(t1, PageId(9), "from c1").status().IsWouldBlock());
  ASSERT_TRUE(c0.Commit(t0).ok());
  auto oid = c1.Create(t1, PageId(9), "from c1");
  ASSERT_TRUE(oid.ok()) << oid.status().ToString();
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_EQ(ReadCommitted(2, oid.value()), "from c1");
}

TEST_F(IntegrationTest, PageAllocation) {
  Start("alloc");
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  auto pid = c0.AllocatePage(txn);
  ASSERT_TRUE(pid.ok()) << pid.status().ToString();
  EXPECT_GE(pid.value().value(), system_->config().preloaded_pages);
  auto oid = c0.Create(txn, pid.value(), "on fresh page");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  EXPECT_EQ(ReadCommitted(1, oid.value()), "on fresh page");
}

TEST_F(IntegrationTest, CacheEvictionShipsDirtyPages) {
  SystemConfig config = SmallConfig("eviction");
  config.client_cache_pages = 4;  // Tiny cache forces replacement traffic.
  Start(config);
  Client& c0 = system_->client(0);
  std::string v = Val(system_->config(), 'N');
  for (uint32_t i = 0; i < 12; ++i) {
    PageId p(i);
    TxnId txn = c0.Begin().value();
    ASSERT_TRUE(c0.Write(txn, ObjectId{p, 0}, v).ok());
    ASSERT_TRUE(c0.Commit(txn).ok());
  }
  EXPECT_GT(system_->metrics().Get("client.pages_shipped"), 0u);
  for (uint32_t i = 0; i < 12; ++i) {
    PageId p(i);
    EXPECT_EQ(ReadCommitted(1, ObjectId{p, 0}), v) << "page " << p;
  }
}

TEST_F(IntegrationTest, EscalationToPageLock) {
  SystemConfig config = SmallConfig("escalation");
  config.escalation_threshold = 3;
  Start(config);
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  std::string v = Val(system_->config(), 'O');
  for (SlotId s = 0; s < 6; ++s) {
    ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(10), s}, v).ok());
  }
  ASSERT_TRUE(c0.Commit(txn).ok());
  EXPECT_GT(system_->metrics().Get("client.escalations"), 0u);
  // Another client's access de-escalates the page lock.
  EXPECT_EQ(ReadCommitted(1, ObjectId{PageId(10), 0}), v);
}

TEST_F(IntegrationTest, ManyClientsInterleavedOnOnePage) {
  SystemConfig config = SmallConfig("many_clients");
  config.num_clients = 6;
  Start(config);
  std::vector<TxnId> txns;
  std::string base = Val(system_->config(), 'P');
  for (size_t i = 0; i < 6; ++i) {
    Client& c = system_->client(i);
    TxnId t = c.Begin().value();
    std::string v = base;
    v[0] = static_cast<char>('0' + i);
    ASSERT_TRUE(c.Write(t, ObjectId{PageId(11), static_cast<SlotId>(i)}, v).ok());
    txns.push_back(t);
  }
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(system_->client(i).Commit(txns[i]).ok());
  }
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(system_->client(i).ShipAllDirtyPages().ok());
  }
  for (size_t i = 0; i < 6; ++i) {
    std::string v = base;
    v[0] = static_cast<char>('0' + i);
    EXPECT_EQ(ReadCommitted((i + 1) % 6, ObjectId{PageId(11), static_cast<SlotId>(i)}),
              v);
  }
}

TEST_F(IntegrationTest, LockCachingAvoidsRepeatServerTrips) {
  Start("lock_caching");
  Client& c0 = system_->client(0);
  std::string v = Val(system_->config(), 'Q');
  CommittedWrite(0, ObjectId{PageId(12), 0}, v);
  uint64_t misses_before = system_->metrics().Get("client.lock_misses");
  // Same object again: the cached X lock must be a pure local hit.
  CommittedWrite(0, ObjectId{PageId(12), 0}, v);
  (void)c0;
  EXPECT_EQ(system_->metrics().Get("client.lock_misses"), misses_before);
}

}  // namespace
}  // namespace finelog
