// Long-running soak: the phase-based workload generator under continuous
// chaos, combining every fault family from the chaos and liveness sweeps
// in ONE run (they are elsewhere proven separately):
//
//   - a lossy wire (drop/dup/reorder/delay) for the whole soak,
//   - a network partition of one client mid-phase, driven through lease
//     expiry, presumed-dead declaration, healing, and zombie recovery,
//   - a full crash of another client mid-merge-storm, recovered via
//     ordinary client crash recovery.
//
// Survivors must finish every phase quota; both interrupted clients must
// rejoin and finish the remaining quotas after recovery; and the run ends
// with zero oracle divergence and monotone durable PSNs. Group commit
// stays OFF here on purpose: a crash with an open commit group loses the
// unforced tail by design, which is group_commit_test territory, not a
// soak invariant.
//
// Budget: one seed, CI-sized (a few thousand driver steps). The cheap
// per-cell matrix sweeps stay in chaos_net_test / chaos_partition_test.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload_gen.h"
#include "tests/test_util.h"
#include "util/metrics.h"

namespace finelog {
namespace {

constexpr size_t kPartitionedClient = 3;
constexpr size_t kCrashedClient = 1;
constexpr uint64_t kNetSeed = 7;

NetFaultConfig LightMix() {
  NetFaultConfig net;
  net.drop_rate = 0.02;
  net.dup_rate = 0.02;
  net.reorder_rate = 0.02;
  net.delay_rate = 0.02;
  net.seed = kNetSeed;
  return net;
}

SystemConfig SoakConfig(const std::string& dir) {
  SystemConfig config;
  config.dir = dir;
  config.num_clients = 4;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 16;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 4;
  config.server_cache_pages = 16;
  config.heartbeat_interval_us = 2000;
  // Sized like the partition sweep: one fully-burned RPC against the
  // partition costs ~130ms simulated and a partitioned client's driver
  // step can burn two; survivors renew within that comfortably.
  config.lease_duration_us = 800000;
  return config;
}

WorkloadGenOptions SoakPhases() {
  WorkloadGenOptions options;
  options.seed = 20260809;
  // Phase 0 is deliberately long: the partition, declaration, healing and
  // zombie recovery all happen inside it, so the merge storm never runs
  // against the dead client's quarantined hot pages.
  PhaseOptions skewed;
  skewed.kind = PhaseKind::kMixed;
  skewed.zipf_theta = 0.8;
  skewed.txns_per_client = 24;
  skewed.ops_per_txn = 4;
  skewed.write_fraction = 0.6;
  PhaseOptions storm;
  storm.kind = PhaseKind::kMergeStorm;
  storm.storm_pages = 2;
  storm.txns_per_client = 3;
  storm.ops_per_txn = 3;
  storm.write_fraction = 0.8;
  PhaseOptions cooldown;
  cooldown.kind = PhaseKind::kMixed;
  cooldown.zipf_theta = 0.0;
  cooldown.txns_per_client = 4;
  cooldown.ops_per_txn = 3;
  cooldown.write_fraction = 0.5;
  options.phases = {skewed, storm, cooldown};
  return options;
}

uint64_t TotalQuota(const WorkloadGenOptions& options) {
  uint64_t total = 0;
  for (const PhaseOptions& p : options.phases) total += p.txns_per_client;
  return total;
}

TEST(SoakChaosTest, ContinuousChaosSoakPreservesInvariants) {
  SystemConfig config = SoakConfig(MakeTempDir("soak_chaos"));
  auto system = System::Create(config).value();
  Metrics& m = system->metrics();
  Oracle oracle;
  WorkloadGenOptions options = SoakPhases();
  WorkloadGen gen(system.get(), &oracle, options);
  const ClientId dead_id(static_cast<uint32_t>(kPartitionedClient));

  // --- Healthy warmup, then a durable-PSN baseline. ---
  ASSERT_TRUE(gen.RunSteps(32).ok());
  ASSERT_TRUE(system->FlushEverything().ok());
  std::vector<uint64_t> before = ReadDurablePsns(config);

  // --- Lossy wire for the rest of the soak. ---
  system->rpc().faults() = LightMix();
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(gen.RunSteps(config.num_clients).ok());
  }
  ASSERT_EQ(gen.current_phase(), 0u);

  // --- Partition one client mid-phase; drive to presumed-dead. ---
  NetFaultConfig partitioned = LightMix();
  partitioned.partitioned_clients = {
      static_cast<uint32_t>(kPartitionedClient)};
  system->rpc().faults() = partitioned;

  bool declared = false;
  for (int round = 0; round < 100 && !declared; ++round) {
    ASSERT_TRUE(gen.RunSteps(config.num_clients).ok());
    declared = system->server().IsPresumedDead(dead_id);
  }
  ASSERT_TRUE(declared) << "lease never expired under partition";
  EXPECT_FALSE(system->server().IsPresumedDead(ClientId(0)));
  EXPECT_FALSE(system->server().IsPresumedDead(
      ClientId(static_cast<uint32_t>(kCrashedClient))));
  ASSERT_EQ(gen.current_phase(), 0u)
      << "declaration escaped the long mixed phase; grow its quota";

  // --- Heal. The returning client must still be fenced, then recover. ---
  system->rpc().faults() = LightMix();
  auto zombie = system->client(kPartitionedClient).Begin();
  ASSERT_FALSE(zombie.ok());
  EXPECT_TRUE(zombie.status().IsZombieFenced());
  ASSERT_TRUE(system->RecoverZombie(kPartitionedClient).ok());
  gen.OnClientRecovered(kPartitionedClient);
  EXPECT_GE(m.Get(Counter::kLivenessRecoveredZombies), 1u);

  // --- Drive into the merge storm, then crash a client mid-storm. ---
  int rounds = 0;
  while (gen.current_phase() == 0) {
    ASSERT_TRUE(gen.RunSteps(config.num_clients).ok());
    ASSERT_LT(++rounds, 4000) << "phase 0 never drained";
  }
  ASSERT_EQ(gen.current_phase(), 1u);
  ASSERT_TRUE(system->CrashClient(kCrashedClient).ok());
  oracle.CrashClient(ClientId(static_cast<uint32_t>(kCrashedClient)));
  gen.OnClientCrashed(kCrashedClient);

  // Survivors keep storming against the crashed client's quarantined
  // pages for a couple of rounds (bounded WouldBlock churn), then the
  // client recovers via ordinary crash recovery and rejoins.
  ASSERT_TRUE(gen.RunSteps(2 * config.num_clients).ok());
  ASSERT_TRUE(system->RecoverClient(kCrashedClient).ok());
  gen.OnClientRecovered(kCrashedClient);

  // --- Drain the remaining phases under the lossy wire. ---
  bool complete = gen.done();
  for (int i = 0; i < 400 && !complete; ++i) {
    auto done = gen.RunSteps(500);
    ASSERT_TRUE(done.ok());
    complete = done.value();
  }
  ASSERT_TRUE(complete) << "soak never drained";

  // --- Quotas: survivors finished everything; the interrupted clients
  // finished everything from their recovery point on (both recovered
  // inside phase 0 / phase 1, so they complete the storm and cooldown
  // quotas at minimum). ---
  const uint64_t full_quota = TotalQuota(options);
  EXPECT_EQ(gen.client_commits(0), full_quota);
  EXPECT_EQ(gen.client_commits(2), full_quota);
  EXPECT_EQ(gen.client_commits(kPartitionedClient), full_quota)
      << "recovered zombie rejoined mid-phase-0 and must finish the quota";
  EXPECT_GE(gen.client_commits(kCrashedClient),
            uint64_t{options.phases[1].txns_per_client} +
                uint64_t{options.phases[2].txns_per_client});

  WorkloadStats totals = gen.TotalWorkloadStats();
  EXPECT_EQ(totals.read_mismatches, 0u);
  EXPECT_GE(totals.zombie_fences, 1u)
      << "the partitioned client was never fenced by the driver";
  EXPECT_GT(m.Get(Counter::kNetPartitionDrops), 0u);

  // --- Final invariants on a clean wire: zero divergence, monotone
  // durable PSNs. ---
  system->rpc().faults() = NetFaultConfig{};
  ASSERT_TRUE(system->FlushEverything().ok());
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);
  std::vector<uint64_t> after = ReadDurablePsns(config);
  for (size_t p = 0; p < before.size(); ++p) {
    EXPECT_GE(after[p], before[p]) << "durable PSN regressed on page " << p;
  }
}

}  // namespace
}  // namespace finelog
