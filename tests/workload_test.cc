// Tests of the workload driver and oracle themselves (the harness the
// durability properties rest on must be trustworthy).

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

TEST(OracleTest, StagingFollowsTransactionOutcome) {
  Oracle oracle;
  oracle.SeedCommitted(ObjectId{PageId(1), 0}, "initial");
  oracle.StageWrite(TxnId(100), ObjectId{PageId(1), 0}, "staged");

  // Before commit: the writer sees its own value, others the committed one.
  EXPECT_EQ(**oracle.ExpectedRead(TxnId(100), ObjectId{PageId(1), 0}), "staged");
  EXPECT_EQ(**oracle.ExpectedRead(TxnId(200), ObjectId{PageId(1), 0}), "initial");

  oracle.CommitTxn(TxnId(100));
  EXPECT_EQ(**oracle.ExpectedRead(TxnId(200), ObjectId{PageId(1), 0}), "staged");
}

TEST(OracleTest, AbortDiscardsStagedValues) {
  Oracle oracle;
  oracle.SeedCommitted(ObjectId{PageId(1), 0}, "initial");
  oracle.StageWrite(TxnId(100), ObjectId{PageId(1), 0}, "doomed");
  oracle.AbortTxn(TxnId(100));
  EXPECT_EQ(**oracle.ExpectedRead(TxnId(100), ObjectId{PageId(1), 0}), "initial");
}

TEST(OracleTest, CrashDiscardsOnlyThatClientsTxns) {
  Oracle oracle;
  TxnId t_c0 = MakeTxnId(ClientId(0), 1);  // Client 0's id shape.
  TxnId t_c1 = MakeTxnId(ClientId(1), 1);
  oracle.StageWrite(t_c0, ObjectId{PageId(1), 0}, "from-c0");
  oracle.StageWrite(t_c1, ObjectId{PageId(1), 1}, "from-c1");
  oracle.CrashClient(ClientId(0));
  oracle.CommitTxn(t_c0);  // No-op: staged state was discarded.
  oracle.CommitTxn(t_c1);
  EXPECT_FALSE(oracle.ExpectedRead(TxnId(0), ObjectId{PageId(1), 0}).has_value());
  EXPECT_EQ(**oracle.ExpectedRead(TxnId(0), ObjectId{PageId(1), 1}), "from-c1");
}

TEST(OracleTest, StagedDeleteBecomesCommittedAbsence) {
  Oracle oracle;
  oracle.SeedCommitted(ObjectId{PageId(2), 0}, "exists");
  oracle.StageDelete(TxnId(300), ObjectId{PageId(2), 0});
  oracle.CommitTxn(TxnId(300));
  auto expected = oracle.ExpectedRead(TxnId(0), ObjectId{PageId(2), 0});
  ASSERT_TRUE(expected.has_value());
  EXPECT_FALSE(expected->has_value());  // Deleted.
}

TEST(WorkloadTest, DeterministicAcrossRuns) {
  WorkloadStats first;
  for (int run = 0; run < 2; ++run) {
    auto system = System::Create(
        SmallConfig("wl_det_" + std::to_string(run))).value();
    Oracle oracle;
    WorkloadOptions options;
    options.txns_per_client = 10;
    options.seed = 77;
    Workload workload(system.get(), &oracle, options);
    ASSERT_TRUE(workload.Run().ok());
    if (run == 0) {
      first = workload.stats();
    } else {
      EXPECT_EQ(workload.stats().commits, first.commits);
      EXPECT_EQ(workload.stats().aborts, first.aborts);
      EXPECT_EQ(workload.stats().ops, first.ops);
      EXPECT_EQ(workload.stats().would_blocks, first.would_blocks);
      EXPECT_EQ(workload.stats().sim_time_us, first.sim_time_us);
    }
  }
}

TEST(WorkloadTest, CompletesExactTransactionQuota) {
  auto system = System::Create(SmallConfig("wl_quota")).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 15;
  options.seed = 3;
  Workload workload(system.get(), &oracle, options);
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.stats().commits + workload.stats().aborts,
            15u * system->num_clients() + workload.stats().aborts);
  EXPECT_EQ(workload.stats().commits, 15u * system->num_clients());
}

TEST(WorkloadTest, CrashedClientSkippedUntilRecovered) {
  auto system = System::Create(SmallConfig("wl_crash_skip")).value();
  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 8;
  options.seed = 9;
  Workload workload(system.get(), &oracle, options);
  ASSERT_TRUE(workload.RunSteps(10).ok());
  ASSERT_TRUE(system->CrashClient(1).ok());
  oracle.CrashClient(ClientId(1));
  workload.OnClientCrashed(1);
  // The driver makes progress with the remaining clients.
  auto done = workload.RunSteps(200);
  ASSERT_TRUE(done.ok());
  ASSERT_TRUE(system->RecoverClient(1).ok());
  workload.OnClientRecovered(1);
  ASSERT_TRUE(workload.Run().ok());
  EXPECT_EQ(workload.stats().read_mismatches, 0u);
  auto mismatches = oracle.Verify(system.get(), 0);
  ASSERT_TRUE(mismatches.ok());
  EXPECT_EQ(mismatches.value(), 0u);
}

TEST(WorkloadTest, PatternsStayInPreloadedRange) {
  for (AccessPattern pattern :
       {AccessPattern::kUniform, AccessPattern::kHotCold,
        AccessPattern::kPrivate, AccessPattern::kSharedHot}) {
    auto system = System::Create(SmallConfig(
        "wl_range_" + std::to_string(static_cast<int>(pattern)))).value();
    Oracle oracle;
    WorkloadOptions options;
    options.txns_per_client = 6;
    options.pattern = pattern;
    options.seed = 21;
    Workload workload(system.get(), &oracle, options);
    // Out-of-range object ids would surface as NotFound errors and fail Run.
    EXPECT_TRUE(workload.Run().ok())
        << "pattern " << static_cast<int>(pattern);
    EXPECT_EQ(workload.stats().read_mismatches, 0u);
  }
}

// 512 clients -- 8x more clients than preloaded pages, far past the old
// ~64-client comfort zone. kPrivate (page spans) and kSharedHot (slot
// ranges) both partition by client index and used to walk out of the
// preloaded range or collapse onto one slot once clients outnumbered the
// resource being split; the modulo forms keep every pick in range at any
// scale. Quotas are tiny: this is a range/overflow smoke, not a perf run.
TEST(WorkloadTest, FiveHundredTwelveClientSmoke) {
  for (AccessPattern pattern :
       {AccessPattern::kPrivate, AccessPattern::kSharedHot}) {
    SystemConfig config;
    config.dir = MakeTempDir("wl_512_" + std::to_string(static_cast<int>(pattern)));
    config.num_clients = 512;
    config.page_size = 512;
    config.num_pages = 128;
    config.preloaded_pages = 64;
    config.objects_per_page = 8;
    config.object_size = 32;
    config.client_cache_pages = 2;
    config.server_cache_pages = 64;
    auto system = System::Create(config).value();
    Oracle oracle;
    WorkloadOptions options;
    options.txns_per_client = 1;
    options.ops_per_txn = 2;
    options.write_fraction = 0.5;
    options.pattern = pattern;
    options.seed = 512;
    Workload workload(system.get(), &oracle, options);
    ASSERT_TRUE(workload.Run().ok()) << "pattern "
                                     << static_cast<int>(pattern);
    EXPECT_EQ(workload.stats().commits, 512u);
    EXPECT_EQ(workload.stats().read_mismatches, 0u);
    auto mismatches = oracle.Verify(system.get(), 0);
    ASSERT_TRUE(mismatches.ok());
    EXPECT_EQ(mismatches.value(), 0u);
  }
}

}  // namespace
}  // namespace finelog
