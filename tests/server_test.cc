// Server-side bookkeeping tests (Section 3.2): DCT entry lifecycle,
// replacement log records, flush notifications, and the merge path --
// observed through the Server's introspection accessors.

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto sys = System::Create(SmallConfig("server_unit"));
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    system_ = std::move(sys).value();
  }

  std::string Val(char fill) {
    return std::string(system_->config().object_size, fill);
  }

  std::unique_ptr<System> system_;
};

TEST_F(ServerTest, DctEntryCreatedAtFirstExclusiveGrant) {
  Client& c0 = system_->client(0);
  EXPECT_FALSE(system_->server().dct().Get(PageId(1), ClientId(0)).has_value());
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(1), 0}, Val('a')).ok());
  // The X grant inserted the entry; the client had no cached copy, so the
  // PSN is that of the copy the server sent.
  auto entry = system_->server().dct().Get(PageId(1), ClientId(0));
  ASSERT_TRUE(entry.has_value());
  EXPECT_NE(entry->psn, kNullPsn);
  ASSERT_TRUE(c0.Commit(txn).ok());
}

TEST_F(ServerTest, DctPsnAdvancesOnShip) {
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(1), 0}, Val('b')).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  Psn at_grant = system_->server().dct().Get(PageId(1), ClientId(0))->psn;
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());
  Psn after_ship = system_->server().dct().Get(PageId(1), ClientId(0))->psn;
  EXPECT_GT(after_ship, at_grant);
}

TEST_F(ServerTest, ReplacementRecordWrittenBeforePageForce) {
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(2), 0}, Val('c')).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());

  uint64_t records_before =
      system_->metrics().Get("server.replacement_records");
  ASSERT_TRUE(system_->server().FlushAllPages().ok());
  EXPECT_GT(system_->metrics().Get("server.replacement_records"),
            records_before);

  // The record is durable in the server log and names the client.
  bool found = false;
  Status st = system_->server().log().Scan(
      system_->server().log().begin_lsn(), [&](const LogRecord& rec) {
        if (rec.type == LogRecordType::kReplacement && rec.page == PageId(2)) {
          for (const DctEntry& e : rec.dct) {
            if (e.client == ClientId(0)) found = true;
          }
        }
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(found);
}

TEST_F(ServerTest, FlushRemovesDctEntryOnceLocksGone) {
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(3), 0}, Val('d')).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());

  // Flush while c0 still holds the (cached) X lock: entry survives.
  ASSERT_TRUE(system_->server().FlushAllPages().ok());
  EXPECT_TRUE(system_->server().dct().Get(PageId(3), ClientId(0)).has_value());

  // c1 takes the object over (c0's lock released), then a flush drops it.
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(c1.Write(t1, ObjectId{PageId(3), 0}, Val('e')).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  ASSERT_TRUE(c1.ShipAllDirtyPages().ok());
  ASSERT_TRUE(system_->server().FlushAllPages().ok());
  EXPECT_FALSE(system_->server().dct().Get(PageId(3), ClientId(0)).has_value());
  EXPECT_TRUE(system_->server().dct().Get(PageId(3), ClientId(1)).has_value());
}

TEST_F(ServerTest, MergePreservesOtherClientsSlots) {
  Client& c0 = system_->client(0);
  Client& c1 = system_->client(1);
  TxnId t0 = c0.Begin().value();
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(c0.Write(t0, ObjectId{PageId(4), 0}, Val('f')).ok());
  ASSERT_TRUE(c1.Write(t1, ObjectId{PageId(4), 1}, Val('g')).ok());
  ASSERT_TRUE(c0.Commit(t0).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  ASSERT_TRUE(c0.ShipAllDirtyPages().ok());
  ASSERT_TRUE(c1.ShipAllDirtyPages().ok());

  BufferPool::Frame* frame = system_->server().pool().Peek(PageId(4));
  ASSERT_NE(frame, nullptr);
  EXPECT_EQ(frame->page.ReadObject(0).value(), Val('f'));
  EXPECT_EQ(frame->page.ReadObject(1).value(), Val('g'));
}

TEST_F(ServerTest, ServerCheckpointCarriesDct) {
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(5), 0}, Val('h')).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(system_->server().TakeCheckpoint().ok());

  Lsn ckpt = system_->server().log().checkpoint_lsn();
  ASSERT_NE(ckpt, kNullLsn);
  auto rec = system_->server().log().Read(ckpt);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec.value().type, LogRecordType::kServerCheckpoint);
  bool has_entry = false;
  for (const DctEntry& e : rec.value().dct) {
    if (e.page == PageId(5) && e.client == ClientId(0)) has_entry = true;
  }
  EXPECT_TRUE(has_entry);
}

TEST_F(ServerTest, CrashedServerRefusesRequests) {
  Client& c0 = system_->client(0);
  ASSERT_TRUE(system_->CrashServer().ok());
  TxnId txn = c0.Begin().value();  // Begin is local: fine.
  // Cached-lock/cached-page operations still work locally...
  // ...but a lock miss reaches the dead server.
  EXPECT_TRUE(c0.Write(txn, ObjectId{PageId(6), 0}, Val('i')).IsCrashed());
  ASSERT_TRUE(system_->RecoverServer().ok());
  EXPECT_TRUE(c0.Write(txn, ObjectId{PageId(6), 0}, Val('i')).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
}

TEST_F(ServerTest, LocalOperationsSurviveServerOutage) {
  // The availability story: a client with cached locks and pages keeps
  // committing while the server is down.
  Client& c0 = system_->client(0);
  TxnId warm = c0.Begin().value();
  ASSERT_TRUE(c0.Write(warm, ObjectId{PageId(7), 0}, Val('j')).ok());
  ASSERT_TRUE(c0.Commit(warm).ok());

  ASSERT_TRUE(system_->CrashServer().ok());
  TxnId txn = c0.Begin().value();
  EXPECT_TRUE(c0.Write(txn, ObjectId{PageId(7), 0}, Val('k')).ok());  // Cached X.
  EXPECT_TRUE(c0.Commit(txn).ok());  // Local log force only.
  ASSERT_TRUE(system_->RecoverAll().ok());

  Client& c1 = system_->client(1);
  TxnId check = c1.Begin().value();
  EXPECT_EQ(c1.Read(check, ObjectId{PageId(7), 0}).value(), Val('k'));
  ASSERT_TRUE(c1.Commit(check).ok());
}

TEST_F(ServerTest, PageDeallocationRetainsPsnLineage) {
  // Admin-level deallocation (quiescent): the space map remembers the final
  // PSN so a reallocated page starts past every PSN it ever carried.
  Client& c0 = system_->client(0);
  TxnId txn = c0.Begin().value();
  auto pid = c0.AllocatePage(txn);
  ASSERT_TRUE(pid.ok());
  auto oid = c0.Create(txn, pid.value(), "ephemeral");
  ASSERT_TRUE(oid.ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(system_->FlushEverything().ok());
  // An exclusively-locked page cannot be deallocated...
  EXPECT_EQ(system_->server().DeallocatePage(pid.value()).code(),
            StatusCode::kFailedPrecondition);
  // ...so the client releases its idle locks first (orderly disconnect).
  ASSERT_TRUE(c0.ReleaseIdleLocks().ok());
  ASSERT_TRUE(system_->FlushEverything().ok());

  Psn final_psn =
      system_->server().pool().Peek(pid.value()) != nullptr
          ? system_->server().pool().Peek(pid.value())->page.psn()
          : Psn(0);
  ASSERT_TRUE(system_->server().DeallocatePage(pid.value()).ok());
  EXPECT_FALSE(system_->server().space_map().IsAllocated(pid.value()));

  auto realloc = system_->server().space_map().AllocatePage();
  ASSERT_TRUE(realloc.ok());
  EXPECT_EQ(realloc.value().page, pid.value());
  EXPECT_GT(realloc.value().initial_psn, final_psn);
}

}  // namespace
}  // namespace finelog
