// System-level tests: lifecycle, persistence across process restarts
// (System re-creation over an existing directory), and API preconditions.

#include <gtest/gtest.h>

#include "core/system.h"
#include "tests/test_util.h"

namespace finelog {
namespace {

TEST(SystemTest, PersistsAcrossProcessRestart) {
  SystemConfig config = SmallConfig("sys_persist");
  std::string value(config.object_size, 'P');
  {
    auto system = System::Create(config).value();
    Client& c = system->client(0);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.Write(txn, ObjectId{PageId(1), 1}, value).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
    ASSERT_TRUE(system->FlushEverything().ok());
    // System destroyed: simulates a clean process shutdown.
  }
  // Reopen over the same directory: no re-bootstrap, data intact.
  auto system = System::Create(config).value();
  Client& c = system->client(1);
  TxnId txn = c.Begin().value();
  EXPECT_EQ(c.Read(txn, ObjectId{PageId(1), 1}).value(), value);
  ASSERT_TRUE(c.Commit(txn).ok());
}

TEST(SystemTest, ColdRestartRecoversUnflushedCommits) {
  // Harsher: everything committed but nothing flushed, then the whole
  // process goes away. On reopen, client restart recovery must replay from
  // the private logs.
  SystemConfig config = SmallConfig("sys_cold");
  std::string value(config.object_size, 'C');
  {
    auto system = System::Create(config).value();
    Client& c = system->client(0);
    TxnId txn = c.Begin().value();
    ASSERT_TRUE(c.Write(txn, ObjectId{PageId(2), 2}, value).ok());
    ASSERT_TRUE(c.Commit(txn).ok());
    // No flush, no ship. The commit forced the private log; that must be
    // enough.
  }
  auto system = System::Create(config).value();
  // A fresh process has no volatile state: run restart recovery for
  // everything, as a real deployment would after a power failure.
  for (size_t i = 0; i < system->num_clients(); ++i) {
    ASSERT_TRUE(system->CrashClient(i).ok());
  }
  ASSERT_TRUE(system->CrashServer().ok());
  ASSERT_TRUE(system->RecoverAll().ok());
  Client& c = system->client(1);
  TxnId txn = c.Begin().value();
  EXPECT_EQ(c.Read(txn, ObjectId{PageId(2), 2}).value(), value);
  ASSERT_TRUE(c.Commit(txn).ok());
}

TEST(SystemTest, RecoverClientRequiresLiveServer) {
  auto system = System::Create(SmallConfig("sys_order")).value();
  ASSERT_TRUE(system->CrashClient(0).ok());
  ASSERT_TRUE(system->CrashServer().ok());
  EXPECT_EQ(system->RecoverClient(0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(system->RecoverServer().ok());
  EXPECT_TRUE(system->RecoverClient(0).ok());
}

TEST(SystemTest, InvalidConfigRejected) {
  SystemConfig config = SmallConfig("sys_invalid");
  config.preloaded_pages = config.num_pages + 1;
  EXPECT_EQ(System::Create(config).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SystemTest, ChannelAccountingIsExact) {
  auto system = System::Create(SmallConfig("sys_channel")).value();
  EXPECT_EQ(system->channel().total_messages(), 0u);
  Client& c = system->client(0);
  TxnId txn = c.Begin().value();
  std::string v(system->config().object_size, 'M');
  ASSERT_TRUE(c.Write(txn, ObjectId{PageId(1), 0}, v).ok());
  // One lock request/reply pair (cold object, no conflicts).
  EXPECT_EQ(system->channel().stats(MessageType::kLockRequest).count, 1u);
  EXPECT_EQ(system->channel().stats(MessageType::kLockReply).count, 1u);
  // The reply carried a whole page.
  EXPECT_GE(system->channel().stats(MessageType::kLockReply).bytes,
            system->config().page_size);
  uint64_t before = system->channel().total_messages();
  ASSERT_TRUE(c.Commit(txn).ok());
  EXPECT_EQ(system->channel().total_messages(), before);
  // Simulated time advanced by the two message latencies plus the commit's
  // log force at minimum.
  EXPECT_GE(system->clock().now_us(),
            2 * system->config().costs.msg_latency_us +
                system->config().costs.log_force_us);
}

TEST(SystemTest, ReleaseIdleLocksEnablesQuiescence) {
  auto system = System::Create(SmallConfig("sys_idle")).value();
  Client& c0 = system->client(0);
  std::string v(system->config().object_size, 'Q');
  TxnId txn = c0.Begin().value();
  ASSERT_TRUE(c0.Write(txn, ObjectId{PageId(3), 0}, v).ok());
  ASSERT_TRUE(c0.Commit(txn).ok());
  ASSERT_TRUE(c0.ReleaseIdleLocks().ok());
  EXPECT_EQ(c0.llm().size(), 0u);
  EXPECT_EQ(c0.cache().size(), 0u);
  // Another client can now take exclusive locks with zero callbacks.
  uint64_t cbs = system->metrics().Get("server.callbacks_object");
  Client& c1 = system->client(1);
  TxnId t1 = c1.Begin().value();
  ASSERT_TRUE(c1.Write(t1, ObjectId{PageId(3), 0}, v).ok());
  ASSERT_TRUE(c1.Commit(t1).ok());
  EXPECT_EQ(system->metrics().Get("server.callbacks_object"), cbs);
  // And the released client's committed data was shipped, not lost.
  TxnId t2 = c1.Begin().value();
  EXPECT_EQ(c1.Read(t2, ObjectId{PageId(3), 0}).value(), v);
  ASSERT_TRUE(c1.Commit(t2).ok());
}

}  // namespace
}  // namespace finelog
