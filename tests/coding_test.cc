#include <gtest/gtest.h>

#include "util/coding.h"
#include "util/crc32.h"

namespace finelog {
namespace {

TEST(CodingTest, FixedWidthRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU16(0xBEEF);
  enc.PutU32(0xDEADBEEF);
  enc.PutU64(0x0123456789ABCDEFull);
  Decoder dec((Slice(enc.buffer())));
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  ASSERT_TRUE(dec.GetU8(&a));
  ASSERT_TRUE(dec.GetU16(&b));
  ASSERT_TRUE(dec.GetU32(&c));
  ASSERT_TRUE(dec.GetU64(&d));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_TRUE(dec.empty());
}

TEST(CodingTest, LengthPrefixedBytes) {
  Encoder enc;
  enc.PutBytes("hello");
  enc.PutBytes("");
  enc.PutBytes(std::string(1000, 'x'));
  Decoder dec((Slice(enc.buffer())));
  std::string a, b, c;
  ASSERT_TRUE(dec.GetBytes(&a));
  ASSERT_TRUE(dec.GetBytes(&b));
  ASSERT_TRUE(dec.GetBytes(&c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
}

TEST(CodingTest, UnderflowDetected) {
  Encoder enc;
  enc.PutU16(7);
  Decoder dec((Slice(enc.buffer())));
  uint32_t v;
  EXPECT_FALSE(dec.GetU32(&v));
  uint64_t w;
  EXPECT_FALSE(dec.GetU64(&w));
  // The u16 is still readable.
  uint16_t u;
  EXPECT_TRUE(dec.GetU16(&u));
  EXPECT_EQ(u, 7);
}

TEST(CodingTest, TruncatedBytesDetected) {
  Encoder enc;
  enc.PutU32(100);  // Claims 100 bytes follow; none do.
  Decoder dec((Slice(enc.buffer())));
  std::string out;
  EXPECT_FALSE(dec.GetBytes(&out));
}

TEST(CodingTest, ExternalBufferAppend) {
  std::string buf = "prefix:";
  Encoder enc(&buf);
  enc.PutU8('!');
  EXPECT_EQ(buf, std::string("prefix:!"));
}

TEST(Crc32Test, KnownValuesAndProperties) {
  // CRC32C of "123456789" is a published test vector.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // Sensitive to any single-bit change.
  std::string data(64, 'a');
  uint32_t base = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); i += 13) {
    std::string mutated = data;
    mutated[i] ^= 1;
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base) << "byte " << i;
  }
}

TEST(Crc32Test, SeedExtension) {
  std::string data = "hello world";
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t partial = Crc32c(data.data(), 5);
  uint32_t extended = Crc32c(data.data() + 5, data.size() - 5, partial);
  EXPECT_EQ(extended, whole);
}

}  // namespace
}  // namespace finelog
