// Partition chaos sweep (DESIGN.md section 14, EXPERIMENTS.md E13): one
// client's network legs are dropped entirely mid-workload. The sweep proves
// the lease machinery end to end, per net seed:
//
//   1. The partitioned client burns its RPC retry budget, self-fences on
//      its locally-expired lease, and the driver sidelines it.
//   2. The survivors' own traffic drives the server-side declaration
//      (presumed dead) without cascading: their leases keep renewing even
//      while the partitioned client's timeouts advance the simulated clock
//      in large steps.
//   3. Survivors resume committing within bounded simulated time of the
//      declaration.
//   4. After the partition heals, the returning client is still fenced
//      (zombie) until RecoverZombie reruns client crash recovery; then it
//      rejoins and finishes its quota.
//   5. Zero oracle divergence and monotone durable PSNs at the end.
//
// The workload uses the kPrivate access pattern: each client updates its
// own page span. That isolates the liveness property under test -- with a
// shared hot set, the dead client's DCT-quarantined pages would (by design)
// block the survivors' hot-page traffic, which is the *locking* behavior
// covered by liveness_test, not the partition-tolerant *progress* behavior
// swept here.
//
// Per-seed summary lines go to stdout and, when FINELOG_LIVENESS_SUMMARY
// names a file, into that file (the CI chaos-smoke job uploads it).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"
#include "tests/test_util.h"
#include "util/metrics.h"

namespace finelog {
namespace {

constexpr size_t kPartitionedClient = 2;

SystemConfig PartitionConfig(const std::string& dir, uint64_t net_seed) {
  SystemConfig config;
  config.dir = dir;
  config.num_clients = 3;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 16;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 4;
  config.server_cache_pages = 8;
  config.net_faults.seed = net_seed;
  config.heartbeat_interval_us = 2000;
  // Sized per the config.h guidance: one fully-burned RPC against the
  // partition costs max_attempts * timeout plus the backoff ladder
  // (~130ms simulated), and a partitioned client's driver step can burn
  // two of those (heartbeat + operation). 800ms keeps the survivors'
  // renewal gap -- one such step between their turns -- well under the
  // lease, so only the silent client expires.
  config.lease_duration_us = 800000;
  return config;
}

WorkloadOptions PartitionOptions(uint64_t net_seed) {
  WorkloadOptions options;
  options.txns_per_client = 12;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kPrivate;
  options.seed = 4242 + net_seed;
  return options;
}

void AppendSummary(const std::string& line) {
  std::printf("[partition] %s\n", line.c_str());
  const char* path = std::getenv("FINELOG_LIVENESS_SUMMARY");
  if (path == nullptr || path[0] == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << line << '\n';
}

// One full round of the driver: every non-sidelined client takes one step.
Result<bool> RunRound(Workload* workload) { return workload->RunSteps(3); }

// One cell of the sweep. Returns an empty string on success, a description
// of the first divergence otherwise. Out-params feed the summary line.
std::string RunPartitionCell(uint64_t net_seed, uint64_t* commits,
                             uint64_t* declare_wait_us, uint64_t* fences) {
  SystemConfig config = PartitionConfig(
      MakeTempDir("partition_" + std::to_string(net_seed)), net_seed);
  auto sys_or = System::Create(config);
  if (!sys_or.ok()) return "create: " + sys_or.status().ToString();
  auto system = std::move(sys_or).value();
  Metrics& m = system->metrics();
  const ClientId dead_id(static_cast<uint32_t>(kPartitionedClient));

  Oracle oracle;
  Workload workload(system.get(), &oracle, PartitionOptions(net_seed));

  // Warm up on a healthy wire: every client heartbeats (first request) and
  // makes some progress; flush so the durable-PSN baseline is non-trivial.
  if (auto done = workload.RunSteps(30); !done.ok()) {
    return "warmup: " + done.status().ToString();
  }
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "warmup flush: " + st.ToString();
  }
  std::vector<uint64_t> before = ReadDurablePsns(config);

  // Drop both legs of one client, mid-workload.
  NetFaultConfig partitioned;
  partitioned.seed = net_seed;
  partitioned.partitioned_clients = {
      static_cast<uint32_t>(kPartitionedClient)};
  system->rpc().faults() = partitioned;
  const uint64_t t_partition = system->clock().now_us();

  // Keep driving rounds until the server declares the silent client
  // presumed dead. Each round the partitioned client burns its retry
  // budget (advancing the clock), self-fences, and is sidelined; the
  // survivors' admitted requests renew their own leases and run the
  // expiry check.
  bool declared = false;
  for (int round = 0; round < 64; ++round) {
    auto done = RunRound(&workload);
    if (!done.ok()) return "partition round: " + done.status().ToString();
    if (system->server().IsPresumedDead(dead_id)) {
      declared = true;
      break;
    }
    if (done.value()) break;  // Workload drained before declaration: fail.
  }
  if (!declared) return "lease never expired";
  const uint64_t t_declared = system->clock().now_us();
  *declare_wait_us = t_declared - t_partition;
  if (system->server().IsPresumedDead(ClientId(0)) ||
      system->server().IsPresumedDead(ClientId(1))) {
    return "survivor lease cascaded into presumed-dead";
  }
  if (m.Get(Counter::kLivenessPresumedDead) != 1) {
    return "expected exactly one declaration, got " +
           std::to_string(m.Get(Counter::kLivenessPresumedDead));
  }

  // Survivors must resume committing within bounded simulated time.
  const uint64_t commits_at_decl = workload.stats().commits;
  for (int round = 0; round < 200; ++round) {
    if (workload.stats().commits > commits_at_decl) break;
    auto done = RunRound(&workload);
    if (!done.ok()) return "resume round: " + done.status().ToString();
    if (done.value()) break;
  }
  if (workload.stats().commits <= commits_at_decl) {
    return "survivors never committed after the declaration";
  }
  if (system->clock().now_us() - t_declared > 10000000) {
    return "first survivor commit took unbounded sim time";
  }

  // Drain the survivors' quota with the partition still up.
  bool complete = false;
  for (int i = 0; i < 100 && !complete; ++i) {
    auto done = workload.RunSteps(500);
    if (!done.ok()) return "drain: " + done.status().ToString();
    complete = done.value();
  }
  if (!complete) return "survivors never finished their quota";
  if (workload.stats().zombie_fences == 0) {
    return "partitioned client was never fenced/sidelined";
  }

  // Still partitioned: the zombie self-fences on its locally-expired lease.
  auto fenced = system->client(kPartitionedClient).Begin();
  if (fenced.ok() || !fenced.status().IsZombieFenced()) {
    return "pre-heal zombie was not fenced: " + fenced.status().ToString();
  }

  // Heal. The zombie can reach the server again -- and must still be
  // fenced there (epoch + admission), not silently readmitted.
  system->rpc().faults() = NetFaultConfig{};
  auto zombie = system->client(kPartitionedClient).Begin();
  if (zombie.ok() || !zombie.status().IsZombieFenced()) {
    return "post-heal zombie was not fenced: " + zombie.status().ToString();
  }
  if (m.Get(Counter::kLivenessZombieFenced) == 0) {
    return "server never counted a fenced zombie request";
  }

  // Crash recovery readmits it; it finishes its quota.
  if (Status st = system->RecoverZombie(kPartitionedClient); !st.ok()) {
    return "recover zombie: " + st.ToString();
  }
  if (system->server().IsPresumedDead(dead_id)) {
    return "still presumed dead after recovery";
  }
  if (m.Get(Counter::kLivenessRecoveredZombies) != 1) {
    return "expected exactly one recovered zombie";
  }
  workload.OnClientRecovered(kPartitionedClient);
  if (Status st = workload.Run(); !st.ok()) {
    return "post-recovery run: " + st.ToString();
  }
  if (workload.stats().read_mismatches > 0) {
    return std::to_string(workload.stats().read_mismatches) + " stale reads";
  }

  // Final invariants: zero oracle divergence, monotone durable PSNs.
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "flush: " + st.ToString();
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  if (!mismatches.ok()) return "verify: " + mismatches.status().ToString();
  if (mismatches.value() != 0) {
    return std::to_string(mismatches.value()) + " oracle mismatches";
  }
  std::vector<uint64_t> after = ReadDurablePsns(config);
  for (size_t p = 0; p < before.size(); ++p) {
    if (after[p] < before[p]) {
      return "page " + std::to_string(p) + " durable PSN went backwards: " +
             std::to_string(before[p]) + " -> " + std::to_string(after[p]);
    }
  }
  if (m.Get(Counter::kNetPartitionDrops) == 0) {
    return "partition never dropped a message";
  }

  *commits = workload.stats().commits;
  *fences = workload.stats().zombie_fences;
  return "";
}

// ---------------------------------------------------------------------------
// Hot-standby primary-kill sweep (DESIGN.md section 19, EXPERIMENTS.md E17):
// the primary dies at a seed-dependent point mid-workload; every client must
// walk the mastership gap down with kFailoverInProgress retries, fail over
// to the standby, and finish its full quota with zero oracle divergence and
// monotone durable PSNs.
// ---------------------------------------------------------------------------

std::string RunFailoverKillCell(uint64_t seed, uint64_t* commits,
                                uint64_t* failover_blocks) {
  SystemConfig config;
  config.dir = MakeTempDir("failover_kill_" + std::to_string(seed));
  config.num_clients = 3;
  config.page_size = 2048;
  config.num_pages = 64;
  config.preloaded_pages = 16;
  config.objects_per_page = 8;
  config.object_size = 64;
  config.client_cache_pages = 4;
  config.server_cache_pages = 8;
  config.hot_standby = true;
  config.mastership_lease_us = 30000;
  config.failover_timeout_us = 4000;

  auto sys_or = System::Create(config);
  if (!sys_or.ok()) return "create: " + sys_or.status().ToString();
  auto system = std::move(sys_or).value();

  Oracle oracle;
  WorkloadOptions options;
  options.txns_per_client = 12;
  options.ops_per_txn = 4;
  options.write_fraction = 0.7;
  options.pattern = AccessPattern::kHotCold;
  options.seed = 777 + seed;
  Workload workload(system.get(), &oracle, options);

  // Seed-dependent kill point, always mid-quota.
  const uint64_t kill_after = 30 + seed * 13;
  if (auto done = workload.RunSteps(kill_after); !done.ok()) {
    return "pre-kill: " + done.status().ToString();
  }
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "pre-kill flush: " + st.ToString();
  }
  std::vector<uint64_t> before = ReadDurablePsns(config);
  // A couple more steps so the kill lands on a freshly renewed lease (the
  // flush itself burns more simulated time than the lease window).
  if (auto done = workload.RunSteps(6); !done.ok()) {
    return "pre-kill steps: " + done.status().ToString();
  }

  if (Status st = system->CrashServer(); !st.ok()) {
    return "crash: " + st.ToString();
  }
  if (Status st = workload.Run(); !st.ok()) {
    return "post-kill run: " + st.ToString();
  }

  Metrics& m = system->metrics();
  if (system->active_server_node() != 1) return "never failed over";
  if (m.Get(Counter::kFailoverTakeovers) != 1) {
    return "expected exactly one takeover, got " +
           std::to_string(m.Get(Counter::kFailoverTakeovers));
  }
  for (size_t c = 0; c < system->num_clients(); ++c) {
    if (workload.client_txns_done(c) != options.txns_per_client) {
      return "client " + std::to_string(c) + " finished only " +
             std::to_string(workload.client_txns_done(c)) + " txns";
    }
  }
  if (workload.stats().read_mismatches > 0) {
    return std::to_string(workload.stats().read_mismatches) + " stale reads";
  }
  if (Status st = system->FlushEverything(); !st.ok()) {
    return "flush: " + st.ToString();
  }
  auto mismatches = oracle.Verify(system.get(), 0);
  if (!mismatches.ok()) return "verify: " + mismatches.status().ToString();
  if (mismatches.value() != 0) {
    return std::to_string(mismatches.value()) + " oracle mismatches";
  }
  std::vector<uint64_t> after = ReadDurablePsns(config);
  for (size_t p = 0; p < before.size(); ++p) {
    if (after[p] < before[p]) {
      return "page " + std::to_string(p) + " durable PSN went backwards: " +
             std::to_string(before[p]) + " -> " + std::to_string(after[p]);
    }
  }

  *commits = workload.stats().commits;
  *failover_blocks = workload.stats().failover_blocks;
  return "";
}

TEST(ChaosPartitionTest, PrimaryKillMatrixPreservesProgress) {
  constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};

  uint64_t total_commits = 0;
  uint64_t total_blocks = 0;
  for (uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    uint64_t commits = 0, failover_blocks = 0;
    std::string failure = RunFailoverKillCell(seed, &commits,
                                              &failover_blocks);
    EXPECT_EQ(failure, "");
    total_commits += commits;
    total_blocks += failover_blocks;
    std::ostringstream line;
    line << "failover_seed=" << seed << " commits=" << commits
         << " failover_blocks=" << failover_blocks
         << " result=" << (failure.empty() ? "ok" : failure);
    AppendSummary(line.str());
  }
  EXPECT_GT(total_commits, 0u);
  // At least some cells must have actually crossed a mastership gap (the
  // kill point vs. lease-horizon race is seed-dependent, but it cannot be
  // universally free).
  EXPECT_GT(total_blocks, 0u);
}

TEST(ChaosPartitionTest, PartitionMatrixPreservesLiveness) {
  constexpr uint64_t kNetSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8};

  uint64_t total_commits = 0;
  for (uint64_t seed : kNetSeeds) {
    SCOPED_TRACE("net_seed=" + std::to_string(seed));
    uint64_t commits = 0, declare_wait_us = 0, fences = 0;
    std::string failure =
        RunPartitionCell(seed, &commits, &declare_wait_us, &fences);
    EXPECT_EQ(failure, "");
    total_commits += commits;
    std::ostringstream line;
    line << "net_seed=" << seed << " declare_wait_us=" << declare_wait_us
         << " commits=" << commits << " zombie_fences=" << fences
         << " result=" << (failure.empty() ? "ok" : failure);
    AppendSummary(line.str());
  }
  EXPECT_GT(total_commits, 0u);
}

}  // namespace
}  // namespace finelog
