#!/usr/bin/env python3
"""bench_gate: CI perf-regression gate over committed BENCH_*.json files.

The simulation is deterministic, so a fresh bench run on an unchanged tree
reproduces the committed numbers exactly; the tolerance bands exist so an
intentional, reviewed change inside the band does not force a recommit, while
a hot-path regression beyond it fails the build.

Model
-----
tools/bench_tolerances.json registers, per bench:
  keys      -- fields that identify a row (the grid coordinates). Rows are
               matched between committed and fresh files by key tuple; a
               missing or extra row is an error.
  metrics   -- measured fields, each with:
                 rel_tol:   allowed relative change before the gate trips
                 abs_tol:   slack for near-zero values (default 0.001)
                 direction: "lower_better" | "higher_better" | "exact"
                 advisory:  true for metrics that are machine-dependent
                            (wall-clock benches): out-of-band changes are
                            reported but never fail the gate. Structural
                            problems (missing rows/metrics, unregistered
                            fields) still fail even for advisory metrics.
               Only changes in the *worse* direction fail; improvements
               beyond the band are reported as recommit suggestions.
Every numeric field in a committed bench row must be registered as a key or
a metric -- an unregistered field is itself a gate failure (and is also
enforced statically by finelog_lint's bench-registry rule), so new metrics
cannot silently bypass the gate.

Usage
-----
  tools/bench_gate.py --root DIR --fresh-dir DIR [--report FILE] [--only N]
      Compare fresh BENCH_*.json in --fresh-dir against the committed ones
      at the repo root. Exit 1 on any regression/config violation.
  tools/bench_gate.py --root DIR --self-test
      Prove the gate passes on the committed files compared against
      themselves and fails on the seeded regressing fixture in
      tests/bench_gate_fixtures/ (mirrors finelog_lint --self-test).
"""

import argparse
import glob
import json
import os
import sys

TOLERANCES_PATH = os.path.join("tools", "bench_tolerances.json")
FIXTURE_DIR = os.path.join("tests", "bench_gate_fixtures")
DEFAULT_ABS_TOL = 0.001


class Gate:
    def __init__(self, root):
        self.root = root
        path = os.path.join(root, TOLERANCES_PATH)
        with open(path, encoding="utf-8") as fh:
            self.config = json.load(fh)
        self.lines = []

    # -- helpers ------------------------------------------------------------

    def log(self, line):
        self.lines.append(line)

    @staticmethod
    def load_bench(path):
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if "bench" not in doc or not isinstance(doc.get("rows"), list):
            raise ValueError(f"{path}: not a BENCH file (need 'bench'+'rows')")
        return doc

    @staticmethod
    def row_key(row, keys):
        return tuple((k, row.get(k)) for k in keys)

    # -- checks -------------------------------------------------------------

    def check_registration(self, name, doc):
        """Every numeric field must be a registered key or metric."""
        errors = []
        spec = self.config.get(name)
        if spec is None:
            return [f"{name}: bench not registered in {TOLERANCES_PATH}"]
        known = set(spec.get("keys", [])) | set(spec.get("metrics", {}))
        for i, row in enumerate(doc["rows"]):
            for field, value in row.items():
                if isinstance(value, bool) or not isinstance(
                        value, (int, float)):
                    continue  # String identity fields need no band.
                if field not in known:
                    errors.append(
                        f"{name} row {i}: metric '{field}' is not registered "
                        f"in {TOLERANCES_PATH} (add it to keys or metrics)")
        return errors

    def compare(self, name, committed, fresh):
        """Returns (regressions, improvements) line lists."""
        spec = self.config[name]
        keys = spec.get("keys", [])
        metrics = spec.get("metrics", {})
        regressions, improvements = [], []

        fresh_rows = {self.row_key(r, keys): r for r in fresh["rows"]}
        committed_rows = {self.row_key(r, keys): r for r in committed["rows"]}
        for key, base_row in committed_rows.items():
            tag = ", ".join(f"{k}={v}" for k, v in key)
            if key not in fresh_rows:
                regressions.append(f"{name} [{tag}]: row missing in fresh run")
                continue
            new_row = fresh_rows[key]
            for metric, band in metrics.items():
                if metric not in base_row:
                    continue  # Not every bench row reports every metric.
                if metric not in new_row:
                    regressions.append(
                        f"{name} [{tag}] {metric}: missing in fresh run")
                    continue
                base, new = float(base_row[metric]), float(new_row[metric])
                rel_tol = float(band.get("rel_tol", 0.0))
                abs_tol = float(band.get("abs_tol", DEFAULT_ABS_TOL))
                direction = band.get("direction", "exact")
                delta = new - base
                allowed = max(abs_tol, abs(base) * rel_tol)
                line = (f"{name} [{tag}] {metric}: {base:.3f} -> {new:.3f} "
                        f"(allowed +/-{allowed:.3f})")
                if abs(delta) <= allowed:
                    continue
                worse = (direction == "exact"
                         or (direction == "lower_better" and delta > 0)
                         or (direction == "higher_better" and delta < 0))
                if band.get("advisory"):
                    # Machine-dependent metric: report the drift, never fail.
                    self.log("advisory " + line +
                             (" -- worse, not gated" if worse
                              else " -- better, not gated"))
                elif worse:
                    regressions.append("REGRESSION " + line)
                else:
                    improvements.append("improvement " + line +
                                        " -- consider recommitting")
        for key in fresh_rows:
            if key not in committed_rows:
                tag = ", ".join(f"{k}={v}" for k, v in key)
                regressions.append(
                    f"{name} [{tag}]: new row not in committed file "
                    "(recommit the BENCH json)")
        return regressions, improvements

    # -- entry points -------------------------------------------------------

    def run(self, fresh_dir, only=None):
        committed = sorted(glob.glob(os.path.join(self.root, "BENCH_*.json")))
        if not committed:
            self.log("no committed BENCH_*.json found")
            return 1
        failures = 0
        for path in committed:
            fname = os.path.basename(path)
            doc = self.load_bench(path)
            name = doc["bench"]
            if only and name != only:
                continue
            errors = self.check_registration(name, doc)
            fresh_path = os.path.join(fresh_dir, fname)
            if not os.path.isfile(fresh_path):
                errors.append(f"{name}: fresh file {fresh_path} missing "
                              "(bench not run?)")
            if errors:
                for e in errors:
                    self.log("ERROR " + e)
                failures += len(errors)
                continue
            fresh = self.load_bench(fresh_path)
            errors = self.check_registration(name, fresh)
            if errors:
                for e in errors:
                    self.log("ERROR " + e)
                failures += len(errors)
                continue
            regressions, improvements = self.compare(name, doc, fresh)
            for line in regressions:
                self.log(line)
            for line in improvements:
                self.log(line)
            failures += len(regressions)
            if not regressions:
                self.log(f"{name}: {len(doc['rows'])} rows within bands"
                         + (f" ({len(improvements)} improvements)"
                            if improvements else ""))
        self.log(f"bench_gate: {failures} violation(s)")
        return 1 if failures else 0


def run_self_test(root):
    failures = []

    # 1. Committed files compared against themselves must pass.
    gate = Gate(root)
    if gate.run(root) != 0:
        failures.append("gate failed on committed files vs themselves:")
        failures.extend("  " + l for l in gate.lines)
    else:
        print("self-test ok: committed BENCH files pass against themselves")

    # 2. The seeded regressing fixture must fail, on the metrics it degrades.
    fixture_dir = os.path.join(root, FIXTURE_DIR)
    gate = Gate(root)
    rc = gate.run(fixture_dir, only="e14_contention")
    report = "\n".join(gate.lines)
    if rc == 0:
        failures.append("regressing fixture was NOT caught by the gate")
    elif "REGRESSION" not in report:
        failures.append("fixture failed for the wrong reason:\n" + report)
    else:
        print("self-test ok: seeded regressing fixture trips the gate")

    # 3. An unregistered metric must be rejected.
    gate = Gate(root)
    doc = {"bench": "e14_contention",
           "rows": [{"clients": 4, "zipf_theta": 0.0, "bogus_metric": 1.0}]}
    errors = gate.check_registration("e14_contention", doc)
    if not errors:
        failures.append("unregistered metric was not rejected")
    else:
        print("self-test ok: unregistered metric rejected")

    # 4. Advisory metrics report drift but never trip the gate.
    gate = Gate(root)
    gate.config["__advisory_fixture"] = {
        "keys": ["clients"],
        "metrics": {"wall_ms": {"rel_tol": 0.5, "direction": "lower_better",
                                "advisory": True}},
    }
    base = {"bench": "__advisory_fixture",
            "rows": [{"clients": 4, "wall_ms": 10.0}]}
    worse = {"bench": "__advisory_fixture",
             "rows": [{"clients": 4, "wall_ms": 1000.0}]}
    regressions, _ = gate.compare("__advisory_fixture", base, worse)
    advisories = [l for l in gate.lines if l.startswith("advisory")]
    if regressions:
        failures.append("advisory metric tripped the gate:\n"
                        + "\n".join(regressions))
    elif not advisories:
        failures.append("advisory out-of-band drift was not reported")
    else:
        print("self-test ok: advisory drift reported without failing")

    if failures:
        for f in failures:
            print("self-test FAIL: " + f, file=sys.stderr)
        return 1
    print("self-test passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--fresh-dir", default=None,
                        help="directory holding freshly generated "
                             "BENCH_*.json files")
    parser.add_argument("--report", default=None,
                        help="also write the diff report to this file")
    parser.add_argument("--only", default=None,
                        help="gate only the named bench")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate passes on committed numbers "
                             "and catches the seeded regressing fixture")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return run_self_test(root)
    if not args.fresh_dir:
        parser.error("--fresh-dir is required (or use --self-test)")
    gate = Gate(root)
    rc = gate.run(args.fresh_dir, only=args.only)
    report = "\n".join(gate.lines) + "\n"
    sys.stdout.write(report)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report)
    return rc


if __name__ == "__main__":
    sys.exit(main())
