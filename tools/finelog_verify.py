#!/usr/bin/env python3
"""finelog_verify: AST-level protocol-conformance checker (DESIGN.md sec. 16).

Where tools/finelog_lint.py works line-by-line with regexes, this tool builds
a whole-program model -- function definitions, bodies, call sites, class
fields, and the FINELOG_* annotations from src/common/annotations.h -- and
enforces the ordering disciplines the paper's correctness argument rests on.

Rule families
-------------
  wal-before-mutate      Any function calling a page mutator (a function
                         annotated FINELOG_MUTATES_PAGE; the Page primitives
                         in storage/page.h are the annotated roots) must
                         itself append a log record covering the mutation
                         (Client::AppendLog / LogManager::Append /
                         Server::AppendMembershipRecord), or push the
                         obligation to its callers by being
                         FINELOG_MUTATES_PAGE itself, or be a declared
                         FINELOG_REPLAY_PATH("reason") (recovery replay,
                         merge/install of already-logged images, bootstrap).
  admission-before-state Every non-Rec ServerEndpoint method implemented by
                         Server must reach LivenessAdmission() before any
                         protected server state (glm_, dct_, pool_, log_,
                         token_holder_, ...) is touched -- interprocedurally:
                         helper methods are expanded in call order, so the
                         Body/Internal indirection cannot hide a violation.
                         (crashed_ and metrics_/rpc_/channel_ are exempt:
                         lifecycle flag and accounting wiring, not protocol
                         state.) The recovery plane (Rec*) is deliberately
                         unfenced -- crash recovery is how a zombie rejoins.
  mastership-fence       Every non-Rec ServerEndpoint method implemented by
                         Server must reach MastershipAdmission() (the hot-
                         standby epoch fence, DESIGN.md sec. 19) before
                         LivenessAdmission() -- interprocedurally, like
                         admission-before-state. A deposed primary that
                         consulted per-client liveness first could still
                         grant locks or admit state changes after the
                         standby fenced its epoch.
  recovery-guard         Every non-Rec ServerEndpoint method that reaches
                         the buffer pool must pass EnsurePageRecovered()
                         first -- after the admission fence, expanded
                         interprocedurally like admission-before-state --
                         so instant-restart admission (DESIGN.md sec. 18)
                         cannot serve a page whose lazy repair has not run.
                         Pure lock/lease/heartbeat endpoints that never
                         touch the page plane are exempt by construction.
  rpc-chokepoint         Direct Channel::Count / Channel::CountBatch calls
                         are banned outside src/net/ at the call-graph level
                         (the successor of the retired textual lint rule:
                         token/AST-based, so comments, strings and macro
                         names cannot fool it).
  shared-state-annotations
                         Every non-static data member of a class marked
                         FINELOG_SHARED_STATE_CLASS must carry
                         FINELOG_GUARDED_BY / FINELOG_PT_GUARDED_BY or an
                         explicit FINELOG_UNGUARDED("reason"); the SimMutex
                         capability member (mu_) is the one exemption. The
                         core shared classes (Server, GlobalLockManager,
                         LivenessTable, LogManager, Client) must be marked.

Frontends
---------
Two interchangeable frontends produce the same program model:

  libclang   Full AST via clang.cindex over compile_commands.json, with
             PARSE_DETAILED_PROCESSING_RECORD so the no-op FINELOG_* marker
             macros are visible as macro instantiations. Preferred when the
             (pinned, see CI) libclang + python bindings are installed.
  internal   A self-contained comment/string-stripping tokenizer + scope
             parser, driven by the repo conventions the lint already
             enforces (trailing-underscore members, CamelCase methods,
             repo-root-relative includes). No dependencies; this is what
             runs in minimal containers.

`--frontend auto` (default) picks libclang when importable, else internal.

Usage
-----
  tools/finelog_verify.py [--root DIR] [--compdb PATH] [--frontend F]
  tools/finelog_verify.py --self-test    run each rule against its seeded bad
                                         fixture in tests/verify_fixtures and
                                         require the full tree to be clean
"""

import argparse
import json
import os
import re
import sys

SRC_DIR = "src"
NET_DIR = os.path.join("src", "net")
FIXTURE_DIR = os.path.join("tests", "verify_fixtures")

# Names whose annotated-function registry drives wal-before-mutate.
ANN_MUTATES = "FINELOG_MUTATES_PAGE"
ANN_REPLAY = "FINELOG_REPLAY_PATH"
ANN_MARKED_CLASS = "FINELOG_SHARED_STATE_CLASS"
FIELD_ANNS_OK = {"FINELOG_GUARDED_BY", "FINELOG_PT_GUARDED_BY",
                 "FINELOG_UNGUARDED"}
FUNC_ANNS = {ANN_MUTATES, ANN_REPLAY, "FINELOG_REQUIRES", "FINELOG_ACQUIRE",
             "FINELOG_RELEASE", "FINELOG_EXCLUDES",
             "FINELOG_NO_THREAD_SAFETY_ANALYSIS"}

# Log-append entry points recognized as discharging the WAL obligation.
LOG_APPEND_CALLS = {"Append", "AppendLog", "AppendMembershipRecord"}

# Server state that must not be touched before LivenessAdmission in an
# endpoint body. `crashed_` (harness lifecycle flag) and metrics_/rpc_/
# channel_ (accounting wiring; rpc_ IS the chokepoint the request arrived
# through) are deliberately absent.
PROTECTED_STATE = {
    "glm_", "dct_", "pool_", "space_map_", "log_", "disk_", "token_holder_",
    "crashed_clients_", "page_rec_", "rec_priority_", "deferred_recoveries_",
    "dct_authoritative_", "clients_", "liveness_",
}
ADMISSION_CALL = "LivenessAdmission"
# Hot standby (DESIGN.md sec. 19): the epoch fence. A deposed primary must
# refuse data-plane work *before* consulting per-client liveness, or a stale
# master could keep granting locks after the standby took over. Deliberately
# NOT in PROTECTED_STATE: MastershipAdmission runs before LivenessAdmission
# and touches only the mastership fields, which are fenced by construction.
MASTERSHIP_CALL = "MastershipAdmission"
# Instant restart (DESIGN.md sec. 18): any endpoint that reaches the page
# pool must first pass the per-page recovery guard, or a request admitted
# right after restart could read a page whose lazy repair has not run.
# EnsurePageRecovered repairs on demand; PageRecoveryPending is the
# accepted read-only form for paths that deliberately skip unrecovered
# pages instead of repairing them (e.g. DCT retirement on lock release).
GUARD_CALL = "EnsurePageRecovered"
GUARD_CALLS = {GUARD_CALL, "PageRecoveryPending"}
PAGE_PLANE_STATE = {"pool_"}
ENDPOINT_IFACE = "ServerEndpoint"
ENDPOINT_IMPL = "Server"
RECOVERY_PLANE_PREFIX = "Rec"
MIN_ENDPOINTS = 13  # PR 5's data-plane surface; guards interface-parse rot.

CHOKEPOINT_CLASS = "Channel"
CHOKEPOINT_METHODS = {"Count", "CountBatch"}

CAPABILITY_FIELD = "mu_"
REQUIRED_MARKED_CLASSES = {
    "Server", "GlobalLockManager", "LivenessTable", "LogManager", "Client",
}

CPP_KEYWORDS = {
    "if", "while", "for", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "case", "do", "else", "alignof", "decltype", "assert",
    "static_assert", "noexcept", "defined",
}


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# --------------------------------------------------------------------------
# Program model (shared by both frontends)
# --------------------------------------------------------------------------

class Function:
    """One function definition with its ordered body events."""

    def __init__(self, qname, name, cls, path, line):
        self.qname = qname          # "Server::LockPage" or "MakeOpts"
        self.name = name            # unqualified
        self.cls = cls              # class name or None
        self.path = path
        self.line = line
        self.annotations = set()    # FINELOG_* markers on the definition
        self.calls = []             # [(callee_name, order, line)]
        self.state_idents = []      # [(ident, order, line)] PROTECTED_STATE

    def call_names(self):
        return {c[0] for c in self.calls}


class ClassInfo:
    def __init__(self, name, path, line):
        self.name = name
        self.path = path
        self.line = line
        self.marked = False                 # FINELOG_SHARED_STATE_CLASS
        self.fields = []                    # [(name, line, set(annotations))]
        self.virtual_methods = []           # declared virtual method names


class Program:
    def __init__(self):
        self.functions = {}     # qname -> Function (first definition wins)
        self.classes = {}       # name -> ClassInfo
        self.mutators = set()   # names annotated FINELOG_MUTATES_PAGE
        self.replay_decls = set()  # names annotated at declaration site
        self.chokepoint_calls = []  # [(path, line, method)] outside src/net

    def add_function(self, fn):
        self.functions.setdefault(fn.qname, fn)


# --------------------------------------------------------------------------
# Internal frontend: tokenizer
# --------------------------------------------------------------------------

def strip_comments_and_strings(text):
    """Blanks comments and string/char literal *contents*, preserving every
    character position (same technique as finelog_lint)."""
    out = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # string | char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|\d[\w.]*"
    r"|::|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|"
    r"&=|\|=|\^=|\.\.\.|"
    r"|[{}()\[\];:,<>=+\-*/&|!~^.?%#\"']")


def drop_preprocessor(stripped):
    """Blanks preprocessor directive lines (keeps newlines) so #include /
    #define bodies don't masquerade as declarations."""
    out_lines = []
    cont = False
    for line in stripped.split("\n"):
        is_pp = cont or line.lstrip().startswith("#")
        cont = is_pp and line.rstrip().endswith("\\")
        out_lines.append(" " * len(line) if is_pp else line)
    return "\n".join(out_lines)


def tokenize(stripped):
    """Returns [(token_text, offset)] over pre-stripped text."""
    toks = []
    for m in TOKEN_RE.finditer(stripped):
        t = m.group(0)
        if t and not t.isspace():
            toks.append((t, m.start()))
    return toks


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def match_brace(tokens, open_idx):
    """Index of the '}' matching tokens[open_idx] == '{' (len(tokens) if
    unbalanced)."""
    depth = 0
    for i in range(open_idx, len(tokens)):
        t = tokens[i][0]
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(tokens)


# --------------------------------------------------------------------------
# Internal frontend: per-file parse
# --------------------------------------------------------------------------

def scan_annotation_registry(tokens, program):
    """FINELOG_MUTATES_PAGE / FINELOG_REPLAY_PATH(...) followed by a function
    declaration or definition register that function name globally."""
    i = 0
    n = len(tokens)
    while i < n:
        t = tokens[i][0]
        if t in (ANN_MUTATES, ANN_REPLAY):
            j = i + 1
            # Skip the annotation's own (reason) argument list, if any.
            if t == ANN_REPLAY and j < n and tokens[j][0] == "(":
                depth = 0
                while j < n:
                    if tokens[j][0] == "(":
                        depth += 1
                    elif tokens[j][0] == ")":
                        depth -= 1
                        if depth == 0:
                            j += 1
                            break
                    j += 1
            # First identifier followed by '(' names the annotated function.
            while j < n - 1:
                tj, tj1 = tokens[j][0], tokens[j + 1][0]
                if tj in (";", "{", "}"):
                    break
                if re.match(r"[A-Za-z_]\w*$", tj) and tj1 == "(" \
                        and tj not in CPP_KEYWORDS:
                    if t == ANN_MUTATES:
                        program.mutators.add(tj)
                    else:
                        program.replay_decls.add(tj)
                    break
                j += 1
        i += 1


def parse_class_body(tokens, open_idx, close_idx, cls, text):
    """Collects fields (trailing-underscore members at depth 0) and virtual
    method names from a class body token span."""
    i = open_idx + 1
    stmt = []
    while i < close_idx:
        t, off = tokens[i]
        if t == "{":
            # Inline method body, nested type body, or brace initializer:
            # skip the block wholesale; a following ';' continues/ends the
            # statement either way.
            end = match_brace(tokens, i)
            stmt.append(("{}", off))
            i = end + 1
            if i < close_idx and tokens[i][0] == ";":
                finish_member_statement(stmt, cls, text)
                stmt = []
                i += 1
            else:
                finish_member_statement(stmt, cls, text)
                stmt = []
            continue
        if t == ";":
            finish_member_statement(stmt, cls, text)
            stmt = []
            i += 1
            continue
        if t in ("public", "private", "protected") and i + 1 < close_idx \
                and tokens[i + 1][0] == ":":
            stmt = []
            i += 2
            continue
        stmt.append((t, off))
        i += 1


FIELD_NAME_RE = re.compile(r"^[a-z]\w*_$")


def finish_member_statement(stmt, cls, text):
    if not stmt:
        return
    toks = [t for t, _ in stmt]
    # Virtual method name: identifier immediately before the first '('.
    if "virtual" in toks and "(" in toks:
        k = toks.index("(")
        if k > 0 and re.match(r"[A-Za-z_]\w*$", toks[k - 1]):
            if k < 2 or toks[k - 2] != "~":
                cls.virtual_methods.append(toks[k - 1])
    if "static" in toks or "using" in toks or "typedef" in toks \
            or "friend" in toks:
        return
    # Field: trailing-underscore identifier at paren depth 0 whose next
    # token closes/initializes the declarator.
    depth = 0
    for k, (t, off) in enumerate(stmt):
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
        elif depth == 0 and FIELD_NAME_RE.match(t):
            nxt = toks[k + 1] if k + 1 < len(toks) else ";"
            if nxt in (";", "=", "{}") or nxt in FIELD_ANNS_OK:
                anns = {a for a in toks[k + 1:] if a in FIELD_ANNS_OK}
                cls.fields.append((t, line_of(text, off), anns))
                return
            return  # e.g. a constructor's member-init list: not a field.


def head_is_function_signature(head_toks):
    if not head_toks:
        return False
    first = head_toks[0]
    if first in ("namespace", "class", "struct", "enum", "union", "using",
                 "extern", "template"):
        return False
    if "(" not in head_toks or ")" not in head_toks:
        return False
    # Reject `X y = {...}` style initializers.
    depth = 0
    for t in head_toks:
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
        elif t == "=" and depth == 0:
            return False
    return head_toks[-1] in (")", "const", "noexcept", "override", "final")


def strip_annotation_groups(head_toks):
    """Drops FINELOG_* annotation tokens and their (arg) groups so the
    parameter-list '(' can be located."""
    out = []
    i = 0
    while i < len(head_toks):
        t = head_toks[i]
        if t in FUNC_ANNS or t in FIELD_ANNS_OK:
            i += 1
            if i < len(head_toks) and head_toks[i] == "(":
                depth = 0
                while i < len(head_toks):
                    if head_toks[i] == "(":
                        depth += 1
                    elif head_toks[i] == ")":
                        depth -= 1
                        if depth == 0:
                            i += 1
                            break
                    i += 1
            continue
        out.append(t)
        i += 1
    return out


def signature_name(head_toks):
    """(qname, name, class) from a signature head token list."""
    head_toks = strip_annotation_groups(head_toks)
    if "(" not in head_toks:
        return None
    k = head_toks.index("(")
    if k == 0:
        return None
    name = head_toks[k - 1]
    if not re.match(r"[A-Za-z_]\w*$", name) or name in CPP_KEYWORDS:
        return None
    cls = None
    base = k - 1
    if base >= 1 and head_toks[base - 1] == "~":
        name = "~" + name
        base -= 1
    if base >= 2 and head_toks[base - 1] == "::" \
            and re.match(r"[A-Za-z_]\w*$", head_toks[base - 2]):
        cls = head_toks[base - 2]
    qname = f"{cls}::{name}" if cls else name
    return qname, name, cls


def collect_body_events(tokens, open_idx, close_idx, fn, text):
    order = 0
    for i in range(open_idx + 1, close_idx):
        t, off = tokens[i]
        if not re.match(r"[A-Za-z_]\w*$", t):
            continue
        order += 1
        if i + 1 < close_idx and tokens[i + 1][0] == "(" \
                and t not in CPP_KEYWORDS:
            fn.calls.append((t, order, line_of(text, off)))
        if t in PROTECTED_STATE:
            fn.state_idents.append((t, order, line_of(text, off)))


def parse_file_internal(relpath, text, program):
    stripped = drop_preprocessor(strip_comments_and_strings(text))
    tokens = tokenize(stripped)
    scan_annotation_registry(tokens, program)

    i = 0
    n = len(tokens)
    stmt_start = 0
    # Kinds of currently-open '{' regions, innermost last.
    region = []
    while i < n:
        t, _ = tokens[i]
        if t == "{":
            head = [tok for tok, _ in tokens[stmt_start:i]]
            kind = "block"
            outer = region[-1] if region else "file"
            if head and head[0] == "namespace":
                kind = "namespace"
            elif head and head[0] in ("class", "struct") and len(head) >= 2 \
                    and outer in ("file", "namespace"):
                kind = "class"
                # Name: last identifier before ':' (bases) or end of head.
                name_zone = head[1:]
                if ":" in name_zone:
                    name_zone = name_zone[:name_zone.index(":")]
                idents = [x for x in name_zone
                          if re.match(r"[A-Za-z_]\w*$", x)
                          and x not in ("final",)]
                if idents:
                    cls = ClassInfo(idents[-1], relpath,
                                    line_of(text, tokens[i][1]))
                    cls.marked = ANN_MARKED_CLASS in head
                    end = match_brace(tokens, i)
                    parse_class_body(tokens, i, end, cls, text)
                    program.classes.setdefault(cls.name, cls)
            elif outer in ("file", "namespace") \
                    and head_is_function_signature(head):
                sig = signature_name(head)
                if sig is not None:
                    qname, name, cls_name = sig
                    fn = Function(qname, name, cls_name, relpath,
                                  line_of(text, tokens[i][1]))
                    fn.annotations = {a for a in head if a in FUNC_ANNS}
                    end = match_brace(tokens, i)
                    collect_body_events(tokens, i, end, fn, text)
                    # Chokepoint scan happens on call collection below.
                    program.add_function(fn)
                    kind = "function"
            region.append(kind)
            stmt_start = i + 1
        elif t == "}":
            if region:
                region.pop()
            stmt_start = i + 1
        elif t == ";":
            stmt_start = i + 1
        i += 1


def iter_src_files(root):
    base = os.path.join(root, SRC_DIR)
    for dirpath, _dirnames, filenames in os.walk(base):
        for f in sorted(filenames):
            if os.path.splitext(f)[1] in (".h", ".cc"):
                yield os.path.relpath(os.path.join(dirpath, f), root)


def build_program_internal(root, files=None):
    program = Program()
    for relpath in (files if files is not None else iter_src_files(root)):
        with open(os.path.join(root, relpath), encoding="utf-8") as fh:
            text = fh.read()
        parse_file_internal(relpath, text, program)
    return program


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

def load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    if not cindex.Config.loaded:
        import glob as _glob
        candidates = sorted(
            _glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
            + _glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
            + _glob.glob("/usr/lib/*/libclang-*.so*"), reverse=True)
        for cand in candidates:
            try:
                cindex.Config.set_library_file(cand)
                cindex.Index.create()
                break
            except Exception:  # noqa: BLE001 - probe next candidate
                cindex.Config.loaded = False
        else:
            try:
                cindex.Index.create()
            except Exception:  # noqa: BLE001
                return None
    return cindex


def compdb_args(entry):
    """Compiler args usable for reparsing, from one compile_commands entry."""
    args = entry.get("arguments")
    if not args:
        args = entry.get("command", "").split()
    out = []
    skip = False
    for a in args[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        if a == entry.get("file"):
            continue
        out.append(a)
    return out


def build_program_libclang(root, compdb_path):
    cindex = load_cindex()
    if cindex is None:
        raise RuntimeError("libclang frontend unavailable "
                           "(clang.cindex not importable / no libclang.so)")
    with open(compdb_path, encoding="utf-8") as fh:
        compdb = json.load(fh)
    program = Program()
    index = cindex.Index.create()
    opts = cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD
    src_abs = os.path.join(root, SRC_DIR)
    seen_files = set()
    for entry in compdb:
        path = os.path.normpath(
            os.path.join(entry.get("directory", root), entry["file"]))
        if not path.startswith(src_abs) or not path.endswith(".cc"):
            continue
        tu = index.parse(path, args=compdb_args(entry), options=opts)
        _harvest_tu(cindex, root, tu, program, seen_files)
    return program


def _harvest_tu(cindex, root, tu, program, seen_files):
    K = cindex.CursorKind
    # Macro instantiations per (file, offset): the no-op FINELOG_* markers.
    markers = {}
    for cur in tu.cursor.get_children():
        if cur.kind == K.MACRO_INSTANTIATION and \
                cur.spelling.startswith("FINELOG_"):
            loc = cur.location
            if loc.file is not None:
                markers.setdefault(os.path.abspath(loc.file.name), []).append(
                    (loc.offset, cur.spelling))
    for lst in markers.values():
        lst.sort()

    def file_rel(cursor):
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.abspath(loc.file.name)
        if not path.startswith(os.path.join(root, SRC_DIR)):
            return None
        return os.path.relpath(path, root)

    def markers_before(cursor, window=300):
        """FINELOG_* macros textually just before the cursor's extent (the
        annotation-before-return-type placement)."""
        loc = cursor.extent.start
        if loc.file is None:
            return set()
        path = os.path.abspath(loc.file.name)
        return {name for off, name in markers.get(path, [])
                if 0 <= loc.offset - off <= window}

    def markers_within(cursor):
        ext = cursor.extent
        if ext.start.file is None:
            return set()
        path = os.path.abspath(ext.start.file.name)
        return {name for off, name in markers.get(path, [])
                if ext.start.offset <= off <= ext.end.offset}

    def visit(cursor):
        rel = file_rel(cursor)
        if cursor.kind in (K.CLASS_DECL, K.STRUCT_DECL) and \
                cursor.is_definition() and rel is not None:
            if rel not in seen_files or cursor.spelling not in program.classes:
                cls = program.classes.setdefault(
                    cursor.spelling,
                    ClassInfo(cursor.spelling, rel, cursor.location.line))
                cls.marked = cls.marked or \
                    ANN_MARKED_CLASS in markers_within(cursor) or \
                    ANN_MARKED_CLASS in markers_before(cursor, window=80)
                for ch in cursor.get_children():
                    if ch.kind == K.FIELD_DECL:
                        anns = {m for m in markers_within(ch)
                                if m in FIELD_ANNS_OK}
                        cls.fields.append((ch.spelling, ch.location.line,
                                           anns))
                    elif ch.kind == K.CXX_METHOD and ch.is_virtual_method():
                        cls.virtual_methods.append(ch.spelling)
        if cursor.kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                           K.DESTRUCTOR):
            anns = markers_before(cursor) | markers_within(cursor)
            if ANN_MUTATES in anns:
                program.mutators.add(cursor.spelling)
            if ANN_REPLAY in anns:
                program.replay_decls.add(cursor.spelling)
            if cursor.is_definition() and rel is not None:
                parent = cursor.semantic_parent
                cls_name = parent.spelling if parent is not None and \
                    parent.kind in (K.CLASS_DECL, K.STRUCT_DECL) else None
                qname = f"{cls_name}::{cursor.spelling}" if cls_name \
                    else cursor.spelling
                fn = Function(qname, cursor.spelling, cls_name, rel,
                              cursor.location.line)
                fn.annotations = {a for a in anns if a in FUNC_ANNS}
                order = [0]
                _walk_body(cindex, cursor, fn, order, program, rel)
                program.add_function(fn)
                return  # body already walked
        for ch in cursor.get_children():
            visit(ch)

    def _walk_body(cindex_mod, cursor, fn, order, prog, rel):
        Kb = cindex_mod.CursorKind
        for ch in cursor.get_children():
            order[0] += 1
            if ch.kind == Kb.CALL_EXPR and ch.spelling:
                fn.calls.append((ch.spelling, order[0], ch.location.line))
                ref = ch.referenced
                if ref is not None and ch.spelling in CHOKEPOINT_METHODS:
                    par = ref.semantic_parent
                    if par is not None and par.spelling == CHOKEPOINT_CLASS:
                        prog.chokepoint_calls.append(
                            (rel, ch.location.line, ch.spelling))
            elif ch.kind in (Kb.MEMBER_REF_EXPR, Kb.DECL_REF_EXPR) and \
                    ch.spelling in PROTECTED_STATE:
                fn.state_idents.append(
                    (ch.spelling, order[0], ch.location.line))
            _walk_body(cindex_mod, ch, fn, order, prog, rel)

    visit(tu.cursor)
    for f in set():
        seen_files.add(f)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

def check_wal_before_mutate(program):
    out = []
    for fn in program.functions.values():
        if ANN_MUTATES in fn.annotations or fn.name in program.mutators:
            continue
        if ANN_REPLAY in fn.annotations or fn.name in program.replay_decls:
            continue
        mut_calls = [c for c in fn.calls if c[0] in program.mutators]
        if not mut_calls:
            continue
        if fn.call_names() & LOG_APPEND_CALLS:
            continue
        name, _order, line = mut_calls[0]
        out.append(Violation(
            fn.path, line, "wal-before-mutate",
            f"{fn.qname} mutates page contents via {name}() but appends no "
            "covering log record; add an AppendLog/Append call, mark the "
            f"function {ANN_MUTATES} to move the obligation to its callers, "
            f'or declare {ANN_REPLAY}("reason") if this is a recovery/merge/'
            "bootstrap plane"))
    return out


def first_admission_event(program, fn, stack=None, memo=None):
    """'admit', 'touch', or None: the first protocol-relevant event reached
    from `fn`, expanding same-class helper calls in body order."""
    if memo is None:
        memo = {}
    if stack is None:
        stack = set()
    if fn.qname in memo:
        return memo[fn.qname]
    if fn.qname in stack:
        return None
    stack.add(fn.qname)
    events = sorted(
        [(order, "call", name, line) for name, order, line in fn.calls]
        + [(order, "touch", ident, line)
           for ident, order, line in fn.state_idents])
    result = None
    for _order, kind, name, _line in events:
        if kind == "touch":
            result = ("touch", name, _line)
            break
        if name == ADMISSION_CALL:
            result = ("admit", name, _line)
            break
        callee = program.functions.get(f"{ENDPOINT_IMPL}::{name}")
        if callee is not None:
            sub = first_admission_event(program, callee, stack, memo)
            if sub is not None:
                result = sub
                break
    stack.discard(fn.qname)
    memo[fn.qname] = result
    return result


def check_admission_before_state(program, strict_counts=True):
    out = []
    iface = program.classes.get(ENDPOINT_IFACE)
    if iface is None:
        if strict_counts:
            out.append(Violation(
                "src/net/endpoints.h", 1, "admission-before-state",
                f"could not locate the {ENDPOINT_IFACE} interface"))
        return out
    endpoints = [m for m in iface.virtual_methods
                 if not m.startswith(RECOVERY_PLANE_PREFIX)
                 and m != f"~{ENDPOINT_IFACE}"]
    if strict_counts and len(endpoints) < MIN_ENDPOINTS:
        out.append(Violation(
            iface.path, iface.line, "admission-before-state",
            f"only {len(endpoints)} non-Rec endpoints parsed from "
            f"{ENDPOINT_IFACE} (expected >= {MIN_ENDPOINTS}); interface "
            "parse is broken or the data plane shrank"))
    memo = {}
    for ep in endpoints:
        fn = program.functions.get(f"{ENDPOINT_IMPL}::{ep}")
        if fn is None:
            if strict_counts:
                out.append(Violation(
                    iface.path, iface.line, "admission-before-state",
                    f"no definition found for endpoint "
                    f"{ENDPOINT_IMPL}::{ep}"))
            continue
        ev = first_admission_event(program, fn, memo=memo)
        if ev is None:
            out.append(Violation(
                fn.path, fn.line, "admission-before-state",
                f"endpoint {ENDPOINT_IMPL}::{ep} never calls "
                f"{ADMISSION_CALL}(); zombies are not fenced here"))
        elif ev[0] == "touch":
            out.append(Violation(
                fn.path, ev[2], "admission-before-state",
                f"endpoint {ENDPOINT_IMPL}::{ep} touches protected state "
                f"`{ev[1]}` before {ADMISSION_CALL}(); a presumed-dead "
                "client could mutate server state through this path"))
    return out


def first_fence_event(program, fn, stack=None, memo=None):
    """'fence' (MastershipAdmission) or 'admit' (LivenessAdmission):
    whichever a path from `fn` reaches first, expanding same-class helper
    calls in body order. None when neither is reachable."""
    if memo is None:
        memo = {}
    if stack is None:
        stack = set()
    if fn.qname in memo:
        return memo[fn.qname]
    if fn.qname in stack:
        return None
    stack.add(fn.qname)
    result = None
    for name, _order, line in sorted(fn.calls, key=lambda c: c[1]):
        if name == MASTERSHIP_CALL:
            result = ("fence", name, line)
            break
        if name == ADMISSION_CALL:
            result = ("admit", name, line)
            break
        callee = program.functions.get(f"{ENDPOINT_IMPL}::{name}")
        if callee is not None:
            sub = first_fence_event(program, callee, stack, memo)
            if sub is not None:
                result = sub
                break
    stack.discard(fn.qname)
    memo[fn.qname] = result
    return result


def check_mastership_fence(program):
    """mastership-fence: every standby-reachable (non-Rec) data-plane
    endpoint must check mastership before per-client liveness. The recovery
    plane stays unfenced for the same reason it skips the liveness fence:
    it is how a client rejoins, and a takeover's own Restart() drives it.
    Endpoints that never reach LivenessAdmission at all are
    admission-before-state's problem, not this rule's."""
    out = []
    iface = program.classes.get(ENDPOINT_IFACE)
    if iface is None:
        return out  # admission-before-state already reports this.
    endpoints = [m for m in iface.virtual_methods
                 if not m.startswith(RECOVERY_PLANE_PREFIX)
                 and m != f"~{ENDPOINT_IFACE}"]
    memo = {}
    for ep in endpoints:
        fn = program.functions.get(f"{ENDPOINT_IMPL}::{ep}")
        if fn is None:
            continue  # admission-before-state reports missing definitions.
        ev = first_fence_event(program, fn, memo=memo)
        if ev is not None and ev[0] == "admit":
            out.append(Violation(
                fn.path, ev[2], "mastership-fence",
                f"endpoint {ENDPOINT_IMPL}::{ep} reaches {ADMISSION_CALL}() "
                f"without {MASTERSHIP_CALL}() first; a deposed primary "
                "could keep serving this endpoint after the standby fenced "
                "its epoch"))
    return out


def first_unguarded_page_touch(program, fn, stack, state):
    """First PAGE_PLANE_STATE touch reached from `fn` (expanding same-class
    helpers in body order) before GUARD_CALL has run. `state` carries the
    admitted/guarded flags across the expansion. Returns a Violation-ready
    (path, line, message-kind) tuple or None."""
    if fn.qname in stack:
        return None
    stack.add(fn.qname)
    events = sorted(
        [(order, "call", name, line) for name, order, line in fn.calls]
        + [(order, "touch", ident, line)
           for ident, order, line in fn.state_idents])
    result = None
    for _order, kind, name, line in events:
        if kind == "call":
            if name == ADMISSION_CALL:
                state["admitted"] = True
                continue
            if name in GUARD_CALLS:
                if not state["admitted"]:
                    result = (fn.path, line, "guard-before-admission")
                    break
                state["guarded"] = True
                continue
            callee = program.functions.get(f"{ENDPOINT_IMPL}::{name}")
            if callee is not None:
                sub = first_unguarded_page_touch(program, callee, stack,
                                                 state)
                if sub is not None:
                    result = sub
                    break
            continue
        if name in PAGE_PLANE_STATE and not state["guarded"]:
            result = (fn.path, line, "unguarded-touch")
            break
    stack.discard(fn.qname)
    return result


def check_recovery_guard(program, strict_counts=True):
    """recovery-guard: every non-Rec endpoint that reaches the buffer pool
    must pass EnsurePageRecovered() first (and only after the liveness
    admission fence), so instant-restart admission cannot expose a page
    whose lazy repair has not run. Endpoints that never touch the page
    plane (pure lock/lease/heartbeat traffic) are exempt by construction.
    The recovery plane (Rec*) is the repair path itself and stays
    unfenced."""
    out = []
    iface = program.classes.get(ENDPOINT_IFACE)
    if iface is None:
        return out  # admission-before-state already reports this.
    endpoints = [m for m in iface.virtual_methods
                 if not m.startswith(RECOVERY_PLANE_PREFIX)
                 and m != f"~{ENDPOINT_IFACE}"]
    for ep in endpoints:
        fn = program.functions.get(f"{ENDPOINT_IMPL}::{ep}")
        if fn is None:
            continue  # admission-before-state reports missing definitions.
        hit = first_unguarded_page_touch(program, fn, set(),
                                         {"admitted": False,
                                          "guarded": False})
        if hit is None:
            continue
        path, line, kind = hit
        if kind == "guard-before-admission":
            out.append(Violation(
                path, line, "recovery-guard",
                f"endpoint {ENDPOINT_IMPL}::{ep} runs {GUARD_CALL}() before "
                f"{ADMISSION_CALL}(); a zombie could drive page repair "
                "through this path"))
        else:
            out.append(Violation(
                path, line, "recovery-guard",
                f"endpoint {ENDPOINT_IMPL}::{ep} reaches the buffer pool "
                f"without {GUARD_CALL}(); after an instant restart this "
                "serves a page whose lazy repair has not run"))
    return out


def check_rpc_chokepoint(program):
    out = []
    # libclang records receiver-typed calls directly; the internal frontend
    # falls back to exact method-name matching (Count/CountBatch are Channel's
    # alone in this codebase; lowercase std::map::count does not collide).
    reported = set(program.chokepoint_calls)
    for fn in program.functions.values():
        if fn.path.startswith(NET_DIR + os.sep):
            continue
        for name, _order, line in fn.calls:
            if name in CHOKEPOINT_METHODS and (fn.path, line, name) \
                    not in reported:
                reported.add((fn.path, line, name))
    for path, line, name in sorted(reported):
        if path.startswith(NET_DIR + os.sep):
            continue
        out.append(Violation(
            path, line, "rpc-chokepoint",
            f"direct Channel::{name}() outside src/net/; every message must "
            "go through Rpc::Call / Rpc::Send so wire faults, retries, "
            "dedup and session fencing apply"))
    return out


def check_shared_state_annotations(program, require_core=True):
    out = []
    if require_core:
        for name in sorted(REQUIRED_MARKED_CLASSES):
            cls = program.classes.get(name)
            if cls is None:
                out.append(Violation(
                    SRC_DIR, 1, "shared-state-annotations",
                    f"core shared class {name} not found in the program "
                    "model"))
            elif not cls.marked:
                out.append(Violation(
                    cls.path, cls.line, "shared-state-annotations",
                    f"class {name} must be marked {ANN_MARKED_CLASS} (its "
                    "fields are shared state the real-clock mode will race "
                    "on)"))
    for cls in program.classes.values():
        if not cls.marked:
            continue
        for fname, line, anns in cls.fields:
            if fname == CAPABILITY_FIELD:
                continue
            if not anns:
                out.append(Violation(
                    cls.path, line, "shared-state-annotations",
                    f"{cls.name}::{fname} has no thread-safety annotation; "
                    "add FINELOG_GUARDED_BY(mu_) / FINELOG_PT_GUARDED_BY"
                    '(mu_) or FINELOG_UNGUARDED("reason")'))
    return out


def run_rules(program, strict=True):
    out = []
    out += check_wal_before_mutate(program)
    out += check_admission_before_state(program, strict_counts=strict)
    out += check_mastership_fence(program)
    out += check_recovery_guard(program, strict_counts=strict)
    out += check_rpc_chokepoint(program)
    out += check_shared_state_annotations(program, require_core=strict)
    return out


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def build_program(root, frontend, compdb):
    if frontend == "libclang":
        return build_program_libclang(root, compdb), "libclang"
    if frontend == "internal":
        return build_program_internal(root), "internal"
    # auto
    if load_cindex() is not None and compdb and os.path.isfile(compdb):
        try:
            return build_program_libclang(root, compdb), "libclang"
        except Exception as err:  # noqa: BLE001 - fall back, loudly
            print(f"finelog_verify: libclang frontend failed ({err}); "
                  "falling back to internal", file=sys.stderr)
    return build_program_internal(root), "internal"


# fixture file -> rule that must fire on it. Each fixture is a
# self-contained mini-program (its own interface/classes), verified in
# isolation with the tree-level strictness checks off.
FIXTURES = {
    "bad_unlogged_mutate.cc": "wal-before-mutate",
    "bad_missing_admission.cc": "admission-before-state",
    "bad_missing_mastership.cc": "mastership-fence",
    "bad_missing_recovery_guard.cc": "recovery-guard",
    "bad_raw_channel.cc": "rpc-chokepoint",
    "bad_unannotated_field.cc": "shared-state-annotations",
}


def run_self_test(root, frontend, compdb):
    failures = []
    fixture_root = os.path.join(root, FIXTURE_DIR)
    for fname, rule in sorted(FIXTURES.items()):
        path = os.path.join(fixture_root, fname)
        if not os.path.isfile(path):
            failures.append(f"fixture missing: {path}")
            continue
        program = Program()
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        # Fixtures are parsed as if they lived under src/common/ so the
        # chokepoint rule's src/net/ exemption does not apply.
        parse_file_internal(os.path.join("src", "common", fname), text,
                            program)
        got = run_rules(program, strict=False)
        fired = {v.rule for v in got}
        if rule not in fired:
            failures.append(
                f"{fname}: expected rule '{rule}' to fire, got "
                f"{sorted(fired)}")
        else:
            print(f"self-test ok: {fname} -> {rule}")
    # The real tree must be clean, or the verify gate is already red.
    program, used = build_program(root, frontend, compdb)
    tree = run_rules(program, strict=True)
    for v in tree:
        failures.append(f"tree not clean: {v}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test passed ({len(FIXTURES)} fixtures, tree clean, "
          f"frontend={used})")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--frontend", default="auto",
                        choices=["auto", "libclang", "internal"])
    parser.add_argument("--self-test", action="store_true",
                        help="check each rule fires on its seeded bad "
                             "fixture and that the tree is clean")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    compdb = args.compdb or os.path.join(root, "build",
                                         "compile_commands.json")
    if args.self_test:
        return run_self_test(root, args.frontend, compdb)
    program, used = build_program(root, args.frontend, compdb)
    violations = run_rules(program, strict=True)
    for v in violations:
        print(v)
    if violations:
        print(f"finelog_verify: {len(violations)} violation(s) "
              f"(frontend={used})", file=sys.stderr)
        return 1
    nfn = len(program.functions)
    print(f"finelog_verify: clean ({nfn} functions, "
          f"{len(program.mutators)} page mutators, frontend={used})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
