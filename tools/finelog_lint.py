#!/usr/bin/env python3
"""finelog_lint: repo-specific static checks the compiler cannot express.

Rules
-----
  determinism      rand()/srand()/time()/std::random_device are banned outside
                   src/common/rng.h and src/common/clock.h -- wall-clock or
                   process randomness would break crash-sweep reproducibility
                   (the same (seed, hit_index) pair must replay identically).
  fail-point       every FaultInjector::Evaluate() site names its fail point
                   as "<node>.<component>.<op>" (lower_snake segments); the
                   op suffix literal must be well-formed and no two sites may
                   reuse the same point expression.
  raw-new-delete   no raw `new` outside an owning smart-pointer expression on
                   the same line (the private-constructor factory idiom
                   `std::unique_ptr<T>(new T(...))` is allowed); no `delete`
                   statements at all (deleted functions are fine).
  page-memcpy      a memcpy/memset whose destination is a Page buffer
                   (`buf_.data() + ...`) must carry a FINELOG_CHECK bounds
                   assertion within the 3 preceding lines -- shipped page
                   images cross the wire and slot offsets cannot be trusted.
  include-hygiene  src/ headers use a guard named FINELOG_<PATH>_H_ matching
                   their path, and quoted includes are repo-root-relative
                   (no "../" traversal).
  metrics-string-key
                   Metrics::Add / Metrics::Get with a pure string-literal key
                   is banned in src/ -- well-known counters must be interned
                   as Counter enum values (dense-array hot path, no string
                   construction). Dynamically composed names such as
                   `"fault." + point` remain allowed.
  net-fail-point   wire fail points follow the delivery-layer grammar
                   net.<side>.<endpoint>.<fault> with side in {client,server}
                   and fault in {drop,dup,delay,reorder}. Any string literal
                   shaped like a fail point (>= 3 dot segments) that starts
                   with "net." is checked; two-segment "net.*" literals are
                   metrics counter names and exempt, as are prefix fragments
                   ending in ".".
  liveness-fail-point
                   liveness fail points follow the grammar
                   liveness.<node>.<op> with node in {server,client} and a
                   lower_snake op. Any string literal with >= 3 dot segments
                   starting with "liveness." is checked; two-segment
                   "liveness.*" literals are metrics counter names and
                   exempt.
  would-block-sweep
                   the WouldBlockReason enum (src/common/status.h) and the
                   WouldBlockReasonName table (status.cc) must cover each
                   other exactly: every enumerator (kRecoveringPage, ...)
                   prints a readable name, and no stale case survives an
                   enum edit. Degraded-path retry policy keys on these
                   values, so a silent gap ships undiagnosable refusals.
  bench-registry   every numeric field in a committed BENCH_*.json at the
                   repo root must be registered in tools/bench_tolerances.json
                   (as a row key or a toleranced metric), so a new bench
                   metric cannot ship without a perf-gate band
                   (tools/bench_gate.py enforces the same at gate time).

Usage
-----
  tools/finelog_lint.py [--root DIR]     lint the tree (exit 1 on violations)
  tools/finelog_lint.py --self-test      run the rules against the seeded bad
                                         fixtures in tests/lint_fixtures and
                                         assert each rule fires
"""

import argparse
import glob
import json
import os
import re
import sys

SRC_DIRS = ["src"]
# Determinism matters wherever workloads run, not just in src/.
DETERMINISM_DIRS = ["src", "tests", "bench", "examples"]
FIXTURE_DIR = os.path.join("tests", "lint_fixtures")
RNG_ALLOWLIST = {
    os.path.join("src", "common", "rng.h"),
    os.path.join("src", "common", "clock.h"),
}

TOP_LEVEL_INCLUDE_DIRS = {
    "common", "util", "log", "storage", "buffer", "lock", "client", "server",
    "core", "net", "bench", "tests",
}


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving line structure
    (and preserving string literals' *positions* as spaces) so that line
    numbers and regex column logic stay valid."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # Unterminated; bail to code to stay line-stable.
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


# --- determinism -----------------------------------------------------------

DETERMINISM_RE = re.compile(
    r"(?<![A-Za-z0-9_.>])(rand|srand|time)\s*\(|std::random_device")


def check_determinism(relpath, text, stripped):
    del text
    out = []
    if relpath in RNG_ALLOWLIST:
        return out
    for lineno, line in enumerate(stripped.splitlines(), 1):
        m = DETERMINISM_RE.search(line)
        if m:
            what = m.group(1) or "std::random_device"
            out.append(Violation(
                relpath, lineno, "determinism",
                f"`{what}` breaks crash-sweep determinism; use common/rng.h "
                "or common/clock.h"))
    return out


# --- fail-point grammar and uniqueness -------------------------------------

POINT_LITERAL_RE = re.compile(
    r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")
OP_SUFFIX_RE = re.compile(r"^\.[a-z][a-z0-9_]*$")
EVALUATE_RE = re.compile(r"(?:\.|->)\s*Evaluate\s*\(")


def extract_first_arg(text, open_paren_idx):
    """Returns the text of the first argument after the '(' at
    open_paren_idx, stopping at the first top-level comma or the closing
    paren."""
    depth = 0
    i = open_paren_idx
    start = open_paren_idx + 1
    while i < len(text):
        c = text[i]
        if c == "(":
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                return text[start:i]
        elif c == "," and depth == 1:
            return text[start:i]
        i += 1
    return text[start:]


def check_fail_points(relpath, text, stripped, registry):
    out = []
    for m in EVALUATE_RE.finditer(stripped):
        open_paren = stripped.index("(", m.start())
        lineno = stripped.count("\n", 0, m.start()) + 1
        # Skip the method's own declaration/definition.
        if "std::string" in extract_first_arg(stripped, open_paren):
            continue
        # Read literal text from the original (strings are blanked in
        # `stripped`), using identical offsets.
        arg = extract_first_arg(text, open_paren).strip()
        arg_norm = " ".join(arg.split())
        literals = re.findall(r'"((?:[^"\\]|\\.)*)"', arg)
        if not literals:
            out.append(Violation(
                relpath, lineno, "fail-point",
                "Evaluate() fail-point name has no string literal part; "
                "points must be statically auditable"))
            continue
        if arg_norm.startswith('"') and len(literals) == 1 and "+" not in arg:
            # Whole-literal point: full grammar check.
            if not POINT_LITERAL_RE.match(literals[0]):
                out.append(Violation(
                    relpath, lineno, "fail-point",
                    f'fail point "{literals[0]}" does not match '
                    "<node>.<component>.<op> (lower_snake segments)"))
        else:
            # "<prefix expr> + \".op\"" form: the op suffix is the literal.
            suffix = literals[-1]
            if not OP_SUFFIX_RE.match(suffix):
                out.append(Violation(
                    relpath, lineno, "fail-point",
                    f'fail-point op suffix "{suffix}" does not match '
                    '".op" (lower_snake)'))
        prior = registry.get(arg_norm)
        if prior is not None:
            out.append(Violation(
                relpath, lineno, "fail-point",
                f"duplicate fail point {arg_norm!r} (first used at "
                f"{prior[0]}:{prior[1]}); every site must be unique"))
        else:
            registry[arg_norm] = (relpath, lineno)
    return out


# --- net fail-point grammar ------------------------------------------------

NET_POINT_RE = re.compile(
    r"^net\.(client|server)\.[a-z][a-z0-9_]*\.(drop|dup|delay|reorder)$")


def check_net_fail_points(relpath, text, stripped):
    out = []
    # Locate literal spans in `stripped` (comments are blanked there, so
    # quoted examples in prose are skipped) and read the content from the
    # original text at identical offsets.
    for m in re.finditer(r'"[^"\n]*"', stripped):
        lit = text[m.start() + 1:m.end() - 1]
        if not lit.startswith("net."):
            continue
        if lit.count(".") < 2:
            continue  # Two-segment "net.*": a metrics counter name.
        if lit.endswith("."):
            continue  # Prefix fragment composed with a ".fault" suffix.
        if not NET_POINT_RE.match(lit):
            lineno = text.count("\n", 0, m.start()) + 1
            out.append(Violation(
                relpath, lineno, "net-fail-point",
                f'wire fail point "{lit}" does not match '
                "net.<side>.<endpoint>.<fault> with side in "
                "{client,server} and fault in {drop,dup,delay,reorder}"))
    return out


# --- liveness fail-point grammar -------------------------------------------

LIVENESS_POINT_RE = re.compile(r"^liveness\.(server|client)\.[a-z][a-z0-9_]*$")


def check_liveness_fail_points(relpath, text, stripped):
    out = []
    # Same literal-location strategy as check_net_fail_points: find spans in
    # `stripped` (prose in comments is blanked), read from the original.
    for m in re.finditer(r'"[^"\n]*"', stripped):
        lit = text[m.start() + 1:m.end() - 1]
        if not lit.startswith("liveness."):
            continue
        if lit.count(".") < 2:
            continue  # Two-segment "liveness.*": a metrics counter name.
        if not LIVENESS_POINT_RE.match(lit):
            lineno = text.count("\n", 0, m.start()) + 1
            out.append(Violation(
                relpath, lineno, "liveness-fail-point",
                f'liveness fail point "{lit}" does not match '
                "liveness.<node>.<op> with node in {server,client} "
                "(lower_snake op)"))
    return out


# The rpc-chokepoint rule moved to tools/finelog_verify.py: the AST-level
# call-graph version cannot be fooled by comments, strings or macro names,
# and its fixture lives in tests/verify_fixtures/bad_raw_channel.cc.


# --- raw new / delete ------------------------------------------------------

NEW_RE = re.compile(r"\bnew\b\s+[A-Za-z_:(]")
DELETE_RE = re.compile(r"(?<![=\w])\bdelete\b(?!\s*;?\s*$)|\bdelete\b\s*\[")
SMART_NEW_RE = re.compile(r"(unique_ptr|shared_ptr)\s*<[^;]*>\s*\(\s*new\b")


def check_new_delete(relpath, text, stripped):
    del text
    out = []
    lines = stripped.splitlines()
    for lineno, line in enumerate(lines, 1):
        # The factory idiom may wrap: join with the previous line so
        # `unique_ptr<T>(\n    new T(...))` is recognized.
        joined = (lines[lineno - 2] + " " if lineno >= 2 else "") + line
        if NEW_RE.search(line) and not SMART_NEW_RE.search(joined):
            out.append(Violation(
                relpath, lineno, "raw-new-delete",
                "raw `new` outside an owning smart-pointer expression"))
        if re.search(r"=\s*delete\b", line):
            continue  # Deleted special member.
        if re.search(r"\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_(*]", line):
            out.append(Violation(
                relpath, lineno, "raw-new-delete",
                "raw `delete`; ownership must go through smart pointers"))
    return out


# --- memcpy into Page ------------------------------------------------------

MEM_WRITE_RE = re.compile(r"\b(?:std::)?(memcpy|memset)\s*\(")
CHECK_WINDOW = 3


def check_page_memcpy(relpath, text, stripped):
    del text
    out = []
    lines = stripped.splitlines()
    for idx, line in enumerate(lines):
        m = MEM_WRITE_RE.search(line)
        if not m:
            continue
        open_paren = line.index("(", m.start())
        dest = extract_first_arg(line, open_paren)
        if "buf_.data()" not in dest:
            continue
        window = lines[max(0, idx - CHECK_WINDOW):idx + 1]
        if not any("FINELOG_CHECK(" in w for w in window):
            out.append(Violation(
                relpath, idx + 1, "page-memcpy",
                f"{m.group(1)} into a Page buffer without a FINELOG_CHECK "
                f"bounds assertion in the {CHECK_WINDOW} preceding lines"))
    return out


# --- metrics string keys ---------------------------------------------------

METRICS_CALL_RE = re.compile(
    r"\bmetrics[A-Za-z0-9_]*(?:\(\s*\))?\s*(?:\.|->)\s*(Add|Get)\s*\(")
PURE_LITERAL_RE = re.compile(r'^(?:"(?:[^"\\]|\\.)*"\s*)+$')


def check_metrics_string_key(relpath, text, stripped):
    out = []
    for m in METRICS_CALL_RE.finditer(stripped):
        open_paren = stripped.index("(", m.end() - 1)
        lineno = stripped.count("\n", 0, m.start()) + 1
        # Read the argument from the original text (strings are blanked in
        # `stripped`); offsets are identical.
        arg = extract_first_arg(text, open_paren).strip()
        if PURE_LITERAL_RE.match(arg):
            out.append(Violation(
                relpath, lineno, "metrics-string-key",
                f"string-literal metrics key {arg}; intern it as a Counter "
                "enum value (string keys are reserved for dynamic names)"))
    return out


# --- include hygiene -------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def check_include_hygiene(relpath, text, stripped):
    del stripped
    out = []
    lines = text.splitlines()
    if relpath.startswith("src" + os.sep) and relpath.endswith(".h"):
        rel_in_src = os.path.relpath(relpath, "src")
        expected = "FINELOG_" + re.sub(
            r"[^A-Za-z0-9]", "_", rel_in_src.upper()) + "_"
        guard_line = None
        for i, line in enumerate(lines):
            m = re.match(r"^\s*#\s*ifndef\s+(\w+)", line)
            if m:
                guard_line = (i, m.group(1))
                break
        if guard_line is None:
            out.append(Violation(
                relpath, 1, "include-hygiene",
                f"missing include guard #ifndef {expected}"))
        else:
            i, name = guard_line
            if name != expected:
                out.append(Violation(
                    relpath, i + 1, "include-hygiene",
                    f"include guard {name} should be {expected} "
                    "(FINELOG_<path>_H_)"))
            elif i + 1 >= len(lines) or not re.match(
                    r"^\s*#\s*define\s+" + re.escape(expected) + r"\s*$",
                    lines[i + 1]):
                out.append(Violation(
                    relpath, i + 2, "include-hygiene",
                    f"#define {expected} must immediately follow its "
                    "#ifndef"))
    for lineno, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        inc = m.group(1)
        if inc.startswith("../") or "/../" in inc:
            out.append(Violation(
                relpath, lineno, "include-hygiene",
                f'include "{inc}" uses path traversal; include '
                "repo-root-relative paths"))
            continue
        top = inc.split("/", 1)[0]
        if "/" in inc and top not in TOP_LEVEL_INCLUDE_DIRS:
            out.append(Violation(
                relpath, lineno, "include-hygiene",
                f'include "{inc}" is not repo-root-relative '
                f"(unknown top-level dir {top!r})"))
    return out


# --- WouldBlockReason enum sweep -------------------------------------------

STATUS_HEADER_RELPATH = os.path.join("src", "common", "status.h")
STATUS_SOURCE_RELPATH = os.path.join("src", "common", "status.cc")
REASON_ENUM = "WouldBlockReason"
REASON_NAME_FN = "WouldBlockReasonName"

REASON_ENUM_RE = re.compile(
    r"enum\s+class\s+" + REASON_ENUM + r"\b[^{]*\{([^}]*)\}")
REASON_CASE_RE = re.compile(
    r"case\s+" + REASON_ENUM + r"\s*::\s*(k\w+)")


def check_reason_sweep(header_text, source_text, header_rel, source_rel):
    """Core of the would-block-sweep rule: every WouldBlockReason enumerator
    (kRecoveringPage, kZombieFenced, ...) must have a `case` in the
    WouldBlockReasonName table, and every case must name a live enumerator.
    A reason without a printable name ships unreadable Status strings; a
    stale case means the enum and its retry-policy surface drifted apart."""
    out = []
    stripped_header = strip_comments_and_strings(header_text)
    stripped_source = strip_comments_and_strings(source_text)
    m = REASON_ENUM_RE.search(stripped_header)
    if m is None:
        out.append(Violation(
            header_rel, 1, "would-block-sweep",
            f"could not parse `enum class {REASON_ENUM}`; the sweep rule "
            "is blind (fix the enum or this rule)"))
        return out
    enumerators = re.findall(r"\bk\w+", m.group(1))
    enum_line = header_text[:m.start()].count("\n") + 1
    if REASON_NAME_FN not in stripped_source:
        out.append(Violation(
            source_rel, 1, "would-block-sweep",
            f"no {REASON_NAME_FN}() definition found"))
        return out
    cases = set(REASON_CASE_RE.findall(stripped_source))
    for e in enumerators:
        if e not in cases:
            out.append(Violation(
                header_rel, enum_line, "would-block-sweep",
                f"{REASON_ENUM}::{e} has no case in {REASON_NAME_FN}() "
                f"({source_rel}); every reason must print a readable name"))
    for c in sorted(cases):
        if c not in enumerators:
            lineno = 1
            for i, line in enumerate(stripped_source.splitlines(), 1):
                if REASON_ENUM in line and c in line:
                    lineno = i
                    break
            out.append(Violation(
                source_rel, lineno, "would-block-sweep",
                f"{REASON_NAME_FN}() has a case for {REASON_ENUM}::{c} "
                f"which is not an enumerator in {header_rel}"))
    return out


def check_would_block_sweep(root):
    """Repo-level rule pairing src/common/status.h with status.cc."""
    header = os.path.join(root, STATUS_HEADER_RELPATH)
    source = os.path.join(root, STATUS_SOURCE_RELPATH)
    if not os.path.isfile(header) or not os.path.isfile(source):
        return [Violation(STATUS_HEADER_RELPATH, 1, "would-block-sweep",
                          "status.h/status.cc pair not found")]
    with open(header, encoding="utf-8") as fh:
        header_text = fh.read()
    with open(source, encoding="utf-8") as fh:
        source_text = fh.read()
    return check_reason_sweep(header_text, source_text,
                              STATUS_HEADER_RELPATH, STATUS_SOURCE_RELPATH)


# --- bench gate registry ---------------------------------------------------

TOLERANCES_RELPATH = os.path.join("tools", "bench_tolerances.json")


def check_bench_file_registered(relpath, doc, config):
    """Core of the bench-registry rule: every numeric field of every row in
    the BENCH document must be a registered key or metric of its bench."""
    out = []
    name = doc.get("bench")
    rows = doc.get("rows")
    if not isinstance(name, str) or not isinstance(rows, list):
        out.append(Violation(relpath, 1, "bench-registry",
                             "not a BENCH file (need 'bench' and 'rows')"))
        return out
    spec = config.get(name)
    if spec is None:
        out.append(Violation(
            relpath, 1, "bench-registry",
            f"bench {name!r} has no entry in {TOLERANCES_RELPATH}"))
        return out
    known = set(spec.get("keys", [])) | set(spec.get("metrics", {}))
    for i, row in enumerate(rows):
        for field, value in row.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if field not in known:
                out.append(Violation(
                    relpath, 1, "bench-registry",
                    f"row {i}: numeric field {field!r} is not registered in "
                    f"{TOLERANCES_RELPATH} for bench {name!r}; the perf gate "
                    "cannot band an unregistered metric"))
    return out


def check_bench_registry(root):
    """Repo-level rule over committed BENCH_*.json (not per source file)."""
    out = []
    bench_files = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not bench_files:
        return out
    tol_path = os.path.join(root, TOLERANCES_RELPATH)
    if not os.path.isfile(tol_path):
        out.append(Violation(TOLERANCES_RELPATH, 1, "bench-registry",
                             "missing tolerance config for committed "
                             "BENCH_*.json files"))
        return out
    try:
        with open(tol_path, encoding="utf-8") as fh:
            config = json.load(fh)
    except ValueError as err:
        out.append(Violation(TOLERANCES_RELPATH, 1, "bench-registry",
                             f"invalid JSON: {err}"))
        return out
    for path in bench_files:
        relpath = os.path.relpath(path, root)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except ValueError as err:
            out.append(Violation(relpath, 1, "bench-registry",
                                 f"invalid JSON: {err}"))
            continue
        out.extend(check_bench_file_registered(relpath, doc, config))
    return out


# --- driver ----------------------------------------------------------------

def iter_files(root, dirs, exts):
    for d in dirs:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            rel_dir = os.path.relpath(dirpath, root)
            if rel_dir.startswith(FIXTURE_DIR):
                continue
            for f in sorted(filenames):
                if os.path.splitext(f)[1] in exts:
                    yield os.path.relpath(os.path.join(dirpath, f), root)


def lint_file(root, relpath, registry, determinism_only=False):
    with open(os.path.join(root, relpath), encoding="utf-8") as fh:
        text = fh.read()
    stripped = strip_comments_and_strings(text)
    out = check_determinism(relpath, text, stripped)
    if determinism_only:
        return out
    out += check_fail_points(relpath, text, stripped, registry)
    out += check_net_fail_points(relpath, text, stripped)
    out += check_liveness_fail_points(relpath, text, stripped)
    out += check_new_delete(relpath, text, stripped)
    out += check_page_memcpy(relpath, text, stripped)
    out += check_metrics_string_key(relpath, text, stripped)
    out += check_include_hygiene(relpath, text, stripped)
    return out


def run_lint(root):
    violations = []
    registry = {}
    src_files = set(iter_files(root, SRC_DIRS, {".h", ".cc"}))
    det_files = set(iter_files(root, DETERMINISM_DIRS,
                               {".h", ".cc", ".cpp"}))
    for relpath in sorted(det_files | src_files):
        violations.extend(lint_file(
            root, relpath, registry,
            determinism_only=relpath not in src_files))
    violations.extend(check_would_block_sweep(root))
    violations.extend(check_bench_registry(root))
    return violations


# --- self test -------------------------------------------------------------

# fixture file -> rule that must fire in it.
FIXTURES = {
    "bad_determinism.cc": "determinism",
    "bad_fail_point.cc": "fail-point",
    "bad_new_delete.cc": "raw-new-delete",
    "bad_page_memcpy.cc": "page-memcpy",
    "bad_include_guard.h": "include-hygiene",
    "bad_liveness_fail_point.cc": "liveness-fail-point",
    "bad_metrics_string.cc": "metrics-string-key",
    "bad_net_fail_point.cc": "net-fail-point",
}


def run_self_test(root):
    failures = []
    fixture_root = os.path.join(root, FIXTURE_DIR)
    for fname, rule in sorted(FIXTURES.items()):
        path = os.path.join(fixture_root, fname)
        if not os.path.isfile(path):
            failures.append(f"fixture missing: {path}")
            continue
        # Lint the fixture as if it lived under src/common/.
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        stripped = strip_comments_and_strings(text)
        pseudo = os.path.join("src", "common", fname)
        registry = {}
        got = (check_determinism(pseudo, text, stripped)
               + check_fail_points(pseudo, text, stripped, registry)
               + check_net_fail_points(pseudo, text, stripped)
               + check_liveness_fail_points(pseudo, text, stripped)
               + check_new_delete(pseudo, text, stripped)
               + check_page_memcpy(pseudo, text, stripped)
               + check_metrics_string_key(pseudo, text, stripped)
               + check_include_hygiene(pseudo, text, stripped))
        fired = {v.rule for v in got}
        if rule not in fired:
            failures.append(
                f"{fname}: expected rule '{rule}' to fire, got {sorted(fired)}")
        else:
            print(f"self-test ok: {fname} -> {rule}")
    # The bench-registry rule is repo-level (JSON, not C++), so its fixture
    # is checked directly instead of through the per-file lint loop.
    bench_fixture = os.path.join(fixture_root, "bad_bench_registry.json")
    if not os.path.isfile(bench_fixture):
        failures.append(f"fixture missing: {bench_fixture}")
    else:
        with open(bench_fixture, encoding="utf-8") as fh:
            doc = json.load(fh)
        tol_path = os.path.join(root, TOLERANCES_RELPATH)
        with open(tol_path, encoding="utf-8") as fh:
            config = json.load(fh)
        got = check_bench_file_registered(
            os.path.join(FIXTURE_DIR, "bad_bench_registry.json"), doc, config)
        if not any(v.rule == "bench-registry" for v in got):
            failures.append(
                "bad_bench_registry.json: expected rule 'bench-registry' "
                "to fire")
        else:
            print("self-test ok: bad_bench_registry.json -> bench-registry")
    # The would-block-sweep rule pairs status.h with status.cc; its fixture
    # carries both the enum and the name table in one file, checked against
    # itself, and must fire in both drift directions.
    sweep_fixture = os.path.join(fixture_root, "bad_reason_sweep.cc")
    if not os.path.isfile(sweep_fixture):
        failures.append(f"fixture missing: {sweep_fixture}")
    else:
        with open(sweep_fixture, encoding="utf-8") as fh:
            text = fh.read()
        pseudo = os.path.join(FIXTURE_DIR, "bad_reason_sweep.cc")
        got = check_reason_sweep(text, text, pseudo, pseudo)
        missing_case = any("has no case" in v.message for v in got)
        stale_case = any("not an enumerator" in v.message for v in got)
        if not (missing_case and stale_case):
            failures.append(
                "bad_reason_sweep.cc: expected would-block-sweep to fire on "
                f"both a missing case and a stale case, got {len(got)} "
                "violation(s)")
        else:
            print("self-test ok: bad_reason_sweep.cc -> would-block-sweep")
    # The real tree must be clean, or the lint gate is already red.
    tree = run_lint(root)
    for v in tree:
        failures.append(f"tree not clean: {v}")
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test passed ({len(FIXTURES)} fixtures, tree clean)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="check that each rule fires on its seeded "
                             "bad fixture and that the tree is clean")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if args.self_test:
        return run_self_test(root)
    violations = run_lint(root)
    for v in violations:
        print(v)
    if violations:
        print(f"finelog_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("finelog_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
