// BufferPool: a steal/no-force page cache with LRU replacement, used both by
// clients (local page cache) and by the server (Section 2).
//
// "Steal": a dirty page may be evicted at any time -- the eviction handler
// supplied by the owner performs the WAL-protected ship/write. "No-force":
// commits never force pages out; only replacement does.
//
// Frames carry the bookkeeping the client-side protocol needs:
//  - `modified_slots`: objects changed since the page was last shipped to
//    the server (the "little more book-keeping" of Section 3.1 that makes
//    merging page copies possible);
//  - `structurally_modified`: a non-mergeable update happened since the last
//    ship (the whole page image matters, not just listed slots);
//  - `ship_log_lsn`: the client's end-of-log when the page was last shipped
//    (Section 3.6 uses it to advance the DPT RedoLSN on flush notification).
// The server ignores these fields.

#ifndef FINELOG_BUFFER_BUFFER_POOL_H_
#define FINELOG_BUFFER_BUFFER_POOL_H_

#include <functional>
#include <list>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace finelog {

class FINELOG_SHARED_STATE_CLASS BufferPool {
 public:
  struct Frame {
    explicit Frame(Page p) : page(std::move(p)) {}
    Page page;
    bool dirty = false;
    int pin_count = 0;  // Pinned frames are never evicted.
    std::set<SlotId> modified_slots;
    bool structurally_modified = false;
    Lsn ship_log_lsn = kNullLsn;
  };

  // Called with the victim frame before it is dropped; must persist it as
  // appropriate (ship to server / write to disk). A failure aborts the
  // insertion that triggered the eviction.
  using EvictHandler = std::function<Status(PageId, Frame&)>;

  explicit BufferPool(uint32_t capacity) : capacity_(capacity) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Looks up a page, refreshing its LRU position. Returns nullptr if absent.
  Frame* Get(PageId pid);

  // Looks up without touching LRU state.
  Frame* Peek(PageId pid);
  const Frame* Peek(PageId pid) const;

  // Inserts (or replaces) a page, evicting the LRU unpinned frame if the
  // pool is full. Returns the inserted frame.
  Result<Frame*> Put(PageId pid, Page page, const EvictHandler& evict);

  // Evicts one specific page through the handler (used by the log space
  // manager, Section 3.6, which replaces the min-RedoLSN page on purpose).
  Status Evict(PageId pid, const EvictHandler& evict);

  // Drops a page without calling the eviction handler.
  void Drop(PageId pid);

  void Pin(PageId pid);
  void Unpin(PageId pid);
  bool IsPinned(PageId pid) const;

  std::vector<PageId> PageIds() const;
  bool Contains(PageId pid) const { return frames_.count(pid) > 0; }
  size_t size() const { return frames_.size(); }
  uint32_t capacity() const { return capacity_; }

  // Crash: the pool is volatile.
  void Clear();

 private:
  void Touch(PageId pid);
  Status EvictOne(const EvictHandler& evict);

  // The pool deliberately carries NO capability of its own: eviction calls
  // back into the owner (WAL force + page ship, which in the real-clock mode
  // parks the thread on an RPC frame), so a pool-level lock would be held
  // across a parked RPC and deadlock against the reactor delivering
  // callbacks into the owner. Serialization comes from the owning Client's /
  // Server's capability, which every path into the pool already holds.
  uint32_t capacity_ FINELOG_UNGUARDED("immutable after construction");
  std::unordered_map<PageId, Frame> frames_
      FINELOG_UNGUARDED("serialized by the owning Client/Server capability; "
                        "eviction re-enters the RPC plane");
  // Front = most recently used.
  std::list<PageId> lru_
      FINELOG_UNGUARDED("serialized by the owning Client/Server capability; "
                        "eviction re-enters the RPC plane");
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_pos_
      FINELOG_UNGUARDED("serialized by the owning Client/Server capability; "
                        "eviction re-enters the RPC plane");
};

}  // namespace finelog

#endif  // FINELOG_BUFFER_BUFFER_POOL_H_
