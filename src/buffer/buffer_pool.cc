#include "buffer/buffer_pool.h"

namespace finelog {

BufferPool::Frame* BufferPool::Get(PageId pid) {
  auto it = frames_.find(pid);
  if (it == frames_.end()) return nullptr;
  Touch(pid);
  return &it->second;
}

BufferPool::Frame* BufferPool::Peek(PageId pid) {
  auto it = frames_.find(pid);
  return it == frames_.end() ? nullptr : &it->second;
}

const BufferPool::Frame* BufferPool::Peek(PageId pid) const {
  auto it = frames_.find(pid);
  return it == frames_.end() ? nullptr : &it->second;
}

void BufferPool::Touch(PageId pid) {
  auto pos = lru_pos_.find(pid);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
  }
  lru_.push_front(pid);
  lru_pos_[pid] = lru_.begin();
}

Status BufferPool::EvictOne(const EvictHandler& evict) {
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    PageId victim = *it;
    Frame& frame = frames_.at(victim);
    if (frame.pin_count > 0) continue;
    if (evict) {
      FINELOG_RETURN_IF_ERROR(evict(victim, frame));
    }
    Drop(victim);
    return Status::OK();
  }
  return Status::FailedPrecondition("buffer pool full of pinned pages");
}

Result<BufferPool::Frame*> BufferPool::Put(PageId pid, Page page,
                                           const EvictHandler& evict) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) {
    it->second.page = std::move(page);
    Touch(pid);
    return &it->second;
  }
  if (frames_.size() >= capacity_) {
    FINELOG_RETURN_IF_ERROR(EvictOne(evict));
  }
  auto [ins, ok] = frames_.emplace(pid, Frame(std::move(page)));
  (void)ok;
  Touch(pid);
  return &ins->second;
}

Status BufferPool::Evict(PageId pid, const EvictHandler& evict) {
  auto it = frames_.find(pid);
  if (it == frames_.end()) {
    return Status::NotFound("page not cached");
  }
  if (it->second.pin_count > 0) {
    return Status::FailedPrecondition("page pinned");
  }
  if (evict) {
    FINELOG_RETURN_IF_ERROR(evict(pid, it->second));
  }
  Drop(pid);
  return Status::OK();
}

void BufferPool::Drop(PageId pid) {
  auto pos = lru_pos_.find(pid);
  if (pos != lru_pos_.end()) {
    lru_.erase(pos->second);
    lru_pos_.erase(pos);
  }
  frames_.erase(pid);
}

void BufferPool::Pin(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end()) ++it->second.pin_count;
}

void BufferPool::Unpin(PageId pid) {
  auto it = frames_.find(pid);
  if (it != frames_.end() && it->second.pin_count > 0) --it->second.pin_count;
}

bool BufferPool::IsPinned(PageId pid) const {
  auto it = frames_.find(pid);
  return it != frames_.end() && it->second.pin_count > 0;
}

std::vector<PageId> BufferPool::PageIds() const {
  std::vector<PageId> out;
  out.reserve(frames_.size());
  for (const auto& [pid, frame] : frames_) {
    (void)frame;
    out.push_back(pid);
  }
  return out;
}

void BufferPool::Clear() {
  frames_.clear();
  lru_.clear();
  lru_pos_.clear();
}

}  // namespace finelog
