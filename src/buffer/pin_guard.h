// ScopedPin: RAII pin on a buffer pool frame. An operation that holds a
// frame pointer across a log append must pin the page: appending can invoke
// the log space protocol (Section 3.6), which evicts pages.

#ifndef FINELOG_BUFFER_PIN_GUARD_H_
#define FINELOG_BUFFER_PIN_GUARD_H_

#include "buffer/buffer_pool.h"

namespace finelog {

class ScopedPin {
 public:
  ScopedPin(BufferPool* pool, PageId pid) : pool_(pool), pid_(pid) {
    pool_->Pin(pid_);
  }
  ~ScopedPin() { pool_->Unpin(pid_); }

  ScopedPin(const ScopedPin&) = delete;
  ScopedPin& operator=(const ScopedPin&) = delete;

 private:
  BufferPool* pool_;
  PageId pid_;
};

}  // namespace finelog

#endif  // FINELOG_BUFFER_PIN_GUARD_H_
