#include "lock/glm.h"

#include <algorithm>

namespace finelog {

std::vector<CallbackAction> GlobalLockManager::RequiredForObject(
    ClientId client, ObjectId oid, LockMode mode) const {
  SimMutexLock lock(mu_);
  std::vector<CallbackAction> actions;

  // Page-level conflicts: another client holds a page lock on oid.page that
  // is incompatible with this object request.
  auto pit = page_locks_.find(oid.page);
  if (pit != page_locks_.end()) {
    for (const auto& [holder, held] : pit->second) {
      if (holder == client) continue;
      if (!Compatible(held, mode)) {
        actions.push_back(CallbackAction{CallbackAction::What::kDeescalatePage,
                                         holder, ObjectId{}, oid.page, held,
                                         mode});
      }
    }
  }

  // Object-level conflicts.
  auto oit = object_locks_.find(oid);
  if (oit != object_locks_.end()) {
    for (const auto& [holder, held] : oit->second) {
      if (holder == client) continue;
      if (Compatible(held, mode)) continue;
      if (mode == LockMode::kShared) {
        // Holder has X; ask it to downgrade (shipping its page copy).
        actions.push_back(CallbackAction{CallbackAction::What::kDowngradeObject,
                                         holder, oid, kInvalidPageId, held,
                                         mode});
      } else {
        actions.push_back(CallbackAction{CallbackAction::What::kReleaseObject,
                                         holder, oid, kInvalidPageId, held,
                                         mode});
      }
    }
  }
  return actions;
}

std::vector<CallbackAction> GlobalLockManager::RequiredForPage(
    ClientId client, PageId pid, LockMode mode) const {
  SimMutexLock lock(mu_);
  std::vector<CallbackAction> actions;

  auto pit = page_locks_.find(pid);
  if (pit != page_locks_.end()) {
    for (const auto& [holder, held] : pit->second) {
      if (holder == client) continue;
      if (!Compatible(held, mode)) {
        actions.push_back(CallbackAction{CallbackAction::What::kDeescalatePage,
                                         holder, ObjectId{}, pid, held, mode});
      }
    }
  }

  auto idx = objects_on_page_.find(pid);
  if (idx != objects_on_page_.end()) {
    for (const ObjectId& oid : idx->second) {
      auto oit = object_locks_.find(oid);
      if (oit == object_locks_.end()) continue;
      for (const auto& [holder, held] : oit->second) {
        if (holder == client) continue;
        if (Compatible(held, mode)) continue;
        if (mode == LockMode::kShared) {
          actions.push_back(CallbackAction{
              CallbackAction::What::kDowngradeObject, holder, oid,
              kInvalidPageId, held, mode});
        } else {
          actions.push_back(CallbackAction{CallbackAction::What::kReleaseObject,
                                           holder, oid, kInvalidPageId, held,
                                           mode});
        }
      }
    }
  }
  return actions;
}

void GlobalLockManager::GrantObject(ClientId client, ObjectId oid,
                                    LockMode mode) {
  SimMutexLock lock(mu_);
  LockMode& held = object_locks_[oid]
                       .try_emplace(client, mode)
                       .first->second;
  if (mode == LockMode::kExclusive) held = LockMode::kExclusive;
  objects_on_page_[oid.page].insert(oid);
}

void GlobalLockManager::GrantPage(ClientId client, PageId pid, LockMode mode) {
  SimMutexLock lock(mu_);
  LockMode& held = page_locks_[pid].try_emplace(client, mode).first->second;
  if (mode == LockMode::kExclusive) held = LockMode::kExclusive;
}

void GlobalLockManager::ReleaseObject(ClientId client, ObjectId oid) {
  SimMutexLock lock(mu_);
  auto oit = object_locks_.find(oid);
  if (oit == object_locks_.end()) return;
  oit->second.erase(client);
  if (oit->second.empty()) {
    object_locks_.erase(oit);
    auto idx = objects_on_page_.find(oid.page);
    if (idx != objects_on_page_.end()) {
      idx->second.erase(oid);
      if (idx->second.empty()) objects_on_page_.erase(idx);
    }
  }
}

void GlobalLockManager::DowngradeObject(ClientId client, ObjectId oid) {
  SimMutexLock lock(mu_);
  auto oit = object_locks_.find(oid);
  if (oit == object_locks_.end()) return;
  auto hit = oit->second.find(client);
  if (hit != oit->second.end()) hit->second = LockMode::kShared;
}

void GlobalLockManager::DowngradePage(ClientId client, PageId pid) {
  SimMutexLock lock(mu_);
  auto pit = page_locks_.find(pid);
  if (pit == page_locks_.end()) return;
  auto hit = pit->second.find(client);
  if (hit != pit->second.end()) hit->second = LockMode::kShared;
}

void GlobalLockManager::ReleasePage(ClientId client, PageId pid) {
  SimMutexLock lock(mu_);
  auto pit = page_locks_.find(pid);
  if (pit == page_locks_.end()) return;
  pit->second.erase(client);
  if (pit->second.empty()) page_locks_.erase(pit);
}

void GlobalLockManager::ApplyDeescalation(
    ClientId client, PageId pid, const std::vector<ObjectId>& object_locks,
    LockMode mode) {
  SimMutexLock lock(mu_);
  ReleasePage(client, pid);
  for (const ObjectId& oid : object_locks) {
    GrantObject(client, oid, mode);
  }
}

void GlobalLockManager::ReleaseSharedLocksOf(ClientId client) {
  SimMutexLock lock(mu_);
  for (auto it = object_locks_.begin(); it != object_locks_.end();) {
    auto hit = it->second.find(client);
    if (hit != it->second.end() && hit->second == LockMode::kShared) {
      ObjectId oid = it->first;
      it->second.erase(hit);
      if (it->second.empty()) {
        auto idx = objects_on_page_.find(oid.page);
        if (idx != objects_on_page_.end()) {
          idx->second.erase(oid);
          if (idx->second.empty()) objects_on_page_.erase(idx);
        }
        it = object_locks_.erase(it);
        continue;
      }
    }
    ++it;
  }
  for (auto it = page_locks_.begin(); it != page_locks_.end();) {
    auto hit = it->second.find(client);
    if (hit != it->second.end() && hit->second == LockMode::kShared) {
      it->second.erase(hit);
      if (it->second.empty()) {
        it = page_locks_.erase(it);
        continue;
      }
    }
    ++it;
  }
}

std::vector<ObjectId> GlobalLockManager::ExclusiveObjectLocksOf(
    ClientId client) const {
  SimMutexLock lock(mu_);
  std::vector<ObjectId> out;
  for (const auto& [oid, holders] : object_locks_) {
    auto hit = holders.find(client);
    if (hit != holders.end() && hit->second == LockMode::kExclusive) {
      out.push_back(oid);
    }
  }
  // The table is unordered; recovery re-installs these locks in list order,
  // so sort to keep that order (and every downstream log) deterministic.
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PageId> GlobalLockManager::ExclusivePageLocksOf(
    ClientId client) const {
  SimMutexLock lock(mu_);
  std::vector<PageId> out;
  for (const auto& [pid, holders] : page_locks_) {
    auto hit = holders.find(client);
    if (hit != holders.end() && hit->second == LockMode::kExclusive) {
      out.push_back(pid);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void GlobalLockManager::DropClient(ClientId client) {
  SimMutexLock lock(mu_);
  for (auto it = object_locks_.begin(); it != object_locks_.end();) {
    it->second.erase(client);
    if (it->second.empty()) {
      ObjectId oid = it->first;
      auto idx = objects_on_page_.find(oid.page);
      if (idx != objects_on_page_.end()) {
        idx->second.erase(oid);
        if (idx->second.empty()) objects_on_page_.erase(idx);
      }
      it = object_locks_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = page_locks_.begin(); it != page_locks_.end();) {
    it->second.erase(client);
    if (it->second.empty()) {
      it = page_locks_.erase(it);
    } else {
      ++it;
    }
  }
}

void GlobalLockManager::Clear() {
  SimMutexLock lock(mu_);
  object_locks_.clear();
  page_locks_.clear();
  objects_on_page_.clear();
}

bool GlobalLockManager::HoldsObject(ClientId client, ObjectId oid,
                                    LockMode mode) const {
  SimMutexLock lock(mu_);
  auto oit = object_locks_.find(oid);
  if (oit == object_locks_.end()) return false;
  auto hit = oit->second.find(client);
  return hit != oit->second.end() && Covers(hit->second, mode);
}

bool GlobalLockManager::HoldsPage(ClientId client, PageId pid,
                                  LockMode mode) const {
  SimMutexLock lock(mu_);
  auto pit = page_locks_.find(pid);
  if (pit == page_locks_.end()) return false;
  auto hit = pit->second.find(client);
  return hit != pit->second.end() && Covers(hit->second, mode);
}

std::vector<ClientId> GlobalLockManager::ObjectHolders(ObjectId oid,
                                                       ClientId except) const {
  SimMutexLock lock(mu_);
  std::vector<ClientId> out;
  auto oit = object_locks_.find(oid);
  if (oit == object_locks_.end()) return out;
  for (const auto& [holder, mode] : oit->second) {
    (void)mode;
    if (holder != except) out.push_back(holder);
  }
  return out;
}

size_t GlobalLockManager::object_lock_count() const {
  SimMutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [oid, holders] : object_locks_) {
    (void)oid;
    n += holders.size();
  }
  return n;
}

}  // namespace finelog
