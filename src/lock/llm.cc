#include "lock/llm.h"

#include <algorithm>

namespace finelog {

namespace {

// True if `txn` could not use the entry in `mode` because another local
// transaction is using it incompatibly.
bool LocalConflict(const LocalLockManager::Entry& e, TxnId txn, LockMode mode) {
  if (mode == LockMode::kExclusive) {
    for (TxnId t : e.readers) {
      if (t != txn) return true;
    }
  }
  for (TxnId t : e.writers) {
    if (t != txn) return true;
  }
  return false;
}

void RegisterUse(LocalLockManager::Entry* e, TxnId txn, LockMode mode) {
  if (mode == LockMode::kExclusive) {
    e->writers.insert(txn);
  } else {
    e->readers.insert(txn);
  }
}

}  // namespace

LocalLockManager::Entry* LocalLockManager::FindObject(ObjectId oid) {
  auto it = object_locks_.find(oid);
  return it == object_locks_.end() ? nullptr : &it->second;
}
const LocalLockManager::Entry* LocalLockManager::FindObject(ObjectId oid) const {
  auto it = object_locks_.find(oid);
  return it == object_locks_.end() ? nullptr : &it->second;
}

LocalLockManager::Acquire LocalLockManager::TryAcquireObject(TxnId txn,
                                                             ObjectId oid,
                                                             LockMode mode) {
  SimMutexLock lock(mu_);
  Entry* e = FindObject(oid);
  if (e != nullptr && Covers(e->mode, mode)) {
    if (LocalConflict(*e, txn, mode)) return Acquire::kLocalConflict;
    RegisterUse(e, txn, mode);
    return Acquire::kHit;
  }
  // Check page-level coverage.
  auto pit = page_locks_.find(oid.page);
  if (pit != page_locks_.end() && Covers(pit->second.mode, mode)) {
    if (LocalConflict(pit->second, txn, mode)) return Acquire::kLocalConflict;
    if (e != nullptr && LocalConflict(*e, txn, mode)) {
      return Acquire::kLocalConflict;
    }
    // Record an implicit object entry under the page lock.
    Entry& imp = object_locks_[oid];
    if (e == nullptr) {
      imp.mode = mode;
      imp.known_to_server = false;
    } else if (mode == LockMode::kExclusive) {
      imp.mode = LockMode::kExclusive;
    }
    RegisterUse(&imp, txn, mode);
    return Acquire::kHit;
  }
  // Local upgrade path or plain miss: if another local transaction is using
  // the current entry incompatibly with the upgrade, report the conflict
  // now rather than involving the server.
  if (e != nullptr && LocalConflict(*e, txn, mode)) {
    return Acquire::kLocalConflict;
  }
  return Acquire::kMiss;
}

LocalLockManager::Acquire LocalLockManager::TryAcquirePage(TxnId txn,
                                                           PageId pid,
                                                           LockMode mode) {
  SimMutexLock lock(mu_);
  auto pit = page_locks_.find(pid);
  if (pit != page_locks_.end() && Covers(pit->second.mode, mode)) {
    if (LocalConflict(pit->second, txn, mode)) return Acquire::kLocalConflict;
    RegisterUse(&pit->second, txn, mode);
    return Acquire::kHit;
  }
  if (pit != page_locks_.end() && LocalConflict(pit->second, txn, mode)) {
    return Acquire::kLocalConflict;
  }
  // A page request also conflicts with other local transactions' object
  // locks on the page.
  for (const auto& [oid, entry] : object_locks_) {
    if (oid.page != pid) continue;
    if (LocalConflict(entry, txn, mode)) return Acquire::kLocalConflict;
  }
  return Acquire::kMiss;
}

void LocalLockManager::AddObjectLock(TxnId txn, ObjectId oid, LockMode mode) {
  SimMutexLock lock(mu_);
  Entry& e = object_locks_[oid];
  if (e.mode != LockMode::kExclusive) e.mode = mode;
  e.known_to_server = true;
  RegisterUse(&e, txn, mode);
}

void LocalLockManager::AddPageLock(TxnId txn, PageId pid, LockMode mode) {
  SimMutexLock lock(mu_);
  Entry& e = page_locks_[pid];
  if (e.mode != LockMode::kExclusive) e.mode = mode;
  e.known_to_server = true;
  RegisterUse(&e, txn, mode);
}

void LocalLockManager::OnTxnEnd(TxnId txn) {
  SimMutexLock lock(mu_);
  for (auto& [oid, e] : object_locks_) {
    (void)oid;
    e.readers.erase(txn);
    e.writers.erase(txn);
  }
  for (auto& [pid, e] : page_locks_) {
    (void)pid;
    e.readers.erase(txn);
    e.writers.erase(txn);
  }
}

bool LocalLockManager::CanReleaseObject(ObjectId oid) const {
  SimMutexLock lock(mu_);
  const Entry* e = FindObject(oid);
  return e == nullptr || !e->InUse();
}

bool LocalLockManager::CanDowngradeObject(ObjectId oid) const {
  SimMutexLock lock(mu_);
  const Entry* e = FindObject(oid);
  return e == nullptr || e->writers.empty();
}

bool LocalLockManager::CanDeescalatePage(PageId pid) const {
  SimMutexLock lock(mu_);
  auto pit = page_locks_.find(pid);
  // Structural updates register the transaction as a writer of the page
  // lock; de-escalation must wait for them.
  return pit == page_locks_.end() || pit->second.writers.empty();
}

void LocalLockManager::ReleaseObject(ObjectId oid) {
  SimMutexLock lock(mu_);
  object_locks_.erase(oid);
}

void LocalLockManager::DowngradeObject(ObjectId oid) {
  SimMutexLock lock(mu_);
  Entry* e = FindObject(oid);
  if (e != nullptr) e->mode = LockMode::kShared;
}

void LocalLockManager::ReleasePage(PageId pid) {
  SimMutexLock lock(mu_);
  page_locks_.erase(pid);
}

void LocalLockManager::DowngradePage(PageId pid) {
  SimMutexLock lock(mu_);
  auto pit = page_locks_.find(pid);
  if (pit != page_locks_.end()) pit->second.mode = LockMode::kShared;
}

std::vector<std::pair<ObjectId, LockMode>> LocalLockManager::Deescalate(
    PageId pid) {
  SimMutexLock lock(mu_);
  std::vector<std::pair<ObjectId, LockMode>> promoted;
  auto pit = page_locks_.find(pid);
  if (pit == page_locks_.end()) return promoted;
  // Readers of the page lock become readers of... nothing specific: a page
  // read under a page-S lock did not touch identified objects. Object
  // accesses made implicit entries below, which carry the users.
  page_locks_.erase(pit);
  for (auto& [oid, e] : object_locks_) {
    if (oid.page != pid) continue;
    e.known_to_server = true;
    promoted.emplace_back(oid, e.mode);
  }
  return promoted;
}

size_t LocalLockManager::ExclusiveObjectCountOnPage(PageId pid) const {
  SimMutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [oid, e] : object_locks_) {
    if (oid.page == pid && e.mode == LockMode::kExclusive) ++n;
  }
  return n;
}

bool LocalLockManager::CoversObject(ObjectId oid, LockMode mode) const {
  SimMutexLock lock(mu_);
  const Entry* e = FindObject(oid);
  if (e != nullptr && Covers(e->mode, mode)) return true;
  auto pit = page_locks_.find(oid.page);
  return pit != page_locks_.end() && Covers(pit->second.mode, mode);
}

bool LocalLockManager::CoversPage(PageId pid, LockMode mode) const {
  SimMutexLock lock(mu_);
  auto pit = page_locks_.find(pid);
  return pit != page_locks_.end() && Covers(pit->second.mode, mode);
}

bool LocalLockManager::HasAnyLockOnPage(PageId pid) const {
  SimMutexLock lock(mu_);
  if (page_locks_.count(pid) > 0) return true;
  for (const auto& [oid, e] : object_locks_) {
    (void)e;
    if (oid.page == pid) return true;
  }
  return false;
}

bool LocalLockManager::HoldsExplicitObject(ObjectId oid, LockMode mode) const {
  SimMutexLock lock(mu_);
  const Entry* e = FindObject(oid);
  return e != nullptr && e->known_to_server && Covers(e->mode, mode);
}

LocalLockManager::Snapshot LocalLockManager::GetSnapshot() {
  SimMutexLock lock(mu_);
  Snapshot snap;
  for (auto& [oid, e] : object_locks_) {
    snap.objects.emplace_back(oid, e.mode);
    e.known_to_server = true;  // The server now knows about this entry.
  }
  for (auto& [pid, e] : page_locks_) {
    snap.pages.emplace_back(pid, e.mode);
    e.known_to_server = true;
  }
  return snap;
}

std::vector<ObjectId> LocalLockManager::ExclusiveObjects() const {
  SimMutexLock lock(mu_);
  std::vector<ObjectId> out;
  for (const auto& [oid, e] : object_locks_) {
    if (e.mode == LockMode::kExclusive) out.push_back(oid);
  }
  return out;
}

void LocalLockManager::Clear() {
  SimMutexLock lock(mu_);
  object_locks_.clear();
  page_locks_.clear();
}

}  // namespace finelog
