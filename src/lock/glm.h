// GlobalLockManager (GLM): the server's lock table (Section 2).
//
// The GLM tracks, per object and per page, which *clients* hold which lock
// modes (transaction-level bookkeeping stays in each client's LLM, because
// locks are cached by clients across transaction boundaries). Lock requests
// are evaluated against both levels of the hierarchy, per Section 3.2:
//
//  - Object-level conflict: conflicting holders must release (X request) or
//    downgrade (S request against an X holder), shipping their page copy.
//  - Page-level conflict: holders of a conflicting page lock de-escalate to
//    object locks first; the request is then re-evaluated at object level.
//
// The GLM is pure bookkeeping: it *describes* the callbacks required as data
// (CallbackAction) and the server executes them, reporting results back via
// Grant/Release/Downgrade/ApplyDeescalation. This keeps the protocol logic
// testable without a network or clients.

#ifndef FINELOG_LOCK_GLM_H_
#define FINELOG_LOCK_GLM_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "lock/lock_mode.h"

namespace finelog {

// One callback the server must deliver before a lock can be granted.
struct CallbackAction {
  enum class What {
    kReleaseObject,    // X-mode callback: holder releases its object lock.
    kDowngradeObject,  // S-mode callback: X holder demotes to S.
    kDeescalatePage,   // Page-lock holder trades its page lock for object locks.
  };
  What what;
  ClientId target = kInvalidClientId;
  ObjectId object;            // For object callbacks.
  PageId page = kInvalidPageId;  // For de-escalation.
  LockMode holder_mode = LockMode::kShared;  // Mode currently held by target.
  LockMode requested = LockMode::kShared;    // Mode the requester wants.
};

class GlobalLockManager {
 public:
  GlobalLockManager() = default;

  GlobalLockManager(const GlobalLockManager&) = delete;
  GlobalLockManager& operator=(const GlobalLockManager&) = delete;

  // Computes the callbacks needed before `client` can hold `mode` on the
  // object. An empty result means the lock is immediately grantable.
  std::vector<CallbackAction> RequiredForObject(ClientId client, ObjectId oid,
                                                LockMode mode) const;

  // Same for a page-level request: conflicts come from other clients' page
  // locks and their object locks on the page.
  std::vector<CallbackAction> RequiredForPage(ClientId client, PageId pid,
                                              LockMode mode) const;

  // State mutations, applied by the server once callbacks succeed.
  void GrantObject(ClientId client, ObjectId oid, LockMode mode);
  void GrantPage(ClientId client, PageId pid, LockMode mode);
  void ReleaseObject(ClientId client, ObjectId oid);
  void DowngradeObject(ClientId client, ObjectId oid);
  void ReleasePage(ClientId client, PageId pid);
  void DowngradePage(ClientId client, PageId pid);
  // Removes the page lock and installs the object locks the client reported
  // for its active transactions (Section 3.2, page-level conflict case).
  void ApplyDeescalation(ClientId client, PageId pid,
                         const std::vector<ObjectId>& object_locks,
                         LockMode mode);

  // Client crash (Section 3.3): shared locks are released; exclusive locks
  // are retained so the recovering client can re-install them.
  void ReleaseSharedLocksOf(ClientId client);
  // Exclusive object locks held by `client` (used for lock re-installation).
  std::vector<ObjectId> ExclusiveObjectLocksOf(ClientId client) const;
  std::vector<PageId> ExclusivePageLocksOf(ClientId client) const;

  // Drops every lock of `client` (used when rebuilding GLM state).
  void DropClient(ClientId client);

  // Full reset (server crash loses the GLM; Section 3.4 rebuilds it from
  // client LLM snapshots via GrantObject/GrantPage).
  void Clear();

  // Queries.
  bool HoldsObject(ClientId client, ObjectId oid, LockMode mode) const;
  bool HoldsPage(ClientId client, PageId pid, LockMode mode) const;
  // Clients other than `except` holding any lock on the object.
  std::vector<ClientId> ObjectHolders(ObjectId oid, ClientId except) const;
  size_t object_lock_count() const;

 private:
  // client -> mode, per lockable.
  std::map<ObjectId, std::map<ClientId, LockMode>> object_locks_;
  std::map<PageId, std::map<ClientId, LockMode>> page_locks_;
  // Secondary index: object locks present on each page.
  std::map<PageId, std::set<ObjectId>> objects_on_page_;
};

}  // namespace finelog

#endif  // FINELOG_LOCK_GLM_H_
