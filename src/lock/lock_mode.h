// Lock modes for fine-granularity (object) and page locking.

#ifndef FINELOG_LOCK_LOCK_MODE_H_
#define FINELOG_LOCK_LOCK_MODE_H_

#include <cstdint>

namespace finelog {

enum class LockMode : uint8_t {
  kShared = 0,
  kExclusive = 1,
};

inline bool Compatible(LockMode a, LockMode b) {
  return a == LockMode::kShared && b == LockMode::kShared;
}

// True if a holder of `held` already covers a request for `wanted`.
inline bool Covers(LockMode held, LockMode wanted) {
  return held == LockMode::kExclusive || wanted == LockMode::kShared;
}

inline const char* LockModeName(LockMode m) {
  return m == LockMode::kShared ? "S" : "X";
}

}  // namespace finelog

#endif  // FINELOG_LOCK_LOCK_MODE_H_
