// LocalLockManager (LLM): a client's lock table (Section 2).
//
// The LLM caches locks across transaction boundaries (inter-transaction
// caching): when a transaction ends, its locks stay in the table with no
// active users and can be re-used by later local transactions without any
// server interaction. A lock request that cannot be satisfied locally is a
// *miss* and must be forwarded to the server's GLM.
//
// Entries track active readers and writers separately so that incoming
// callbacks can be evaluated:
//   - a release callback (remote X request) is denied while any local
//     transaction actively uses the object;
//   - a downgrade callback (remote S request) is denied only while a local
//     transaction holds the object for writing;
//   - a page de-escalation callback is denied while a local transaction has
//     performed (uncommitted) structural updates under the page lock.
//
// Objects accessed under the cover of a page lock get *implicit* object
// entries; on de-escalation the implicit entries are promoted and reported
// to the server ("each LLM maintains a list of the objects accessed by local
// transactions, and this list is used in order to obtain object-level
// locks", Section 3.2).

#ifndef FINELOG_LOCK_LLM_H_
#define FINELOG_LOCK_LLM_H_

#include <map>
#include <set>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "lock/lock_mode.h"

namespace finelog {

class FINELOG_SHARED_STATE_CLASS LocalLockManager {
 public:
  enum class Acquire {
    kHit,           // Granted from the local table.
    kMiss,          // Must be forwarded to the server.
    kLocalConflict, // Conflicts with another local transaction.
  };

  struct Entry {
    LockMode mode = LockMode::kShared;
    bool known_to_server = false;  // Explicit (in GLM) vs implicit.
    std::set<TxnId> readers;
    std::set<TxnId> writers;

    bool InUse() const { return !readers.empty() || !writers.empty(); }
  };

  LocalLockManager() = default;
  LocalLockManager(const LocalLockManager&) = delete;
  LocalLockManager& operator=(const LocalLockManager&) = delete;

  // Lock acquisition --------------------------------------------------------

  Acquire TryAcquireObject(TxnId txn, ObjectId oid, LockMode mode);
  Acquire TryAcquirePage(TxnId txn, PageId pid, LockMode mode);

  // Installs a lock granted by the server (known_to_server = true) and
  // registers `txn` as a user.
  void AddObjectLock(TxnId txn, ObjectId oid, LockMode mode);
  void AddPageLock(TxnId txn, PageId pid, LockMode mode);

  // Transaction end (commit or abort): locks remain cached with no users.
  void OnTxnEnd(TxnId txn);

  // Callback evaluation -----------------------------------------------------

  // Remote X request on `oid`: can we give the lock up entirely?
  bool CanReleaseObject(ObjectId oid) const;
  // Remote S request on `oid` held here in X: can we demote to S?
  bool CanDowngradeObject(ObjectId oid) const;
  // Remote conflicting request on page `pid`: can we trade the page lock for
  // object locks?
  bool CanDeescalatePage(PageId pid) const;

  void ReleaseObject(ObjectId oid);
  void DowngradeObject(ObjectId oid);
  void ReleasePage(PageId pid);
  void DowngradePage(PageId pid);

  // De-escalation: drops the page lock and promotes all accessed objects on
  // the page to explicit object locks; returns them (with their modes) so
  // the client can report them to the server.
  std::vector<std::pair<ObjectId, LockMode>> Deescalate(PageId pid);

  // Escalation support: number of objects on `pid` this client holds in X.
  size_t ExclusiveObjectCountOnPage(PageId pid) const;

  // Queries ------------------------------------------------------------------

  bool CoversObject(ObjectId oid, LockMode mode) const;
  bool CoversPage(PageId pid, LockMode mode) const;
  bool HasAnyLockOnPage(PageId pid) const;
  bool HoldsExplicitObject(ObjectId oid, LockMode mode) const;

  // Snapshot of all entries (for GLM reconstruction after a server crash,
  // Section 3.4). Implicit entries are included; they become explicit.
  struct Snapshot {
    std::vector<std::pair<ObjectId, LockMode>> objects;
    std::vector<std::pair<PageId, LockMode>> pages;
  };
  Snapshot GetSnapshot();

  // All exclusively-held object ids (for shipping bookkeeping).
  std::vector<ObjectId> ExclusiveObjects() const;

  // Client crash: the table is volatile.
  void Clear();

  size_t size() const {
    SimMutexLock lock(mu_);
    return object_locks_.size() + page_locks_.size();
  }

 private:
  Entry* FindObject(ObjectId oid) FINELOG_REQUIRES(mu_);
  const Entry* FindObject(ObjectId oid) const FINELOG_REQUIRES(mu_);

  mutable SimMutex mu_;
  std::map<ObjectId, Entry> object_locks_ FINELOG_GUARDED_BY(mu_);
  std::map<PageId, Entry> page_locks_ FINELOG_GUARDED_BY(mu_);
};

}  // namespace finelog

#endif  // FINELOG_LOCK_LLM_H_
