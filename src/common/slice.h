// Slice: a non-owning view of a byte range, following the RocksDB idiom.

#ifndef FINELOG_COMMON_SLICE_H_
#define FINELOG_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace finelog {

class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* s) : data_(s), size_(std::strlen(s)) {}          // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {} // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  friend bool operator==(const Slice& a, const Slice& b) {
    return a.view() == b.view();
  }

 private:
  const char* data_;
  size_t size_;
};

}  // namespace finelog

#endif  // FINELOG_COMMON_SLICE_H_
