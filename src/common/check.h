// FINELOG_CHECK: invariant enforcement that survives release builds.
//
// assert() compiles away under NDEBUG, which is exactly the build that runs
// long enough to hit a rare protocol violation. A failed check here means
// the process state is no longer trustworthy (e.g. reading the value of an
// error Result), so the only safe move is a loud, immediate abort with
// enough context to find the call site.

#ifndef FINELOG_COMMON_CHECK_H_
#define FINELOG_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with `msg` (a string literal) if `cond` is false, in every build
// configuration. Use for invariants whose violation makes continuing unsafe;
// use Status returns for conditions the caller can recover from.
#define FINELOG_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "FINELOG_CHECK failed at %s:%d: %s (%s)\n",    \
                   __FILE__, __LINE__, msg, #cond);                       \
      std::fflush(stderr);                                                \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#endif  // FINELOG_COMMON_CHECK_H_
