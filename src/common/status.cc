#include "common/status.h"

namespace finelog {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kWouldBlock: return "WouldBlock";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kLogFull: return "LogFull";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCrashed: return "Crashed";
  }
  return "Unknown";
}

std::string_view WouldBlockReasonName(WouldBlockReason reason) {
  switch (reason) {
    case WouldBlockReason::kNone: return "None";
    case WouldBlockReason::kLockConflict: return "LockConflict";
    case WouldBlockReason::kCrashedDependency: return "CrashedDependency";
    case WouldBlockReason::kQuarantinedPage: return "QuarantinedPage";
    case WouldBlockReason::kRpcTimeout: return "RpcTimeout";
    case WouldBlockReason::kZombieFenced: return "ZombieFenced";
    case WouldBlockReason::kRecoveringPage: return "RecoveringPage";
    case WouldBlockReason::kFailoverInProgress: return "FailoverInProgress";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  if (wb_reason_ != WouldBlockReason::kNone) {
    out += "/";
    out += WouldBlockReasonName(wb_reason_);
  }
  out += ": ";
  out += message_;
  return out;
}

}  // namespace finelog
