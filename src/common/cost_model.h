// CostModel: the simulated-time cost of the primitive operations.
//
// The defaults approximate the mid-90s LAN environment the paper assumes:
// a network round trip costs far more than a local log append, and a disk
// I/O costs more than either. The benchmark conclusions (who wins, where
// crossovers fall) depend only on these orderings, not on absolute values.

#ifndef FINELOG_COMMON_COST_MODEL_H_
#define FINELOG_COMMON_COST_MODEL_H_

#include <cstdint>

namespace finelog {

struct CostModel {
  // Fixed per-message network latency (both directions charged per message).
  uint64_t msg_latency_us = 1000;
  // Additional transfer cost per KB of payload.
  uint64_t per_kb_us = 250;
  // Random page read / in-place page write at either tier.
  uint64_t disk_read_us = 12000;
  uint64_t disk_write_us = 12000;
  // Forcing buffered log records to the log disk (sequential write).
  uint64_t log_force_us = 4000;
  // CPU cost of merging two copies of one page (Section 3.1: "CPU cost and
  // usually no server disk I/O").
  uint64_t page_merge_us = 50;
  // CPU cost of merging one log record into a page (the rejected
  // merge-log-records alternative, used by the E9 ablation).
  uint64_t log_record_merge_us = 20;
};

}  // namespace finelog

#endif  // FINELOG_COMMON_COST_MODEL_H_
