// SimClock: the simulated clock driving all cost accounting.
//
// finelog runs clients and the server in one process; elapsed "time" is the
// sum of modelled costs (network latency, disk I/O, log forces) charged to
// the clock by the component that incurs them. The paper's algorithms do not
// require synchronized client clocks, so the core commit/locking/recovery
// protocols never read it. Two opt-in subsystems do: the RPC retry layer
// (timeouts and backoff, DESIGN.md section 13) and the lease-based liveness
// machinery (heartbeat intervals and lease deadlines, section 14). Both are
// off by default, and with their knobs off nothing reads the clock and it
// exists purely for the benchmark harness.

#ifndef FINELOG_COMMON_CLOCK_H_
#define FINELOG_COMMON_CLOCK_H_

#include <cstdint>

namespace finelog {

class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  uint64_t now_us() const { return now_us_; }
  void Advance(uint64_t us) { now_us_ += us; }
  void Reset() { now_us_ = 0; }

 private:
  uint64_t now_us_ = 0;
};

}  // namespace finelog

#endif  // FINELOG_COMMON_CLOCK_H_
