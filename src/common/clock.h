// Clock: the time source driving cost accounting, RPC timeouts and leases.
//
// Two implementations back the interface (DESIGN.md section 17):
//
//  - SimClock (ExecMode::kSimulated, the default): finelog runs clients and
//    the server in one process; elapsed "time" is the sum of modelled costs
//    (network latency, disk I/O, log forces) charged to the clock by the
//    component that incurs them via Advance(). The paper's algorithms do
//    not require synchronized client clocks, so the core
//    commit/locking/recovery protocols never read it. Two opt-in
//    subsystems do: the RPC retry layer (timeouts and backoff, DESIGN.md
//    section 13) and the lease-based liveness machinery (heartbeat
//    intervals and lease deadlines, section 14).
//
//  - RealClock (ExecMode::kRealClock): a monotonic wall clock. Advance()
//    is a no-op -- modelled costs cost nothing extra because the real work
//    (thread scheduling, fdatasync, queue hops) is what takes the time.
//    Leases and RPC timeouts read real elapsed microseconds.
//
// Reads are safe from any thread: SimClock is only advanced while the
// simulation is single-threaded, and RealClock derives its value from
// std::chrono::steady_clock.

#ifndef FINELOG_COMMON_CLOCK_H_
#define FINELOG_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace finelog {

class Clock {
 public:
  Clock() = default;
  Clock(const Clock&) = delete;
  Clock& operator=(const Clock&) = delete;
  virtual ~Clock() = default;

  // Microseconds since this clock's epoch (construction / last Reset).
  virtual uint64_t now_us() const = 0;
  // Charges `us` of modelled cost. Moves simulated time; free on a real
  // clock, where elapsed time is observed rather than modelled.
  virtual void Advance(uint64_t us) = 0;
  virtual void Reset() = 0;
};

class SimClock final : public Clock {
 public:
  SimClock() = default;

  uint64_t now_us() const override { return now_us_; }
  void Advance(uint64_t us) override { now_us_ += us; }
  void Reset() override { now_us_ = 0; }

 private:
  uint64_t now_us_ = 0;
};

class RealClock final : public Clock {
 public:
  RealClock() : epoch_(std::chrono::steady_clock::now()) {}

  uint64_t now_us() const override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }
  void Advance(uint64_t /*us*/) override {}
  void Reset() override { epoch_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace finelog

#endif  // FINELOG_COMMON_CLOCK_H_
