// Result<T>: a value-or-Status type, in the spirit of arrow::Result /
// absl::StatusOr. Used for all fallible operations that produce a value.

#ifndef FINELOG_COMMON_RESULT_H_
#define FINELOG_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace finelog {

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit construction from a value or a non-OK Status keeps call sites
  // terse: `return value;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {   // NOLINT
    FINELOG_CHECK(!status_.ok(),
                  "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    FINELOG_CHECK(ok(), "Result::value() on error result");
    return *value_;
  }
  T& value() & {
    FINELOG_CHECK(ok(), "Result::value() on error result");
    return *value_;
  }
  T&& value() && {
    FINELOG_CHECK(ok(), "Result::value() on error result");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define FINELOG_ASSIGN_OR_RETURN(lhs, expr)          \
  FINELOG_ASSIGN_OR_RETURN_IMPL(                     \
      FINELOG_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define FINELOG_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define FINELOG_CONCAT_(a, b) FINELOG_CONCAT_IMPL_(a, b)
#define FINELOG_CONCAT_IMPL_(a, b) a##b

}  // namespace finelog

#endif  // FINELOG_COMMON_RESULT_H_
