// ErrnoString: thread-safe strerror.
//
// std::strerror returns a pointer into static storage, which clang-tidy's
// concurrency-mt-unsafe check rightly flags now that the real-clock mode
// (DESIGN.md section 17) runs client threads concurrently -- two threads
// formatting I/O errors at once would race on that buffer. This wraps
// strerror_r, which writes into a caller buffer, and absorbs the
// POSIX-vs-GNU signature split via overload dispatch.

#ifndef FINELOG_COMMON_ERRNO_UTIL_H_
#define FINELOG_COMMON_ERRNO_UTIL_H_

#include <cstring>
#include <string>

namespace finelog {
namespace detail {

// GNU strerror_r: returns the message (maybe `buf`, maybe a static string --
// but per-thread safe either way).
inline const char* StrerrorResult(const char* ret, const char* /*buf*/) {
  return ret;
}

// POSIX strerror_r: returns an int, fills `buf`.
inline const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}

}  // namespace detail

// Thread-safe replacement for std::strerror(err).
inline std::string ErrnoString(int err) {
  char buf[256] = {};
  return detail::StrerrorResult(strerror_r(err, buf, sizeof(buf)), buf);
}

}  // namespace finelog

#endif  // FINELOG_COMMON_ERRNO_UTIL_H_
