// Deterministic pseudo-random number generator (xorshift128+).
//
// All workloads and property tests derive their randomness from an explicit
// seed so every run -- including crash interleavings -- is reproducible.

#ifndef FINELOG_COMMON_RNG_H_
#define FINELOG_COMMON_RNG_H_

#include <cstdint>

namespace finelog {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding to avoid weak low-entropy states.
    s0_ = SplitMix(&seed);
    s1_ = SplitMix(&seed);
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform integer in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace finelog

#endif  // FINELOG_COMMON_RNG_H_
