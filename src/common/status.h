// Status: the error model used throughout finelog.
//
// finelog does not use exceptions; every fallible operation returns a Status
// (or a Result<T>, see result.h). The set of codes mirrors the situations
// that arise in the client/server protocols of the paper: lock conflicts
// surface as kWouldBlock, a full private log surfaces as kLogFull, and so on.

#ifndef FINELOG_COMMON_STATUS_H_
#define FINELOG_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace finelog {

enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kIoError = 4,
  kWouldBlock = 5,        // Lock or token unavailable; caller should retry.
  kAborted = 6,           // Transaction was aborted.
  kLogFull = 7,           // Private log out of space (Section 3.6).
  kFailedPrecondition = 8,
  kNotSupported = 9,
  kInternal = 10,
  kCrashed = 11,          // Target node is crashed; request queued/refused.
};

// Human-readable name of a StatusCode ("Ok", "WouldBlock", ...).
std::string_view StatusCodeName(StatusCode code);

// Machine-readable refinement of kWouldBlock: *why* the caller was told to
// back off, so retry policy keys on an enum instead of string-matching the
// message. kNone marks a plain WouldBlock(msg) with no classified reason.
enum class WouldBlockReason : uint8_t {
  kNone = 0,
  kLockConflict,       // Lock/callback contention; retry, then abort the txn.
  kCrashedDependency,  // Blocked on a crashed client's pending recovery.
  kQuarantinedPage,    // Page pinned under a presumed-dead client's DCT entry.
  kRpcTimeout,         // Network retries exhausted; degrade to a clean abort.
  kZombieFenced,       // Caller's lease expired; run crash recovery to rejoin.
  kRecoveringPage,     // Page still under lazy post-restart repair; retry.
  kFailoverInProgress, // Mastership is changing hands; retry against the
                       // standby once the lease settles (DESIGN.md sec. 19).
};

// Human-readable name of a WouldBlockReason ("LockConflict", ...).
std::string_view WouldBlockReasonName(WouldBlockReason reason);

class [[nodiscard]] Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status WouldBlock(std::string msg) {
    return Status(StatusCode::kWouldBlock, std::move(msg));
  }
  static Status WouldBlock(WouldBlockReason reason, std::string msg) {
    Status s(StatusCode::kWouldBlock, std::move(msg));
    s.wb_reason_ = reason;
    return s;
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status LogFull(std::string msg) {
    return Status(StatusCode::kLogFull, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Crashed(std::string msg) {
    return Status(StatusCode::kCrashed, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Meaningful only when IsWouldBlock(); kNone otherwise.
  WouldBlockReason would_block_reason() const { return wb_reason_; }
  bool IsZombieFenced() const {
    return code_ == StatusCode::kWouldBlock &&
           wb_reason_ == WouldBlockReason::kZombieFenced;
  }
  bool IsRecoveringPage() const {
    return code_ == StatusCode::kWouldBlock &&
           wb_reason_ == WouldBlockReason::kRecoveringPage;
  }
  bool IsFailoverInProgress() const {
    return code_ == StatusCode::kWouldBlock &&
           wb_reason_ == WouldBlockReason::kFailoverInProgress;
  }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsWouldBlock() const { return code_ == StatusCode::kWouldBlock; }
  bool IsLogFull() const { return code_ == StatusCode::kLogFull; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsCrashed() const { return code_ == StatusCode::kCrashed; }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  WouldBlockReason wb_reason_ = WouldBlockReason::kNone;
  std::string message_;
};

// Propagates a non-OK status to the caller.
#define FINELOG_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::finelog::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace finelog

#endif  // FINELOG_COMMON_STATUS_H_
