// Core identifier types used across all finelog modules.
//
// Terminology follows Section 2 of the paper:
//  - PageId:   identifies a database page; the unit of transfer between
//              clients and the server (page-server architecture).
//  - ObjectId: a (page, slot) pair; the unit of fine-granularity locking.
//  - Psn:      page sequence number, incremented on every modification and
//              set to max+1 when two page copies are merged.
//  - Lsn:      log sequence number; the byte address of a record in a
//              private (or server) log file. kNullLsn (0) is reserved --
//              every log file starts with a header, so no record lives at
//              offset 0.

#ifndef FINELOG_COMMON_TYPES_H_
#define FINELOG_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace finelog {

using PageId = uint32_t;
using SlotId = uint16_t;
using ClientId = uint32_t;
using TxnId = uint64_t;
using Lsn = uint64_t;
using Psn = uint64_t;

inline constexpr PageId kInvalidPageId = 0xFFFFFFFFu;
inline constexpr SlotId kInvalidSlotId = 0xFFFFu;
inline constexpr ClientId kInvalidClientId = 0xFFFFFFFFu;
inline constexpr ClientId kServerId = 0xFFFFFFFEu;
inline constexpr TxnId kInvalidTxnId = 0;
inline constexpr Lsn kNullLsn = 0;
inline constexpr Lsn kMaxLsn = ~0ull;

// TxnIds encode their owning client so private-log records are globally
// attributable: (client + 1) in the high 32 bits -- the +1 keeps every valid
// TxnId distinct from kInvalidTxnId -- and a per-client sequence number
// below. Encode and decode through these helpers only.
inline constexpr TxnId MakeTxnId(ClientId client, uint64_t seq) {
  return (static_cast<TxnId>(client + 1) << 32) | seq;
}
inline constexpr ClientId ClientOfTxn(TxnId txn) {
  return static_cast<ClientId>((txn >> 32) - 1);
}
inline constexpr uint64_t TxnSeqOf(TxnId txn) { return txn & 0xFFFFFFFFull; }

// Identifies an object: the page it lives on plus its slot within the page.
struct ObjectId {
  PageId page = kInvalidPageId;
  SlotId slot = kInvalidSlotId;

  bool valid() const { return page != kInvalidPageId && slot != kInvalidSlotId; }

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;
};

inline std::string ToString(const ObjectId& oid) {
  return std::to_string(oid.page) + ":" + std::to_string(oid.slot);
}

struct ObjectIdHash {
  size_t operator()(const ObjectId& oid) const {
    return std::hash<uint64_t>()((uint64_t(oid.page) << 16) | oid.slot);
  }
};

}  // namespace finelog

#endif  // FINELOG_COMMON_TYPES_H_
