// Core identifier types used across all finelog modules.
//
// Terminology follows Section 2 of the paper:
//  - PageId:   identifies a database page; the unit of transfer between
//              clients and the server (page-server architecture).
//  - ObjectId: a (page, slot) pair; the unit of fine-granularity locking.
//  - Psn:      page sequence number, incremented on every modification and
//              set to max+1 when two page copies are merged.
//  - Lsn:      log sequence number; the byte address of a record in a
//              private (or server) log file. kNullLsn (0) is reserved --
//              every log file starts with a header, so no record lives at
//              offset 0.
//
// Every identifier is a distinct strong type: construction from a raw
// integer is explicit, cross-type assignment or comparison does not
// compile, and the raw representation is only reachable through .value().
// This makes the paper's central discipline -- never confuse a PSN with an
// LSN, a RedoLSN with a page address, or one client's counters with
// another's -- a compile-time property instead of a reviewer's burden.
// The wrappers are zero-cost: each is a single integer with no virtuals
// and trivial copying.

#ifndef FINELOG_COMMON_TYPES_H_
#define FINELOG_COMMON_TYPES_H_

#include <algorithm>
#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace finelog {

// Slot numbers stay a plain integer: they are only meaningful inside an
// ObjectId or a Page, where the containing type already disambiguates.
using SlotId = uint16_t;

inline constexpr SlotId kInvalidSlotId = 0xFFFFu;

// Identifies a database page. Pages are allocated sequentially, so the only
// arithmetic that makes sense is Next() during allocation scans.
class PageId {
 public:
  using Rep = uint32_t;

  constexpr PageId() = default;
  explicit constexpr PageId(Rep raw) : v_(raw) {}

  constexpr Rep value() const { return v_; }
  constexpr PageId Next() const { return PageId(v_ + 1); }

  friend constexpr bool operator==(PageId, PageId) = default;
  friend constexpr auto operator<=>(PageId, PageId) = default;
  friend std::ostream& operator<<(std::ostream& os, PageId id) {
    return os << id.v_;
  }

 private:
  Rep v_ = 0;
};

// Identifies a client node (the server reuses the ClientId space via
// kServerId so log records are uniformly attributable).
class ClientId {
 public:
  using Rep = uint32_t;

  constexpr ClientId() = default;
  explicit constexpr ClientId(Rep raw) : v_(raw) {}

  constexpr Rep value() const { return v_; }

  friend constexpr bool operator==(ClientId, ClientId) = default;
  friend constexpr auto operator<=>(ClientId, ClientId) = default;
  friend std::ostream& operator<<(std::ostream& os, ClientId id) {
    return os << id.v_;
  }

 private:
  Rep v_ = 0;
};

// Transaction identifier. Valid TxnIds encode their owning client (see
// MakeTxnId below); the raw representation is opaque to everything except
// the Make/ClientOf/SeqOf helpers and the wire codecs.
class TxnId {
 public:
  using Rep = uint64_t;

  constexpr TxnId() = default;
  explicit constexpr TxnId(Rep raw) : v_(raw) {}

  constexpr Rep value() const { return v_; }

  friend constexpr bool operator==(TxnId, TxnId) = default;
  friend constexpr auto operator<=>(TxnId, TxnId) = default;
  friend std::ostream& operator<<(std::ostream& os, TxnId id) {
    return os << id.v_;
  }

 private:
  Rep v_ = 0;
};

// Log sequence number: the byte address of a record in one log file. LSNs
// support exactly the arithmetic of byte addresses -- advancing past a
// record (`lsn + frame_size`) and measuring a span (`end - begin`); two
// LSNs never add, and an LSN never mixes with a PSN or TxnId.
class Lsn {
 public:
  using Rep = uint64_t;

  constexpr Lsn() = default;
  explicit constexpr Lsn(Rep raw) : v_(raw) {}

  constexpr Rep value() const { return v_; }

  // Byte-address arithmetic.
  constexpr Lsn operator+(uint64_t bytes) const { return Lsn(v_ + bytes); }
  constexpr Lsn& operator+=(uint64_t bytes) {
    v_ += bytes;
    return *this;
  }
  constexpr uint64_t operator-(Lsn other) const { return v_ - other.v_; }

  friend constexpr bool operator==(Lsn, Lsn) = default;
  friend constexpr auto operator<=>(Lsn, Lsn) = default;
  friend std::ostream& operator<<(std::ostream& os, Lsn lsn) {
    return os << lsn.v_;
  }

 private:
  Rep v_ = 0;
};

// Page sequence number. PSNs only ever move forward, either by one local
// update (Next) or by merging two divergent copies (Merge = max + 1,
// Section 3.1) -- general arithmetic is deliberately not provided.
class Psn {
 public:
  using Rep = uint64_t;

  constexpr Psn() = default;
  explicit constexpr Psn(Rep raw) : v_(raw) {}

  constexpr Rep value() const { return v_; }

  // The PSN after one more modification of the page.
  constexpr Psn Next() const { return Psn(v_ + 1); }

  // The PSN of a page assembled from two copies: strictly above both inputs
  // so the merged state is distinguishable from either parent.
  static constexpr Psn Merge(Psn a, Psn b) {
    return Psn(std::max(a.v_, b.v_) + 1);
  }

  friend constexpr bool operator==(Psn, Psn) = default;
  friend constexpr auto operator<=>(Psn, Psn) = default;
  friend std::ostream& operator<<(std::ostream& os, Psn psn) {
    return os << psn.v_;
  }

 private:
  Rep v_ = 0;
};

inline constexpr PageId kInvalidPageId{0xFFFFFFFFu};
inline constexpr ClientId kInvalidClientId{0xFFFFFFFFu};
inline constexpr ClientId kServerId{0xFFFFFFFEu};
inline constexpr TxnId kInvalidTxnId{0};
inline constexpr Lsn kNullLsn{0};
inline constexpr Lsn kMaxLsn{~0ull};

// TxnIds encode their owning client so private-log records are globally
// attributable: (client + 1) in the high 32 bits -- the +1 keeps every valid
// TxnId distinct from kInvalidTxnId -- and a per-client sequence number
// below. Encode and decode through these helpers only.
inline constexpr TxnId MakeTxnId(ClientId client, uint64_t seq) {
  return TxnId((static_cast<uint64_t>(client.value() + 1) << 32) | seq);
}
inline constexpr ClientId ClientOfTxn(TxnId txn) {
  return ClientId(static_cast<uint32_t>((txn.value() >> 32) - 1));
}
inline constexpr uint64_t TxnSeqOf(TxnId txn) {
  return txn.value() & 0xFFFFFFFFull;
}

// Identifies an object: the page it lives on plus its slot within the page.
struct ObjectId {
  PageId page = kInvalidPageId;
  SlotId slot = kInvalidSlotId;

  bool valid() const { return page != kInvalidPageId && slot != kInvalidSlotId; }

  friend bool operator==(const ObjectId&, const ObjectId&) = default;
  friend auto operator<=>(const ObjectId&, const ObjectId&) = default;
};

inline std::string ToString(PageId id) { return std::to_string(id.value()); }
inline std::string ToString(ClientId id) { return std::to_string(id.value()); }
inline std::string ToString(TxnId id) { return std::to_string(id.value()); }
inline std::string ToString(Lsn lsn) { return std::to_string(lsn.value()); }
inline std::string ToString(Psn psn) { return std::to_string(psn.value()); }

inline std::string ToString(const ObjectId& oid) {
  return ToString(oid.page) + ":" + std::to_string(oid.slot);
}

struct ObjectIdHash {
  size_t operator()(const ObjectId& oid) const {
    return std::hash<uint64_t>()((uint64_t(oid.page.value()) << 16) | oid.slot);
  }
};

}  // namespace finelog

// Hash support so strong IDs drop into unordered containers unchanged.
template <>
struct std::hash<finelog::PageId> {
  size_t operator()(finelog::PageId id) const noexcept {
    return std::hash<finelog::PageId::Rep>()(id.value());
  }
};
template <>
struct std::hash<finelog::ClientId> {
  size_t operator()(finelog::ClientId id) const noexcept {
    return std::hash<finelog::ClientId::Rep>()(id.value());
  }
};
template <>
struct std::hash<finelog::TxnId> {
  size_t operator()(finelog::TxnId id) const noexcept {
    return std::hash<finelog::TxnId::Rep>()(id.value());
  }
};
template <>
struct std::hash<finelog::Lsn> {
  size_t operator()(finelog::Lsn lsn) const noexcept {
    return std::hash<finelog::Lsn::Rep>()(lsn.value());
  }
};
template <>
struct std::hash<finelog::Psn> {
  size_t operator()(finelog::Psn psn) const noexcept {
    return std::hash<finelog::Psn::Rep>()(psn.value());
  }
};

#endif  // FINELOG_COMMON_TYPES_H_
