// Checkable protocol and thread-safety annotations (DESIGN.md section 16).
//
// Two audiences consume these macros:
//
//  1. tools/finelog_verify.py -- the AST-level protocol-conformance checker
//     (cmake target `verify`). It reads the annotations from source and
//     enforces the rule catalog: WAL-before-mutate, admission-before-state,
//     the RPC chokepoint, and the shared-state annotation discipline.
//     For the verifier the macros are pure markers; they may expand to
//     nothing and still do their job.
//
//  2. clang's -Wthread-safety analysis. Under clang with
//     FINELOG_THREAD_SAFETY_ANALYSIS defined (cmake option of the same
//     name, on in the pinned-clang CI job), the FINELOG_GUARDED_BY /
//     FINELOG_REQUIRES / capability family expands to the real attributes
//     and the whole vocabulary becomes compiler-enforced lock discipline.
//     SimMutex is a real recursive mutex: the simulated mode acquires it
//     uncontended on one thread, the real-clock mode (ExecMode::kRealClock,
//     DESIGN.md section 17) acquires it for real across client threads and
//     the server reactor.
//
// Placement grammar (what the verifier parses):
//   - field:      Type name_ FINELOG_GUARDED_BY(mu_);
//                 Type name_ FINELOG_UNGUARDED("reason");
//   - function:   FINELOG_REPLAY_PATH("reason") Status Foo::Bar(...) { ... }
//                 FINELOG_MUTATES_PAGE Status Mutator(...);
//   - method:     Status Helper(...) FINELOG_REQUIRES(mu_);
//   - class:      class FINELOG_SHARED_STATE_CLASS Server { ... };

#ifndef FINELOG_COMMON_ANNOTATIONS_H_
#define FINELOG_COMMON_ANNOTATIONS_H_

#include <atomic>
#include <mutex>
#include <thread>

#if defined(__clang__) && defined(FINELOG_THREAD_SAFETY_ANALYSIS)
#define FINELOG_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define FINELOG_TS_ATTRIBUTE(x)  // no-op outside clang -Wthread-safety builds
#endif

// --- clang -Wthread-safety vocabulary ---------------------------------------

#define FINELOG_CAPABILITY(name) FINELOG_TS_ATTRIBUTE(capability(name))
#define FINELOG_GUARDED_BY(cap) FINELOG_TS_ATTRIBUTE(guarded_by(cap))
#define FINELOG_PT_GUARDED_BY(cap) FINELOG_TS_ATTRIBUTE(pt_guarded_by(cap))
#define FINELOG_REQUIRES(...) \
  FINELOG_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define FINELOG_ACQUIRE(...) \
  FINELOG_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define FINELOG_RELEASE(...) \
  FINELOG_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define FINELOG_EXCLUDES(...) FINELOG_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define FINELOG_SCOPED_CAPABILITY FINELOG_TS_ATTRIBUTE(scoped_lockable)
#define FINELOG_NO_THREAD_SAFETY_ANALYSIS \
  FINELOG_TS_ATTRIBUTE(no_thread_safety_analysis)

// --- verifier-only markers (always expand to nothing) -----------------------

// Marks a class whose every non-static data member must carry
// FINELOG_GUARDED_BY / FINELOG_PT_GUARDED_BY or FINELOG_UNGUARDED("reason").
// finelog-verify enforces the sweep and requires the marker itself on the
// core shared classes (Server, GlobalLockManager, LivenessTable, LogManager,
// Client).
#define FINELOG_SHARED_STATE_CLASS

// Escape hatch for a field of a FINELOG_SHARED_STATE_CLASS that needs no
// capability: immutable after construction, externally owned wiring, or a
// harness-only knob. The reason string is mandatory and shows up in reviews.
#define FINELOG_UNGUARDED(reason)

// Marks a function that writes page contents. Every *caller* of a function
// so marked inherits the WAL obligation: its body must also append a log
// record covering the mutation (Client::AppendLog / LogManager::Append), or
// itself be FINELOG_MUTATES_PAGE (pushing the obligation further up), or be
// a declared FINELOG_REPLAY_PATH. The Page primitives in storage/page.h are
// the annotated roots.
#define FINELOG_MUTATES_PAGE

// Declares a function exempt from WAL-before-mutate, with justification:
// recovery replay (the records ARE the log), merge/install of images whose
// updates were logged by their original writer, or bootstrap/format paths
// whose durability is established by other means (e.g. forced flush before
// any client sees the page).
#define FINELOG_REPLAY_PATH(reason)

namespace finelog {

// The capability every FINELOG_SHARED_STATE_CLASS owns; its fields name it
// in FINELOG_GUARDED_BY(mu_). It is a *recursive* mutex over std::mutex:
// the simulated mode runs client<->server exchanges synchronously on one
// stack (a server endpoint calls back into a client, which may ship a page
// back through another server endpoint), so the same thread legitimately
// re-enters a capability it already holds. The real-clock mode keeps the
// same shape: the reactor thread nests endpoint bodies exactly the way the
// simulation does (DESIGN.md section 17).
//
// Recursion is invisible to clang's -Wthread-safety analysis (which models
// non-reentrant capabilities); the locking discipline therefore never
// acquires the same capability twice *within one function body*: public
// methods take the lock once at the top (SimMutexLock) and do their work
// through FINELOG_REQUIRES(mu_) helpers.
class FINELOG_CAPABILITY("mutex") SimMutex {
 public:
  SimMutex() = default;
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void lock() FINELOG_ACQUIRE() {
    const std::thread::id me = std::this_thread::get_id();
    if (owner_.load(std::memory_order_relaxed) == me) {
      ++depth_;
      return;
    }
    m_.lock();
    owner_.store(me, std::memory_order_relaxed);
    depth_ = 1;
  }

  void unlock() FINELOG_RELEASE() {
    if (--depth_ == 0) {
      owner_.store(std::thread::id(), std::memory_order_relaxed);
      m_.unlock();
    }
  }

  // Transport support (DESIGN.md section 17): a client thread about to park
  // on an RPC frame gives up the whole capability -- however deeply it was
  // re-entered -- so the reactor can deliver callbacks into the client
  // while it waits. Returns the recursion depth to restore.
  int FullRelease() FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    const int depth = depth_;
    depth_ = 0;
    owner_.store(std::thread::id(), std::memory_order_relaxed);
    m_.unlock();
    return depth;
  }

  // Restores the capability at the depth FullRelease returned.
  void Reacquire(int depth) FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    m_.lock();
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    depth_ = depth;
  }

  // True iff the calling thread holds the capability (debug assertions).
  bool HeldByMe() const {
    return owner_.load(std::memory_order_relaxed) ==
           std::this_thread::get_id();
  }

  // Transport support: a frame body running on the reactor while its
  // (parked) submitter holds this capability cooperatively can adopt the
  // ownership for the body's duration, so nested endpoint re-entry from
  // inside the body recurses instead of self-deadlocking. Returns the
  // previous owner to restore before the submitter resumes. Safe because
  // the real holder is parked for exactly the body's lifetime; reentrant
  // (adopting a capability this thread already owns is a no-op pair).
  std::thread::id AdoptOwner() FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    const std::thread::id prev = owner_.load(std::memory_order_relaxed);
    owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
    return prev;
  }
  void RestoreOwner(std::thread::id prev) FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    owner_.store(prev, std::memory_order_relaxed);
  }

 private:
  std::mutex m_;
  // The owner id is written only by the thread that holds m_ (and cleared
  // by it before release); other threads read it solely to answer "is the
  // owner me?", for which a relaxed stale read is safe -- a non-owner can
  // never observe its own id there.
  std::atomic<std::thread::id> owner_{std::thread::id()};
  int depth_ = 0;  // Touched only by the owning thread.
};

// RAII pair for SimMutex::AdoptOwner/RestoreOwner.
class SimMutexAdopt {
 public:
  explicit SimMutexAdopt(SimMutex& mu) : mu_(mu), prev_(mu.AdoptOwner()) {}
  ~SimMutexAdopt() { mu_.RestoreOwner(prev_); }

  SimMutexAdopt(const SimMutexAdopt&) = delete;
  SimMutexAdopt& operator=(const SimMutexAdopt&) = delete;

 private:
  SimMutex& mu_;
  std::thread::id prev_;
};

// RAII guard carrying the scoped_lockable attribute, so clang's analysis
// sees the acquire/release pair (std::lock_guard is not annotated).
class FINELOG_SCOPED_CAPABILITY SimMutexLock {
 public:
  explicit SimMutexLock(SimMutex& mu) FINELOG_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~SimMutexLock() FINELOG_RELEASE() { mu_.unlock(); }

  SimMutexLock(const SimMutexLock&) = delete;
  SimMutexLock& operator=(const SimMutexLock&) = delete;

 private:
  SimMutex& mu_;
};

}  // namespace finelog

#endif  // FINELOG_COMMON_ANNOTATIONS_H_
