// Checkable protocol and thread-safety annotations (DESIGN.md section 16).
//
// Two audiences consume these macros:
//
//  1. tools/finelog_verify.py -- the AST-level protocol-conformance checker
//     (cmake target `verify`). It reads the annotations from source and
//     enforces the rule catalog: WAL-before-mutate, admission-before-state,
//     the RPC chokepoint, and the shared-state annotation discipline.
//     For the verifier the macros are pure markers; they may expand to
//     nothing and still do their job.
//
//  2. clang's -Wthread-safety analysis. Under clang with
//     FINELOG_THREAD_SAFETY_ANALYSIS defined, the FINELOG_GUARDED_BY /
//     FINELOG_REQUIRES / capability family expands to the real attributes,
//     so the day the real-clock concurrent mode lands (ROADMAP), flipping
//     one define turns the whole vocabulary into compiler-enforced lock
//     discipline. Today the simulation is single-threaded, no code path
//     acquires SimMutex, and the attributes stay off by default -- they are
//     declarative: they record which capability WILL guard each field.
//
// Placement grammar (what the verifier parses):
//   - field:      Type name_ FINELOG_GUARDED_BY(mu_);
//                 Type name_ FINELOG_UNGUARDED("reason");
//   - function:   FINELOG_REPLAY_PATH("reason") Status Foo::Bar(...) { ... }
//                 FINELOG_MUTATES_PAGE Status Mutator(...);
//   - method:     Status Helper(...) FINELOG_REQUIRES(mu_);
//   - class:      class FINELOG_SHARED_STATE_CLASS Server { ... };

#ifndef FINELOG_COMMON_ANNOTATIONS_H_
#define FINELOG_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && defined(FINELOG_THREAD_SAFETY_ANALYSIS)
#define FINELOG_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define FINELOG_TS_ATTRIBUTE(x)  // no-op outside clang -Wthread-safety builds
#endif

// --- clang -Wthread-safety vocabulary ---------------------------------------

#define FINELOG_CAPABILITY(name) FINELOG_TS_ATTRIBUTE(capability(name))
#define FINELOG_GUARDED_BY(cap) FINELOG_TS_ATTRIBUTE(guarded_by(cap))
#define FINELOG_PT_GUARDED_BY(cap) FINELOG_TS_ATTRIBUTE(pt_guarded_by(cap))
#define FINELOG_REQUIRES(...) \
  FINELOG_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define FINELOG_ACQUIRE(...) \
  FINELOG_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define FINELOG_RELEASE(...) \
  FINELOG_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define FINELOG_EXCLUDES(...) FINELOG_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define FINELOG_NO_THREAD_SAFETY_ANALYSIS \
  FINELOG_TS_ATTRIBUTE(no_thread_safety_analysis)

// --- verifier-only markers (always expand to nothing) -----------------------

// Marks a class whose every non-static data member must carry
// FINELOG_GUARDED_BY / FINELOG_PT_GUARDED_BY or FINELOG_UNGUARDED("reason").
// finelog-verify enforces the sweep and requires the marker itself on the
// core shared classes (Server, GlobalLockManager, LivenessTable, LogManager,
// Client).
#define FINELOG_SHARED_STATE_CLASS

// Escape hatch for a field of a FINELOG_SHARED_STATE_CLASS that needs no
// capability: immutable after construction, externally owned wiring, or a
// harness-only knob. The reason string is mandatory and shows up in reviews.
#define FINELOG_UNGUARDED(reason)

// Marks a function that writes page contents. Every *caller* of a function
// so marked inherits the WAL obligation: its body must also append a log
// record covering the mutation (Client::AppendLog / LogManager::Append), or
// itself be FINELOG_MUTATES_PAGE (pushing the obligation further up), or be
// a declared FINELOG_REPLAY_PATH. The Page primitives in storage/page.h are
// the annotated roots.
#define FINELOG_MUTATES_PAGE

// Declares a function exempt from WAL-before-mutate, with justification:
// recovery replay (the records ARE the log), merge/install of images whose
// updates were logged by their original writer, or bootstrap/format paths
// whose durability is established by other means (e.g. forced flush before
// any client sees the page).
#define FINELOG_REPLAY_PATH(reason)

namespace finelog {

// Capability placeholder for the single-threaded simulation: each
// FINELOG_SHARED_STATE_CLASS owns one, and its fields name it in
// FINELOG_GUARDED_BY(mu_). lock()/unlock() are no-ops today; the real-clock
// mode replaces the body with a real mutex without touching any annotation.
class FINELOG_CAPABILITY("mutex") SimMutex {
 public:
  SimMutex() = default;
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;
  void lock() FINELOG_ACQUIRE() {}
  void unlock() FINELOG_RELEASE() {}
};

}  // namespace finelog

#endif  // FINELOG_COMMON_ANNOTATIONS_H_
