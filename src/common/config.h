// SystemConfig: every tunable of a finelog deployment, including the policy
// knobs that select between the paper's algorithms and the baseline systems
// the paper compares against (Section 4).

#ifndef FINELOG_COMMON_CONFIG_H_
#define FINELOG_COMMON_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cost_model.h"

namespace finelog {

class FaultInjector;
class LogSink;

// How the deployment executes (DESIGN.md section 17).
enum class ExecMode {
  // The deterministic simulation: one thread, a SimClock advanced by
  // modelled costs, synchronous RPC delivery, buffered log "durability".
  // This mode is the correctness oracle -- byte-identical schedules from
  // (config, seed).
  kSimulated,
  // Real concurrency: each client on its own std::thread, a monotonic
  // RealClock, an MPSC queue transport driven by a server-side reactor
  // thread, and log forces that hit a real file with fdatasync.
  kRealClock,
};

// Where log records are made durable (Section 4.1).
enum class LoggingPolicy {
  // The paper: each client writes log records to its own private log disk;
  // nothing is shipped at commit.
  kClientLocal,
  // ARIES/CSA [18]: clients ship all of a transaction's log records to the
  // server at commit; the server forces them to its log before acking.
  kShipLogsAtCommit,
  // Versant-style [24]: all pages modified by the transaction are shipped to
  // the server at commit so the server can log the changes.
  kShipPagesAtCommit,
};

// Granularity of concurrency control.
enum class LockGranularity {
  kObject,  // The paper: fine-granularity (object) locking.
  kPage,    // The companion ICDE'96 system [20]: page-level locking.
};

// How concurrent updates by different clients to the same page are handled
// (Section 3.1).
enum class SamePageUpdatePolicy {
  // The paper: multiple outstanding copies, reconciled by merging page
  // copies with PSN = max+1.
  kMergeCopies,
  // Update-privilege / update-token serialization [17, 18]: a page may only
  // be physically updated by the current token holder; token transfer ships
  // the page through the server.
  kUpdateToken,
};

// Network fault model (DESIGN.md section 13): message-level drop, duplicate,
// delay and bounded reorder, all drawn from one seeded RNG so a chaos run is
// reproducible from its (config, seed) pair. Every knob defaults off; with
// the defaults a seeded workload is byte-identical to the infallible-network
// behavior (no RNG draws, no extra clock motion, no extra messages).
struct NetFaultConfig {
  // Per-message Bernoulli rates in [0, 1]. A message is first tested for
  // drop; a surviving message is tested for duplicate, then reorder, then
  // delay. Each enabled rate draws exactly once per message so the RNG
  // stream is a deterministic function of the message sequence.
  double drop_rate = 0.0;
  double dup_rate = 0.0;
  double reorder_rate = 0.0;
  double delay_rate = 0.0;

  // Simulated-clock penalty charged when a delay fault fires.
  uint64_t delay_us = 2000;

  // A reordered message surfaces again as a stale ghost within this many
  // subsequent messages.
  uint32_t reorder_window = 4;

  // RPC policy: a lost leg costs rpc_timeout_us of simulated time, then the
  // call retries with exponential backoff (base << attempt, capped, plus
  // seeded jitter) up to max_attempts total attempts.
  uint64_t rpc_timeout_us = 4000;
  uint32_t max_attempts = 8;
  uint64_t backoff_base_us = 500;
  uint64_t backoff_cap_us = 32000;

  // Bounded per-session reply-dedup cache (entries per direction per peer).
  uint32_t dedup_cache_size = 16;

  // Seed for the delivery RNG.
  uint64_t seed = 1;

  // When false (default), recovery-plane traffic (the Rec* endpoints) is
  // exempt from injected faults so crash recovery itself stays reliable.
  bool fault_recovery = false;

  // Recovery-plane priority (DESIGN.md section 18): when > 0, a recovery-
  // plane call gets this many extra retry attempts and backs off a quarter
  // as long between them, so the repair traffic that unblocks the normal
  // plane outruns it on a faulty network. 0 (default) treats both planes
  // identically -- byte-identical schedules.
  uint32_t rec_plane_priority = 0;

  // When true, the FaultInjector is consulted at net.<side>.<endpoint>.<op>
  // points before the rate draws, so tests can arm one-shot deterministic
  // wire faults. Off by default so existing injector-driven crash sweeps
  // see an unchanged hit sequence.
  bool use_fail_points = false;

  // Network partition: every message leg to or from a listed client id is
  // dropped -- including recovery-plane traffic, since an unreachable node
  // is unreachable for recovery too. Chaos harnesses add a client here to
  // sever it mid-run and clear the list to heal. Raw ids keep this header
  // free of the strong-type dependency.
  std::vector<uint32_t> partitioned_clients;

  bool partitioned(uint32_t client) const {
    for (uint32_t c : partitioned_clients) {
      if (c == client) return true;
    }
    return false;
  }

  bool enabled() const {
    return drop_rate > 0.0 || dup_rate > 0.0 || reorder_rate > 0.0 ||
           delay_rate > 0.0 || use_fail_points ||
           !partitioned_clients.empty();
  }
};

struct SystemConfig {
  // Topology.
  uint32_t num_clients = 4;

  // Execution mode (DESIGN.md section 17). kRealClock runs clients on real
  // threads against a monotonic clock; it rejects the simulated network
  // fault model (net_faults must stay disabled) because the queue transport
  // is a reliable in-process link -- chaos stays the simulation's job.
  ExecMode exec_mode = ExecMode::kSimulated;

  // kRealClock only: how long a client thread waits for the reactor to
  // complete one RPC frame before the call fails with kWouldBlock
  // (degraded to a clean abort by the transaction layer). 0 = wait forever.
  uint64_t realclock_rpc_timeout_us = 10 * 1000 * 1000;

  // Where Force()/page writes become durable. Null picks the mode default:
  // a buffered (fflush-only) sink for the simulation, a DurableSink
  // (fflush + fdatasync) owned by the System for kRealClock. Not owned.
  LogSink* log_sink = nullptr;

  // Storage geometry.
  uint32_t page_size = 4096;
  uint32_t num_pages = 256;          // Database capacity in pages.
  uint32_t preloaded_pages = 128;    // Pages populated at bootstrap.
  uint32_t objects_per_page = 16;    // Initial objects allocated per page.
  uint32_t object_size = 128;        // Initial object payload bytes.

  // Cache sizes (in pages).
  uint32_t client_cache_pages = 64;
  uint32_t server_cache_pages = 128;

  // Private log capacity per client, in bytes. 0 = unbounded. Bounded logs
  // exercise the log space management protocol of Section 3.6.
  uint64_t client_log_capacity = 0;

  // Escalation: a client asks for a page-level lock once it holds exclusive
  // locks on more than this many objects of one page (adaptive scheme [3]).
  uint32_t escalation_threshold = 8;

  // Physically release reclaimed private-log space back to the filesystem
  // (hole punching). Safe for client/server crashes; kept off by default
  // because complex-crash recovery may consult old callback log records
  // below the reclaim point (DESIGN.md section 8).
  bool punch_reclaimed_log_space = false;

  // Footnote-3 extension: fraction of extra capacity reserved when an
  // object is created (0.5 = 50% headroom). A resize within reserved
  // capacity is performed in place and is mergeable -- it needs only an
  // object-level lock instead of a page-level one. 0 disables reservation.
  double resize_reserve = 0.0;

  // Group commit (Section 2 follow-on win): when group_commit_window > 0, a
  // committing transaction appends its commit record but defers the log
  // force; the force fires once the oldest deferred commit is older than the
  // window (simulated microseconds) or group_commit_max_txns commits are
  // pending, whichever comes first, and makes every pending commit durable
  // with a single Force(). window = 0 keeps the seed behavior: every commit
  // forces immediately.
  uint64_t group_commit_window = 0;
  uint32_t group_commit_max_txns = 8;

  // Message batching: batch endpoint variants (lock requests, page fetches,
  // copy-back ships, callback fan-out) carry up to this many items per
  // simulated message. 1 = every item pays full per-message overhead (seed
  // behavior).
  uint32_t max_batch_items = 1;

  // Liveness (DESIGN.md section 14). When heartbeat_interval_us > 0, each
  // client piggybacks a heartbeat RPC on its API entry points whenever that
  // much simulated time has passed since its last one, and the server keeps
  // a lease per client: a client whose lease runs out is declared presumed
  // dead -- its shared locks are released (Section 3.3), clean exclusive
  // locks are reclaimed, and its DCT-dirty pages stay quarantined until it
  // runs crash recovery. 0 (default) disables the subsystem entirely: no
  // heartbeat messages, no protocol clock reads, and the message schedule
  // stays byte-identical to the lease-free build.
  uint64_t heartbeat_interval_us = 0;

  // How long each renewal keeps the lease alive. Must comfortably exceed
  // heartbeat_interval_us plus worst-case RPC latency, or active clients
  // would be evicted between renewals.
  uint64_t lease_duration_us = 200000;

  bool liveness_enabled() const { return heartbeat_interval_us > 0; }

  // Instant restart (DESIGN.md section 18): when true, server restart opens
  // admission immediately after membership/DCT replay and recovers pages
  // lazily -- the first endpoint touching an unrecovered page triggers its
  // demand repair (CallBack_P collection plus log replay from only that
  // page's responsible clients), while a background sweep rides on admitted
  // traffic to drain the remainder. When false (default), restart runs the
  // stop-the-world coordinated sweep of Sections 3.4-3.5 and the message/
  // clock schedule stays byte-identical to the pre-feature build.
  bool instant_restart = false;

  // How many unrecovered pages the background sweep repairs per admitted
  // request while instant_restart is draining a restart backlog. Demand
  // repairs (pages actually touched) always run first and are not counted
  // against this budget.
  uint32_t recovery_sweep_batch = 1;

  // Hot standby (DESIGN.md section 19): when true, System creates a second
  // server instance as a cold standby, a mastership lease (PaxosLease-style,
  // granted through the clock seam) decides which instance is primary, and
  // clients reach the pair through a failover router: a primary crash or
  // timeout probes the standby, which acquires the lease after it expires,
  // fences the deposed epoch, reconstructs the DCT from the durable store
  // plus client logs, and starts serving. When false (default) no standby,
  // router, or mastership table exists and every schedule stays
  // byte-identical to the single-server build.
  bool hot_standby = false;

  // How long each mastership grant/renewal is valid. The deposed primary
  // self-fences once this horizon passes without a successful renewal, so
  // the window also bounds how long a partitioned old primary can keep
  // answering (split-brain exposure is zero: the standby cannot acquire
  // until the same horizon has passed on the shared arbiter).
  uint64_t mastership_lease_us = 400000;

  // Per-attempt budget a client burns (on the clock) against a crashed or
  // silent primary before probing the standby. Together with the caller's
  // retry loop this paces how fast clients walk the mastership gap down to
  // the lease horizon.
  uint64_t failover_timeout_us = 4000;

  // Policies (paper defaults).
  LoggingPolicy logging_policy = LoggingPolicy::kClientLocal;
  LockGranularity lock_granularity = LockGranularity::kObject;
  SamePageUpdatePolicy same_page_policy = SamePageUpdatePolicy::kMergeCopies;

  // Simulated cost model.
  CostModel costs;

  // Workspace directory for database, server log and client logs.
  std::string dir = "/tmp/finelog";

  // Fault injection (tests/harnesses only). When set, every durability-
  // critical I/O site -- client log forces/appends, the server log, the
  // database page writes and the doublewrite journal -- reports to this
  // injector before touching the file, and the armed fault (EIO, torn or
  // short write) fires at the configured hit. Not owned. See util/fault.h.
  FaultInjector* fault_injector = nullptr;

  // Network fault model (tests/harnesses only). All knobs default off.
  NetFaultConfig net_faults;

  // Deliberately broken recovery paths, used by the crash-sweep harness to
  // prove it detects real bugs. Never enable outside self-tests.
  bool debug_trust_log_tail = false;        // Skip the log-tail CRC scan.
  bool debug_skip_journal_replay = false;   // Ignore the doublewrite journal.
};

}  // namespace finelog

#endif  // FINELOG_COMMON_CONFIG_H_
