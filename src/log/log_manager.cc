#include "log/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/errno_util.h"
#include "log/log_sink.h"
#include "util/coding.h"
#include "util/crc32.h"

namespace finelog {

namespace {
// Durability tail of every force point: through the configured sink, or the
// historical fflush-only behavior when no sink is wired.
Status SyncThrough(LogSink* sink, std::FILE* file, const std::string& site) {
  if (sink != nullptr) return sink->Sync(file, site);
  std::fflush(file);
  return Status::OK();
}
}  // namespace

LogManager::~LogManager() {
  SimMutexLock lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<LogManager>> LogManager::Open(const std::string& path,
                                                     uint64_t capacity_bytes,
                                                     const LogIoOptions& io) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  bool fresh = false;
  if (f == nullptr) {
    f = std::fopen(path.c_str(), "w+b");
    fresh = true;
  }
  if (f == nullptr) {
    return Status::IoError("open " + path + ": " + ErrnoString(errno));
  }
  auto lm = std::unique_ptr<LogManager>(new LogManager(f, capacity_bytes, io));
  // Nothing else can reference `lm` yet; locking satisfies the REQUIRES
  // contracts of the recovery helpers below.
  SimMutexLock lock(lm->mu_);
  if (fresh) {
    FINELOG_RETURN_IF_ERROR(lm->WriteHeader());
  } else {
    FINELOG_RETURN_IF_ERROR(lm->RecoverExisting());
  }
  return lm;
}

Status LogManager::WriteHeader() {
  if (io_.injector != nullptr) {
    // The 32-byte header fits one sector; model it as atomic (torn arms
    // degrade to a clean EIO with the old header intact).
    auto out = io_.injector->Evaluate(io_.name + ".header", kFileHeaderSize,
                                      /*allow_torn=*/false);
    if (out.action != FaultAction::kNone) {
      return Status::IoError("injected fault: " + io_.name + ".header");
    }
  }
  Encoder enc;
  enc.PutU32(kMagic);
  enc.PutU32(1);  // version
  enc.PutId(checkpoint_lsn_);
  enc.PutId(reclaim_lsn_);
  enc.PutId(punched_below_);
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(enc.buffer().data(), 1, kFileHeaderSize, file_) !=
          kFileHeaderSize) {
    return Status::IoError("log header write failed");
  }
  return SyncThrough(io_.sink, file_, io_.name + ".header");
}

Status LogManager::RecoverExisting() {
  // Read the header.
  char hdr[kFileHeaderSize];
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fread(hdr, 1, kFileHeaderSize, file_) != kFileHeaderSize) {
    // Empty or truncated file: treat as fresh.
    return WriteHeader();
  }
  Decoder dec(Slice(hdr, kFileHeaderSize));
  uint32_t magic = 0, version = 0;
  Lsn ckpt, reclaim, punched;
  if (!dec.GetU32(&magic) || magic != kMagic || !dec.GetU32(&version) ||
      !dec.GetId(&ckpt) || !dec.GetId(&reclaim) || !dec.GetId(&punched)) {
    return Status::Corruption("bad log file header");
  }
  checkpoint_lsn_ = ckpt;
  reclaim_lsn_ = reclaim;
  punched_below_ = punched;

  // Scan frames to find the durable end; stop at the first torn frame.
  // A punched prefix reads as zeros and is not parseable: resume the scan
  // at the first retained byte.
  struct stat st;
  if (fstat(fileno(file_), &st) != 0) {
    return Status::IoError("fstat failed");
  }
  uint64_t file_size = static_cast<uint64_t>(st.st_size);
  Lsn pos = std::max(Lsn{kFileHeaderSize}, punched_below_);
  if (io_.debug_trust_tail) {
    // Broken-on-purpose recovery (harness self-test): believe every byte in
    // the file is a durable record, skipping the CRC scan for the true tail.
    durable_end_ = Lsn{std::max<uint64_t>(file_size, kFileHeaderSize)};
    end_lsn_ = durable_end_;
    return Status::OK();
  }
  while (pos.value() + kFrameHeaderSize <= file_size) {
    char fh[kFrameHeaderSize];
    if (std::fseek(file_, static_cast<long>(pos.value()), SEEK_SET) != 0 ||
        std::fread(fh, 1, kFrameHeaderSize, file_) != kFrameHeaderSize) {
      break;
    }
    Decoder fdec(Slice(fh, kFrameHeaderSize));
    uint32_t len = 0, crc = 0;
    fdec.GetU32(&len);
    fdec.GetU32(&crc);
    if (len == 0 || pos.value() + kFrameHeaderSize + len > file_size) break;
    std::string body(len, '\0');
    if (std::fread(body.data(), 1, len, file_) != len) break;
    if (Crc32c(body.data(), body.size()) != crc) break;
    pos += kFrameHeaderSize + len;
  }
  durable_end_ = pos;
  end_lsn_ = pos;
  return Status::OK();
}

Result<Lsn> LogManager::Append(const LogRecord& record,
                               bool enforce_capacity) {
  SimMutexLock lock(mu_);
  // Serialize into the reused scratch buffer: after warm-up, appends perform
  // no allocation beyond pending-tail growth, which reserve() below keeps to
  // one extension per frame at most.
  encode_buf_.clear();
  record.EncodeTo(&encode_buf_);
  const std::string& body = encode_buf_;
  uint64_t frame_size = kFrameHeaderSize + body.size();
  if (enforce_capacity && capacity_ > 0 &&
      used_bytes() + frame_size > capacity_) {
    return Status::LogFull("private log out of space");
  }
  if (io_.injector != nullptr) {
    // Appends only buffer in memory; nothing can tear, so the point models
    // a clean allocation/EIO failure before the record exists anywhere.
    auto out = io_.injector->Evaluate(io_.name + ".append", frame_size,
                                      /*allow_torn=*/false);
    if (out.action != FaultAction::kNone) {
      return Status::IoError("injected fault: " + io_.name + ".append");
    }
  }
  Lsn lsn = end_lsn_;
  pending_.reserve(pending_.size() + frame_size);
  Encoder enc(&pending_);
  enc.PutU32(static_cast<uint32_t>(body.size()));
  enc.PutU32(Crc32c(body.data(), body.size()));
  enc.PutRaw(body);
  if (pending_.size() > pending_high_water_) {
    pending_high_water_ = pending_.size();
  }
  end_lsn_ += frame_size;
  bytes_appended_ += frame_size;
  return lsn;
}

Status LogManager::Force() {
  SimMutexLock lock(mu_);
  ++force_count_;
  if (pending_.empty()) return Status::OK();
  if (io_.injector != nullptr) {
    auto out = io_.injector->Evaluate(io_.name + ".force", pending_.size());
    switch (out.action) {
      case FaultAction::kNone:
        break;
      case FaultAction::kError:
        return Status::IoError("injected fault: " + io_.name + ".force");
      case FaultAction::kTornWrite:
      case FaultAction::kShortWrite: {
        // A prefix of the pending frames reaches the disk -- possibly ending
        // mid-frame -- and the force reports failure. durable_end_ and
        // pending_ are left untouched: a retried Force() rewrites the whole
        // buffer from durable_end_, and a crash + reopen must CRC-scan to
        // find the last complete frame.
        if (std::fseek(file_, static_cast<long>(durable_end_.value()), SEEK_SET) == 0) {
          std::fwrite(pending_.data(), 1, out.cut, file_);
          std::fflush(file_);
        }
        return Status::IoError("injected " +
                               std::string(FaultActionName(out.action)) + ": " +
                               io_.name + ".force");
      }
    }
  }
  if (std::fseek(file_, static_cast<long>(durable_end_.value()), SEEK_SET) != 0 ||
      std::fwrite(pending_.data(), 1, pending_.size(), file_) !=
          pending_.size()) {
    return Status::IoError("log force failed");
  }
  FINELOG_RETURN_IF_ERROR(SyncThrough(io_.sink, file_, io_.name + ".force"));
  durable_end_ += pending_.size();
  pending_.clear();
  return Status::OK();
}

Result<LogRecord> LogManager::Read(Lsn lsn) const {
  SimMutexLock lock(mu_);
  return ReadFrame(lsn, nullptr);
}

Result<LogRecord> LogManager::ReadFrame(Lsn lsn, uint64_t* frame_size) const {
  if (lsn.value() < kFileHeaderSize || lsn >= end_lsn_) {
    return Status::NotFound("LSN out of range");
  }
  if (lsn < punched_below_) {
    return Status::NotFound("LSN physically reclaimed");
  }
  char fh[kFrameHeaderSize];
  std::string body;
  if (lsn >= durable_end_) {
    // Still buffered.
    size_t off = lsn - durable_end_;
    if (off + kFrameHeaderSize > pending_.size()) {
      return Status::Corruption("buffered LSN does not address a frame");
    }
    std::memcpy(fh, pending_.data() + off, kFrameHeaderSize);
    Decoder fdec(Slice(fh, kFrameHeaderSize));
    uint32_t len = 0, crc = 0;
    fdec.GetU32(&len);
    fdec.GetU32(&crc);
    if (off + kFrameHeaderSize + len > pending_.size()) {
      return Status::Corruption("buffered frame truncated");
    }
    body.assign(pending_.data() + off + kFrameHeaderSize, len);
  } else {
    if (std::fseek(file_, static_cast<long>(lsn.value()), SEEK_SET) != 0 ||
        std::fread(fh, 1, kFrameHeaderSize, file_) != kFrameHeaderSize) {
      return Status::IoError("frame header read failed");
    }
    Decoder fdec(Slice(fh, kFrameHeaderSize));
    uint32_t len = 0, crc = 0;
    fdec.GetU32(&len);
    fdec.GetU32(&crc);
    body.resize(len);
    if (std::fread(body.data(), 1, len, file_) != len) {
      return Status::IoError("frame body read failed");
    }
    if (Crc32c(body.data(), body.size()) != crc) {
      return Status::Corruption("frame checksum mismatch");
    }
  }
  auto rec = LogRecord::Decode(body);
  if (!rec.ok()) return rec.status();
  rec.value().lsn = lsn;
  if (frame_size != nullptr) *frame_size = kFrameHeaderSize + body.size();
  return rec;
}

Status LogManager::Scan(
    Lsn from, const std::function<Status(const LogRecord&)>& cb) const {
  SimMutexLock lock(mu_);
  Lsn pos = std::max(from, Lsn{kFileHeaderSize});
  // A punched prefix contains no parseable frames; the first retained frame
  // begins exactly at the punch boundary (punching is frame-aligned only by
  // accident, so we keep the boundary at a recorded frame start: see
  // PunchReclaimedSpace, which rounds down to the last frame start it knows).
  pos = std::max(pos, punched_below_);
  while (pos < end_lsn_) {
    uint64_t frame_size = 0;
    auto rec = ReadFrame(pos, &frame_size);
    if (!rec.ok()) return rec.status();
    FINELOG_RETURN_IF_ERROR(cb(rec.value()));
    pos += frame_size;
  }
  return Status::OK();
}

Status LogManager::SetCheckpointLsn(Lsn lsn) {
  SimMutexLock lock(mu_);
  checkpoint_lsn_ = lsn;
  return WriteHeader();
}

void LogManager::SetReclaimLsn(Lsn lsn) {
  SimMutexLock lock(mu_);
  if (lsn > reclaim_lsn_) reclaim_lsn_ = lsn;
}

Result<uint64_t> LogManager::PunchReclaimedSpace() {
  SimMutexLock lock(mu_);
#ifdef FALLOC_FL_PUNCH_HOLE
  // Find the last frame start at or below the reclaim point so the scan
  // boundary lands on a frame, then punch the whole blocks below it.
  Lsn limit = std::min(reclaim_lsn_, durable_end_);
  Lsn boundary = std::max(punched_below_, Lsn{kFileHeaderSize});
  {
    Lsn pos = boundary;
    while (pos < limit) {
      uint64_t frame_size = 0;
      auto rec = ReadFrame(pos, &frame_size);
      if (!rec.ok()) break;
      Lsn next = pos + frame_size;
      if (next > limit) break;
      pos = next;
    }
    boundary = pos;
  }
  constexpr uint64_t kBlock = 4096;
  uint64_t start = ((kFileHeaderSize + kBlock - 1) / kBlock) * kBlock;
  uint64_t end = (boundary.value() / kBlock) * kBlock;
  if (end <= start || end <= punched_below_.value()) return uint64_t{0};
  uint64_t from = std::max(start, punched_below_.value());
  if (fallocate(fileno(file_), FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE,
                static_cast<off_t>(from),
                static_cast<off_t>(end - from)) != 0) {
    return uint64_t{0};  // Filesystem without hole support: a no-op.
  }
  // Scans must resume at a frame start. `end` is block-aligned and may fall
  // inside a frame whose head was just destroyed, so the recorded boundary
  // is `boundary` -- the first frame start at or past `end` (such partially
  // damaged frames sit below the reclaim point and are expendable too).
  punched_below_ = boundary;
  FINELOG_RETURN_IF_ERROR(WriteHeader());
  return end - from;
#else
  return uint64_t{0};
#endif
}

}  // namespace finelog
