// LogSink: the durability seam behind every force point (DESIGN.md
// section 17).
//
// LogManager::Force(), header writes and DiskManager's page/journal writes
// end with "make these bytes durable". What that means depends on the
// execution mode:
//
//  - BufferedSink (ExecMode::kSimulated default): fflush() only -- bytes
//    leave the stdio buffer and reach the OS page cache. Durability is
//    *modelled* (the simulated crash boundary is process state, not the
//    kernel), and the cost model charges log_force_us of simulated time.
//
//  - DurableSink (ExecMode::kRealClock default): fflush() + fdatasync() --
//    the force blocks until the kernel reports the bytes on stable storage,
//    so wall-clock commit latency includes the real fsync, which is the
//    honest number E15 measures. The sink counts syncs with a relaxed
//    atomic (fsyncs/sec is a benchmark output).
//
// Sinks are stateless apart from the counter and shared by every log and
// disk instance of a System; Sync() may be called from any client thread or
// the reactor concurrently (fdatasync on distinct files is naturally
// parallel; two Syncs on the same file are serialized by the owning
// component's capability).

#ifndef FINELOG_LOG_LOG_SINK_H_
#define FINELOG_LOG_LOG_SINK_H_

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "common/status.h"

namespace finelog {

class LogSink {
 public:
  LogSink() = default;
  LogSink(const LogSink&) = delete;
  LogSink& operator=(const LogSink&) = delete;
  virtual ~LogSink() = default;

  // Makes everything written to `file` durable to this sink's standard.
  // `site` names the caller for error messages ("client0.log", ...).
  virtual Status Sync(std::FILE* file, const std::string& site) = 0;

  // Number of real device syncs performed (0 for buffered sinks).
  virtual uint64_t sync_count() const { return 0; }
};

// The simulation's volatility boundary: flush stdio buffering only.
class BufferedSink final : public LogSink {
 public:
  Status Sync(std::FILE* file, const std::string& site) override {
    if (std::fflush(file) != 0) {
      return Status::IoError("fflush failed: " + site);
    }
    return Status::OK();
  }
};

// Real durability: flush stdio buffering, then fdatasync the descriptor.
class DurableSink final : public LogSink {
 public:
  Status Sync(std::FILE* file, const std::string& site) override {
    if (std::fflush(file) != 0) {
      return Status::IoError("fflush failed: " + site);
    }
    if (fdatasync(fileno(file)) != 0) {
      return Status::IoError("fdatasync failed: " + site);
    }
    syncs_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  uint64_t sync_count() const override {
    return syncs_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace finelog

#endif  // FINELOG_LOG_LOG_SINK_H_
