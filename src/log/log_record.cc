#include "log/log_record.h"

#include "util/coding.h"

namespace finelog {

const char* LogRecordTypeName(LogRecordType t) {
  switch (t) {
    case LogRecordType::kUpdate: return "Update";
    case LogRecordType::kClr: return "Clr";
    case LogRecordType::kCommit: return "Commit";
    case LogRecordType::kAbort: return "Abort";
    case LogRecordType::kTxnEnd: return "TxnEnd";
    case LogRecordType::kSavepoint: return "Savepoint";
    case LogRecordType::kCallback: return "Callback";
    case LogRecordType::kClientCheckpoint: return "ClientCheckpoint";
    case LogRecordType::kReplacement: return "Replacement";
    case LogRecordType::kServerCheckpoint: return "ServerCheckpoint";
    case LogRecordType::kMembership: return "Membership";
  }
  return "Unknown";
}

std::string LogRecord::Encode() const {
  std::string out;
  EncodeTo(&out);
  return out;
}

void LogRecord::EncodeTo(std::string* out) const {
  Encoder enc(out);
  enc.PutU8(static_cast<uint8_t>(type));
  enc.PutId(txn);
  enc.PutId(prev_lsn);
  switch (type) {
    case LogRecordType::kUpdate:
      enc.PutId(page);
      enc.PutU16(slot);
      enc.PutU8(static_cast<uint8_t>(op));
      enc.PutId(psn);
      enc.PutU16(capacity);
      enc.PutBytes(redo);
      enc.PutBytes(undo);
      break;
    case LogRecordType::kClr:
      enc.PutId(page);
      enc.PutU16(slot);
      enc.PutU8(static_cast<uint8_t>(op));
      enc.PutId(psn);
      enc.PutBytes(redo);
      enc.PutId(undo_next_lsn);
      break;
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kTxnEnd:
    case LogRecordType::kSavepoint:
      break;
    case LogRecordType::kCallback:
      enc.PutId(cb_object.page);
      enc.PutU16(cb_object.slot);
      enc.PutId(cb_responder);
      enc.PutId(cb_psn);
      break;
    case LogRecordType::kClientCheckpoint:
      enc.PutU32(static_cast<uint32_t>(active_txns.size()));
      for (const TxnCheckpointInfo& t : active_txns) {
        enc.PutId(t.txn);
        enc.PutId(t.first_lsn);
        enc.PutId(t.last_lsn);
      }
      enc.PutU32(static_cast<uint32_t>(dpt.size()));
      for (const DptEntry& d : dpt) {
        enc.PutId(d.page);
        enc.PutId(d.redo_lsn);
      }
      break;
    case LogRecordType::kReplacement:
    case LogRecordType::kServerCheckpoint:
      enc.PutId(page);
      enc.PutId(page_psn);
      enc.PutU32(static_cast<uint32_t>(dct.size()));
      for (const DctEntry& e : dct) {
        enc.PutId(e.page);
        enc.PutId(e.client);
        enc.PutId(e.psn);
        enc.PutId(e.redo_lsn);
      }
      break;
    case LogRecordType::kMembership:
      enc.PutId(member);
      enc.PutU8(presumed_dead ? 1 : 0);
      break;
  }
}

Result<LogRecord> LogRecord::Decode(Slice data) {
  Decoder dec(data);
  LogRecord rec;
  uint8_t type8 = 0;
  if (!dec.GetU8(&type8) || !dec.GetId(&rec.txn) || !dec.GetId(&rec.prev_lsn)) {
    return Status::Corruption("log record header truncated");
  }
  rec.type = static_cast<LogRecordType>(type8);
  auto corrupt = [] { return Status::Corruption("log record body truncated"); };
  switch (rec.type) {
    case LogRecordType::kUpdate: {
      uint8_t op8;
      if (!dec.GetId(&rec.page) || !dec.GetU16(&rec.slot) || !dec.GetU8(&op8) ||
          !dec.GetId(&rec.psn) || !dec.GetU16(&rec.capacity) ||
          !dec.GetBytes(&rec.redo) || !dec.GetBytes(&rec.undo)) {
        return corrupt();
      }
      rec.op = static_cast<UpdateOp>(op8);
      break;
    }
    case LogRecordType::kClr: {
      uint8_t op8;
      if (!dec.GetId(&rec.page) || !dec.GetU16(&rec.slot) || !dec.GetU8(&op8) ||
          !dec.GetId(&rec.psn) || !dec.GetBytes(&rec.redo) ||
          !dec.GetId(&rec.undo_next_lsn)) {
        return corrupt();
      }
      rec.op = static_cast<UpdateOp>(op8);
      break;
    }
    case LogRecordType::kCommit:
    case LogRecordType::kAbort:
    case LogRecordType::kTxnEnd:
    case LogRecordType::kSavepoint:
      break;
    case LogRecordType::kCallback:
      if (!dec.GetId(&rec.cb_object.page) || !dec.GetU16(&rec.cb_object.slot) ||
          !dec.GetId(&rec.cb_responder) || !dec.GetId(&rec.cb_psn)) {
        return corrupt();
      }
      break;
    case LogRecordType::kClientCheckpoint: {
      uint32_t n = 0;
      if (!dec.GetU32(&n)) return corrupt();
      rec.active_txns.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        TxnCheckpointInfo& t = rec.active_txns[i];
        if (!dec.GetId(&t.txn) || !dec.GetId(&t.first_lsn) ||
            !dec.GetId(&t.last_lsn)) {
          return corrupt();
        }
      }
      if (!dec.GetU32(&n)) return corrupt();
      rec.dpt.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        if (!dec.GetId(&rec.dpt[i].page) || !dec.GetId(&rec.dpt[i].redo_lsn)) {
          return corrupt();
        }
      }
      break;
    }
    case LogRecordType::kReplacement:
    case LogRecordType::kServerCheckpoint: {
      uint32_t n = 0;
      if (!dec.GetId(&rec.page) || !dec.GetId(&rec.page_psn) || !dec.GetU32(&n)) {
        return corrupt();
      }
      rec.dct.resize(n);
      for (uint32_t i = 0; i < n; ++i) {
        DctEntry& e = rec.dct[i];
        if (!dec.GetId(&e.page) || !dec.GetId(&e.client) || !dec.GetId(&e.psn) ||
            !dec.GetId(&e.redo_lsn)) {
          return corrupt();
        }
      }
      break;
    }
    case LogRecordType::kMembership: {
      uint8_t dead8 = 0;
      if (!dec.GetId(&rec.member) || !dec.GetU8(&dead8)) return corrupt();
      rec.presumed_dead = dead8 != 0;
      break;
    }
    default:
      return Status::Corruption("unknown log record type");
  }
  return rec;
}

LogRecord LogRecord::Update(TxnId txn, Lsn prev, PageId page, SlotId slot,
                            UpdateOp op, Psn psn, std::string redo,
                            std::string undo) {
  LogRecord r;
  r.type = LogRecordType::kUpdate;
  r.txn = txn;
  r.prev_lsn = prev;
  r.page = page;
  r.slot = slot;
  r.op = op;
  r.psn = psn;
  r.redo = std::move(redo);
  r.undo = std::move(undo);
  return r;
}

LogRecord LogRecord::Clr(TxnId txn, Lsn prev, PageId page, SlotId slot,
                         UpdateOp op, Psn psn, std::string redo, Lsn undo_next) {
  LogRecord r;
  r.type = LogRecordType::kClr;
  r.txn = txn;
  r.prev_lsn = prev;
  r.page = page;
  r.slot = slot;
  r.op = op;
  r.psn = psn;
  r.redo = std::move(redo);
  r.undo_next_lsn = undo_next;
  return r;
}

LogRecord LogRecord::Control(LogRecordType type, TxnId txn, Lsn prev) {
  LogRecord r;
  r.type = type;
  r.txn = txn;
  r.prev_lsn = prev;
  return r;
}

LogRecord LogRecord::Callback(TxnId txn, Lsn prev, ObjectId object,
                              ClientId responder, Psn psn) {
  LogRecord r;
  r.type = LogRecordType::kCallback;
  r.txn = txn;
  r.prev_lsn = prev;
  r.cb_object = object;
  r.cb_responder = responder;
  r.cb_psn = psn;
  return r;
}

LogRecord LogRecord::ClientCheckpoint(std::vector<TxnCheckpointInfo> txns,
                                      std::vector<DptEntry> dpt) {
  LogRecord r;
  r.type = LogRecordType::kClientCheckpoint;
  r.active_txns = std::move(txns);
  r.dpt = std::move(dpt);
  return r;
}

LogRecord LogRecord::Replacement(PageId page, Psn page_psn,
                                 std::vector<DctEntry> entries) {
  LogRecord r;
  r.type = LogRecordType::kReplacement;
  r.page = page;
  r.page_psn = page_psn;
  r.dct = std::move(entries);
  return r;
}

LogRecord LogRecord::ServerCheckpoint(std::vector<DctEntry> entries) {
  LogRecord r;
  r.type = LogRecordType::kServerCheckpoint;
  r.dct = std::move(entries);
  return r;
}

LogRecord LogRecord::Membership(ClientId member, bool presumed_dead) {
  LogRecord r;
  r.type = LogRecordType::kMembership;
  r.member = member;
  r.presumed_dead = presumed_dead;
  return r;
}

}  // namespace finelog
