// LogManager: an append-only write-ahead log over one file.
//
// Used both for client private logs and for the server log. LSNs are byte
// addresses in the file (Section 2: "the LSN of a log record corresponds to
// the address of the log record in the private log file"), so they are
// monotonically increasing and records can be fetched by LSN in O(1).
//
// Appends are buffered in memory; Force() makes everything appended so far
// durable. A simulated crash simply reopens the file, dropping whatever was
// never forced -- exactly the volatility boundary the WAL protocol assumes.
//
// Bounded logs (capacity > 0) model the finite client log disk of Section
// 3.6: the logical space in use is end_lsn - reclaim_lsn, where reclaim_lsn
// is advanced by the client as its minimum DPT RedoLSN moves forward. An
// append that would overflow fails with kLogFull, which triggers the log
// space management protocol.

#ifndef FINELOG_LOG_LOG_MANAGER_H_
#define FINELOG_LOG_LOG_MANAGER_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "log/log_record.h"
#include "util/fault.h"

namespace finelog {

class LogSink;

// Fault-injection and durability wiring for one log instance. `name`
// prefixes the fail-points this log reports: "<name>.append", "<name>.force"
// and "<name>.header". `sink` is the durability seam (DESIGN.md section 17):
// null keeps the simulation's fflush-only volatility boundary; the
// real-clock mode passes a DurableSink so every Force() ends in fdatasync.
// `debug_trust_tail` is a deliberately broken recovery mode for harness
// self-tests: reopen trusts the whole file instead of CRC-scanning for the
// durable end, so an injected torn tail is replayed as if it were valid.
struct LogIoOptions {
  FaultInjector* injector = nullptr;
  LogSink* sink = nullptr;
  std::string name = "log";
  bool debug_trust_tail = false;
};

class FINELOG_SHARED_STATE_CLASS LogManager {
 public:
  static constexpr uint32_t kMagic = 0xF17E70Au;
  static constexpr size_t kFileHeaderSize = 32;
  static constexpr size_t kFrameHeaderSize = 8;  // u32 length + u32 crc.

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;
  ~LogManager();

  // Opens (or creates) the log at `path`. On open, scans forward from the
  // header validating checksums to locate the durable end of the log;
  // anything after the first invalid frame is discarded (torn tail).
  static Result<std::unique_ptr<LogManager>> Open(const std::string& path,
                                                  uint64_t capacity_bytes = 0,
                                                  const LogIoOptions& io = {});

  // Appends a record and returns its LSN. The record is durable only after
  // the next Force(). Fails with kLogFull on a bounded log that is out of
  // reclaimable space, unless `enforce_capacity` is false (checkpoint
  // records must always fit -- they are what unpins the log tail).
  Result<Lsn> Append(const LogRecord& record, bool enforce_capacity = true);

  // Makes all appended records durable.
  Status Force();

  // Reads a single record by LSN (durable or still buffered).
  Result<LogRecord> Read(Lsn lsn) const;

  // Calls `cb` for every record with LSN >= `from`, in LSN order, until the
  // end of the log. The record's `lsn` field is filled in. `cb` may return a
  // non-OK status to stop the scan (propagated to the caller).
  Status Scan(Lsn from, const std::function<Status(const LogRecord&)>& cb) const;

  // LSN one past the last appended record (the next LSN to be assigned).
  Lsn end_lsn() const {
    SimMutexLock lock(mu_);
    return end_lsn_;
  }
  // LSN one past the last durable record.
  Lsn durable_lsn() const {
    SimMutexLock lock(mu_);
    return durable_end_;
  }
  // LSN of the first record.
  Lsn begin_lsn() const { return Lsn{kFileHeaderSize}; }

  // Checkpoint anchor, stored in the file header (the "master record").
  Status SetCheckpointLsn(Lsn lsn);
  Lsn checkpoint_lsn() const {
    SimMutexLock lock(mu_);
    return checkpoint_lsn_;
  }

  // Log space management (Section 3.6).
  void SetReclaimLsn(Lsn lsn);
  Lsn reclaim_lsn() const {
    SimMutexLock lock(mu_);
    return reclaim_lsn_;
  }
  uint64_t capacity() const { return capacity_; }
  uint64_t used_bytes() const {
    SimMutexLock lock(mu_);
    return end_lsn_ - reclaim_lsn_;
  }

  // Physically releases the disk blocks of the reclaimed prefix (everything
  // below reclaim_lsn) via hole punching, which preserves file offsets --
  // and therefore the LSN = offset invariant -- while returning the space
  // to the filesystem. Records below the reclaim point become unreadable
  // afterwards, which is exactly their contract. Returns the number of
  // bytes punched (0 when unsupported by the filesystem or nothing to do).
  Result<uint64_t> PunchReclaimedSpace();

  // Metrics.
  uint64_t bytes_appended() const {
    SimMutexLock lock(mu_);
    return bytes_appended_;
  }
  uint64_t force_count() const {
    SimMutexLock lock(mu_);
    return force_count_;
  }
  // Unforced frame bytes currently buffered, and the largest that buffer has
  // ever grown (group commit lets it hold several transactions' records).
  uint64_t pending_bytes() const {
    SimMutexLock lock(mu_);
    return pending_.size();
  }
  uint64_t pending_high_water() const {
    SimMutexLock lock(mu_);
    return pending_high_water_;
  }

 private:
  LogManager(std::FILE* f, uint64_t capacity, const LogIoOptions& io)
      : file_(f), capacity_(capacity), io_(io) {}

  Status WriteHeader() FINELOG_REQUIRES(mu_);
  Status RecoverExisting() FINELOG_REQUIRES(mu_);
  // Read plus the frame's on-disk footprint, so Scan can advance without
  // re-encoding the record. `frame_size` may be null.
  Result<LogRecord> ReadFrame(Lsn lsn, uint64_t* frame_size) const
      FINELOG_REQUIRES(mu_);

  // One log = one appender; the real-clock mode serializes the owner's
  // appends and group-commit forces through this capability.
  mutable SimMutex mu_;
  std::FILE* file_ FINELOG_PT_GUARDED_BY(mu_);
  uint64_t capacity_ FINELOG_UNGUARDED("immutable after Open");
  LogIoOptions io_ FINELOG_UNGUARDED("immutable after Open");
  Lsn durable_end_ FINELOG_GUARDED_BY(mu_){kFileHeaderSize};
  Lsn end_lsn_ FINELOG_GUARDED_BY(mu_){kFileHeaderSize};
  Lsn checkpoint_lsn_ FINELOG_GUARDED_BY(mu_) = kNullLsn;
  Lsn reclaim_lsn_ FINELOG_GUARDED_BY(mu_){kFileHeaderSize};
  // Everything below is already hole-punched.
  Lsn punched_below_ FINELOG_GUARDED_BY(mu_);
  // Frames appended but not yet forced.
  std::string pending_ FINELOG_GUARDED_BY(mu_);
  // Reused per-append serialization scratch.
  std::string encode_buf_ FINELOG_GUARDED_BY(mu_);
  uint64_t pending_high_water_ FINELOG_GUARDED_BY(mu_) = 0;
  uint64_t bytes_appended_ FINELOG_GUARDED_BY(mu_) = 0;
  uint64_t force_count_ FINELOG_GUARDED_BY(mu_) = 0;
};

}  // namespace finelog

#endif  // FINELOG_LOG_LOG_MANAGER_H_
