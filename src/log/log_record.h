// Log record taxonomy (Sections 2, 3.1 and 3.2 of the paper).
//
// Client private logs contain: update records, compensation records (CLRs),
// transaction control records, savepoint markers, fuzzy checkpoint records,
// and -- unique to this architecture -- *callback log records*, written by a
// client whose lock request triggered an exclusive callback. Callback records
// capture the inter-client update order on an object so server restart
// recovery can reconstruct it (Section 3.4).
//
// The server log contains only *replacement log records* (one forced before
// every page write to disk, carrying the page PSN plus the DCT entries for
// the page) and server checkpoint records carrying the whole DCT. The server
// performs no data logging: all data updates live in client logs.

#ifndef FINELOG_LOG_LOG_RECORD_H_
#define FINELOG_LOG_LOG_RECORD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/types.h"

namespace finelog {

// PSN sentinel for "unknown" DCT fields during server restart (Section 3.4
// step 1 inserts <PID, CID, NULL, NULL> entries).
inline constexpr Psn kNullPsn{~0ull};

enum class LogRecordType : uint8_t {
  kUpdate = 1,
  kClr = 2,
  kCommit = 3,
  kAbort = 4,
  kTxnEnd = 5,
  kSavepoint = 6,
  kCallback = 7,
  kClientCheckpoint = 8,
  kReplacement = 9,       // Server log only.
  kServerCheckpoint = 10, // Server log only.
  kMembership = 11,       // Server log only: presumed-dead declare/clear.
};

const char* LogRecordTypeName(LogRecordType t);

// The kind of physical operation an update/CLR record describes. kOverwrite
// is the "mergeable" update of Section 3.1; the others modify page structure
// and require a page-level exclusive lock.
enum class UpdateOp : uint8_t {
  kOverwrite = 1,
  kCreate = 2,
  kResize = 3,
  kDelete = 4,
  // Resize within the slot's reserved capacity: in place, no structural
  // change -- mergeable under an object-level lock (the paper's footnote-3
  // reservation extension).
  kResizeInPlace = 5,
};

// An entry of a client's dirty page table (DPT), Section 3.2.
struct DptEntry {
  PageId page = kInvalidPageId;
  Lsn redo_lsn = kNullLsn;  // Earliest record that may need redo for the page.

  friend bool operator==(const DptEntry&, const DptEntry&) = default;
};

// An entry of the server's dirty client table (DCT), Section 3.2.
struct DctEntry {
  PageId page = kInvalidPageId;
  ClientId client = kInvalidClientId;
  Psn psn = kNullPsn;      // PSN of the page when last received from client.
  Lsn redo_lsn = kNullLsn; // LSN of first replacement record for the page.

  friend bool operator==(const DctEntry&, const DctEntry&) = default;
};

// Summary of an in-flight transaction, carried by client checkpoints.
struct TxnCheckpointInfo {
  TxnId txn = kInvalidTxnId;
  Lsn first_lsn = kNullLsn;
  Lsn last_lsn = kNullLsn;

  friend bool operator==(const TxnCheckpointInfo&,
                         const TxnCheckpointInfo&) = default;
};

// A single in-memory log record; `type` selects which fields are meaningful.
struct LogRecord {
  LogRecordType type = LogRecordType::kUpdate;
  TxnId txn = kInvalidTxnId;
  Lsn prev_lsn = kNullLsn;  // Backward chain within the transaction.

  // kUpdate / kClr.
  PageId page = kInvalidPageId;
  SlotId slot = kInvalidSlotId;
  UpdateOp op = UpdateOp::kOverwrite;
  Psn psn;                  // PSN the page had just before this update.
  uint16_t capacity = 0;    // Reserved capacity (kCreate redo only).
  std::string redo;         // After-image (or redo payload for CLRs).
  std::string undo;         // Before-image (empty for CLRs).

  // kClr only: next record to undo after this compensation.
  Lsn undo_next_lsn = kNullLsn;

  // kCallback only: the called-back object, the client that responded, and
  // the PSN the page had when the responder shipped it to the server.
  ObjectId cb_object;
  ClientId cb_responder = kInvalidClientId;
  Psn cb_psn;

  // kClientCheckpoint only.
  std::vector<TxnCheckpointInfo> active_txns;
  std::vector<DptEntry> dpt;

  // kReplacement only: page PSN at the time of the disk write plus the DCT
  // entries for the page. kServerCheckpoint reuses `dct` for the full table.
  Psn page_psn;
  std::vector<DctEntry> dct;

  // kMembership only (DESIGN.md section 14): the server forces one of these
  // before acting on a lease expiry, so a restarted server reconstructs the
  // presumed-dead set and keeps the client's dirty pages quarantined; a
  // clearing record (presumed_dead = false) is forced when the client
  // completes crash recovery and rejoins.
  ClientId member = kInvalidClientId;
  bool presumed_dead = false;

  // Set by the log manager on read; not serialized.
  Lsn lsn = kNullLsn;

  // Serialization. EncodeTo appends to `out` without clearing it, so hot
  // paths can reuse one buffer's capacity across records.
  void EncodeTo(std::string* out) const;
  std::string Encode() const;
  static Result<LogRecord> Decode(Slice data);

  // Convenience factories -------------------------------------------------
  static LogRecord Update(TxnId txn, Lsn prev, PageId page, SlotId slot,
                          UpdateOp op, Psn psn, std::string redo,
                          std::string undo);
  static LogRecord Clr(TxnId txn, Lsn prev, PageId page, SlotId slot,
                       UpdateOp op, Psn psn, std::string redo,
                       Lsn undo_next);
  static LogRecord Control(LogRecordType type, TxnId txn, Lsn prev);
  static LogRecord Callback(TxnId txn, Lsn prev, ObjectId object,
                            ClientId responder, Psn psn);
  static LogRecord ClientCheckpoint(std::vector<TxnCheckpointInfo> txns,
                                    std::vector<DptEntry> dpt);
  static LogRecord Replacement(PageId page, Psn page_psn,
                               std::vector<DctEntry> entries);
  static LogRecord ServerCheckpoint(std::vector<DctEntry> entries);
  static LogRecord Membership(ClientId member, bool presumed_dead);
};

}  // namespace finelog

#endif  // FINELOG_LOG_LOG_RECORD_H_
