// FaultInjector: deterministic fail-point registry for durability-critical
// I/O sites.
//
// Every write-path site (log force, log append, page write, journal write,
// header write, sync) names itself with a stable fail-point string
// ("client0.log.force", "server.disk.page", ...) and asks the injector what
// to do before touching the file. The injector counts every hit; when armed,
// it fires exactly once -- at the Nth hit of one point, or at the Kth hit
// across all points (the sweep mode) -- and tells the site to either fail
// cleanly (EIO, no bytes written) or tear the write (a deterministic prefix
// of the payload reaches the file, then the site reports an error).
//
// Hit counting is deterministic: the same seeded workload against a fresh
// directory produces the same hit sequence, so a crash point is fully
// reproducible from its (seed, hit_index) pair. An unarmed injector is a
// pure counter ("counting probe"): run the workload once to enumerate the M
// fail-point hits, then sweep k over 1..M re-running the workload and
// crashing at hit k.
//
// The injector is wired through SystemConfig::fault_injector; when null,
// every site runs at full speed with no counting.

#ifndef FINELOG_UTIL_FAULT_H_
#define FINELOG_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/metrics.h"

namespace finelog {

// What an armed fail-point does to the write it intercepts.
enum class FaultAction {
  kNone,        // Proceed normally.
  kError,       // Fail before any byte is written (EIO).
  kTornWrite,   // A prefix of the payload reaches the disk; then EIO.
  kShortWrite,  // Same durable outcome as a torn write, reported as a
                // short write by the I/O layer rather than a device error.
};

std::string_view FaultActionName(FaultAction action);

class FaultInjector {
 public:
  // What the intercepted site must do. For kTornWrite/kShortWrite, `cut` is
  // the number of payload bytes to write before failing (0 <= cut < size).
  struct Outcome {
    FaultAction action = FaultAction::kNone;
    size_t cut = 0;
  };

  // Identity of the single fault an injector has fired, for reproduction
  // and reporting.
  struct Fired {
    std::string point;     // Fail-point name.
    uint64_t global_hit;   // 1-based hit index across all points.
    uint64_t point_hit;    // 1-based hit index of this point.
    FaultAction action;
    size_t cut;
  };

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Mirrors every hit into `metrics` as "fault.<point>" counters (and the
  // fired fault as "fault.injected"). May be re-pointed when a fresh System
  // is built around the same injector.
  void AttachMetrics(Metrics* metrics) { metrics_ = metrics; }

  // Arms a one-shot fault at the `nth` future hit (1 = the next hit) of
  // `point`. `cut_fraction` picks the tear position for torn/short writes as
  // a fraction of the payload size.
  void ArmPoint(const std::string& point, uint64_t nth, FaultAction action,
                double cut_fraction = 0.5);

  // Sweep mode: arms a one-shot fault at the `nth` future hit counted across
  // every point, whichever point that turns out to be.
  void ArmGlobalHit(uint64_t nth, FaultAction action,
                    double cut_fraction = 0.5);

  void Disarm();

  // Records the point name of every hit (in order) for choosing sweep
  // targets; off by default to keep long runs cheap.
  void EnableTrace(bool on) { trace_enabled_ = on; }
  const std::vector<std::string>& trace() const { return trace_; }

  // Site interface -----------------------------------------------------------

  // Called by an I/O site about to write `size` payload bytes. Counts the
  // hit and returns the action to take. Sites that cannot tolerate a torn
  // payload (single-sector headers, journal invalidation) pass
  // `allow_torn = false`; a torn/short arm then degrades to a clean kError.
  Outcome Evaluate(const std::string& point, size_t size,
                   bool allow_torn = true);

  // Introspection ------------------------------------------------------------

  uint64_t total_hits() const {
    return total_hits_.load(std::memory_order_relaxed);
  }
  uint64_t hits(const std::string& point) const;
  // Harness-side view; callers read it only after concurrent I/O quiesces.
  const std::map<std::string, uint64_t>& hit_counts() const { return hits_; }

  bool triggered() const { return fired_.has_value(); }
  const std::optional<Fired>& fired() const { return fired_; }

  // Clears counters, the trace and the fired record; keeps the armed fault
  // (if any) and the metrics attachment.
  void ResetCounts();

 private:
  struct Armed {
    std::string point;  // Empty = global (sweep) arm.
    uint64_t at_hit = 0;
    FaultAction action = FaultAction::kNone;
    double cut_fraction = 0.5;
  };

  Metrics* metrics_ = nullptr;
  // Serializes Evaluate against itself: real-clock runs hit fail points
  // from every client thread and the reactor. The hit total additionally
  // stays an atomic so the lock-free accessor above can't tear.
  mutable std::mutex mu_;
  std::optional<Armed> armed_;
  std::optional<Fired> fired_;
  std::atomic<uint64_t> total_hits_{0};
  std::map<std::string, uint64_t> hits_;
  bool trace_enabled_ = false;
  std::vector<std::string> trace_;
};

}  // namespace finelog

#endif  // FINELOG_UTIL_FAULT_H_
