#include "util/fault.h"

#include <algorithm>

namespace finelog {

std::string_view FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kError:
      return "error";
    case FaultAction::kTornWrite:
      return "torn-write";
    case FaultAction::kShortWrite:
      return "short-write";
  }
  return "unknown";
}

void FaultInjector::ArmPoint(const std::string& point, uint64_t nth,
                             FaultAction action, double cut_fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  Armed a;
  a.point = point;
  a.at_hit = hits_[point] + nth;
  a.action = action;
  a.cut_fraction = cut_fraction;
  armed_ = a;
}

void FaultInjector::ArmGlobalHit(uint64_t nth, FaultAction action,
                                 double cut_fraction) {
  std::lock_guard<std::mutex> lock(mu_);
  Armed a;
  a.at_hit = total_hits_.load(std::memory_order_relaxed) + nth;
  a.action = action;
  a.cut_fraction = cut_fraction;
  armed_ = a;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.reset();
}

uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

void FaultInjector::ResetCounts() {
  std::lock_guard<std::mutex> lock(mu_);
  total_hits_.store(0, std::memory_order_relaxed);
  hits_.clear();
  trace_.clear();
  fired_.reset();
}

FaultInjector::Outcome FaultInjector::Evaluate(const std::string& point,
                                               size_t size, bool allow_torn) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t total_hit =
      total_hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t point_hit = ++hits_[point];
  if (trace_enabled_) trace_.push_back(point);
  if (metrics_ != nullptr) metrics_->Add("fault." + point);

  if (!armed_.has_value()) return Outcome{};
  const Armed& a = *armed_;
  bool match = a.point.empty() ? total_hit == a.at_hit
                               : (point == a.point && point_hit == a.at_hit);
  if (!match) return Outcome{};

  Outcome out;
  out.action = a.action;
  if ((out.action == FaultAction::kTornWrite ||
       out.action == FaultAction::kShortWrite)) {
    if (!allow_torn || size == 0) {
      out.action = FaultAction::kError;
    } else {
      // Deterministic tear position, strictly inside the payload.
      double f = std::clamp(a.cut_fraction, 0.0, 1.0);
      out.cut = std::min(size - 1, static_cast<size_t>(size * f));
    }
  }
  fired_ = Fired{point, total_hit, point_hit, out.action, out.cut};
  armed_.reset();  // One-shot.
  if (metrics_ != nullptr) metrics_->Add(Counter::kFaultInjected);
  return out;
}

}  // namespace finelog
