#include "util/crc32.h"

#include <array>

namespace finelog {
namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // CRC32C, reflected.

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  static const std::array<uint32_t, 256> kTable = MakeTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~init;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace finelog
