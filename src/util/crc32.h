// CRC32 (Castagnoli polynomial, software implementation) used to checksum
// pages on disk and log records in the private and server logs.

#ifndef FINELOG_UTIL_CRC32_H_
#define FINELOG_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace finelog {

// Computes the CRC32C of `data[0, n)`, seeded with `init` (pass 0 for a
// fresh checksum; pass a previous result to extend it).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

}  // namespace finelog

#endif  // FINELOG_UTIL_CRC32_H_
