// Little-endian binary encoding helpers used by the page layout, the log
// record formats and the message payload accounting.

#ifndef FINELOG_UTIL_CODING_H_
#define FINELOG_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace finelog {

// Appends fixed-width little-endian values to a growing buffer.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(std::string* out) : external_(out) {}

  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU16(uint16_t v) { PutFixed(v); }
  void PutU32(uint32_t v) { PutFixed(v); }
  void PutU64(uint64_t v) { PutFixed(v); }

  // Strong ID types (types.h) serialize through their raw representation;
  // PutId/GetId keep the .value() unwrapping in one place.
  template <typename Id>
  void PutId(Id id) {
    PutFixed(id.value());
  }

  // Length-prefixed byte string (u32 length).
  void PutBytes(Slice data) {
    PutU32(static_cast<uint32_t>(data.size()));
    Append(data.data(), data.size());
  }

  // Raw bytes without a length prefix.
  void PutRaw(Slice data) { Append(data.data(), data.size()); }

  const std::string& buffer() const { return external_ ? *external_ : owned_; }
  std::string Take() { return external_ ? std::move(*external_) : std::move(owned_); }
  size_t size() const { return buffer().size(); }

 private:
  template <typename T>
  void PutFixed(T v) {
    char buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    }
    Append(buf, sizeof(T));
  }

  void Append(const void* p, size_t n) {
    std::string& b = external_ ? *external_ : owned_;
    b.append(static_cast<const char*>(p), n);
  }

  std::string owned_;
  std::string* external_ = nullptr;
};

// Reads fixed-width little-endian values from a buffer. All getters return
// false (and leave the output untouched) on underflow, so corrupt log tails
// are detected rather than crashed on.
class Decoder {
 public:
  explicit Decoder(Slice data) : data_(data.data()), size_(data.size()) {}

  bool GetU8(uint8_t* v) { return GetFixed(v); }
  bool GetU16(uint16_t* v) { return GetFixed(v); }
  bool GetU32(uint32_t* v) { return GetFixed(v); }
  bool GetU64(uint64_t* v) { return GetFixed(v); }

  template <typename Id>
  bool GetId(Id* id) {
    typename Id::Rep raw;
    if (!GetFixed(&raw)) return false;
    *id = Id(raw);
    return true;
  }

  bool GetBytes(std::string* out) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (remaining() < len) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

  bool GetRaw(size_t n, std::string* out) {
    if (remaining() < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool empty() const { return pos_ == size_; }

 private:
  template <typename T>
  bool GetFixed(T* v) {
    if (remaining() < sizeof(T)) return false;
    T out = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    }
    pos_ += sizeof(T);
    *v = out;
    return true;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace finelog

#endif  // FINELOG_UTIL_CODING_H_
