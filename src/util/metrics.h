// Metrics: a named-counter registry. Every module increments counters here;
// the benchmark harness snapshots and diffs them to produce the experiment
// tables.
//
// Hot-path counters are interned: each well-known counter is a Counter enum
// value backed by a dense array, so an increment is an array add with no
// string construction, hashing or map lookup. The string-keyed overloads
// remain for dynamically named counters (fault-point mirrors) and for
// external readers (tests, benches) that address counters by name; they
// resolve interned names to the dense array so both views stay consistent.

#ifndef FINELOG_UTIL_METRICS_H_
#define FINELOG_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace finelog {

// Every well-known counter, paired with its stable snapshot name. New hot
// counters go here; Metrics::Add(std::string) is reserved for dynamic names
// (enforced by finelog_lint's metrics-string-key rule).
#define FINELOG_COUNTERS(X)                                                  \
  X(kClientAborts, "client.aborts")                                          \
  X(kClientBatchFetchItems, "client.batch_fetch_items")                      \
  X(kClientBatchFetchRequests, "client.batch_fetch_requests")                \
  X(kClientBatchLockItems, "client.batch_lock_items")                        \
  X(kClientBatchLockRequests, "client.batch_lock_requests")                  \
  X(kClientBatchShipItems, "client.batch_ship_items")                        \
  X(kClientBatchShipRequests, "client.batch_ship_requests")                  \
  X(kClientCallbackRecords, "client.callback_records")                       \
  X(kClientCallbacksHandled, "client.callbacks_handled")                     \
  X(kClientCheckpoints, "client.checkpoints")                                \
  X(kClientCommits, "client.commits")                                        \
  X(kClientCrashes, "client.crashes")                                        \
  X(kClientCreates, "client.creates")                                        \
  X(kClientDeescalationsHandled, "client.deescalations_handled")             \
  X(kClientDeletes, "client.deletes")                                        \
  X(kClientEscalations, "client.escalations")                                \
  X(kClientFlushNotifies, "client.flush_notifies")                           \
  X(kClientGroupCommitMaxBatch, "client.group_commit_max_batch")             \
  X(kClientGroupCommitTxns, "client.group_commit_txns")                      \
  X(kClientGroupCommits, "client.group_commits")                             \
  X(kClientIdleReleases, "client.idle_releases")                             \
  X(kClientLockHits, "client.lock_hits")                                     \
  X(kClientLockMisses, "client.lock_misses")                                 \
  X(kClientLogBytesPunched, "client.log_bytes_punched")                      \
  X(kClientLogFullEvents, "client.log_full_events")                          \
  X(kClientLogPendingHighWater, "client.log_pending_high_water")             \
  X(kClientLogSpaceForces, "client.log_space_forces")                        \
  X(kClientLoserRollbacks, "client.loser_rollbacks")                         \
  X(kClientOrderedFetches, "client.ordered_fetches")                         \
  X(kClientPageCallbacksHandled, "client.page_callbacks_handled")            \
  X(kClientPageFetches, "client.page_fetches")                               \
  X(kClientPagesShipped, "client.pages_shipped")                             \
  X(kClientPartialRollbacks, "client.partial_rollbacks")                     \
  X(kClientReads, "client.reads")                                            \
  X(kClientRecoveryPageFetches, "client.recovery_page_fetches")              \
  X(kClientRecoveryRedos, "client.recovery_redos")                           \
  X(kClientRecoverySessions, "client.recovery_sessions")                     \
  X(kClientRedos, "client.redos")                                            \
  X(kClientResizes, "client.resizes")                                        \
  X(kClientResizesInPlace, "client.resizes_in_place")                        \
  X(kClientRestartDeferrals, "client.restart_deferrals")                     \
  X(kClientRestarts, "client.restarts")                                      \
  X(kClientSavepoints, "client.savepoints")                                  \
  X(kClientTxnBegins, "client.txn_begins")                                   \
  X(kClientUndos, "client.undos")                                            \
  X(kClientWalForcesOnReplace, "client.wal_forces_on_replace")               \
  X(kClientWrites, "client.writes")                                          \
  X(kFailoverBlocked, "failover.blocked")                                    \
  X(kFailoverDeposedFenced, "failover.deposed_fenced")                       \
  X(kFailoverProbes, "failover.probes")                                      \
  X(kFailoverReplEpochRejected, "failover.repl_epoch_rejected")              \
  X(kFailoverReplRecordsShipped, "failover.repl_records_shipped")            \
  X(kFailoverSwitchovers, "failover.switchovers")                            \
  X(kFailoverTakeovers, "failover.takeovers")                                \
  X(kFaultInjected, "fault.injected")                                        \
  X(kLivenessHeartbeatsReceived, "liveness.heartbeats_received")             \
  X(kLivenessHeartbeatsSent, "liveness.heartbeats_sent")                     \
  X(kLivenessLeaseExpiries, "liveness.lease_expiries")                       \
  X(kLivenessPresumedDead, "liveness.presumed_dead")                         \
  X(kLivenessQuarantineDenials, "liveness.quarantine_denials")               \
  X(kLivenessRecoveredZombies, "liveness.recovered_zombies")                 \
  X(kLivenessZombieFenced, "liveness.zombie_fenced")                         \
  X(kNetDedupHits, "net.dedup_hits")                                         \
  X(kNetDelays, "net.delays")                                                \
  X(kNetDrops, "net.drops")                                                  \
  X(kNetDups, "net.dups")                                                    \
  X(kNetEpochBumps, "net.epoch_bumps")                                       \
  X(kNetPartitionDrops, "net.partition_drops")                               \
  X(kNetReorders, "net.reorders")                                            \
  X(kNetReplyRecovered, "net.reply_recovered")                               \
  X(kNetRpcBackoffUs, "net.rpc_backoff_us")                                  \
  X(kNetRpcExhausted, "net.rpc_exhausted")                                   \
  X(kNetRpcRetries, "net.rpc_retries")                                       \
  X(kNetRpcTimeouts, "net.rpc_timeouts")                                     \
  X(kNetStaleEpochFenced, "net.stale_epoch_fenced")                          \
  X(kRecoveryDegradedResponses, "recovery.degraded_responses")               \
  X(kRecoveryDemandRepairs, "recovery.demand_repairs")                       \
  X(kRecoveryFailedChecks, "recovery.failed_checks")                         \
  X(kRecoveryPagesMarked, "recovery.pages_marked")                           \
  X(kRecoveryPagesPendingHighWater, "recovery.pages_pending_high_water")     \
  X(kRecoveryPagesRepaired, "recovery.pages_repaired")                       \
  X(kRecoverySinglePageRepairs, "recovery.single_page_repairs")              \
  X(kRecoverySweepRepairs, "recovery.sweep_repairs")                         \
  X(kRecoveryTimeToFirstAdmitUs, "recovery.time_to_first_admit_us")          \
  X(kRecoveryTimeToFullyRecoveredUs, "recovery.time_to_fully_recovered_us")  \
  X(kServerAllocations, "server.allocations")                                \
  X(kServerBatchCallbackItems, "server.batch_callback_items")                \
  X(kServerBatchCallbackRequests, "server.batch_callback_requests")          \
  X(kServerCallbacksDenied, "server.callbacks_denied")                       \
  X(kServerCallbacksObject, "server.callbacks_object")                       \
  X(kServerCallbacksPage, "server.callbacks_page")                           \
  X(kServerCheckpoints, "server.checkpoints")                                \
  X(kServerCommitLogShips, "server.commit_log_ships")                        \
  X(kServerCommitPageShips, "server.commit_page_ships")                      \
  X(kServerCoordinatedPageRecoveries, "server.coordinated_page_recoveries")  \
  X(kServerCrashes, "server.crashes")                                        \
  X(kServerDeallocations, "server.deallocations")                            \
  X(kServerDeescalations, "server.deescalations")                            \
  X(kServerDiskReads, "server.disk_reads")                                   \
  X(kServerDiskWrites, "server.disk_writes")                                 \
  X(kServerForcePageRequests, "server.force_page_requests")                  \
  X(kServerLockReleases, "server.lock_releases")                             \
  X(kServerLockRequests, "server.lock_requests")                             \
  X(kServerLogPendingHighWater, "server.log_pending_high_water")             \
  X(kServerOrderedFetches, "server.ordered_fetches")                         \
  X(kServerPageFetches, "server.page_fetches")                               \
  X(kServerPagesMerged, "server.pages_merged")                               \
  X(kServerRecoveryPageFetches, "server.recovery_page_fetches")              \
  X(kServerReplacementRecords, "server.replacement_records")                 \
  X(kServerRestarts, "server.restarts")                                      \
  X(kServerSyncCheckpoints, "server.sync_checkpoints")                       \
  X(kServerTokenRequests, "server.token_requests")                           \
  X(kServerTokenTransfers, "server.token_transfers")

enum class Counter : uint16_t {
#define FINELOG_COUNTER_ENUM(id, name) id,
  FINELOG_COUNTERS(FINELOG_COUNTER_ENUM)
#undef FINELOG_COUNTER_ENUM
      kCount,
};

inline constexpr size_t kCounterCount = static_cast<size_t>(Counter::kCount);

inline constexpr std::string_view kCounterNames[kCounterCount] = {
#define FINELOG_COUNTER_NAME(id, name) name,
    FINELOG_COUNTERS(FINELOG_COUNTER_NAME)
#undef FINELOG_COUNTER_NAME
};

constexpr std::string_view CounterName(Counter c) {
  return kCounterNames[static_cast<size_t>(c)];
}

// Counters are relaxed atomics: in the real-clock execution mode
// (DESIGN.md section 17) every client thread and the server reactor
// increment concurrently, and no code orders memory against a counter --
// they are pure statistics, summed and snapshotted after the threads join.
class Metrics {
 public:
  Metrics() = default;

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  // Hot path: dense-array relaxed increment, no allocation.
  void Add(Counter c, uint64_t delta = 1) {
    dense_[static_cast<size_t>(c)].fetch_add(delta, std::memory_order_relaxed);
  }

  // High-water tracking: keeps the largest value ever reported.
  void SetMax(Counter c, uint64_t value) {
    std::atomic<uint64_t>& slot = dense_[static_cast<size_t>(c)];
    uint64_t cur = slot.load(std::memory_order_relaxed);
    while (value > cur &&
           !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  uint64_t Get(Counter c) const {
    return dense_[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }

  // Compatibility path for dynamically named counters ("fault.<point>").
  // Interned names resolve to the dense array so both views agree; truly
  // dynamic names fall back to a mutex-guarded map (never on a hot path --
  // the lint's metrics-string-key rule keeps hot sites on the enum).
  void Add(const std::string& name, uint64_t delta = 1) {
    if (const Counter* c = Lookup(name)) {
      Add(*c, delta);
      return;
    }
    std::lock_guard<std::mutex> lock(dynamic_mu_);
    dynamic_[name] += delta;
  }

  uint64_t Get(const std::string& name) const {
    if (const Counter* c = Lookup(name)) return Get(*c);
    std::lock_guard<std::mutex> lock(dynamic_mu_);
    auto it = dynamic_.find(name);
    return it == dynamic_.end() ? 0 : it->second;
  }

  // Name-ordered view of every nonzero counter (interned and dynamic), for
  // snapshot diffing and enumeration. Zero-valued interned counters are
  // omitted so the view matches what a purely string-keyed registry would
  // have recorded.
  std::map<std::string, uint64_t> counters() const {
    std::map<std::string, uint64_t> out;
    {
      std::lock_guard<std::mutex> lock(dynamic_mu_);
      out.insert(dynamic_.begin(), dynamic_.end());
    }
    for (size_t i = 0; i < kCounterCount; ++i) {
      const uint64_t v = dense_[i].load(std::memory_order_relaxed);
      if (v != 0) out.emplace(std::string(kCounterNames[i]), v);
    }
    return out;
  }

  void Reset() {
    for (auto& slot : dense_) slot.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(dynamic_mu_);
    dynamic_.clear();
  }

  // Snapshot for before/after diffing in benchmarks.
  std::map<std::string, uint64_t> Snapshot() const { return counters(); }

 private:
  // Name -> interned counter; built once, used only by the string-keyed
  // compatibility overloads.
  static const Counter* Lookup(const std::string& name) {
    static const std::map<std::string, Counter, std::less<>> index = [] {
      std::map<std::string, Counter, std::less<>> m;
      for (size_t i = 0; i < kCounterCount; ++i) {
        m.emplace(std::string(kCounterNames[i]), static_cast<Counter>(i));
      }
      return m;
    }();
    auto it = index.find(name);
    return it == index.end() ? nullptr : &it->second;
  }

  std::array<std::atomic<uint64_t>, kCounterCount> dense_{};
  mutable std::mutex dynamic_mu_;
  std::map<std::string, uint64_t> dynamic_;
};

}  // namespace finelog

#endif  // FINELOG_UTIL_METRICS_H_
