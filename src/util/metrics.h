// Metrics: a small named-counter registry. Every module increments counters
// here; the benchmark harness snapshots and diffs them to produce the
// experiment tables.

#ifndef FINELOG_UTIL_METRICS_H_
#define FINELOG_UTIL_METRICS_H_

#include <cstdint>
#include <map>
#include <string>

namespace finelog {

class Metrics {
 public:
  Metrics() = default;

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void Add(const std::string& name, uint64_t delta = 1) {
    counters_[name] += delta;
  }

  uint64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }

  void Reset() { counters_.clear(); }

  // Snapshot for before/after diffing in benchmarks.
  std::map<std::string, uint64_t> Snapshot() const { return counters_; }

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace finelog

#endif  // FINELOG_UTIL_METRICS_H_
