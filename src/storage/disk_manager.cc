#include "storage/disk_manager.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <memory>

namespace finelog {

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path,
                                                       uint32_t page_size) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    f = std::fopen(path.c_str(), "w+b");
  }
  if (f == nullptr) {
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager(f, page_size));
  struct stat st;
  if (fstat(fileno(f), &st) == 0) {
    dm->file_pages_ = static_cast<uint64_t>(st.st_size) / page_size;
  }
  return dm;
}

bool DiskManager::PageOnDisk(PageId pid) const { return pid < file_pages_; }

Status DiskManager::ReadPage(PageId pid, Page* out) {
  if (!PageOnDisk(pid)) {
    return Status::NotFound("page " + std::to_string(pid) + " not on disk");
  }
  if (std::fseek(file_, static_cast<long>(pid) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  out->raw().resize(page_size_);
  if (std::fread(out->raw().data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short read for page " + std::to_string(pid));
  }
  if (!out->VerifyChecksum()) {
    return Status::Corruption("checksum mismatch on page " + std::to_string(pid));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId pid, Page* page) {
  page->UpdateChecksum();
  if (std::fseek(file_, static_cast<long>(pid) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(page->raw().data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write for page " + std::to_string(pid));
  }
  std::fflush(file_);
  if (pid >= file_pages_) file_pages_ = pid + 1;
  return Status::OK();
}

}  // namespace finelog
