#include "storage/disk_manager.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>
#include <memory>

#include "common/errno_util.h"
#include "log/log_sink.h"
#include "util/coding.h"

namespace finelog {

namespace {

// Durability tail of every page/journal write: through the configured sink,
// or the historical fflush-only behavior when no sink is wired.
Status SyncThrough(LogSink* sink, std::FILE* file, const std::string& site) {
  if (sink != nullptr) return sink->Sync(file, site);
  std::fflush(file);
  return Status::OK();
}

// Journal slot layout: u32 magic, u32 pid, then the raw page image (whose
// embedded checksum authenticates the slot).
constexpr size_t kJournalHeaderSize = 8;

std::FILE* OpenOrCreate(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  return f;
}

}  // namespace

DiskManager::~DiskManager() {
  if (file_ != nullptr) std::fclose(file_);
  if (journal_ != nullptr) std::fclose(journal_);
}

Result<std::unique_ptr<DiskManager>> DiskManager::Open(const std::string& path,
                                                       uint32_t page_size,
                                                       const DiskIoOptions& io) {
  std::FILE* f = OpenOrCreate(path);
  if (f == nullptr) {
    return Status::IoError("open " + path + ": " + ErrnoString(errno));
  }
  std::FILE* j = OpenOrCreate(path + ".journal");
  if (j == nullptr) {
    std::fclose(f);
    return Status::IoError("open " + path + ".journal: " +
                           ErrnoString(errno));
  }
  auto dm = std::unique_ptr<DiskManager>(new DiskManager(f, j, page_size, io));
  struct stat st;
  if (fstat(fileno(f), &st) == 0) {
    dm->file_pages_ = static_cast<uint64_t>(st.st_size) / page_size;
  }
  if (!io.debug_skip_journal_replay) {
    FINELOG_RETURN_IF_ERROR(dm->ReplayJournal());
  }
  return dm;
}

bool DiskManager::PageOnDisk(PageId pid) const {
  return pid.value() < file_pages_;
}

Status DiskManager::ReadPage(PageId pid, Page* out) {
  if (!PageOnDisk(pid)) {
    return Status::NotFound("page " + ToString(pid) + " not on disk");
  }
  if (std::fseek(file_, static_cast<long>(pid.value()) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  out->raw().resize(page_size_);
  if (std::fread(out->raw().data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short read for page " + ToString(pid));
  }
  if (!out->VerifyChecksum()) {
    return Status::Corruption("checksum mismatch on page " + ToString(pid));
  }
  return Status::OK();
}

Status DiskManager::WriteInPlace(PageId pid, const std::string& raw) {
  if (std::fseek(file_, static_cast<long>(pid.value()) * page_size_, SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fwrite(raw.data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError("short write for page " + ToString(pid));
  }
  FINELOG_RETURN_IF_ERROR(SyncThrough(io_.sink, file_, io_.name + ".page"));
  if (pid.value() >= file_pages_) file_pages_ = pid.value() + 1;
  return Status::OK();
}

Status DiskManager::InvalidateJournal() {
  // A 4-byte magic overwrite is single-sector and modeled as atomic.
  char zero[4] = {0, 0, 0, 0};
  if (std::fseek(journal_, 0, SEEK_SET) != 0 ||
      std::fwrite(zero, 1, sizeof(zero), journal_) != sizeof(zero)) {
    return Status::IoError("journal invalidate failed");
  }
  return SyncThrough(io_.sink, journal_, io_.name + ".journal");
}

Status DiskManager::ReplayJournal() {
  char hdr[kJournalHeaderSize];
  if (std::fseek(journal_, 0, SEEK_SET) != 0 ||
      std::fread(hdr, 1, kJournalHeaderSize, journal_) != kJournalHeaderSize) {
    return Status::OK();  // Empty or truncated slot: nothing in flight.
  }
  Decoder dec(Slice(hdr, kJournalHeaderSize));
  uint32_t magic = 0;
  PageId pid;
  if (!dec.GetU32(&magic) || magic != kJournalMagic || !dec.GetId(&pid)) {
    return Status::OK();  // Invalidated or torn slot header.
  }
  Page page(page_size_);
  page.raw().resize(page_size_);
  if (std::fread(page.raw().data(), 1, page_size_, journal_) != page_size_ ||
      !page.VerifyChecksum()) {
    return Status::OK();  // Torn journal write: the in-place copy is intact.
  }
  // Complete journal slot: the in-place write may have been torn -- finish
  // it (idempotent if it completed).
  FINELOG_RETURN_IF_ERROR(WriteInPlace(pid, page.raw()));
  return InvalidateJournal();
}

Status DiskManager::WritePage(PageId pid, Page* page) {
  page->UpdateChecksum();

  // Step 1: doublewrite journal. A tear here leaves the slot checksum
  // invalid and the in-place copy untouched.
  std::string slot;
  {
    Encoder enc(&slot);
    enc.PutU32(kJournalMagic);
    enc.PutId(pid);
    enc.PutRaw(page->raw());
  }
  if (io_.injector != nullptr) {
    auto out = io_.injector->Evaluate(io_.name + ".journal", slot.size());
    if (out.action == FaultAction::kError) {
      return Status::IoError("injected fault: " + io_.name + ".journal");
    }
    if (out.action != FaultAction::kNone) {
      if (std::fseek(journal_, 0, SEEK_SET) == 0) {
        std::fwrite(slot.data(), 1, out.cut, journal_);
        std::fflush(journal_);
      }
      return Status::IoError("injected " +
                             std::string(FaultActionName(out.action)) + ": " +
                             io_.name + ".journal");
    }
  }
  if (std::fseek(journal_, 0, SEEK_SET) != 0 ||
      std::fwrite(slot.data(), 1, slot.size(), journal_) != slot.size()) {
    return Status::IoError("journal write failed for page " +
                           ToString(pid));
  }
  FINELOG_RETURN_IF_ERROR(
      SyncThrough(io_.sink, journal_, io_.name + ".journal"));

  // Step 2: in-place write. A tear here is repaired from the journal at the
  // next Open().
  if (io_.injector != nullptr) {
    auto out = io_.injector->Evaluate(io_.name + ".page", page_size_);
    if (out.action == FaultAction::kError) {
      return Status::IoError("injected fault: " + io_.name + ".page");
    }
    if (out.action != FaultAction::kNone) {
      if (std::fseek(file_, static_cast<long>(pid.value()) * page_size_, SEEK_SET) ==
          0) {
        std::fwrite(page->raw().data(), 1, out.cut, file_);
        std::fflush(file_);
        if (pid.value() >= file_pages_) file_pages_ = pid.value() + 1;
      }
      return Status::IoError("injected " +
                             std::string(FaultActionName(out.action)) + ": " +
                             io_.name + ".page");
    }
  }
  FINELOG_RETURN_IF_ERROR(WriteInPlace(pid, page->raw()));

  // Step 3: final sync. An EIO here still leaves the bytes durable in this
  // model; the caller sees the failure and must treat the write as
  // indeterminate.
  if (io_.injector != nullptr) {
    auto out = io_.injector->Evaluate(io_.name + ".sync", 0,
                                      /*allow_torn=*/false);
    if (out.action != FaultAction::kNone) {
      return Status::IoError("injected fault: " + io_.name + ".sync");
    }
  }

  return InvalidateJournal();
}

}  // namespace finelog
