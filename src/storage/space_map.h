// SpaceMap: the server's space allocation map.
//
// Following Mohan & Narang [18] (as adopted in Section 2 of the paper), the
// map remembers, for every page, the PSN the page had when it was last
// deallocated. A newly (re)allocated page is initialized with a PSN strictly
// greater than any PSN the page ever carried, preserving PSN monotonicity
// across deallocate/reallocate cycles.
//
// The map is tiny (a few bytes per page), so this implementation persists it
// synchronously on every mutation instead of logging map updates; the
// durability behaviour visible to the recovery algorithms is identical.

#ifndef FINELOG_STORAGE_SPACE_MAP_H_
#define FINELOG_STORAGE_SPACE_MAP_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace finelog {

class SpaceMap {
 public:
  SpaceMap(const SpaceMap&) = delete;
  SpaceMap& operator=(const SpaceMap&) = delete;

  // Opens (or creates) the map at `path` covering `num_pages` pages.
  static Result<std::unique_ptr<SpaceMap>> Open(const std::string& path,
                                                uint32_t num_pages);

  // Allocates a free page. The returned PSN must be installed on the fresh
  // page (it is one greater than the PSN recorded at last deallocation).
  struct Allocation {
    PageId page;
    Psn initial_psn;
  };
  Result<Allocation> AllocatePage();

  // Deallocates `page`, recording `final_psn` for future reallocations.
  Status DeallocatePage(PageId page, Psn final_psn);

  bool IsAllocated(PageId page) const;

  // The PSN a recovered-from-nothing incarnation of `page` must start at:
  // the PSN recorded at allocation time (Section 2 / [18]). Only valid for
  // allocated pages.
  Result<Psn> BasePsn(PageId page) const;
  uint32_t num_pages() const { return static_cast<uint32_t>(entries_.size()); }
  uint32_t allocated_count() const;

  // All currently allocated page ids.
  std::vector<PageId> AllocatedPages() const;

 private:
  struct Entry {
    bool allocated = false;
    Psn last_psn;
  };

  explicit SpaceMap(std::string path) : path_(std::move(path)) {}

  Status Persist() const;
  Status Load(uint32_t num_pages);

  std::string path_;
  std::vector<Entry> entries_;
};

}  // namespace finelog

#endif  // FINELOG_STORAGE_SPACE_MAP_H_
