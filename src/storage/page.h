// Page: the unit of data transfer and disk I/O (page-server architecture,
// Section 2 of the paper).
//
// Layout (little endian):
//   [0]   u32 magic
//   [4]   u32 page_id
//   [8]   u64 psn           -- page sequence number (Section 2)
//   [16]  u16 slot_count
//   [18]  u16 data_start    -- lowest byte offset used by object data
//   [20]  u32 checksum      -- CRC32C over the page with this field zeroed
//   [24]  u64 reserved
//   [32]  slot directory: slot_count x {u16 offset, u16 length, u16 capacity}
//   ...   free space ...
//   [data_start .. page_size) object data, allocated from the end downward
//
// A slot with offset == 0 is free (deleted or never used). Objects are
// addressed by (page_id, slot) = ObjectId and slots are stable across
// compaction, so ObjectIds never move.
//
// `capacity >= length` reserves expansion room: a resize within capacity is
// performed in place and therefore *mergeable* -- the footnote-3 extension
// of the paper ("reserving in advance enough space to accommodate any
// future expansions of the object").
//
// The PSN is incremented by one on every transaction update, and set to
// max(PSN_i, PSN_j) + 1 whenever two copies of the page are merged.

#ifndef FINELOG_STORAGE_PAGE_H_
#define FINELOG_STORAGE_PAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/types.h"

namespace finelog {

class Page {
 public:
  static constexpr uint32_t kMagic = 0xF17E106Au;
  static constexpr size_t kHeaderSize = 32;
  static constexpr size_t kSlotEntrySize = 6;

  // Constructs an uninitialized page buffer of `page_size` bytes; call
  // Format() or load raw bytes before use.
  explicit Page(uint32_t page_size);

  Page(const Page&) = default;
  Page& operator=(const Page&) = default;
  Page(Page&&) = default;
  Page& operator=(Page&&) = default;

  // Initializes an empty page with the given id and starting PSN.
  FINELOG_MUTATES_PAGE void Format(PageId id, Psn psn);

  // Header accessors.
  PageId id() const { return PageId(GetU32(4)); }
  Psn psn() const { return Psn(GetU64(8)); }
  void set_psn(Psn psn) { PutU64(8, psn.value()); }
  // Bumps the PSN by one (every transaction update does this, Section 2).
  void BumpPsn() { set_psn(psn().Next()); }
  uint16_t slot_count() const { return GetU16(16); }

  // Object operations ------------------------------------------------------

  // Allocates a new object with the given payload and reserved capacity
  // (0 means capacity = payload size). Reuses a free slot if one exists,
  // otherwise extends the slot directory. This is a non-mergeable
  // (structure-modifying) update: callers must hold a page-level X lock.
  FINELOG_MUTATES_PAGE Result<SlotId> CreateObject(Slice data,
                                                   uint16_t capacity = 0);

  // Creates an object at a specific slot (used by redo, which must recreate
  // objects at their original slots).
  FINELOG_MUTATES_PAGE Status CreateObjectAt(SlotId slot, Slice data,
                                             uint16_t capacity = 0);

  // Reads an object's payload.
  Result<std::string> ReadObject(SlotId slot) const;

  // Overwrites an object's payload in place with a same-sized value. This is
  // the "mergeable" update of Section 3.1.
  FINELOG_MUTATES_PAGE Status WriteObject(SlotId slot, Slice data);

  // Replaces an object's payload with one of a different size. If the new
  // size fits the slot's reserved capacity, the resize happens in place and
  // is mergeable (object-level lock suffices; see ResizeFitsInPlace).
  // Otherwise the object is reallocated -- a structural change.
  FINELOG_MUTATES_PAGE Status ResizeObject(SlotId slot, Slice data);

  // True if resizing `slot` to `new_size` would stay within its reserved
  // capacity (in-place, mergeable).
  bool ResizeFitsInPlace(SlotId slot, size_t new_size) const;

  // Deletes an object, freeing its slot (non-mergeable).
  FINELOG_MUTATES_PAGE Status DeleteObject(SlotId slot);

  bool SlotExists(SlotId slot) const;
  uint16_t ObjectSize(SlotId slot) const;
  uint16_t ObjectCapacity(SlotId slot) const;

  // Ids of all live objects on the page.
  std::vector<SlotId> LiveSlots() const;

  // Contiguous free bytes available for a new object of size n (including
  // directory growth if needed).
  size_t FreeSpace() const;

  // Checksum maintenance for disk round-trips.
  void UpdateChecksum();
  bool VerifyChecksum() const;

  // Raw access for disk I/O and page shipping.
  const std::string& raw() const { return buf_; }
  std::string& raw() { return buf_; }
  uint32_t page_size() const { return static_cast<uint32_t>(buf_.size()); }

 private:
  uint16_t SlotOffset(SlotId slot) const;
  uint16_t SlotLength(SlotId slot) const;
  uint16_t SlotCapacity(SlotId slot) const;
  void SetSlot(SlotId slot, uint16_t offset, uint16_t length,
               uint16_t capacity);
  uint16_t data_start() const { return GetU16(18); }
  void set_data_start(uint16_t v) { PutU16(18, v); }
  void set_slot_count(uint16_t v) { PutU16(16, v); }

  // Rewrites the data region to squeeze out holes left by deletes/resizes.
  void Compact();

  // Allocates `len` bytes in the data region, compacting if needed.
  // Returns 0 if there is no room even after compaction.
  uint16_t AllocateData(uint16_t len, SlotId for_slot);

  uint16_t GetU16(size_t off) const;
  uint32_t GetU32(size_t off) const;
  uint64_t GetU64(size_t off) const;
  void PutU16(size_t off, uint16_t v);
  void PutU32(size_t off, uint32_t v);
  void PutU64(size_t off, uint64_t v);

  std::string buf_;
};

}  // namespace finelog

#endif  // FINELOG_STORAGE_PAGE_H_
