#include "storage/page.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

#include "util/crc32.h"

namespace finelog {

Page::Page(uint32_t page_size) : buf_(page_size, '\0') {}

void Page::Format(PageId id, Psn psn) {
  std::fill(buf_.begin(), buf_.end(), '\0');
  PutU32(0, kMagic);
  PutU32(4, id.value());
  PutU64(8, psn.value());
  set_slot_count(0);
  set_data_start(static_cast<uint16_t>(buf_.size()));
}

uint16_t Page::GetU16(size_t off) const {
  uint16_t v;
  std::memcpy(&v, buf_.data() + off, sizeof(v));
  return v;
}
uint32_t Page::GetU32(size_t off) const {
  uint32_t v;
  std::memcpy(&v, buf_.data() + off, sizeof(v));
  return v;
}
uint64_t Page::GetU64(size_t off) const {
  uint64_t v;
  std::memcpy(&v, buf_.data() + off, sizeof(v));
  return v;
}
void Page::PutU16(size_t off, uint16_t v) {
  FINELOG_CHECK(off + sizeof(v) <= buf_.size(), "page header write out of bounds");
  std::memcpy(buf_.data() + off, &v, sizeof(v));
}
void Page::PutU32(size_t off, uint32_t v) {
  FINELOG_CHECK(off + sizeof(v) <= buf_.size(), "page header write out of bounds");
  std::memcpy(buf_.data() + off, &v, sizeof(v));
}
void Page::PutU64(size_t off, uint64_t v) {
  FINELOG_CHECK(off + sizeof(v) <= buf_.size(), "page header write out of bounds");
  std::memcpy(buf_.data() + off, &v, sizeof(v));
}

uint16_t Page::SlotOffset(SlotId slot) const {
  return GetU16(kHeaderSize + slot * kSlotEntrySize);
}
uint16_t Page::SlotLength(SlotId slot) const {
  return GetU16(kHeaderSize + slot * kSlotEntrySize + 2);
}
uint16_t Page::SlotCapacity(SlotId slot) const {
  return GetU16(kHeaderSize + slot * kSlotEntrySize + 4);
}
void Page::SetSlot(SlotId slot, uint16_t offset, uint16_t length,
                   uint16_t capacity) {
  PutU16(kHeaderSize + slot * kSlotEntrySize, offset);
  PutU16(kHeaderSize + slot * kSlotEntrySize + 2, length);
  PutU16(kHeaderSize + slot * kSlotEntrySize + 4, capacity);
}

bool Page::SlotExists(SlotId slot) const {
  return slot < slot_count() && SlotOffset(slot) != 0;
}

uint16_t Page::ObjectSize(SlotId slot) const {
  return SlotExists(slot) ? SlotLength(slot) : 0;
}

uint16_t Page::ObjectCapacity(SlotId slot) const {
  return SlotExists(slot) ? SlotCapacity(slot) : 0;
}

bool Page::ResizeFitsInPlace(SlotId slot, size_t new_size) const {
  return SlotExists(slot) && new_size <= SlotCapacity(slot);
}

std::vector<SlotId> Page::LiveSlots() const {
  std::vector<SlotId> out;
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != 0) out.push_back(s);
  }
  return out;
}

size_t Page::FreeSpace() const {
  size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  size_t start = data_start();
  return start > dir_end ? start - dir_end : 0;
}

void Page::Compact() {
  // Collect live objects (with their full reserved capacity), then rewrite
  // the data region from the end.
  struct Obj {
    SlotId slot;
    uint16_t length;
    std::string data;  // Capacity-sized region.
  };
  std::vector<Obj> live;
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) != 0) {
      live.push_back({s, SlotLength(s),
                      std::string(buf_.data() + SlotOffset(s), SlotCapacity(s))});
    }
  }
  uint16_t pos = static_cast<uint16_t>(buf_.size());
  size_t dir_end = kHeaderSize + slot_count() * kSlotEntrySize;
  for (const Obj& o : live) {
    pos = static_cast<uint16_t>(pos - o.data.size());
    FINELOG_CHECK(pos >= dir_end, "page compaction ran into slot directory");
    std::memcpy(buf_.data() + pos, o.data.data(), o.data.size());
    SetSlot(o.slot, pos, o.length, static_cast<uint16_t>(o.data.size()));
  }
  set_data_start(pos);
}

uint16_t Page::AllocateData(uint16_t len, SlotId for_slot) {
  size_t dir_end = kHeaderSize + std::max<size_t>(slot_count(), for_slot + 1) *
                                     kSlotEntrySize;
  if (data_start() < dir_end + len) {
    Compact();
    if (data_start() < dir_end + len) return 0;
  }
  uint16_t pos = static_cast<uint16_t>(data_start() - len);
  set_data_start(pos);
  return pos;
}

Result<SlotId> Page::CreateObject(Slice data, uint16_t capacity) {
  if (data.size() > 0xFFFF) {
    return Status::InvalidArgument("object larger than 64KB");
  }
  // Reuse a free slot if possible.
  SlotId slot = slot_count();
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (SlotOffset(s) == 0) {
      slot = s;
      break;
    }
  }
  Status st = CreateObjectAt(slot, data, capacity);
  if (!st.ok()) return st;
  return slot;
}

Status Page::CreateObjectAt(SlotId slot, Slice data, uint16_t capacity) {
  if (slot < slot_count() && SlotOffset(slot) != 0) {
    return Status::FailedPrecondition("slot already occupied");
  }
  if (capacity < data.size()) capacity = static_cast<uint16_t>(data.size());
  uint16_t pos = AllocateData(capacity, slot);
  if (pos == 0 && capacity > 0) {
    return Status::FailedPrecondition("page full");
  }
  if (capacity == 0) {
    // Zero-length objects get a sentinel non-zero offset at data_start.
    pos = data_start();
    if (pos == 0) return Status::FailedPrecondition("page full");
  } else {
    FINELOG_CHECK(pos + capacity <= buf_.size(), "object allocation out of bounds");
    std::memset(buf_.data() + pos, 0, capacity);
    std::memcpy(buf_.data() + pos, data.data(), data.size());
  }
  if (slot >= slot_count()) set_slot_count(static_cast<uint16_t>(slot + 1));
  SetSlot(slot, pos, static_cast<uint16_t>(data.size()), capacity);
  return Status::OK();
}

Result<std::string> Page::ReadObject(SlotId slot) const {
  if (!SlotExists(slot)) {
    return Status::NotFound("no object at slot " + std::to_string(slot));
  }
  return std::string(buf_.data() + SlotOffset(slot), SlotLength(slot));
}

Status Page::WriteObject(SlotId slot, Slice data) {
  if (!SlotExists(slot)) {
    return Status::NotFound("no object at slot " + std::to_string(slot));
  }
  if (data.size() != SlotLength(slot)) {
    return Status::InvalidArgument("WriteObject requires same size; use ResizeObject");
  }
  FINELOG_CHECK(SlotOffset(slot) + data.size() <= buf_.size(),
                "object write out of bounds");
  std::memcpy(buf_.data() + SlotOffset(slot), data.data(), data.size());
  return Status::OK();
}

Status Page::ResizeObject(SlotId slot, Slice data) {
  if (!SlotExists(slot)) {
    return Status::NotFound("no object at slot " + std::to_string(slot));
  }
  if (data.size() > 0xFFFF) {
    return Status::InvalidArgument("object larger than 64KB");
  }
  uint16_t old_len = SlotLength(slot);
  uint16_t capacity = SlotCapacity(slot);
  if (data.size() == old_len) {
    return WriteObject(slot, data);
  }
  if (data.size() <= capacity) {
    // Within reserved capacity: in place, slot does not move (mergeable).
    uint16_t off = SlotOffset(slot);
    FINELOG_CHECK(off + data.size() <= buf_.size(), "object resize out of bounds");
    std::memcpy(buf_.data() + off, data.data(), data.size());
    SetSlot(slot, off, static_cast<uint16_t>(data.size()), capacity);
    return Status::OK();
  }
  // Grow past capacity: free the slot, then reallocate (structural).
  SetSlot(slot, 0, 0, 0);
  uint16_t pos = AllocateData(static_cast<uint16_t>(data.size()), slot);
  if (pos == 0) {
    return Status::FailedPrecondition("page full");
  }
  FINELOG_CHECK(pos + data.size() <= buf_.size(), "object resize out of bounds");
  std::memcpy(buf_.data() + pos, data.data(), data.size());
  SetSlot(slot, pos, static_cast<uint16_t>(data.size()),
          static_cast<uint16_t>(data.size()));
  return Status::OK();
}

Status Page::DeleteObject(SlotId slot) {
  if (!SlotExists(slot)) {
    return Status::NotFound("no object at slot " + std::to_string(slot));
  }
  SetSlot(slot, 0, 0, 0);
  return Status::OK();
}

void Page::UpdateChecksum() {
  PutU32(20, 0);
  PutU32(20, Crc32c(buf_.data(), buf_.size()));
}

bool Page::VerifyChecksum() const {
  uint32_t stored = GetU32(20);
  Page copy = *this;
  copy.PutU32(20, 0);
  return stored == Crc32c(copy.buf_.data(), copy.buf_.size());
}

}  // namespace finelog
