// DiskManager: the server's database disk. Pages are written in place
// (Section 2: "modified pages that are replaced from the server cache are
// written in-place to disk").

#ifndef FINELOG_STORAGE_DISK_MANAGER_H_
#define FINELOG_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace finelog {

class DiskManager {
 public:
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager();

  // Opens (or creates) the database file at `path`.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path,
                                                   uint32_t page_size);

  // Reads page `pid` into `out`. Verifies the checksum; a never-written page
  // region reads back as zeroes and fails verification, which callers treat
  // as "page not yet on disk".
  Status ReadPage(PageId pid, Page* out);

  // Writes `page` in place. Computes the checksum before writing and flushes
  // to the file so the bytes survive a simulated server crash.
  Status WritePage(PageId pid, Page* page);

  // True if `pid` has ever been written.
  bool PageOnDisk(PageId pid) const;

  uint32_t page_size() const { return page_size_; }

 private:
  DiskManager(std::FILE* f, uint32_t page_size) : file_(f), page_size_(page_size) {}

  std::FILE* file_;
  uint32_t page_size_;
  uint64_t file_pages_ = 0;  // Number of page-sized extents in the file.
};

}  // namespace finelog

#endif  // FINELOG_STORAGE_DISK_MANAGER_H_
