// DiskManager: the server's database disk. Pages are written in place
// (Section 2: "modified pages that are replaced from the server cache are
// written in-place to disk").
//
// In-place writes are torn-write-atomic via a single-slot doublewrite
// journal (a ".journal" sidecar file): every WritePage first writes the full
// page image to the journal slot and flushes it, then writes in place, then
// invalidates the slot. Open() replays a valid journal slot before anything
// else, so a write interrupted mid-page (fault injection or a real crash)
// resolves to either the complete old or the complete new page image --
// never a CRC-invalid hybrid. The page's own checksum decides journal-slot
// validity.

#ifndef FINELOG_STORAGE_DISK_MANAGER_H_
#define FINELOG_STORAGE_DISK_MANAGER_H_

#include <cstdio>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"
#include "util/fault.h"

namespace finelog {

class LogSink;

// Fault-injection and durability wiring for one database disk. `name` prefixes the
// fail-points: "<name>.journal" (doublewrite slot write), "<name>.page"
// (in-place write) and "<name>.sync" (final flush). `debug_skip_journal_replay`
// is a deliberately broken recovery mode for harness self-tests: Open()
// ignores a valid journal slot, leaving an injected torn in-place write as a
// corrupt page on disk.
struct DiskIoOptions {
  FaultInjector* injector = nullptr;
  // Durability seam (DESIGN.md section 17): null keeps the simulation's
  // fflush-only boundary; the real-clock mode passes a DurableSink so the
  // journal slot and the in-place write are fdatasync'd in order.
  LogSink* sink = nullptr;
  std::string name = "disk";
  bool debug_skip_journal_replay = false;
};

class DiskManager {
 public:
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;
  ~DiskManager();

  // Opens (or creates) the database file at `path`, replaying the
  // doublewrite journal if a previous write was interrupted.
  static Result<std::unique_ptr<DiskManager>> Open(const std::string& path,
                                                   uint32_t page_size,
                                                   const DiskIoOptions& io = {});

  // Reads page `pid` into `out`. Verifies the checksum; a never-written page
  // region reads back as zeroes and fails verification, which callers treat
  // as "page not yet on disk".
  Status ReadPage(PageId pid, Page* out);

  // Writes `page` in place through the doublewrite journal. Computes the
  // checksum before writing and flushes to the file so the bytes survive a
  // simulated server crash.
  Status WritePage(PageId pid, Page* page);

  // True if `pid` has ever been written.
  bool PageOnDisk(PageId pid) const;

  uint32_t page_size() const { return page_size_; }

 private:
  static constexpr uint32_t kJournalMagic = 0xD0B1E;

  DiskManager(std::FILE* f, std::FILE* journal, uint32_t page_size,
              const DiskIoOptions& io)
      : file_(f), journal_(journal), page_size_(page_size), io_(io) {}

  // Writes `page` at its in-place offset and flushes. Shared by WritePage
  // and journal replay.
  Status WriteInPlace(PageId pid, const std::string& raw);

  // If the journal slot holds a complete, checksummed page image, re-issues
  // its in-place write (idempotent) and invalidates the slot.
  Status ReplayJournal();
  Status InvalidateJournal();

  std::FILE* file_;
  std::FILE* journal_;
  uint32_t page_size_;
  DiskIoOptions io_;
  uint64_t file_pages_ = 0;  // Number of page-sized extents in the file.
};

}  // namespace finelog

#endif  // FINELOG_STORAGE_DISK_MANAGER_H_
