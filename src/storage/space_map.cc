#include "storage/space_map.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/errno_util.h"
#include "util/coding.h"

namespace finelog {

Result<std::unique_ptr<SpaceMap>> SpaceMap::Open(const std::string& path,
                                                 uint32_t num_pages) {
  auto map = std::unique_ptr<SpaceMap>(new SpaceMap(path));
  FINELOG_RETURN_IF_ERROR(map->Load(num_pages));
  return map;
}

Status SpaceMap::Load(uint32_t num_pages) {
  entries_.assign(num_pages, Entry{});
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) {
    return Persist();  // Fresh map.
  }
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  Decoder dec((Slice(data)));
  uint32_t count = 0;
  if (!dec.GetU32(&count)) {
    return Status::Corruption("space map truncated");
  }
  if (count > num_pages) entries_.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint8_t alloc;
    Psn psn;
    if (!dec.GetU8(&alloc) || !dec.GetId(&psn)) {
      return Status::Corruption("space map truncated");
    }
    entries_[i] = Entry{alloc != 0, psn};
  }
  return Status::OK();
}

Status SpaceMap::Persist() const {
  std::string tmp = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("open " + tmp + ": " + ErrnoString(errno));
  }
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    enc.PutU8(e.allocated ? 1 : 0);
    enc.PutId(e.last_psn);
  }
  bool ok = std::fwrite(enc.buffer().data(), 1, enc.size(), f) == enc.size();
  std::fclose(f);
  if (!ok) return Status::IoError("short write to " + tmp);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IoError("rename " + tmp + ": " + ErrnoString(errno));
  }
  return Status::OK();
}

Result<SpaceMap::Allocation> SpaceMap::AllocatePage() {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (!entries_[i].allocated) {
      entries_[i].allocated = true;
      // New incarnation starts past old PSNs.
      entries_[i].last_psn = entries_[i].last_psn.Next();
      FINELOG_RETURN_IF_ERROR(Persist());
      return Allocation{PageId(static_cast<uint32_t>(i)),
                        entries_[i].last_psn};
    }
  }
  return Status::FailedPrecondition("database full: no free pages");
}

Status SpaceMap::DeallocatePage(PageId page, Psn final_psn) {
  if (page.value() >= entries_.size() || !entries_[page.value()].allocated) {
    return Status::NotFound("page not allocated");
  }
  entries_[page.value()].allocated = false;
  entries_[page.value()].last_psn =
      std::max(entries_[page.value()].last_psn, final_psn);
  return Persist();
}

Result<Psn> SpaceMap::BasePsn(PageId page) const {
  if (page.value() >= entries_.size() || !entries_[page.value()].allocated) {
    return Status::NotFound("page not allocated");
  }
  return entries_[page.value()].last_psn;
}

bool SpaceMap::IsAllocated(PageId page) const {
  return page.value() < entries_.size() && entries_[page.value()].allocated;
}

uint32_t SpaceMap::allocated_count() const {
  uint32_t n = 0;
  for (const Entry& e : entries_) n += e.allocated ? 1 : 0;
  return n;
}

std::vector<PageId> SpaceMap::AllocatedPages() const {
  std::vector<PageId> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].allocated) out.push_back(PageId(static_cast<uint32_t>(i)));
  }
  return out;
}

}  // namespace finelog
