// Channel: the simulated network between clients and the server.
//
// Every logical network hop is recorded with Count(): one message of a given
// type, a payload size, and the sender. The channel charges the simulated
// clock with the cost model's latency plus per-KB transfer time. Benchmarks
// read the per-type counters to produce the message-complexity tables.

#ifndef FINELOG_NET_CHANNEL_H_
#define FINELOG_NET_CHANNEL_H_

#include <array>
#include <cstdint>

#include "common/clock.h"
#include "common/cost_model.h"
#include "common/types.h"
#include "net/message.h"

namespace finelog {

class Channel {
 public:
  struct TypeStats {
    uint64_t count = 0;  // Messages on the wire (a batch is one message).
    uint64_t items = 0;  // Logical items carried (>= count).
    uint64_t bytes = 0;
  };

  Channel(SimClock* clock, const CostModel& costs)
      : clock_(clock), costs_(costs) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Records one network hop of `type` carrying `payload_bytes`.
  void Count(MessageType type, uint64_t payload_bytes) {
    CountBatch(type, 1, payload_bytes);
  }

  // Records one network hop carrying `items` logical requests/replies in a
  // single message: the per-message overhead (message count, latency) is
  // charged once, the payload bytes are charged in full. This is the entire
  // economic model of batching -- N items for one message-overhead charge.
  void CountBatch(MessageType type, uint64_t items, uint64_t payload_bytes) {
    auto& s = stats_[static_cast<size_t>(type)];
    s.count += 1;
    s.items += items;
    s.bytes += payload_bytes;
    total_messages_ += 1;
    total_items_ += items;
    total_bytes_ += payload_bytes;
    // Ceiling division: a sub-KB payload still pays for the fraction of a
    // KB it occupies on the wire instead of rounding down to free.
    clock_->Advance(costs_.msg_latency_us +
                    (payload_bytes * costs_.per_kb_us + 1023) / 1024);
  }

  const TypeStats& stats(MessageType type) const {
    return stats_[static_cast<size_t>(type)];
  }
  uint64_t total_messages() const { return total_messages_; }
  uint64_t total_items() const { return total_items_; }
  uint64_t total_bytes() const { return total_bytes_; }

  void ResetStats() {
    stats_.fill(TypeStats{});
    total_messages_ = 0;
    total_items_ = 0;
    total_bytes_ = 0;
  }

  SimClock* clock() { return clock_; }
  const CostModel& costs() const { return costs_; }

 private:
  SimClock* clock_;
  CostModel costs_;
  std::array<TypeStats, static_cast<size_t>(MessageType::kMaxMessageType)>
      stats_{};
  uint64_t total_messages_ = 0;
  uint64_t total_items_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace finelog

#endif  // FINELOG_NET_CHANNEL_H_
