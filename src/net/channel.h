// Channel: the accounted network between clients and the server.
//
// Every logical network hop is recorded with Count(): one message of a given
// type, a payload size, and the sender. The channel charges the clock with
// the cost model's latency plus per-KB transfer time (a no-op charge under
// the real clock, where the transport's queue hops take real time instead).
// Benchmarks read the per-type counters to produce the message-complexity
// tables.
//
// Counters are relaxed atomics: in the real-clock mode every client thread
// and the server reactor count concurrently, and nothing orders against a
// counter -- they are pure statistics.

#ifndef FINELOG_NET_CHANNEL_H_
#define FINELOG_NET_CHANNEL_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "common/clock.h"
#include "common/cost_model.h"
#include "common/types.h"
#include "net/message.h"

namespace finelog {

class Channel {
 public:
  struct TypeStats {
    std::atomic<uint64_t> count{0};  // Messages on the wire (a batch is one).
    std::atomic<uint64_t> items{0};  // Logical items carried (>= count).
    std::atomic<uint64_t> bytes{0};
  };

  Channel(Clock* clock, const CostModel& costs)
      : clock_(clock), costs_(costs) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // Records one network hop of `type` carrying `payload_bytes`.
  void Count(MessageType type, uint64_t payload_bytes) {
    CountBatch(type, 1, payload_bytes);
  }

  // Records one network hop carrying `items` logical requests/replies in a
  // single message: the per-message overhead (message count, latency) is
  // charged once, the payload bytes are charged in full. This is the entire
  // economic model of batching -- N items for one message-overhead charge.
  void CountBatch(MessageType type, uint64_t items, uint64_t payload_bytes) {
    auto& s = stats_[static_cast<size_t>(type)];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.items.fetch_add(items, std::memory_order_relaxed);
    s.bytes.fetch_add(payload_bytes, std::memory_order_relaxed);
    total_messages_.fetch_add(1, std::memory_order_relaxed);
    total_items_.fetch_add(items, std::memory_order_relaxed);
    total_bytes_.fetch_add(payload_bytes, std::memory_order_relaxed);
    // Ceiling division: a sub-KB payload still pays for the fraction of a
    // KB it occupies on the wire instead of rounding down to free.
    clock_->Advance(costs_.msg_latency_us +
                    (payload_bytes * costs_.per_kb_us + 1023) / 1024);
  }

  const TypeStats& stats(MessageType type) const {
    return stats_[static_cast<size_t>(type)];
  }
  uint64_t total_messages() const {
    return total_messages_.load(std::memory_order_relaxed);
  }
  uint64_t total_items() const {
    return total_items_.load(std::memory_order_relaxed);
  }
  uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  void ResetStats() {
    for (auto& s : stats_) {
      s.count.store(0, std::memory_order_relaxed);
      s.items.store(0, std::memory_order_relaxed);
      s.bytes.store(0, std::memory_order_relaxed);
    }
    total_messages_.store(0, std::memory_order_relaxed);
    total_items_.store(0, std::memory_order_relaxed);
    total_bytes_.store(0, std::memory_order_relaxed);
  }

  Clock* clock() { return clock_; }
  const CostModel& costs() const { return costs_; }

 private:
  Clock* clock_;
  CostModel costs_;
  std::array<TypeStats, static_cast<size_t>(MessageType::kMaxMessageType)>
      stats_{};
  std::atomic<uint64_t> total_messages_{0};
  std::atomic<uint64_t> total_items_{0};
  std::atomic<uint64_t> total_bytes_{0};
};

}  // namespace finelog

#endif  // FINELOG_NET_CHANNEL_H_
