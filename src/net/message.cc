#include "net/message.h"

namespace finelog {

const char* MessageTypeName(MessageType t) {
  switch (t) {
    case MessageType::kLockRequest: return "LockRequest";
    case MessageType::kLockReply: return "LockReply";
    case MessageType::kPageFetch: return "PageFetch";
    case MessageType::kPageReply: return "PageReply";
    case MessageType::kPageShip: return "PageShip";
    case MessageType::kPageShipAck: return "PageShipAck";
    case MessageType::kAllocRequest: return "AllocRequest";
    case MessageType::kAllocReply: return "AllocReply";
    case MessageType::kForcePageRequest: return "ForcePageRequest";
    case MessageType::kForcePageReply: return "ForcePageReply";
    case MessageType::kCallbackRequest: return "CallbackRequest";
    case MessageType::kCallbackReply: return "CallbackReply";
    case MessageType::kFlushNotify: return "FlushNotify";
    case MessageType::kCommitShipLogs: return "CommitShipLogs";
    case MessageType::kCommitShipPages: return "CommitShipPages";
    case MessageType::kCommitAck: return "CommitAck";
    case MessageType::kTokenRequest: return "TokenRequest";
    case MessageType::kTokenReply: return "TokenReply";
    case MessageType::kTokenRecall: return "TokenRecall";
    case MessageType::kTokenRecallReply: return "TokenRecallReply";
    case MessageType::kCheckpointSync: return "CheckpointSync";
    case MessageType::kCheckpointSyncReply: return "CheckpointSyncReply";
    case MessageType::kRecGetDct: return "RecGetDct";
    case MessageType::kRecDctReply: return "RecDctReply";
    case MessageType::kRecPageFetch: return "RecPageFetch";
    case MessageType::kRecPageReply: return "RecPageReply";
    case MessageType::kRecXLocksFetch: return "RecXLocksFetch";
    case MessageType::kRecXLocksReply: return "RecXLocksReply";
    case MessageType::kRecGetDpt: return "RecGetDpt";
    case MessageType::kRecDptReply: return "RecDptReply";
    case MessageType::kRecFetchCachedPage: return "RecFetchCachedPage";
    case MessageType::kRecCachedPageReply: return "RecCachedPageReply";
    case MessageType::kRecScanCallbacks: return "RecScanCallbacks";
    case MessageType::kRecCallbacksReply: return "RecCallbacksReply";
    case MessageType::kRecRecoverPage: return "RecRecoverPage";
    case MessageType::kRecRecoverPageReply: return "RecRecoverPageReply";
    case MessageType::kRecOrderedFetch: return "RecOrderedFetch";
    case MessageType::kRecOrderedFetchReply: return "RecOrderedFetchReply";
    case MessageType::kHeartbeat: return "Heartbeat";
    case MessageType::kHeartbeatAck: return "HeartbeatAck";
    case MessageType::kFailoverProbe: return "FailoverProbe";
    case MessageType::kFailoverProbeReply: return "FailoverProbeReply";
    case MessageType::kStandbyMembership: return "StandbyMembership";
    case MessageType::kStandbyCheckpoint: return "StandbyCheckpoint";
    case MessageType::kMaxMessageType: break;
  }
  return "Unknown";
}

}  // namespace finelog
