// Transport: the pluggable delivery seam behind the Rpc chokepoint
// (DESIGN.md section 17).
//
// The simulated mode needs no transport at all: Rpc::Call runs the endpoint
// body synchronously on the caller's stack (optionally through the Delivery
// fault model), which is the deterministic correctness oracle. The
// real-clock mode (ExecMode::kRealClock) plugs a QueueTransport into the
// Rpc: client threads submit request frames to an MPSC queue, a dedicated
// server-side reactor thread drains the queue and executes the endpoint
// bodies one at a time, and condition variables carry completion back.
//
// The reactor IS the server's execution context: every server-side
// capability (Server::mu_, GLM, DCT, liveness, server log) is only ever
// contended between the reactor and nothing, which keeps the server as
// single-threaded as the paper assumes while clients do their transactional
// work concurrently.
//
// Re-entrancy contract (mirrors the simulation's synchronous nesting):
//  - A frame submitted *from* the reactor thread (a server endpoint body
//    shipping a page back through another endpoint) executes inline --
//    exactly the nested call the simulation performs, and the only way to
//    avoid the reactor waiting on itself.
//  - A client thread parking on a frame first gives up its client gate
//    (SimMutex::FullRelease) so the reactor can deliver callbacks into that
//    client while it waits -- the real-clock equivalent of the simulation
//    re-entering a client's handler in the middle of its own RPC.
//
// Timeout contract: a waiter that gives up marks its frame *abandoned*
// under the frame lock; the reactor skips abandoned frames entirely (the
// closure's captured stack may be gone). If the reactor already started
// executing, the waiter instead blocks until completion -- a frame body
// never observes a half-dead caller.

#ifndef FINELOG_NET_TRANSPORT_H_
#define FINELOG_NET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/annotations.h"
#include "common/status.h"
#include "common/types.h"

namespace finelog {

class Transport {
 public:
  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  virtual ~Transport() = default;

  // True when the calling thread is the server's execution context (the
  // reactor). Server->client calls are only legal from there.
  virtual bool OnServerThread() const = 0;

  // Runs `fn` in the server execution context and waits for completion.
  // `from` names the submitting client so its gate can be released across
  // the wait (kInvalidClientId for harness threads that hold no gate).
  // `timeout_us` bounds the wait (0 = wait forever); on timeout the frame
  // is abandoned and kWouldBlock/kRpcTimeout returned -- the body is
  // guaranteed not to have run and not to run later.
  virtual Status Submit(ClientId from, const std::function<void()>& fn,
                        uint64_t timeout_us) = 0;

  // The gate registered for `client`, or null if none (base transports keep
  // no gate table). Lets GateGuard release a client capability over a scope
  // wider than one parked frame.
  virtual SimMutex* GateFor(ClientId /*client*/) const { return nullptr; }
};

// Releases a client's gate for a whole scope instead of a single parked
// frame. Failover probes need this: a probe can escalate into a takeover
// whose recovery sweep re-enters every client inline on the reactor, and
// peer probers serialize on the standby's capability while it runs -- so a
// prober blocked there must not be holding its own client gate, or the
// sweep deadlocks on it. No-op without a transport, on the reactor itself,
// or when the calling thread does not hold the gate.
class GateGuard {
 public:
  GateGuard(Transport* transport, ClientId client) {
    if (transport == nullptr || transport->OnServerThread()) return;
    gate_ = transport->GateFor(client);
    if (gate_ != nullptr && gate_->HeldByMe()) {
      depth_ = gate_->FullRelease();
    } else {
      gate_ = nullptr;
    }
  }
  ~GateGuard() {
    if (gate_ != nullptr) gate_->Reacquire(depth_);
  }
  GateGuard(const GateGuard&) = delete;
  GateGuard& operator=(const GateGuard&) = delete;

 private:
  SimMutex* gate_ = nullptr;
  int depth_ = 0;
};

class QueueTransport final : public Transport {
 public:
  QueueTransport() = default;
  ~QueueTransport() override;

  // Wiring phase (single-threaded, before Start): the gate is the client's
  // own capability (Client::gate()), released while that client parks.
  void RegisterGate(ClientId client, SimMutex* gate);

  void Start();
  // Stops the reactor and joins it. Frames still queued are completed as
  // aborted (their waiters get kWouldBlock); idempotent.
  void Shutdown();

  bool OnServerThread() const override {
    return std::this_thread::get_id() ==
           reactor_tid_.load(std::memory_order_acquire);
  }

  Status Submit(ClientId from, const std::function<void()>& fn,
                uint64_t timeout_us) override;

  SimMutex* GateFor(ClientId client) const override {
    auto it = gates_.find(client);
    return it == gates_.end() ? nullptr : it->second;
  }

  // Serialized harness operation (crash/recover/flush from a test thread):
  // runs `fn` on the reactor, waiting without limit.
  Status RunOnReactor(const std::function<Status()>& fn);

  // Introspection (quiesced reads).
  uint64_t frames_executed() const {
    return frames_executed_.load(std::memory_order_relaxed);
  }
  uint64_t frames_abandoned() const {
    return frames_abandoned_.load(std::memory_order_relaxed);
  }

 private:
  struct Frame {
    std::function<void()> fn;
    std::mutex m;
    std::condition_variable cv;
    bool done = false;       // Reactor finished with this frame.
    bool ran = false;        // fn actually executed (vs abandoned/aborted).
    bool executing = false;  // Reactor is inside fn right now.
    bool abandoned = false;  // Waiter timed out; fn must never run.
  };

  void ReactorLoop();

  std::map<ClientId, SimMutex*> gates_;  // Immutable after Start().

  std::mutex qmu_;
  std::condition_variable qcv_;
  std::deque<std::shared_ptr<Frame>> queue_;
  // Written under qmu_ (so the cv wakeup is not missed); atomic because the
  // reactor also consults it outside qmu_ when deciding to run a frame.
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::thread reactor_;
  std::atomic<std::thread::id> reactor_tid_{std::thread::id()};
  std::atomic<uint64_t> frames_executed_{0};
  std::atomic<uint64_t> frames_abandoned_{0};
};

}  // namespace finelog

#endif  // FINELOG_NET_TRANSPORT_H_
