// Delivery: the fallible half of the simulated network (DESIGN.md section
// 13). Classifies each message leg against the seeded fault model -- drop,
// duplicate, bounded reorder, delay -- and optionally against the
// FaultInjector's net.<side>.<endpoint>.<op> fail points, so tests can arm
// one-shot deterministic wire faults with the same machinery PR 1 built for
// the disk.
//
// With every knob off, Classify() returns an all-clear verdict without
// drawing from the RNG or touching the injector, so the fault-free message
// schedule (and every downstream fingerprint) is untouched.

#ifndef FINELOG_NET_DELIVERY_H_
#define FINELOG_NET_DELIVERY_H_

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/rng.h"
#include "common/types.h"
#include "util/metrics.h"

namespace finelog {

class FaultInjector;

// What the fault model decided for one message leg.
struct NetVerdict {
  bool drop = false;
  bool dup = false;
  bool reorder = false;
  uint64_t delay_us = 0;
};

class Delivery {
 public:
  Delivery(const NetFaultConfig& config, FaultInjector* injector,
           Metrics* metrics)
      : config_(config), injector_(injector), metrics_(metrics),
        rng_(config.seed) {}

  Delivery(const Delivery&) = delete;
  Delivery& operator=(const Delivery&) = delete;

  // Classifies one message leg. `prefix` is the fail-point stem
  // ("net.client.lock_object" for a client->server request leg,
  // "net.server.lock_object" for its reply leg); `peer` is the client side
  // of the exchange, checked against the partition list before anything
  // else -- a partitioned peer's legs are dropped on both planes, with no
  // RNG draw, so the rate stream stays aligned with an unpartitioned run.
  // Other `recovery_plane` legs are exempt unless the config opts recovery
  // traffic in. Each enabled rate draws exactly once per leg, so the RNG
  // stream is a deterministic function of the message sequence.
  NetVerdict Classify(const std::string& prefix, uint64_t bytes,
                      ClientId peer, bool recovery_plane);

  NetFaultConfig& config() { return config_; }
  const NetFaultConfig& config() const { return config_; }
  Rng& rng() { return rng_; }

 private:
  NetFaultConfig config_;
  FaultInjector* injector_;
  Metrics* metrics_;
  Rng rng_;
};

}  // namespace finelog

#endif  // FINELOG_NET_DELIVERY_H_
