// Abstract client/server endpoints: the RPC vocabulary of the protocol.
//
// finelog simulates the network, so "RPCs" are direct virtual calls; each
// implementation routes its request and reply through net::Channel for
// message/byte accounting. Keeping the endpoints abstract decouples client
// and server code and lets tests substitute either side.
//
// Handlers on ClientEndpoint must not call back into the server, with one
// deliberate exception: the parallel-recovery handshake of Section 3.4
// (RecoverPage may trigger an ordered fetch through the server into another
// recovering client).

#ifndef FINELOG_NET_ENDPOINTS_H_
#define FINELOG_NET_ENDPOINTS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_mode.h"
#include "log/log_record.h"

namespace finelog {

// A page copy in flight, with the book-keeping that makes copy merging
// possible (Section 3.1): which slots the sender modified since it last
// shipped the page, and whether the structure changed (under a page X lock).
struct ShippedPage {
  PageId page = kInvalidPageId;
  std::string image;  // Raw page bytes.
  std::vector<SlotId> modified_slots;
  bool structural = false;

  size_t wire_size() const {
    return image.size() + modified_slots.size() * sizeof(SlotId) + 16;
  }
};

// Reply to an object lock request. Exactly one of `object_image` /
// `page_image` is set on success when data must be refreshed:
//  - `object_image`: the client has the page cached; it installs just this
//    object (the client-side merge of Section 2).
//  - `page_image`: the client does not have the page; the full page is sent.
// `object_present=false` with neither image set means the object was deleted.
// One exclusive-lock callback a lock request triggered: the object that
// changed hands, the client that responded, and the PSN the page had when
// that client's copy reached the server. The requester writes one callback
// log record per entry (Section 3.1).
struct XCallbackInfo {
  ClientId responder = kInvalidClientId;
  ObjectId object;
  Psn psn;
};

struct ObjectLockReply {
  bool object_present = true;
  std::optional<std::string> object_image;
  std::optional<std::string> page_image;
  Psn server_psn;  // PSN of the server's current copy.
  std::vector<XCallbackInfo> x_callbacks;
};

struct PageLockReply {
  // The server always ships its current copy on a page grant; the client
  // merges its own unshipped modifications over it.
  std::optional<std::string> page_image;
  Psn server_psn;
  std::vector<XCallbackInfo> x_callbacks;
};

struct PageFetchReply {
  std::string page_image;
  // PSN from the DCT entry for the requesting client; kNullPsn outside
  // recovery (clients ignore it during normal processing, Section 3.2).
  Psn dct_psn = kNullPsn;
};

struct AllocReply {
  PageId page = kInvalidPageId;
  std::string page_image;  // Freshly formatted page.
};

struct TokenReply {
  // Latest page image if the token moved (the update-privilege approach
  // ships the page along with the token, Section 3.1).
  std::optional<std::string> page_image;
};

// An entry of a CallBack_P list (Section 3.4): an object on page P that was
// called back from the recovering client, and the PSN the page had when the
// recovering client shipped it in response.
struct CallbackListEntry {
  ObjectId object;
  Psn psn;
};

// The server's DCT entries for one recovering client (Section 3.3).
// `authoritative` is false while the DCT is being rebuilt after a server
// crash: the recovering client must then recover every page in its DPT
// instead of only DCT-listed pages (Section 3.5).
struct DctSnapshot {
  bool authoritative = true;
  std::vector<DctEntry> entries;
};

// Snapshot a client hands the restarting server (Section 3.4).
struct ClientRecoveryState {
  std::vector<DptEntry> dpt;
  std::vector<PageId> cached_pages;
  std::vector<std::pair<ObjectId, LockMode>> object_locks;
  std::vector<std::pair<PageId, LockMode>> page_locks;
};

// One item of a batched object lock request (see LockObjectBatch).
struct ObjectLockRequest {
  ObjectId oid;
  LockMode mode = LockMode::kShared;
  Psn cached_psn = kNullPsn;
};

// Per-item outcome of a batched object lock request: lock grants fail
// individually (WouldBlock on a denied callback does not poison the other
// items in the batch).
struct ObjectLockOutcome {
  Status status;  // Default-constructed = OK; `reply` is valid only then.
  ObjectLockReply reply;
};

// The server-side endpoint (implemented by server::Server).
class ServerEndpoint {
 public:
  virtual ~ServerEndpoint() = default;

  // Normal processing --------------------------------------------------

  // Forwarded LLM miss for an object lock. `cached_psn` carries the PSN of
  // the client's cached copy (kNullPsn if the page is not cached); the
  // server uses it to seed the DCT entry on a first X grant (Section 3.2).
  virtual Result<ObjectLockReply> LockObject(ClientId client, ObjectId oid,
                                             LockMode mode, Psn cached_psn) = 0;

  // Forwarded page lock request (used for non-mergeable updates, escalation,
  // and by the page-level-locking baseline).
  virtual Result<PageLockReply> LockPage(ClientId client, PageId pid,
                                         LockMode mode, Psn cached_psn) = 0;

  // Cache-miss fetch of a page the client already holds locks on.
  virtual Result<PageFetchReply> FetchPage(ClientId client, PageId pid) = 0;

  // A dirty page replaced from the client's cache (Section 2). The server
  // merges the updates into its copy.
  virtual Status ShipPage(ClientId client, const ShippedPage& page) = 0;

  // Batch variants -------------------------------------------------------
  //
  // Each carries N items in one request message and answers them in one
  // reply message, so the per-message overhead is charged once per batch
  // instead of once per item (config: max_batch_items; the *caller* chunks).
  // The default implementations degrade to the single-item calls -- correct
  // for test fakes, with per-item message accounting.

  // Batched LLM misses: grants are attempted in item order and fail
  // individually; the reply vector is index-aligned with `items`.
  virtual Result<std::vector<ObjectLockOutcome>> LockObjectBatch(
      ClientId client, const std::vector<ObjectLockRequest>& items) {
    std::vector<ObjectLockOutcome> out;
    out.reserve(items.size());
    for (const ObjectLockRequest& it : items) {
      auto r = LockObject(client, it.oid, it.mode, it.cached_psn);
      ObjectLockOutcome o;
      if (r.ok()) {
        o.reply = std::move(r.value());
      } else {
        o.status = r.status();
      }
      out.push_back(std::move(o));
    }
    return out;
  }

  // Batched cache-miss fetch; all-or-nothing (a fetch only fails on real
  // I/O or topology errors, never on contention).
  virtual Result<std::vector<PageFetchReply>> FetchPages(
      ClientId client, const std::vector<PageId>& pids) {
    std::vector<PageFetchReply> out;
    out.reserve(pids.size());
    for (PageId pid : pids) {
      auto r = FetchPage(client, pid);
      if (!r.ok()) return r.status();
      out.push_back(std::move(r.value()));
    }
    return out;
  }

  // Batched copy-back: N replaced pages in one ship message, one ack.
  virtual Status ShipPages(ClientId client,
                           const std::vector<ShippedPage>& pages) {
    for (const ShippedPage& p : pages) {
      FINELOG_RETURN_IF_ERROR(ShipPage(client, p));
    }
    return Status::OK();
  }

  // Allocates a new page; the caller is granted a page-level X lock on it.
  virtual Result<AllocReply> AllocatePage(ClientId client) = 0;

  // Log space management (Section 3.6): force `pid` to disk.
  virtual Status ForcePage(ClientId client, PageId pid) = 0;

  // Orderly lock release (e.g. a client preparing to disconnect, which the
  // paper's introduction calls out as handled "in an orderly fashion"):
  // drops the listed cached locks from the GLM.
  virtual Status ReleaseLocks(ClientId client,
                              const std::vector<ObjectId>& objects,
                              const std::vector<PageId>& pages) = 0;

  // Baseline commit traffic (Section 4.1 comparisons).
  virtual Status CommitShipLogs(ClientId client, size_t log_bytes) = 0;
  virtual Status CommitShipPages(ClientId client,
                                 const std::vector<ShippedPage>& pages) = 0;

  // Update-token baseline (Section 3.1).
  virtual Result<TokenReply> AcquireToken(ClientId client, PageId pid) = 0;

  // Recovery protocol ---------------------------------------------------

  // Crashed-client restart (Section 3.3).
  virtual Result<DctSnapshot> RecGetMyDct(ClientId client) = 0;
  virtual Result<ClientRecoveryState> RecGetMyXLocks(ClientId client) = 0;
  virtual Result<PageFetchReply> RecFetchPage(ClientId client, PageId pid) = 0;
  // Client finished restart; the server resumes normal service for it.
  virtual Status RecComplete(ClientId client) = 0;

  // Complex crash: the GLM was lost with the server, so a restarting client
  // registers the exclusive locks it re-derived from its own log. Claims
  // that conflict with locks operational clients already re-registered are
  // rejected (they prove the crashed client's lock was called back before
  // the failure); the reply carries the accepted subset.
  virtual Result<ClientRecoveryState> RecInstallLocks(
      ClientId client, const std::vector<ObjectId>& objects,
      const std::vector<PageId>& pages) = 0;

  // Complex crash: merged CallBack_P list for (pid, client), collected from
  // the other clients' logs (Section 3.4). The restarting client uses it to
  // skip records for objects whose exclusive lock it had relinquished
  // before the crash.
  virtual Result<std::vector<CallbackListEntry>> RecGetCallbackList(
      ClientId client, PageId pid) = 0;

  // Parallel-recovery handshake (Section 3.4, step 3 of the client page
  // recovery procedure): give me P once it reflects `other`'s updates up to
  // `psn`.
  virtual Result<PageFetchReply> RecOrderedFetch(ClientId client, PageId pid,
                                                 ClientId other, Psn psn) = 0;

  // Liveness lease renewal (DESIGN.md section 14). Defaulted so test fakes
  // without a lease table accept heartbeats as a no-op.
  virtual Status Heartbeat(ClientId client) {
    (void)client;
    return Status::OK();
  }
};

// The client-side endpoint (implemented by client::Client).
class ClientEndpoint {
 public:
  virtual ~ClientEndpoint() = default;

  struct CallbackReply {
    bool granted = false;
    // Page copy shipped with the response when the page carries unshipped
    // modifications ("C ... sends a copy of P to the server", Section 3.2).
    std::optional<ShippedPage> page;
    // PSN of the client's copy when it responded (recorded by the
    // requester's callback log record, Section 3.1).
    Psn psn_at_response;
    bool dropped_page = false;  // Client dropped P from its cache.
  };

  // Callback for an object lock held by this client. `requested` is the
  // mode the remote client wants: kExclusive => release, kShared =>
  // downgrade. Denied while a local transaction actively uses the object.
  virtual CallbackReply HandleObjectCallback(ObjectId oid,
                                             LockMode requested) = 0;

  struct DeescalateReply {
    bool granted = false;
    std::vector<std::pair<ObjectId, LockMode>> object_locks;
    std::optional<ShippedPage> page;
    Psn psn_at_response;
  };

  // Page-level de-escalation (Section 3.2, page-level conflict).
  virtual DeescalateReply HandleDeescalate(PageId pid) = 0;

  // Callback for a page lock held by this client (page-granularity policy).
  virtual CallbackReply HandlePageCallback(PageId pid, LockMode requested) = 0;

  // The server flushed `pid`; `flushed_psn` is the DCT PSN recorded for this
  // client at force time (Sections 3.2 and 3.6).
  virtual void HandleFlushNotify(PageId pid, Psn flushed_psn) = 0;

  // Update-token recall: ship the page back, releasing the token.
  virtual Result<ShippedPage> HandleTokenRecall(PageId pid) = 0;

  // ARIES/CSA-style synchronized server checkpoint (Section 4.1).
  virtual Status HandleCheckpointSync() = 0;

  // Server restart recovery (Section 3.4).
  virtual Result<ClientRecoveryState> HandleRecGetState() = 0;
  // `suppress` is the merged CallBack_P list for (pid, this client): slots a
  // successor demonstrably updated are excluded from the shipped overlay.
  virtual Result<ShippedPage> HandleRecFetchCachedPage(
      PageId pid, const std::vector<CallbackListEntry>& suppress) = 0;
  // Scan this client's log for callback records about objects on `pid` that
  // were called back from `crashed` (building a CallBack_P list).
  virtual Result<std::vector<CallbackListEntry>> HandleRecScanCallbacks(
      PageId pid, ClientId crashed) = 0;
  // Recover this client's updates on `pid`, applying records with PSN at
  // least `psn_limit`... up to `psn_limit` exclusive when bounded
  // (kNullPsn = unbounded). `callback_list` is the merged CallBack_P list,
  // `base` the server's copy with the DCT PSN installed.
  virtual Status HandleRecRecoverPage(
      PageId pid, const std::vector<CallbackListEntry>& callback_list,
      const std::string& base_image, Psn base_psn, Psn psn_limit) = 0;
};

}  // namespace finelog

#endif  // FINELOG_NET_ENDPOINTS_H_
