// ServerRouter: the client side of hot-standby failover (DESIGN.md
// section 19).
//
// Clients hold one ServerEndpoint*; with a hot standby configured that
// pointer is a ServerRouter owning a two-entry endpoint table. Requests go
// to the active entry; three outcomes make the router suspect the primary
// and probe the other node:
//
//   - Status::Crashed          the primary process is gone,
//   - WouldBlock(kRpcTimeout)  the wire is silent (the router charges the
//                              client's timeout budget on the clock first),
//   - WouldBlock(kFailoverInProgress)
//                              the node answered but is deposed.
//
// The probe (FailoverNode::FailoverProbe) asks the other node to confirm or
// assume mastership. On success the table flips and the request is retried
// once against the new primary; a probe refused with kFailoverInProgress is
// the mastership gap -- the incumbent's lease has not expired yet -- and is
// surfaced to the caller as a retryable WouldBlock. Any other probe failure
// surfaces the original error (e.g. both nodes down, or the *client* is the
// partitioned party and its probe timed out too).
//
// The router is deliberately dumb: it holds no mastership state of its own
// beyond the table index, so a stale index is always safe -- the epoch fence
// on the server side rejects requests a deposed node can no longer serve,
// and the next response flips the table.

#ifndef FINELOG_NET_SERVER_ROUTER_H_
#define FINELOG_NET_SERVER_ROUTER_H_

#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "net/channel.h"
#include "net/endpoints.h"
#include "util/metrics.h"

namespace finelog {

// A server node the router can fail over to: the full endpoint surface plus
// the mastership probe. Abstract so net/ does not depend on server/.
class FailoverNode : public ServerEndpoint {
 public:
  // Client-driven failover: confirm (serving node) or assume (standby that
  // wins the lease) mastership. Returns the serving epoch; Crashed while
  // the node's process is down; WouldBlock(kFailoverInProgress) while the
  // incumbent's unexpired lease blocks the takeover.
  virtual Result<uint64_t> FailoverProbe(ClientId client) = 0;
};

class FINELOG_SHARED_STATE_CLASS ServerRouter : public ServerEndpoint {
 public:
  // `timeout_us` is the per-attempt budget a client burns against a silent
  // or crashed primary before probing the standby (charged on the clock so
  // the unavailability window is honestly accounted).
  ServerRouter(FailoverNode* node0, FailoverNode* node1, Channel* channel,
               Metrics* metrics, uint64_t timeout_us)
      : channel_(channel), metrics_(metrics), timeout_us_(timeout_us) {
    nodes_[0] = node0;
    nodes_[1] = node1;
  }

  ServerRouter(const ServerRouter&) = delete;
  ServerRouter& operator=(const ServerRouter&) = delete;

  int active_node() const {
    SimMutexLock lock(mu_);
    return active_;
  }

  // Harness: partitions node `i` away from every client. Requests to it
  // burn the timeout budget and fail with kRpcTimeout; probes skip it.
  void SetNodeUnreachable(int i, bool unreachable) {
    SimMutexLock lock(mu_);
    unreachable_[i] = unreachable;
  }

  // ServerEndpoint ----------------------------------------------------------

  Result<ObjectLockReply> LockObject(ClientId client, ObjectId oid,
                                     LockMode mode, Psn cached_psn) override {
    return Route<Result<ObjectLockReply>>(client, [&](FailoverNode* n) {
      return n->LockObject(client, oid, mode, cached_psn);
    });
  }
  Result<PageLockReply> LockPage(ClientId client, PageId pid, LockMode mode,
                                 Psn cached_psn) override {
    return Route<Result<PageLockReply>>(client, [&](FailoverNode* n) {
      return n->LockPage(client, pid, mode, cached_psn);
    });
  }
  Result<PageFetchReply> FetchPage(ClientId client, PageId pid) override {
    return Route<Result<PageFetchReply>>(
        client, [&](FailoverNode* n) { return n->FetchPage(client, pid); });
  }
  Status ShipPage(ClientId client, const ShippedPage& page) override {
    return Route<Status>(
        client, [&](FailoverNode* n) { return n->ShipPage(client, page); });
  }
  Result<std::vector<ObjectLockOutcome>> LockObjectBatch(
      ClientId client, const std::vector<ObjectLockRequest>& items) override {
    return Route<Result<std::vector<ObjectLockOutcome>>>(
        client,
        [&](FailoverNode* n) { return n->LockObjectBatch(client, items); });
  }
  Result<std::vector<PageFetchReply>> FetchPages(
      ClientId client, const std::vector<PageId>& pids) override {
    return Route<Result<std::vector<PageFetchReply>>>(
        client, [&](FailoverNode* n) { return n->FetchPages(client, pids); });
  }
  Status ShipPages(ClientId client,
                   const std::vector<ShippedPage>& pages) override {
    return Route<Status>(
        client, [&](FailoverNode* n) { return n->ShipPages(client, pages); });
  }
  Result<AllocReply> AllocatePage(ClientId client) override {
    return Route<Result<AllocReply>>(
        client, [&](FailoverNode* n) { return n->AllocatePage(client); });
  }
  Status ForcePage(ClientId client, PageId pid) override {
    return Route<Status>(
        client, [&](FailoverNode* n) { return n->ForcePage(client, pid); });
  }
  Status ReleaseLocks(ClientId client, const std::vector<ObjectId>& objects,
                      const std::vector<PageId>& pages) override {
    return Route<Status>(client, [&](FailoverNode* n) {
      return n->ReleaseLocks(client, objects, pages);
    });
  }
  Status CommitShipLogs(ClientId client, size_t log_bytes) override {
    return Route<Status>(client, [&](FailoverNode* n) {
      return n->CommitShipLogs(client, log_bytes);
    });
  }
  Status CommitShipPages(ClientId client,
                         const std::vector<ShippedPage>& pages) override {
    return Route<Status>(client, [&](FailoverNode* n) {
      return n->CommitShipPages(client, pages);
    });
  }
  Result<TokenReply> AcquireToken(ClientId client, PageId pid) override {
    return Route<Result<TokenReply>>(
        client, [&](FailoverNode* n) { return n->AcquireToken(client, pid); });
  }
  Result<DctSnapshot> RecGetMyDct(ClientId client) override {
    return Route<Result<DctSnapshot>>(
        client, [&](FailoverNode* n) { return n->RecGetMyDct(client); });
  }
  Result<ClientRecoveryState> RecGetMyXLocks(ClientId client) override {
    return Route<Result<ClientRecoveryState>>(
        client, [&](FailoverNode* n) { return n->RecGetMyXLocks(client); });
  }
  Result<PageFetchReply> RecFetchPage(ClientId client, PageId pid) override {
    return Route<Result<PageFetchReply>>(
        client, [&](FailoverNode* n) { return n->RecFetchPage(client, pid); });
  }
  Status RecComplete(ClientId client) override {
    return Route<Status>(
        client, [&](FailoverNode* n) { return n->RecComplete(client); });
  }
  Result<ClientRecoveryState> RecInstallLocks(
      ClientId client, const std::vector<ObjectId>& objects,
      const std::vector<PageId>& pages) override {
    return Route<Result<ClientRecoveryState>>(client, [&](FailoverNode* n) {
      return n->RecInstallLocks(client, objects, pages);
    });
  }
  Result<std::vector<CallbackListEntry>> RecGetCallbackList(
      ClientId client, PageId pid) override {
    return Route<Result<std::vector<CallbackListEntry>>>(
        client,
        [&](FailoverNode* n) { return n->RecGetCallbackList(client, pid); });
  }
  Result<PageFetchReply> RecOrderedFetch(ClientId client, PageId pid,
                                         ClientId other, Psn psn) override {
    return Route<Result<PageFetchReply>>(client, [&](FailoverNode* n) {
      return n->RecOrderedFetch(client, pid, other, psn);
    });
  }
  Status Heartbeat(ClientId client) override {
    return Route<Status>(
        client, [&](FailoverNode* n) { return n->Heartbeat(client); });
  }

 private:
  static const Status& StatusOf(const Status& s) { return s; }
  template <typename T>
  static const Status& StatusOf(const Result<T>& r) {
    return r.status();
  }

  // A failure that makes the router suspect the active node is no longer
  // the serving master (see the file comment).
  static bool NeedsFailover(const Status& s) {
    if (s.IsCrashed()) return true;
    if (!s.IsWouldBlock()) return false;
    return s.would_block_reason() == WouldBlockReason::kRpcTimeout ||
           s.would_block_reason() == WouldBlockReason::kFailoverInProgress;
  }

  template <typename R, typename Fn>
  R Route(ClientId client, Fn&& fn) {
    int active;
    bool active_unreachable;
    bool other_unreachable;
    {
      SimMutexLock lock(mu_);
      active = active_;
      active_unreachable = unreachable_[active_];
      other_unreachable = unreachable_[1 - active_];
    }
    R result = [&]() -> R {
      if (active_unreachable) {
        // Silent wire: the client burns its timeout budget first.
        channel_->clock()->Advance(timeout_us_);
        return R(Status::WouldBlock(WouldBlockReason::kRpcTimeout,
                                    "primary unreachable"));
      }
      return fn(nodes_[active]);
    }();
    const Status& st = StatusOf(result);
    if (!NeedsFailover(st)) return result;
    const int other = 1 - active;
    if (other_unreachable) return result;
    if (st.IsCrashed()) {
      // A crashed primary answers nothing; in the real deployment the
      // client only learns this by waiting out its timeout.
      channel_->clock()->Advance(timeout_us_);
    }
    auto probe = nodes_[other]->FailoverProbe(client);
    if (!probe.ok()) {
      if (probe.status().IsFailoverInProgress()) {
        // The mastership gap: the incumbent's lease must expire before the
        // standby may serve. Retryable (kFailoverBlocked is counted by the
        // probed node); the epoch fence guarantees no node serves the old
        // epoch meanwhile.
        return R(probe.status());
      }
      // Standby dead or unreachable too: surface the original failure.
      return result;
    }
    {
      SimMutexLock lock(mu_);
      if (active_ == active) {
        active_ = other;
        metrics_->Add(Counter::kFailoverSwitchovers);
      }
    }
    // Retry exactly once against the confirmed master; further failures are
    // the caller's to retry (and will re-enter this routing logic).
    return fn(nodes_[other]);
  }

  FailoverNode* nodes_[2] FINELOG_UNGUARDED(
      "externally owned wiring, set once");
  Channel* channel_ FINELOG_UNGUARDED("externally owned wiring, set once");
  Metrics* metrics_ FINELOG_UNGUARDED(
      "monotonic counters, not protocol state");
  uint64_t timeout_us_ FINELOG_UNGUARDED("immutable after construction");

  mutable SimMutex mu_;
  int active_ FINELOG_GUARDED_BY(mu_) = 0;
  bool unreachable_[2] FINELOG_GUARDED_BY(mu_) = {false, false};
};

}  // namespace finelog

#endif  // FINELOG_NET_SERVER_ROUTER_H_
