// Message vocabulary of the client/server protocol.
//
// finelog simulates the network: requests are executed as direct calls, but
// every interaction is routed through net::Channel, which records one message
// per logical network hop (with its payload size) and charges the simulated
// clock. The message-type taxonomy below is what the benchmark tables report.

#ifndef FINELOG_NET_MESSAGE_H_
#define FINELOG_NET_MESSAGE_H_

#include <cstdint>

namespace finelog {

enum class MessageType : uint8_t {
  // Normal processing, client -> server.
  kLockRequest = 0,       // Object or page lock request (LLM miss).
  kLockReply,             // Server's reply (may carry a page).
  kPageFetch,             // Page fetch for a cache miss.
  kPageReply,             // Page shipped server -> client.
  kPageShip,              // Dirty page replaced from a client cache.
  kPageShipAck,
  kAllocRequest,          // New page allocation.
  kAllocReply,
  kForcePageRequest,      // Log space management: force page to disk (3.6).
  kForcePageReply,
  // Normal processing, server -> client.
  kCallbackRequest,       // Callback / downgrade / de-escalation request.
  kCallbackReply,         // May carry the page copy.
  kFlushNotify,           // Page flushed to disk notification (3.2, 3.6).
  // Commit-time traffic for the baseline logging policies (4.1).
  kCommitShipLogs,        // ARIES/CSA: transaction log records at commit.
  kCommitShipPages,       // Versant-style: modified pages at commit.
  kCommitAck,
  // Update-token traffic for the update-privilege baseline (3.1).
  kTokenRequest,
  kTokenReply,
  kTokenRecall,
  kTokenRecallReply,
  // Checkpoint synchronization for the ARIES/CSA baseline (4.1).
  kCheckpointSync,
  kCheckpointSyncReply,
  // Recovery protocol.
  kRecGetDct,             // Crashed client asks for its DCT entries.
  kRecDctReply,
  kRecPageFetch,          // Recovery page fetch (server installs DCT PSN).
  kRecPageReply,
  kRecXLocksFetch,        // Crashed client re-installs its X locks (3.3).
  kRecXLocksReply,
  kRecGetDpt,             // Server restart: collect DPTs/LLM/cache info (3.4).
  kRecDptReply,
  kRecFetchCachedPage,    // Server restart: pull cached page from a client.
  kRecCachedPageReply,
  kRecScanCallbacks,      // Server restart: collect CallBack_P lists.
  kRecCallbacksReply,
  kRecRecoverPage,        // Server asks client to recover a page.
  kRecRecoverPageReply,
  kRecOrderedFetch,       // Parallel-recovery handshake (3.4 step 3).
  kRecOrderedFetchReply,
  // Liveness protocol (DESIGN.md section 14).
  kHeartbeat,             // Client -> server lease renewal.
  kHeartbeatAck,
  // Hot standby / mastership (DESIGN.md section 19).
  kFailoverProbe,         // Client -> standby: is the primary gone? Take over.
  kFailoverProbeReply,
  kStandbyMembership,     // Primary -> standby: replicated membership record.
  kStandbyCheckpoint,     // Primary -> standby: replicated checkpoint marker.
  kMaxMessageType,
};

const char* MessageTypeName(MessageType t);

}  // namespace finelog

#endif  // FINELOG_NET_MESSAGE_H_
