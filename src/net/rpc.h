// Rpc: the single chokepoint every client<->server interaction crosses
// (DESIGN.md section 13). Each logical exchange is one Call(): the request
// leg is counted on the channel, the endpoint body runs exactly once, and
// the reply leg (if the body produced one) is counted back. With every
// network-fault knob off this is byte-for-byte the infallible-channel
// behavior: the same Count sequence, no RNG draws, no extra clock motion.
//
// With faults enabled, each leg is classified by the Delivery layer and the
// call becomes a retry loop with timeout, exponential backoff and seeded
// jitter:
//  - A dropped request or reply costs rpc_timeout_us of simulated time and
//    retries, up to max_attempts.
//  - Per-session monotone sequence numbers make re-delivery of an executed
//    request a dedup hit: the body never runs twice; the cached reply
//    metadata is re-sent instead (bounded per-session cache).
//  - A duplicated message is delivered twice back to back; a reordered
//    message additionally surfaces later as a stale ghost, fenced by the
//    sequence number (same epoch) or the session epoch (after a restart).
//  - Exactly-once or clean failure: if retries exhaust after the body
//    executed, the executed result is returned (the dedup cache would
//    eventually deliver it; counted as net.reply_recovered) -- the two sides
//    never diverge. If the body never executed, the call fails with
//    kWouldBlock, which the transaction layer degrades to a clean abort.
//
// One-way notifications use Send(): no retries, a drop simply loses the
// notification, and a duplicate runs the handler twice -- exercising the
// handler's own idempotency rather than the sequence-number shield.

#ifndef FINELOG_NET_RPC_H_
#define FINELOG_NET_RPC_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>

#include "common/config.h"
#include "common/status.h"
#include "common/types.h"
#include "net/channel.h"
#include "net/delivery.h"
#include "net/transport.h"
#include "util/metrics.h"

namespace finelog {

class FaultInjector;

// Direction of the request leg. The reply leg (if any) travels the other
// way. `peer` in CallOptions is always the client side of the exchange; the
// other side is always the server.
enum class RpcDir : uint8_t {
  kClientToServer = 0,
  kServerToClient = 1,
};

struct CallOptions {
  RpcDir dir = RpcDir::kClientToServer;
  const char* endpoint = "";   // Fail-point stem: net.<side>.<endpoint>.<op>.
  ClientId peer;               // The client side of the exchange.
  MessageType req_type = MessageType::kLockRequest;
  uint64_t req_items = 1;
  uint64_t req_bytes = 0;
  bool recovery_plane = false;  // Exempt from faults unless opted in.
};

// Records the reply message an endpoint body produced, so the chokepoint can
// count (and under faults, classify/dedup) the reply leg. A body that sets
// no reply models a request-only exchange.
class RpcReply {
 public:
  void Set(MessageType type, uint64_t bytes) { SetBatch(type, 1, bytes); }
  void SetBatch(MessageType type, uint64_t items, uint64_t bytes) {
    present_ = true;
    type_ = type;
    items_ = items;
    bytes_ = bytes;
  }

  bool present() const { return present_; }
  MessageType type() const { return type_; }
  uint64_t items() const { return items_; }
  uint64_t bytes() const { return bytes_; }

 private:
  bool present_ = false;
  MessageType type_ = MessageType::kLockRequest;
  uint64_t items_ = 0;
  uint64_t bytes_ = 0;
};

class Rpc {
 public:
  Rpc(Channel* channel, Metrics* metrics, const NetFaultConfig& config,
      FaultInjector* injector)
      : channel_(channel),
        metrics_(metrics),
        delivery_(config, injector, metrics) {}

  Rpc(const Rpc&) = delete;
  Rpc& operator=(const Rpc&) = delete;

  // Plugs the real-clock transport in (DESIGN.md section 17). Calls then
  // cross the MPSC queue to the server reactor instead of running inline;
  // `timeout_us` bounds each frame wait (0 = forever). The simulated fault
  // model and the transport are mutually exclusive (System::Create rejects
  // the combination), so Call() dispatches on exactly one of them.
  void SetTransport(Transport* transport, uint64_t timeout_us) {
    transport_ = transport;
    transport_timeout_us_ = timeout_us;
  }
  Transport* transport() { return transport_; }

  // One request/reply exchange. `body` is invoked with an RpcReply* and
  // returns Status or Result<T>; the return type must be constructible from
  // a Status so a timed-out call can surface kWouldBlock.
  template <typename Body>
  auto Call(const CallOptions& opts, Body&& body)
      -> std::invoke_result_t<Body&, RpcReply*> {
    using R = std::invoke_result_t<Body&, RpcReply*>;
    if (transport_ != nullptr) {
      return TransportCall<R>(opts, body);
    }
    if (!delivery_.config().enabled()) {
      RpcReply reply;
      channel_->CountBatch(opts.req_type, opts.req_items, opts.req_bytes);
      R result = body(&reply);
      if (reply.present()) {
        channel_->CountBatch(reply.type(), reply.items(), reply.bytes());
      }
      return result;
    }
    return FaultyCall<R>(opts, body);
  }

  // One-way notification: counted, never retried. A drop loses it; a
  // duplicate runs the handler twice (its own idempotency absorbs it).
  template <typename Body>
  void Send(const CallOptions& opts, Body&& body) {
    if (transport_ != nullptr) {
      channel_->CountBatch(opts.req_type, opts.req_items, opts.req_bytes);
      // Server->client notifications are issued from the reactor and run
      // inline there (the handler's own gate serializes them); a client-
      // originated one-way crosses the queue like any call. Either way the
      // body's by-reference captures stay alive for the duration.
      if (transport_->OnServerThread()) {
        body();
      } else {
        (void)transport_->Submit(opts.peer, [&body] { body(); },
                                 transport_timeout_us_);
      }
      return;
    }
    if (!delivery_.config().enabled()) {
      channel_->CountBatch(opts.req_type, opts.req_items, opts.req_bytes);
      body();
      return;
    }
    PumpGhosts();
    Session& session = SessionFor(opts.dir, opts.peer);
    const uint64_t epoch = session.epoch;
    const uint64_t seq = session.next_seq++;
    NetVerdict v = delivery_.Classify(LegPrefix(opts, true), opts.req_bytes,
                                      opts.peer, opts.recovery_plane);
    channel_->CountBatch(opts.req_type, opts.req_items, opts.req_bytes);
    if (v.delay_us > 0) channel_->clock()->Advance(v.delay_us);
    if (v.drop) return;
    body();
    if (v.dup) {
      channel_->CountBatch(opts.req_type, opts.req_items, opts.req_bytes);
      body();
    }
    if (v.reorder) {
      EnqueueGhost(opts.dir, opts.peer, epoch, seq, opts.req_type,
                   opts.req_items, opts.req_bytes);
    }
  }

  // Invalidate a client's sessions after it crashes: old in-flight ghosts
  // carry the previous epoch and are fenced instead of mistaken for live
  // traffic. Called at the top of client restart.
  void BumpEpoch(ClientId client);

  // Chaos harnesses mutate this to heal (or worsen) the network mid-run.
  NetFaultConfig& faults() { return delivery_.config(); }
  const NetFaultConfig& faults() const { return delivery_.config(); }

  // Test introspection.
  uint64_t session_epoch(RpcDir dir, ClientId peer) const;
  uint64_t session_last_executed(RpcDir dir, ClientId peer) const;
  size_t ghost_count() const { return ghosts_.size(); }

 private:
  struct CachedReply {
    uint64_t epoch = 0;
    uint64_t seq = 0;
    MessageType type = MessageType::kLockRequest;
    uint64_t items = 0;
    uint64_t bytes = 0;
  };

  struct Session {
    uint64_t epoch = 0;
    uint64_t next_seq = 1;
    uint64_t last_executed = 0;   // Highest seq whose body has run.
    std::deque<CachedReply> dedup;
  };

  // A message copy still floating in the network after a reorder fault: it
  // surfaces (is counted and fenced) once the channel has moved `due`
  // messages past it. Ghosts never execute endpoint bodies -- by the time
  // one lands its sequence number (or epoch) is already stale.
  struct Ghost {
    RpcDir dir = RpcDir::kClientToServer;
    ClientId peer;
    uint64_t epoch = 0;
    uint64_t seq = 0;
    MessageType type = MessageType::kLockRequest;
    uint64_t items = 0;
    uint64_t bytes = 0;
    uint64_t due = 0;  // Channel total_messages() threshold.
  };

  Session& SessionFor(RpcDir dir, ClientId peer) {
    return sessions_[static_cast<size_t>(dir)][peer];
  }

  // "net.client.<endpoint>" when the client sends this leg,
  // "net.server.<endpoint>" when the server does.
  std::string LegPrefix(const CallOptions& opts, bool request) const {
    const bool client_sends = (opts.dir == RpcDir::kClientToServer) == request;
    return std::string(client_sends ? "net.client." : "net.server.") +
           opts.endpoint;
  }

  // Real-clock path: one frame across the queue transport. Keeps the
  // session machinery live -- the frame is stamped with the session's
  // (epoch, seq) at submit time and fenced against the *current* epoch at
  // execution time, so a frame that was queued before its client crashed
  // and restarted is dropped by the same epoch fence the simulated fault
  // model uses for ghosts.
  template <typename R, typename Body>
  R TransportCall(const CallOptions& opts, Body& body) {
    channel_->CountBatch(opts.req_type, opts.req_items, opts.req_bytes);
    uint64_t epoch = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      Session& session = SessionFor(opts.dir, opts.peer);
      epoch = session.epoch;
      session.next_seq++;
    }
    std::optional<R> executed;
    RpcReply reply;
    bool fenced = false;
    Status submitted = transport_->Submit(
        opts.dir == RpcDir::kClientToServer ? opts.peer : kInvalidClientId,
        [&] {
          {
            std::lock_guard<std::mutex> lock(sessions_mu_);
            const Session& session = SessionFor(opts.dir, opts.peer);
            if (session.epoch != epoch) {
              fenced = true;
            }
          }
          if (fenced) {
            metrics_->Add(Counter::kNetStaleEpochFenced);
            return;
          }
          executed.emplace(body(&reply));
        },
        transport_timeout_us_);
    if (!submitted.ok()) {
      metrics_->Add(Counter::kNetRpcTimeouts);
      metrics_->Add(Counter::kNetRpcExhausted);
      return R(Status::WouldBlock(
          WouldBlockReason::kRpcTimeout,
          std::string("transport timeout: ") + opts.endpoint));
    }
    if (fenced || !executed.has_value()) {
      return R(Status::WouldBlock(
          WouldBlockReason::kRpcTimeout,
          std::string("stale epoch fenced: ") + opts.endpoint));
    }
    if (reply.present()) {
      channel_->CountBatch(reply.type(), reply.items(), reply.bytes());
    }
    return std::move(*executed);
  }

  // Non-template faulty-path helpers (rpc.cc).
  void PumpGhosts();
  void Backoff(uint32_t attempt, bool recovery_plane);
  void CacheReply(Session* session, uint64_t epoch, uint64_t seq,
                  const RpcReply& reply);
  bool ResendCachedReply(const Session& session, const CallOptions& opts,
                         uint64_t epoch, uint64_t seq);
  bool SendReplyMeta(const CallOptions& opts, uint64_t epoch, uint64_t seq,
                     MessageType type, uint64_t items, uint64_t bytes);
  void EnqueueGhost(RpcDir dir, ClientId peer, uint64_t epoch, uint64_t seq,
                    MessageType type, uint64_t items, uint64_t bytes);

  template <typename R, typename Body>
  R FaultyCall(const CallOptions& opts, Body& body) {
    PumpGhosts();
    Session& session = SessionFor(opts.dir, opts.peer);
    const uint64_t epoch = session.epoch;
    const uint64_t seq = session.next_seq++;
    const std::string req_prefix = LegPrefix(opts, true);

    std::optional<R> executed;
    RpcReply reply;
    bool complete = false;
    const NetFaultConfig& cfg = delivery_.config();
    // Recovery-plane calls get extra attempts (and a shortened backoff, see
    // Backoff) when rec_plane_priority is set: during instant restart the
    // Rec-plane traffic is what unblocks everything else, so it is worth
    // prioritizing. With the knob at its 0 default this is byte-identical to
    // the plain loop.
    const uint32_t attempts =
        cfg.max_attempts +
        (opts.recovery_plane ? cfg.rec_plane_priority : 0);
    for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
      if (attempt > 0) {
        metrics_->Add(Counter::kNetRpcRetries);
        Backoff(attempt, opts.recovery_plane);
      }
      NetVerdict rv = delivery_.Classify(req_prefix, opts.req_bytes, opts.peer,
                                         opts.recovery_plane);
      channel_->CountBatch(opts.req_type, opts.req_items, opts.req_bytes);
      if (rv.delay_us > 0) channel_->clock()->Advance(rv.delay_us);
      if (!rv.drop) {
        const int deliveries = rv.dup ? 2 : 1;
        for (int d = 0; d < deliveries; ++d) {
          if (d == 1) {
            // The duplicate copy on the wire.
            channel_->CountBatch(opts.req_type, opts.req_items,
                                 opts.req_bytes);
          }
          if (seq <= session.last_executed) {
            // Already executed (an earlier leg of this call, or the first
            // delivery of this dup pair): answer from the dedup cache.
            metrics_->Add(Counter::kNetDedupHits);
            complete |= ResendCachedReply(session, opts, epoch, seq);
          } else {
            executed.emplace(body(&reply));
            session.last_executed = std::max(session.last_executed, seq);
            if (reply.present()) {
              CacheReply(&session, epoch, seq, reply);
              complete |= SendReplyMeta(opts, epoch, seq, reply.type(),
                                        reply.items(), reply.bytes());
            } else {
              complete = true;  // Request-only: nothing left to lose.
            }
          }
        }
        if (rv.reorder) {
          EnqueueGhost(opts.dir, opts.peer, epoch, seq, opts.req_type,
                       opts.req_items, opts.req_bytes);
        }
      }
      if (executed.has_value() && complete) return std::move(*executed);
      // The caller waits out the timeout before retrying.
      metrics_->Add(Counter::kNetRpcTimeouts);
      channel_->clock()->Advance(cfg.rpc_timeout_us);
    }
    if (executed.has_value()) {
      // Every reply leg was lost but the body ran: return the executed
      // result so the two sides never diverge (the dedup cache would
      // deliver this same answer on the next contact).
      metrics_->Add(Counter::kNetReplyRecovered);
      return std::move(*executed);
    }
    metrics_->Add(Counter::kNetRpcExhausted);
    return R(Status::WouldBlock(WouldBlockReason::kRpcTimeout,
                                std::string("rpc timeout: ") + opts.endpoint));
  }

  Channel* channel_;
  Metrics* metrics_;
  Delivery delivery_;
  Transport* transport_ = nullptr;
  uint64_t transport_timeout_us_ = 0;
  // Serializes session stamping in transport mode, where client threads and
  // the reactor touch sessions_ concurrently. The simulated paths
  // (FaultyCall/Send/PumpGhosts) run single-threaded and take it only at
  // the non-hot entry points they share with the harness (BumpEpoch,
  // introspection).
  mutable std::mutex sessions_mu_;
  std::map<ClientId, Session> sessions_[2];
  std::deque<Ghost> ghosts_;
};

}  // namespace finelog

#endif  // FINELOG_NET_RPC_H_
