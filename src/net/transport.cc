#include "net/transport.h"

#include <chrono>

namespace finelog {

QueueTransport::~QueueTransport() { Shutdown(); }

void QueueTransport::RegisterGate(ClientId client, SimMutex* gate) {
  gates_[client] = gate;
}

void QueueTransport::Start() {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (started_) return;
    started_ = true;
    stop_ = false;
  }
  reactor_ = std::thread([this] {
    reactor_tid_.store(std::this_thread::get_id(), std::memory_order_release);
    ReactorLoop();
  });
}

void QueueTransport::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (!started_) return;
    stop_ = true;
  }
  qcv_.notify_all();
  if (reactor_.joinable()) reactor_.join();
  {
    std::lock_guard<std::mutex> lock(qmu_);
    started_ = false;
  }
  reactor_tid_.store(std::thread::id(), std::memory_order_release);
}

void QueueTransport::ReactorLoop() {
  std::unique_lock<std::mutex> lock(qmu_);
  for (;;) {
    qcv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stop_ and drained.
    std::shared_ptr<Frame> frame = queue_.front();
    queue_.pop_front();
    lock.unlock();

    bool run = false;
    {
      std::lock_guard<std::mutex> fl(frame->m);
      if (!frame->abandoned && !stop_) {
        frame->executing = true;
        run = true;
      }
    }
    if (run) {
      frame->fn();
      frames_executed_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> fl(frame->m);
      frame->executing = false;
      frame->ran = run;
      frame->done = true;
    }
    frame->cv.notify_all();

    lock.lock();
  }
  // stop_ set: abort whatever is still queued so parked waiters return.
  while (!queue_.empty()) {
    std::shared_ptr<Frame> frame = queue_.front();
    queue_.pop_front();
    lock.unlock();
    {
      std::lock_guard<std::mutex> fl(frame->m);
      frame->done = true;  // ran stays false: waiter sees an aborted frame.
    }
    frame->cv.notify_all();
    lock.lock();
  }
}

Status QueueTransport::Submit(ClientId from, const std::function<void()>& fn,
                              uint64_t timeout_us) {
  // Nested submit from the reactor itself (a server endpoint body re-enters
  // the RPC plane): execute inline, exactly like the simulation's
  // synchronous nesting. Waiting would deadlock the reactor on itself.
  if (OnServerThread()) {
    fn();
    frames_executed_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  auto frame = std::make_shared<Frame>();
  frame->fn = fn;
  {
    std::lock_guard<std::mutex> lock(qmu_);
    if (!started_ || stop_) {
      return Status::WouldBlock(WouldBlockReason::kRpcTimeout,
                                "transport is shut down");
    }
    queue_.push_back(frame);
  }
  qcv_.notify_one();

  // Park: give up the whole client gate (however deep) so the reactor can
  // deliver callbacks into this client while we wait.
  SimMutex* gate = nullptr;
  int gate_depth = 0;
  auto it = gates_.find(from);
  if (it != gates_.end() && it->second->HeldByMe()) {
    gate = it->second;
    gate_depth = gate->FullRelease();
  }

  Status result = Status::OK();
  {
    std::unique_lock<std::mutex> fl(frame->m);
    if (timeout_us == 0) {
      frame->cv.wait(fl, [&] { return frame->done; });
    } else {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(timeout_us);
      if (!frame->cv.wait_until(fl, deadline, [&] { return frame->done; })) {
        if (frame->executing) {
          // Too late to abandon: the body is running over our stack
          // captures. Ride it out.
          frame->cv.wait(fl, [&] { return frame->done; });
        } else if (!frame->done) {
          frame->abandoned = true;
          frames_abandoned_.fetch_add(1, std::memory_order_relaxed);
          result = Status::WouldBlock(WouldBlockReason::kRpcTimeout,
                                      "transport frame timed out");
        }
      }
    }
    if (result.ok() && !frame->ran) {
      result = Status::WouldBlock(WouldBlockReason::kRpcTimeout,
                                  "transport frame aborted at shutdown");
    }
  }

  if (gate != nullptr) gate->Reacquire(gate_depth);
  return result;
}

Status QueueTransport::RunOnReactor(const std::function<Status()>& fn) {
  Status out = Status::OK();
  Status submitted =
      Submit(kInvalidClientId, [&] { out = fn(); }, /*timeout_us=*/0);
  if (!submitted.ok()) return submitted;
  return out;
}

}  // namespace finelog
