#include "net/rpc.h"

#include <algorithm>

namespace finelog {

void Rpc::BumpEpoch(ClientId client) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& sessions : sessions_) {
    Session& s = sessions[client];
    s.epoch += 1;
    s.dedup.clear();
  }
  metrics_->Add(Counter::kNetEpochBumps);
}

uint64_t Rpc::session_epoch(RpcDir dir, ClientId peer) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto& sessions = sessions_[static_cast<size_t>(dir)];
  auto it = sessions.find(peer);
  return it == sessions.end() ? 0 : it->second.epoch;
}

uint64_t Rpc::session_last_executed(RpcDir dir, ClientId peer) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto& sessions = sessions_[static_cast<size_t>(dir)];
  auto it = sessions.find(peer);
  return it == sessions.end() ? 0 : it->second.last_executed;
}

void Rpc::PumpGhosts() {
  // Delivering a ghost counts a message, which can make further ghosts due;
  // the queue only ever shrinks here because ghost delivery is terminal.
  bool delivered = true;
  while (delivered) {
    delivered = false;
    for (auto it = ghosts_.begin(); it != ghosts_.end(); ++it) {
      if (it->due > channel_->total_messages()) continue;
      Ghost g = *it;
      ghosts_.erase(it);
      channel_->CountBatch(g.type, g.items, g.bytes);
      const Session& s = SessionFor(g.dir, g.peer);
      if (g.epoch < s.epoch) {
        // The peer restarted since this copy was sent: epoch fence.
        metrics_->Add(Counter::kNetStaleEpochFenced);
      } else {
        // Same epoch, but its sequence number has long been executed (the
        // live delivery preceded it): absorbed as a stale duplicate.
        metrics_->Add(Counter::kNetDedupHits);
      }
      delivered = true;
      break;
    }
  }
}

void Rpc::Backoff(uint32_t attempt, bool recovery_plane) {
  const NetFaultConfig& cfg = delivery_.config();
  uint64_t delay = cfg.backoff_base_us << (attempt - 1);
  delay = std::min(delay, cfg.backoff_cap_us);
  if (recovery_plane && cfg.rec_plane_priority > 0) {
    // Recovery-plane priority: back off a quarter as long so post-restart
    // repair traffic drains ahead of ordinary retries. Still one jitter draw,
    // and the knob's 0 default leaves every existing schedule untouched.
    delay = std::max<uint64_t>(1, delay / 4);
  }
  delay += delivery_.rng().Uniform(delay / 2 + 1);  // Seeded jitter.
  metrics_->Add(Counter::kNetRpcBackoffUs, delay);
  channel_->clock()->Advance(delay);
}

void Rpc::CacheReply(Session* session, uint64_t epoch, uint64_t seq,
                     const RpcReply& reply) {
  session->dedup.push_back(
      {epoch, seq, reply.type(), reply.items(), reply.bytes()});
  while (session->dedup.size() > delivery_.config().dedup_cache_size) {
    session->dedup.pop_front();
  }
}

bool Rpc::ResendCachedReply(const Session& session, const CallOptions& opts,
                            uint64_t epoch, uint64_t seq) {
  for (const CachedReply& c : session.dedup) {
    if (c.seq == seq && c.epoch == epoch) {
      return SendReplyMeta(opts, epoch, seq, c.type, c.items, c.bytes);
    }
  }
  return false;  // Evicted: the retry loop keeps going.
}

bool Rpc::SendReplyMeta(const CallOptions& opts, uint64_t epoch, uint64_t seq,
                        MessageType type, uint64_t items, uint64_t bytes) {
  NetVerdict v = delivery_.Classify(LegPrefix(opts, false), bytes, opts.peer,
                                    opts.recovery_plane);
  channel_->CountBatch(type, items, bytes);
  if (v.delay_us > 0) channel_->clock()->Advance(v.delay_us);
  if (v.dup) {
    // The duplicate reply arrives too; the caller discards it.
    channel_->CountBatch(type, items, bytes);
  }
  if (v.reorder) {
    EnqueueGhost(opts.dir, opts.peer, epoch, seq, type, items, bytes);
  }
  return !v.drop;
}

void Rpc::EnqueueGhost(RpcDir dir, ClientId peer, uint64_t epoch, uint64_t seq,
                       MessageType type, uint64_t items, uint64_t bytes) {
  const uint64_t due = channel_->total_messages() + 1 +
                       delivery_.rng().Uniform(
                           std::max<uint32_t>(1, faults().reorder_window));
  ghosts_.push_back({dir, peer, epoch, seq, type, items, bytes, due});
}

}  // namespace finelog
