#include "net/delivery.h"

#include "util/fault.h"

namespace finelog {

NetVerdict Delivery::Classify(const std::string& prefix, uint64_t bytes,
                              ClientId peer, bool recovery_plane) {
  NetVerdict v;
  if (!config_.enabled()) return v;

  // Partition first, before the recovery-plane exemption: an unreachable
  // node is unreachable for recovery traffic too. Absolute (no RNG draw),
  // so healing the partition restores the exact rate-draw stream an
  // unpartitioned run would have seen.
  if (config_.partitioned(peer.value())) {
    v.drop = true;
    if (metrics_ != nullptr) {
      metrics_->Add(Counter::kNetPartitionDrops);
      metrics_->Add(Counter::kNetDrops);
    }
    return v;
  }

  if (recovery_plane && !config_.fault_recovery) return v;

  // Armed fail points first: a test that armed one-shot wire faults gets a
  // fully deterministic firing independent of the rate draws. Torn/short
  // arms degrade to a clean error (= drop) via allow_torn = false: a
  // simulated message either arrives whole or not at all.
  if (config_.use_fail_points && injector_ != nullptr) {
    if (injector_->Evaluate(prefix + ".drop", bytes, false).action !=
        FaultAction::kNone) {
      v.drop = true;
    }
    if (injector_->Evaluate(prefix + ".dup", bytes, false).action !=
        FaultAction::kNone) {
      v.dup = true;
    }
    if (injector_->Evaluate(prefix + ".reorder", bytes, false).action !=
        FaultAction::kNone) {
      v.reorder = true;
    }
    if (injector_->Evaluate(prefix + ".delay", bytes, false).action !=
        FaultAction::kNone) {
      v.delay_us = config_.delay_us;
    }
  }

  // Rate draws: each enabled rate draws exactly once per leg, whether or not
  // an earlier fault already fired, so the RNG stream stays aligned across
  // runs that differ only in which faults happen to fire.
  if (config_.drop_rate > 0.0 && rng_.Bernoulli(config_.drop_rate)) {
    v.drop = true;
  }
  if (config_.dup_rate > 0.0 && rng_.Bernoulli(config_.dup_rate)) {
    v.dup = true;
  }
  if (config_.reorder_rate > 0.0 && rng_.Bernoulli(config_.reorder_rate)) {
    v.reorder = true;
  }
  if (config_.delay_rate > 0.0 && rng_.Bernoulli(config_.delay_rate)) {
    v.delay_us = config_.delay_us;
  }

  // A dropped message cannot also be duplicated or reordered.
  if (v.drop) {
    v.dup = false;
    v.reorder = false;
  }

  if (metrics_ != nullptr) {
    if (v.drop) metrics_->Add(Counter::kNetDrops);
    if (v.dup) metrics_->Add(Counter::kNetDups);
    if (v.reorder) metrics_->Add(Counter::kNetReorders);
    if (v.delay_us > 0) metrics_->Add(Counter::kNetDelays);
  }
  return v;
}

}  // namespace finelog
