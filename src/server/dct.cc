#include "server/dct.h"

#include <algorithm>

namespace finelog {

void DirtyClientTable::Insert(PageId page, ClientId client, Psn psn) {
  SimMutexLock lock(mu_);
  auto& row = table_[page];
  row.try_emplace(client, Value{psn, kNullLsn});
}

void DirtyClientTable::SetPsn(PageId page, ClientId client, Psn psn) {
  SimMutexLock lock(mu_);
  table_[page][client].psn = psn;
}

void DirtyClientTable::Set(PageId page, ClientId client, Psn psn,
                           Lsn redo_lsn) {
  SimMutexLock lock(mu_);
  table_[page][client] = Value{psn, redo_lsn};
}

void DirtyClientTable::SetRedoLsnIfNull(PageId page, Lsn lsn) {
  SimMutexLock lock(mu_);
  auto it = table_.find(page);
  if (it == table_.end()) return;
  for (auto& [client, v] : it->second) {
    (void)client;
    if (v.redo_lsn == kNullLsn) v.redo_lsn = lsn;
  }
}

void DirtyClientTable::ResetPagePsns(PageId page, Psn psn) {
  SimMutexLock lock(mu_);
  auto it = table_.find(page);
  if (it == table_.end()) return;
  for (auto& [client, v] : it->second) {
    (void)client;
    v.psn = psn;
  }
}

void DirtyClientTable::Remove(PageId page, ClientId client) {
  SimMutexLock lock(mu_);
  auto it = table_.find(page);
  if (it == table_.end()) return;
  it->second.erase(client);
  if (it->second.empty()) table_.erase(it);
}

std::optional<DctEntry> DirtyClientTable::Get(PageId page,
                                              ClientId client) const {
  SimMutexLock lock(mu_);
  auto it = table_.find(page);
  if (it == table_.end()) return std::nullopt;
  auto cit = it->second.find(client);
  if (cit == it->second.end()) return std::nullopt;
  return DctEntry{page, client, cit->second.psn, cit->second.redo_lsn};
}

std::vector<DctEntry> DirtyClientTable::EntriesForPage(PageId page) const {
  SimMutexLock lock(mu_);
  std::vector<DctEntry> out;
  auto it = table_.find(page);
  if (it == table_.end()) return out;
  for (const auto& [client, v] : it->second) {
    out.push_back(DctEntry{page, client, v.psn, v.redo_lsn});
  }
  return out;
}

std::vector<DctEntry> DirtyClientTable::EntriesForClient(
    ClientId client) const {
  SimMutexLock lock(mu_);
  std::vector<DctEntry> out;
  for (const auto& [page, row] : table_) {
    auto cit = row.find(client);
    if (cit != row.end()) {
      out.push_back(DctEntry{page, client, cit->second.psn, cit->second.redo_lsn});
    }
  }
  return out;
}

std::vector<DctEntry> DirtyClientTable::All() const {
  SimMutexLock lock(mu_);
  std::vector<DctEntry> out;
  for (const auto& [page, row] : table_) {
    for (const auto& [client, v] : row) {
      out.push_back(DctEntry{page, client, v.psn, v.redo_lsn});
    }
  }
  return out;
}

bool DirtyClientTable::HasPage(PageId page) const {
  SimMutexLock lock(mu_);
  return table_.count(page) > 0;
}

Lsn DirtyClientTable::MinRedoLsn() const {
  SimMutexLock lock(mu_);
  Lsn min = kMaxLsn;
  for (const auto& [page, row] : table_) {
    (void)page;
    for (const auto& [client, v] : row) {
      (void)client;
      if (v.redo_lsn != kNullLsn) min = std::min(min, v.redo_lsn);
    }
  }
  return min;
}

void DirtyClientTable::Clear() {
  SimMutexLock lock(mu_);
  table_.clear();
}

size_t DirtyClientTable::size() const {
  SimMutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [page, row] : table_) {
    (void)page;
    n += row.size();
  }
  return n;
}

}  // namespace finelog
