// Page copy merging (Sections 2 and 3.1).
//
// finelog resolves concurrent updates to different objects of the same page
// by merging *page copies* (not log records). The sender ships the set of
// slots it modified since its last ship; the receiver overlays exactly those
// objects onto its own copy and sets PSN = max(PSN_local, PSN_incoming) + 1.
// The +1 guarantees strictly increasing PSNs even when two copies carry the
// same PSN value (Section 2).
//
// Structural (non-mergeable) modifications were made under a page-level
// exclusive lock, so the incoming image is strictly newer than the local
// copy and replaces it wholesale (still bumping the PSN as a merge).

#ifndef FINELOG_SERVER_PAGE_MERGE_H_
#define FINELOG_SERVER_PAGE_MERGE_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "net/endpoints.h"
#include "storage/page.h"

namespace finelog {

// Merges `incoming` into `local`. `local` must be a copy of the same page.
Status MergeShippedPage(Page* local, const ShippedPage& incoming);

// Installs one object's fresh value into a cached copy of its page (the
// client-side catch-up performed when a lock grant or callback delivers an
// object image, Section 2). `image == nullopt` means the object was deleted.
// `server_psn` is the PSN of the server copy the image came from; the local
// PSN advances to at least that value (but is never inflated past it).
Status InstallObject(Page* local, SlotId slot,
                     const std::optional<std::string>& image, Psn server_psn);

}  // namespace finelog

#endif  // FINELOG_SERVER_PAGE_MERGE_H_
