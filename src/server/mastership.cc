#include "server/mastership.h"

namespace finelog {

Result<MastershipTable::Grant> MastershipTable::Renew(int node,
                                                      uint64_t now_us) {
  SimMutexLock lock(mu_);
  if ((unreachable_mask_ >> node) & 1) {
    return Status::WouldBlock(WouldBlockReason::kRpcTimeout,
                              "mastership arbiter unreachable");
  }
  if (holder_ != node) {
    return Status::WouldBlock(WouldBlockReason::kFailoverInProgress,
                              "not the mastership holder");
  }
  valid_until_us_ = now_us + lease_duration_us_;
  return Grant{epoch_, valid_until_us_};
}

Result<MastershipTable::Grant> MastershipTable::Acquire(int node,
                                                        uint64_t now_us) {
  SimMutexLock lock(mu_);
  if ((unreachable_mask_ >> node) & 1) {
    return Status::WouldBlock(WouldBlockReason::kRpcTimeout,
                              "mastership arbiter unreachable");
  }
  if (holder_ == node) {
    valid_until_us_ = now_us + lease_duration_us_;
    return Grant{epoch_, valid_until_us_};
  }
  if (holder_ != kNoHolder && now_us < valid_until_us_) {
    return Status::WouldBlock(WouldBlockReason::kFailoverInProgress,
                              "incumbent mastership lease still valid");
  }
  holder_ = node;
  ++epoch_;
  valid_until_us_ = now_us + lease_duration_us_;
  return Grant{epoch_, valid_until_us_};
}

void MastershipTable::Release(int node) {
  SimMutexLock lock(mu_);
  if (holder_ == node) {
    holder_ = kNoHolder;
    valid_until_us_ = 0;
  }
}

void MastershipTable::SetUnreachable(int node, bool unreachable) {
  SimMutexLock lock(mu_);
  if (unreachable) {
    unreachable_mask_ |= uint64_t{1} << node;
  } else {
    unreachable_mask_ &= ~(uint64_t{1} << node);
  }
}

}  // namespace finelog
