#include "server/server.h"

#include <algorithm>
#include <cassert>

#include "net/rpc.h"
#include "server/page_merge.h"
#include "util/fault.h"

namespace finelog {

namespace {

// Approximate wire sizes for request/reply accounting.
constexpr size_t kSmallMsg = 32;

// Builds the CallOptions for one request/reply exchange. `peer` is always
// the client side of the exchange; `endpoint` is the fail-point stem
// (net.<side>.<endpoint>.<op>).
CallOptions MakeOpts(RpcDir dir, const char* endpoint, ClientId peer,
                     MessageType req_type, uint64_t req_items,
                     uint64_t req_bytes, bool recovery_plane = false) {
  CallOptions opts;
  opts.dir = dir;
  opts.endpoint = endpoint;
  opts.peer = peer;
  opts.req_type = req_type;
  opts.req_items = req_items;
  opts.req_bytes = req_bytes;
  opts.recovery_plane = recovery_plane;
  return opts;
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Create(const SystemConfig& config,
                                               Channel* channel, Rpc* rpc,
                                               Metrics* metrics) {
  auto server =
      std::unique_ptr<Server>(new Server(config, channel, rpc, metrics));
  // Nothing else can reference `server` yet; locking satisfies the guarded-
  // member discipline for the wiring stores below.
  SimMutexLock lock(server->mu_);
  FINELOG_ASSIGN_OR_RETURN(
      server->disk_, DiskManager::Open(config.dir + "/db.pages", config.page_size,
                                       server->DiskIo()));
  FINELOG_ASSIGN_OR_RETURN(
      server->space_map_, SpaceMap::Open(config.dir + "/db.spacemap", config.num_pages));
  FINELOG_ASSIGN_OR_RETURN(server->log_,
                           LogManager::Open(config.dir + "/server.log", 0,
                                            server->LogIo()));
  server->pool_ = std::make_unique<BufferPool>(config.server_cache_pages);
  return server;
}

Result<std::unique_ptr<Server>> Server::CreateStandby(
    const SystemConfig& config, Channel* channel, Rpc* rpc, Metrics* metrics) {
  auto server =
      std::unique_ptr<Server>(new Server(config, channel, rpc, metrics));
  SimMutexLock lock(server->mu_);
  // The store files stay closed: the primary owns them, and a second set of
  // buffered stdio handles over the same files would serve stale bytes.
  // TakeOver opens everything fresh once this node wins the lease.
  server->store_open_ = false;
  server->crashed_ = true;
  server->pool_ = std::make_unique<BufferPool>(config.server_cache_pages);
  return server;
}

DiskIoOptions Server::DiskIo() const {
  return DiskIoOptions{config_.fault_injector, config_.log_sink, "server.disk",
                       config_.debug_skip_journal_replay};
}

LogIoOptions Server::LogIo() const {
  return LogIoOptions{config_.fault_injector, config_.log_sink, "server.log",
                      false};
}

void Server::RegisterClient(ClientId id, ClientEndpoint* endpoint) {
  SimMutexLock lock(mu_);
  clients_[id] = endpoint;
}

void Server::SetClientCrashed(ClientId id, bool crashed) {
  SimMutexLock lock(mu_);
  if (crashed) {
    crashed_clients_.insert(id);
    // Any in-flight crash recovery is void; the restarted client begins a
    // fresh one, so its recovery-admission window closes.
    liveness_.CloseRecoveryWindow(id);
    // Section 3.3: the server releases all shared locks held by the crashed
    // client; exclusive locks are retained for re-installation at restart.
    glm_.ReleaseSharedLocksOf(id);
    for (auto it = token_holder_.begin(); it != token_holder_.end();) {
      if (it->second == id) {
        it = token_holder_.erase(it);
      } else {
        ++it;
      }
    }
    // The explicit-crash path supersedes lease tracking while the client is
    // down; presumed-dead status (if already declared) persists until crash
    // recovery completes.
    liveness_.Suspend(id);
  } else {
    crashed_clients_.erase(id);
  }
}

Status Server::Crash() {
  SimMutexLock lock(mu_);
  FINELOG_RETURN_IF_ERROR(DropVolatileState());
  // A crashed process is not probeable: failover probes are refused until
  // the harness re-provisions the node (ProvisionStandby or Restart).
  halted_ = true;
  metrics_->Add(Counter::kServerCrashes);
  return Status::OK();
}

Status Server::DropVolatileState() {
  crashed_ = true;
  dct_authoritative_ = false;
  pool_->Clear();
  glm_.Clear();
  dct_.Clear();
  token_holder_.clear();
  // Lazy-recovery bookkeeping is volatile: a second crash mid-drain loses
  // nothing, because the next Restart re-derives the task lists from the
  // durable logs and the clients' DPTs.
  page_rec_.clear();
  rec_priority_.clear();
  restart_begin_us_ = 0;
  repair_depth_ = 0;
  // Deposed or stepping down: this node no longer serves any epoch.
  mastership_epoch_ = 0;
  mastership_valid_until_ = 0;
  if (!store_open_) return Status::OK();
  // The server log is forced at every append site, so reopening loses
  // nothing; reopening models the post-crash process state. The database
  // file is reopened too: DiskManager::Open replays (or invalidates) the
  // doublewrite journal, resolving any write a fault injector left torn.
  // (Safe even with a hot standby: at the instant this node stops serving
  // it is still the sole store writer; a successor's TakeOver reopens its
  // own handles fresh.)
  FINELOG_ASSIGN_OR_RETURN(
      disk_, DiskManager::Open(config_.dir + "/db.pages", config_.page_size,
                               DiskIo()));
  FINELOG_ASSIGN_OR_RETURN(
      log_, LogManager::Open(config_.dir + "/server.log", 0, LogIo()));
  return Status::OK();
}

FINELOG_REPLAY_PATH("bootstrap preload: pages are formatted, filled and "
                    "flushed to disk before any client can reference them")
Status Server::Bootstrap(uint32_t n, uint32_t objects_per_page,
                         uint32_t object_size) {
  SimMutexLock lock(mu_);
  std::string payload(object_size, '\0');
  for (uint32_t i = 0; i < n; ++i) {
    auto alloc = space_map_->AllocatePage();
    if (!alloc.ok()) return alloc.status();
    Page page(config_.page_size);
    page.Format(alloc.value().page, alloc.value().initial_psn);
    for (uint32_t j = 0; j < objects_per_page; ++j) {
      auto slot = page.CreateObject(payload);
      if (!slot.ok()) return slot.status();
    }
    FINELOG_RETURN_IF_ERROR(disk_->WritePage(alloc.value().page, &page));
    ++disk_writes_;
  }
  return Status::OK();
}

BufferPool::EvictHandler Server::EvictHandler() {
  return [this](PageId pid, BufferPool::Frame& frame) -> Status {
    // Recursive: the pool only calls back while an endpoint body holds the
    // capability; the analysis can't see through the std::function.
    SimMutexLock lock(mu_);
    if (!frame.dirty) return Status::OK();
    return WritePageToDisk(pid, frame);
  };
}

Result<BufferPool::Frame*> Server::GetPage(PageId pid) {
  if (BufferPool::Frame* f = pool_->Get(pid)) return f;
  Page page(config_.page_size);
  Status st = disk_->ReadPage(pid, &page);
  if (!st.ok()) return st;
  channel_->clock()->Advance(channel_->costs().disk_read_us);
  ++disk_reads_;
  metrics_->Add(Counter::kServerDiskReads);
  return pool_->Put(pid, std::move(page), EvictHandler());
}

Status Server::WritePageToDisk(PageId pid, BufferPool::Frame& frame) {
  // WAL for the no-data-logging server: force a replacement log record
  // carrying the page PSN and the DCT entries (Section 3.2) before the
  // in-place page write.
  std::vector<DctEntry> entries = dct_.EntriesForPage(pid);
  LogRecord rec = LogRecord::Replacement(pid, frame.page.psn(), entries);
  auto lsn = log_->Append(rec);
  if (!lsn.ok()) return lsn.status();
  FINELOG_RETURN_IF_ERROR(log_->Force());
  channel_->clock()->Advance(channel_->costs().log_force_us);
  metrics_->Add(Counter::kServerReplacementRecords);
  dct_.SetRedoLsnIfNull(pid, lsn.value());

  FINELOG_RETURN_IF_ERROR(disk_->WritePage(pid, &frame.page));
  channel_->clock()->Advance(channel_->costs().disk_write_us);
  ++disk_writes_;
  metrics_->Add(Counter::kServerDiskWrites);
  frame.dirty = false;

  // Notify the updating clients (Sections 3.2 and 3.6) and drop DCT entries
  // for clients no longer holding exclusive locks on the page.
  for (const DctEntry& e : entries) {
    auto cit = clients_.find(e.client);
    if (cit != clients_.end() && !ClientUnreachable(e.client)) {
      rpc_->Send(MakeOpts(RpcDir::kServerToClient, "flush_notify", e.client,
                          MessageType::kFlushNotify, 1, kSmallMsg),
                 [&] { cit->second->HandleFlushNotify(pid, e.psn); });
    }
    bool holds_x = glm_.HoldsPage(e.client, pid, LockMode::kExclusive);
    if (!holds_x) {
      // Any exclusive object lock on the page keeps the entry alive.
      for (const ObjectId& oid : glm_.ExclusiveObjectLocksOf(e.client)) {
        if (oid.page == pid) {
          holds_x = true;
          break;
        }
      }
    }
    // A page still owing lazy restart repair keeps every entry: the DCT PSN
    // is the redo baseline its pending log replay starts from, and nothing
    // proves the client's updates reached this (partially merged) image.
    if (!holds_x && !ClientUnreachable(e.client) &&
        !PageRecoveryPending(pid)) {
      dct_.Remove(pid, e.client);
    }
  }
  return Status::OK();
}

Status Server::CheckPageReachable(PageId pid, ClientId requester) {
  // A page is unreachable while an unreachable client other than the
  // requester has unflushed updates on it (a DCT entry) or still holds
  // exclusive locks covering it.
  auto blocks = [this, pid](ClientId c) {
    if (dct_.Get(pid, c).has_value()) return true;
    // GLM X locks of the unreachable client also block (client-crash only
    // case where the GLM survived).
    for (const ObjectId& oid : glm_.ExclusiveObjectLocksOf(c)) {
      if (oid.page == pid) return true;
    }
    for (PageId p : glm_.ExclusivePageLocksOf(c)) {
      if (p == pid) return true;
    }
    return false;
  };
  for (ClientId c : crashed_clients_) {
    if (c == requester) continue;
    if (blocks(c)) {
      return Status::WouldBlock(WouldBlockReason::kCrashedDependency,
                                "page involves a crashed client");
    }
  }
  for (ClientId c : liveness_.presumed_dead()) {
    if (c == requester || crashed_clients_.count(c) != 0) continue;
    if (blocks(c)) {
      metrics_->Add(Counter::kLivenessQuarantineDenials);
      return Status::WouldBlock(
          WouldBlockReason::kQuarantinedPage,
          "page quarantined: presumed-dead client has unflushed updates");
    }
  }
  return Status::OK();
}

Status Server::ExecuteCallbacks(
    const std::vector<CallbackAction>& actions,
    std::vector<XCallbackInfo>* x_callbacks) {
  // Piggybacking: consecutive actions against one target travel as a single
  // callback request message and are answered in a single reply message
  // (bounded by max_batch_items). With max_batch_items = 1 every action pays
  // its own round trip -- the seed behavior.
  const size_t limit = std::max<uint32_t>(1, config_.max_batch_items);
  size_t i = 0;
  while (i < actions.size()) {
    // Per-target validation happens before any message is charged, exactly
    // as the unbatched path did per action.
    const ClientId target = actions[i].target;
    if (ClientUnreachable(target)) {
      return Status::WouldBlock(WouldBlockReason::kCrashedDependency,
                                "callback target unreachable; queued");
    }
    if (clients_.find(target) == clients_.end()) {
      return Status::Internal("unknown client in callback");
    }
    size_t j = i + 1;
    while (j < actions.size() && actions[j].target == target &&
           j - i < limit) {
      ++j;
    }
    const size_t n = j - i;
    Status call = rpc_->Call(
        MakeOpts(RpcDir::kServerToClient, "callback", target,
                 MessageType::kCallbackRequest, n, n * kSmallMsg),
        [&](RpcReply* reply) -> Status {
          if (n > 1) {
            metrics_->Add(Counter::kServerBatchCallbackRequests);
            metrics_->Add(Counter::kServerBatchCallbackItems, n);
          }
          size_t reply_bytes = 0;
          size_t answered = 0;
          Status st;
          for (size_t k = i; k < j; ++k) {
            st = ExecuteOneCallback(actions[k], x_callbacks, &reply_bytes);
            ++answered;
            if (!st.ok()) break;
          }
          // A denial still answers: the reply carries the outcomes produced
          // so far.
          reply->SetBatch(MessageType::kCallbackReply, answered, reply_bytes);
          return st;
        });
    FINELOG_RETURN_IF_ERROR(call);
    i = j;
  }
  return Status::OK();
}

Status Server::ExecuteOneCallback(const CallbackAction& a,
                                  std::vector<XCallbackInfo>* x_callbacks,
                                  size_t* reply_bytes) {
  {
    ClientEndpoint* ep = clients_.at(a.target);
    switch (a.what) {
      case CallbackAction::What::kReleaseObject:
      case CallbackAction::What::kDowngradeObject: {
        LockMode want = a.what == CallbackAction::What::kReleaseObject
                            ? LockMode::kExclusive
                            : LockMode::kShared;
        auto reply = ep->HandleObjectCallback(a.object, want);
        *reply_bytes += reply.page ? reply.page->wire_size() : kSmallMsg;
        metrics_->Add(Counter::kServerCallbacksObject);
        if (!reply.granted) {
          metrics_->Add(Counter::kServerCallbacksDenied);
          return Status::WouldBlock(WouldBlockReason::kLockConflict,
                                    "callback denied: object in use");
        }
        if (reply.page) {
          FINELOG_RETURN_IF_ERROR(ApplyShippedPage(a.target, *reply.page));
        }
        if (want == LockMode::kExclusive) {
          glm_.ReleaseObject(a.target, a.object);
        } else {
          glm_.DowngradeObject(a.target, a.object);
        }
        // The requester must log the inter-client hand-off of update
        // authority (callback log record, Section 3.1). Only exclusive
        // *requests* count: an S-triggered downgrade transfers no authority,
        // and suppressing the responder's replay for it would lose the only
        // surviving copy of its updates. The holder matters when it is (or
        // recently was) a writer: it holds X, or it still has a DCT entry
        // for the page -- a downgraded writer keeps its entry until its
        // updates reach the disk.
        auto entry = dct_.Get(a.object.page, a.target);
        bool possibly_wrote =
            a.holder_mode == LockMode::kExclusive || entry.has_value();
        if (want == LockMode::kExclusive && possibly_wrote &&
            x_callbacks != nullptr) {
          Psn psn;
          if (reply.page) {
            // The responder shipped with the callback: the DCT entry now
            // holds exactly the PSN of that ship.
            psn = entry && entry->psn != kNullPsn ? entry->psn
                                                  : reply.psn_at_response;
          } else {
            // Nothing shipped: everything the responder ever contributed is
            // already in the server lineage, so the current copy's PSN is
            // an honest supersession bound (DCT entries can deflate after a
            // restart reconstructed them from the disk baseline).
            auto f = GetPage(a.object.page);
            psn = f.ok() ? f.value()->page.psn()
                         : (entry && entry->psn != kNullPsn
                                ? entry->psn
                                : reply.psn_at_response);
          }
          x_callbacks->push_back(XCallbackInfo{a.target, a.object, psn});
        }
        break;
      }
      case CallbackAction::What::kDeescalatePage: {
        if (config_.lock_granularity == LockGranularity::kPage) {
          // Page-locking baseline: page locks are called back, not
          // de-escalated (there are no object locks to fall back to).
          auto reply = ep->HandlePageCallback(a.page, a.requested);
          *reply_bytes += reply.page ? reply.page->wire_size() : kSmallMsg;
          metrics_->Add(Counter::kServerCallbacksPage);
          if (!reply.granted) {
            metrics_->Add(Counter::kServerCallbacksDenied);
            return Status::WouldBlock(WouldBlockReason::kLockConflict,
                                      "page callback denied");
          }
          if (reply.page) {
            FINELOG_RETURN_IF_ERROR(ApplyShippedPage(a.target, *reply.page));
          }
          // Whole-page authority hand-off: record it so recovery can
          // re-establish the inter-client order of page versions. The
          // sentinel slot id means "every object on the page".
          auto pentry = dct_.Get(a.page, a.target);
          bool wrote = a.holder_mode == LockMode::kExclusive ||
                       pentry.has_value();
          if (a.requested == LockMode::kExclusive && wrote &&
              x_callbacks != nullptr) {
            Psn psn = pentry && pentry->psn != kNullPsn
                          ? pentry->psn
                          : reply.psn_at_response;
            x_callbacks->push_back(XCallbackInfo{
                a.target, ObjectId{a.page, kInvalidSlotId}, psn});
          }
          if (a.requested == LockMode::kExclusive) {
            glm_.ReleasePage(a.target, a.page);
          } else {
            glm_.DowngradePage(a.target, a.page);
          }
          break;
        }
        auto reply = ep->HandleDeescalate(a.page);
        *reply_bytes += reply.page ? reply.page->wire_size() : kSmallMsg;
        metrics_->Add(Counter::kServerDeescalations);
        if (!reply.granted) {
          metrics_->Add(Counter::kServerCallbacksDenied);
          return Status::WouldBlock(WouldBlockReason::kLockConflict,
                                    "de-escalation denied: structural update");
        }
        if (reply.page) {
          FINELOG_RETURN_IF_ERROR(ApplyShippedPage(a.target, *reply.page));
        }
        // The GLM trades the page lock for the reported object locks.
        glm_.ReleasePage(a.target, a.page);
        for (const auto& [oid, mode] : reply.object_locks) {
          glm_.GrantObject(a.target, oid, mode);
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status Server::ApplyShippedPage(ClientId client, const ShippedPage& shipped,
                                bool update_dct_psn) {
  auto frame = GetPage(shipped.page);
  if (!frame.ok()) {
    if (!frame.status().IsNotFound()) return frame.status();
    // First copy the server ever sees (page never reached the disk): the
    // incoming image is the base.
    Page page(config_.page_size);
    page.raw() = shipped.image;
    auto put = pool_->Put(shipped.page, std::move(page), EvictHandler());
    if (!put.ok()) return put.status();
    put.value()->dirty = true;
    Page incoming(config_.page_size);
    incoming.raw() = shipped.image;
    dct_.SetPsn(shipped.page, client, incoming.psn());
    metrics_->Add(Counter::kServerPagesMerged);
    return Status::OK();
  }
  Page incoming(config_.page_size);
  incoming.raw() = shipped.image;
  Psn incoming_psn = incoming.psn();
  if (config_.lock_granularity == LockGranularity::kPage) {
    // Page-level locking gives each page a single linear version history
    // (one writer at a time), so copies are totally ordered by PSN: adopt
    // the incoming image iff it is newer; an older ship is an ancestor of
    // the current copy and carries nothing new.
    Page& local = frame.value()->page;
    if (incoming.psn() > local.psn()) {
      local.raw() = shipped.image;
      frame.value()->dirty = true;
    }
  } else {
    FINELOG_RETURN_IF_ERROR(MergeShippedPage(&frame.value()->page, shipped));
    frame.value()->dirty = true;
  }
  channel_->clock()->Advance(channel_->costs().page_merge_us);
  // "The server ... sets the value of the PSN field to be the PSN value
  // present on P" (Section 3.2).
  if (update_dct_psn) dct_.SetPsn(shipped.page, client, incoming_psn);
  metrics_->Add(Counter::kServerPagesMerged);
  return Status::OK();
}

Result<ObjectLockReply> Server::LockObject(ClientId client, ObjectId oid,
                                           LockMode mode, Psn cached_psn) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "lock_object", client,
               MessageType::kLockRequest, 1, kSmallMsg),
      [&](RpcReply* rep) -> Result<ObjectLockReply> {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        size_t reply_bytes = kSmallMsg;
        auto reply =
            LockObjectInternal(client, oid, mode, cached_psn, &reply_bytes);
        // The reply travels (and is charged) even for a denial.
        rep->Set(MessageType::kLockReply, reply_bytes);
        return reply;
      });
}

Result<std::vector<ObjectLockOutcome>> Server::LockObjectBatch(
    ClientId client, const std::vector<ObjectLockRequest>& items) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  if (items.empty()) return std::vector<ObjectLockOutcome>{};
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "lock_object", client,
               MessageType::kLockRequest, items.size(),
               items.size() * kSmallMsg),
      [&](RpcReply* rep) -> Result<std::vector<ObjectLockOutcome>> {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        size_t reply_bytes = 0;
        std::vector<ObjectLockOutcome> out;
        out.reserve(items.size());
        for (const ObjectLockRequest& it : items) {
          size_t rb = kSmallMsg;
          auto r =
              LockObjectInternal(client, it.oid, it.mode, it.cached_psn, &rb);
          reply_bytes += rb;
          ObjectLockOutcome o;
          if (r.ok()) {
            o.reply = std::move(r.value());
          } else {
            o.status = r.status();
          }
          out.push_back(std::move(o));
        }
        rep->SetBatch(MessageType::kLockReply, items.size(), reply_bytes);
        return out;
      });
}

Result<ObjectLockReply> Server::LockObjectInternal(ClientId client,
                                                   ObjectId oid, LockMode mode,
                                                   Psn cached_psn,
                                                   size_t* reply_bytes) {
  metrics_->Add(Counter::kServerLockRequests);

  FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(oid.page));
  FINELOG_RETURN_IF_ERROR(CheckPageReachable(oid.page, client));

  // Resolve conflicts; de-escalations can surface new object conflicts, so
  // iterate until the request is clean.
  std::vector<XCallbackInfo> x_callbacks;
  for (int round = 0;; ++round) {
    std::vector<CallbackAction> actions = glm_.RequiredForObject(client, oid, mode);
    if (actions.empty()) break;
    if (round >= 8) {
      return Status::WouldBlock(WouldBlockReason::kLockConflict,
                                "lock conflict not resolved");
    }
    FINELOG_RETURN_IF_ERROR(ExecuteCallbacks(actions, &x_callbacks));
  }

  glm_.GrantObject(client, oid, mode);
  auto frame = GetPage(oid.page);
  if (!frame.ok()) {
    return frame.status();
  }
  Page& page = frame.value()->page;
  if (mode == LockMode::kExclusive) {
    // Hand-off entries for "ghost writers": clients with unflushed updates
    // (a DCT entry) but no remaining lock on the object -- e.g. a client
    // whose lock claim was rejected during restart. Without a callback log
    // record their later replay could resurrect a superseded value. The
    // recorded PSN is the server copy's *current* PSN: everything such a
    // client ever contributed is in this lineage (its hand-off shipped it,
    // or a restart replay re-merged it), so records below this PSN are
    // superseded once the requester updates the object.
    for (const DctEntry& e : dct_.EntriesForPage(oid.page)) {
      if (e.client == client || e.psn == kNullPsn) continue;
      bool already = false;
      for (const auto& info : x_callbacks) {
        if (info.responder == e.client) already = true;
      }
      if (!already && !glm_.HoldsObject(e.client, oid, LockMode::kShared)) {
        x_callbacks.push_back(XCallbackInfo{e.client, oid, page.psn()});
      }
    }
  }

  if (mode == LockMode::kExclusive && !dct_.Get(oid.page, client)) {
    // First exclusive grant: remember the PSN (Section 3.2). The client's
    // cached copy PSN if it has the page, else the PSN of the copy we are
    // about to send.
    dct_.Insert(oid.page, client,
                cached_psn != kNullPsn ? cached_psn : page.psn());
  }

  ObjectLockReply reply;
  reply.server_psn = page.psn();
  reply.x_callbacks = std::move(x_callbacks);
  if (cached_psn != kNullPsn) {
    // Client has the page: refresh just the object (fine-granularity
    // transfer).
    if (page.SlotExists(oid.slot)) {
      auto data = page.ReadObject(oid.slot);
      if (!data.ok()) return data.status();
      reply.object_image = std::move(data).value();
    } else {
      reply.object_present = false;
    }
    *reply_bytes =
        kSmallMsg + (reply.object_image ? reply.object_image->size() : 0);
  } else {
    reply.page_image = page.raw();
    reply.object_present = page.SlotExists(oid.slot);
    *reply_bytes = kSmallMsg + reply.page_image->size();
  }
  return reply;
}

Result<PageLockReply> Server::LockPage(ClientId client, PageId pid,
                                       LockMode mode, Psn cached_psn) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "lock_page", client,
               MessageType::kLockRequest, 1, kSmallMsg),
      [&](RpcReply* rep) -> Result<PageLockReply> {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        return LockPageBody(client, pid, mode, cached_psn, rep);
      });
}

Result<PageLockReply> Server::LockPageBody(ClientId client, PageId pid,
                                           LockMode mode, Psn cached_psn,
                                           RpcReply* rep) {
  metrics_->Add(Counter::kServerLockRequests);

  if (Status rec = EnsurePageRecovered(pid); !rec.ok()) {
    rep->Set(MessageType::kLockReply, kSmallMsg);
    return rec;
  }
  if (Status reach = CheckPageReachable(pid, client); !reach.ok()) {
    rep->Set(MessageType::kLockReply, kSmallMsg);
    return reach;
  }

  std::vector<XCallbackInfo> x_callbacks;
  for (int round = 0;; ++round) {
    std::vector<CallbackAction> actions = glm_.RequiredForPage(client, pid, mode);
    if (actions.empty()) break;
    if (round >= 8) {
      rep->Set(MessageType::kLockReply, kSmallMsg);
      return Status::WouldBlock(WouldBlockReason::kLockConflict,
                                "lock conflict not resolved");
    }
    Status st = ExecuteCallbacks(actions, &x_callbacks);
    if (!st.ok()) {
      rep->Set(MessageType::kLockReply, kSmallMsg);
      return st;
    }
  }

  glm_.GrantPage(client, pid, mode);
  auto frame = GetPage(pid);
  if (!frame.ok()) {
    rep->Set(MessageType::kLockReply, kSmallMsg);
    return frame.status();
  }
  Page& page = frame.value()->page;
  if (mode == LockMode::kExclusive) {
    // Ghost-writer hand-off entries (see LockObject); a page grant covers
    // every object, hence the sentinel slot.
    for (const DctEntry& e : dct_.EntriesForPage(pid)) {
      if (e.client == client || e.psn == kNullPsn) continue;
      bool already = false;
      for (const auto& info : x_callbacks) {
        if (info.responder == e.client) already = true;
      }
      if (!already) {
        x_callbacks.push_back(
            XCallbackInfo{e.client, ObjectId{pid, kInvalidSlotId}, page.psn()});
      }
    }
  }

  if (mode == LockMode::kExclusive && !dct_.Get(pid, client)) {
    dct_.Insert(pid, client, cached_psn != kNullPsn ? cached_psn : page.psn());
  }

  PageLockReply reply;
  reply.server_psn = page.psn();
  reply.x_callbacks = std::move(x_callbacks);
  // A page grant always ships the server's current copy: conflicting
  // holders just merged their updates into it, and the requester's cached
  // copy (if any) may be stale for objects it holds no locks on.
  reply.page_image = page.raw();
  rep->Set(MessageType::kLockReply, kSmallMsg + reply.page_image->size());
  return reply;
}

Result<PageFetchReply> Server::FetchPage(ClientId client, PageId pid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "fetch_page", client,
               MessageType::kPageFetch, 1, kSmallMsg),
      [&](RpcReply* rep) -> Result<PageFetchReply> {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        size_t reply_bytes = 0;
        auto reply = FetchPageInternal(client, pid, &reply_bytes);
        if (!reply.ok()) return reply.status();  // Errors send no reply.
        rep->Set(MessageType::kPageReply, reply_bytes);
        return reply;
      });
}

Result<std::vector<PageFetchReply>> Server::FetchPages(
    ClientId client, const std::vector<PageId>& pids) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  if (pids.empty()) return std::vector<PageFetchReply>{};
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "fetch_page", client,
               MessageType::kPageFetch, pids.size(), pids.size() * kSmallMsg),
      [&](RpcReply* rep) -> Result<std::vector<PageFetchReply>> {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        size_t reply_bytes = 0;
        std::vector<PageFetchReply> out;
        out.reserve(pids.size());
        for (PageId pid : pids) {
          size_t rb = 0;
          auto r = FetchPageInternal(client, pid, &rb);
          if (!r.ok()) return r.status();  // Errors send no reply.
          reply_bytes += rb;
          out.push_back(std::move(r.value()));
        }
        rep->SetBatch(MessageType::kPageReply, pids.size(), reply_bytes);
        return out;
      });
}

Result<PageFetchReply> Server::FetchPageInternal(ClientId client, PageId pid,
                                                 size_t* reply_bytes) {
  FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(pid));
  auto frame = GetPage(pid);
  if (!frame.ok()) return frame.status();
  PageFetchReply reply;
  reply.page_image = frame.value()->page.raw();
  auto entry = dct_.Get(pid, client);
  reply.dct_psn = entry ? entry->psn : kNullPsn;
  *reply_bytes = reply.page_image.size() + kSmallMsg;
  metrics_->Add(Counter::kServerPageFetches);
  return reply;
}

Status Server::ShipPage(ClientId client, const ShippedPage& page) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "ship_page", client,
               MessageType::kPageShip, 1, page.wire_size()),
      [&](RpcReply* rep) -> Status {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(page.page));
        FINELOG_RETURN_IF_ERROR(ApplyShippedPage(client, page));
        rep->Set(MessageType::kPageShipAck, kSmallMsg);
        return Status::OK();
      });
}

Status Server::ShipPages(ClientId client,
                         const std::vector<ShippedPage>& pages) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  if (pages.empty()) return Status::OK();
  size_t bytes = 0;
  for (const ShippedPage& p : pages) bytes += p.wire_size();
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "ship_page", client,
               MessageType::kPageShip, pages.size(), bytes),
      [&](RpcReply* rep) -> Status {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        for (const ShippedPage& p : pages) {
          FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(p.page));
          FINELOG_RETURN_IF_ERROR(ApplyShippedPage(client, p));
        }
        rep->SetBatch(MessageType::kPageShipAck, pages.size(), kSmallMsg);
        return Status::OK();
      });
}

FINELOG_REPLAY_PATH("formats a fresh page whose PSN lineage lives in the "
                    "space map; the allocating client logs from there on")
Result<AllocReply> Server::AllocatePage(ClientId client) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "alloc_page", client,
               MessageType::kAllocRequest, 1, kSmallMsg),
      [&](RpcReply* rep) -> Result<AllocReply> {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        auto alloc = space_map_->AllocatePage();
        if (!alloc.ok()) return alloc.status();
        // A freed-then-reused page id may still owe lazy restart repair;
        // retire that debt before installing the fresh image, or the
        // background sweep would later "repair" the reborn page back to
        // its pre-crash contents.
        FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(alloc.value().page));
        Page page(config_.page_size);
        page.Format(alloc.value().page, alloc.value().initial_psn);
        auto put = pool_->Put(alloc.value().page, page, EvictHandler());
        if (!put.ok()) return put.status();
        put.value()->dirty = true;
        // The allocating client starts with a page-level exclusive lock.
        glm_.GrantPage(client, alloc.value().page, LockMode::kExclusive);
        dct_.Insert(alloc.value().page, client, alloc.value().initial_psn);
        AllocReply reply;
        reply.page = alloc.value().page;
        reply.page_image = page.raw();
        rep->Set(MessageType::kAllocReply,
                 reply.page_image.size() + kSmallMsg);
        metrics_->Add(Counter::kServerAllocations);
        return reply;
      });
}

Status Server::ForcePage(ClientId client, PageId pid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "force_page", client,
               MessageType::kForcePageRequest, 1, kSmallMsg),
      [&](RpcReply* rep) -> Status {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(pid));
        metrics_->Add(Counter::kServerForcePageRequests);
        if (BufferPool::Frame* frame = pool_->Get(pid)) {
          if (frame->dirty) {
            FINELOG_RETURN_IF_ERROR(WritePageToDisk(pid, *frame));
          }
        } else {
          // Already flushed at eviction time; re-notify so the requester can
          // advance its DPT even if it missed the original notification.
          auto entry = dct_.Get(pid, client);
          auto cit = clients_.find(client);
          if (cit != clients_.end()) {
            rpc_->Send(
                MakeOpts(RpcDir::kServerToClient, "flush_notify", client,
                         MessageType::kFlushNotify, 1, kSmallMsg),
                [&] {
                  cit->second->HandleFlushNotify(pid,
                                                 entry ? entry->psn : kNullPsn);
                });
          }
        }
        rep->Set(MessageType::kForcePageReply, kSmallMsg);
        return Status::OK();
      });
}

Status Server::ReleaseLocks(ClientId client,
                            const std::vector<ObjectId>& objects,
                            const std::vector<PageId>& pages) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "release_locks", client,
               MessageType::kLockRequest,
               1, objects.size() * 8 + pages.size() * 4 + kSmallMsg),
      [&](RpcReply* rep) -> Status {
        return ReleaseLocksBody(client, objects, pages, rep);
      });
}

Status Server::ReleaseLocksBody(ClientId client,
                                const std::vector<ObjectId>& objects,
                                const std::vector<PageId>& pages,
                                RpcReply* rep) {
  FINELOG_RETURN_IF_ERROR(MastershipAdmission());
  FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
  for (const ObjectId& oid : objects) {
    glm_.ReleaseObject(client, oid);
  }
  for (PageId pid : pages) {
    glm_.ReleasePage(client, pid);
  }
  // Entries whose pages are already on disk can now leave the DCT (the
  // client renounced its update authority).
  for (const DctEntry& e : dct_.EntriesForClient(client)) {
    bool still_locked = glm_.HoldsPage(client, e.page, LockMode::kShared);
    if (!still_locked) {
      for (const ObjectId& oid : glm_.ExclusiveObjectLocksOf(client)) {
        if (oid.page == e.page) still_locked = true;
      }
    }
    // A page still owing lazy restart repair keeps its entries -- the PSN
    // is the baseline the pending replay starts from -- so the recovery
    // state is consulted before the pool (recovery-guard discipline).
    if (PageRecoveryPending(e.page)) continue;
    BufferPool::Frame* f = pool_->Peek(e.page);
    bool unflushed = f != nullptr && f->dirty;
    if (!still_locked && !unflushed && e.psn != kNullPsn) {
      // Everything the client contributed has reached the disk.
      dct_.Remove(e.page, client);
    }
  }
  rep->Set(MessageType::kLockReply, kSmallMsg);
  metrics_->Add(Counter::kServerLockReleases);
  return Status::OK();
}

Status Server::CommitShipLogs(ClientId client, size_t log_bytes) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "commit_ship_logs", client,
               MessageType::kCommitShipLogs, 1, log_bytes),
      [&](RpcReply* rep) -> Status {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        // ARIES/CSA: the server forces the shipped records to its log before
        // acknowledging. The records themselves are not interpreted (the
        // client retains its own copy); only the durability cost is
        // modelled.
        channel_->clock()->Advance(channel_->costs().log_force_us);
        metrics_->Add(Counter::kServerCommitLogShips);
        rep->Set(MessageType::kCommitAck, kSmallMsg);
        return Status::OK();
      });
}

Status Server::CommitShipPages(ClientId client,
                               const std::vector<ShippedPage>& pages) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  size_t bytes = 0;
  for (const ShippedPage& p : pages) bytes += p.wire_size();
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "commit_ship_pages", client,
               MessageType::kCommitShipPages, 1, bytes),
      [&](RpcReply* rep) -> Status {
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        for (const ShippedPage& p : pages) {
          FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(p.page));
          FINELOG_RETURN_IF_ERROR(ApplyShippedPage(client, p));
        }
        channel_->clock()->Advance(channel_->costs().log_force_us);
        metrics_->Add(Counter::kServerCommitPageShips);
        rep->Set(MessageType::kCommitAck, kSmallMsg);
        return Status::OK();
      });
}

Result<TokenReply> Server::AcquireToken(ClientId client, PageId pid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "acquire_token", client,
               MessageType::kTokenRequest, 1, kSmallMsg),
      [&](RpcReply* rep) -> Result<TokenReply> {
        return AcquireTokenBody(client, pid, rep);
      });
}

Result<TokenReply> Server::AcquireTokenBody(ClientId client, PageId pid,
                                            RpcReply* rep) {
  FINELOG_RETURN_IF_ERROR(MastershipAdmission());
  FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
  FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(pid));
  metrics_->Add(Counter::kServerTokenRequests);
  auto it = token_holder_.find(pid);
  if (it != token_holder_.end() && it->second == client) {
    rep->Set(MessageType::kTokenReply, kSmallMsg);
    return TokenReply{};
  }
  if (it != token_holder_.end()) {
    ClientId holder = it->second;
    if (ClientUnreachable(holder)) {
      rep->Set(MessageType::kTokenReply, kSmallMsg);
      return Status::WouldBlock(WouldBlockReason::kCrashedDependency,
                                "token holder unreachable");
    }
    auto shipped = rpc_->Call(
        MakeOpts(RpcDir::kServerToClient, "token_recall", holder,
                 MessageType::kTokenRecall, 1, kSmallMsg),
        [&](RpcReply* recall_rep) -> Result<ShippedPage> {
          auto sp = clients_.at(holder)->HandleTokenRecall(pid);
          if (sp.ok()) {
            recall_rep->Set(MessageType::kTokenRecallReply,
                            sp.value().wire_size());
          }
          return sp;
        });
    if (!shipped.ok()) {
      rep->Set(MessageType::kTokenReply, kSmallMsg);
      return shipped.status();
    }
    if (!shipped.value().image.empty()) {
      FINELOG_RETURN_IF_ERROR(ApplyShippedPage(holder, shipped.value()));
    }
    metrics_->Add(Counter::kServerTokenTransfers);
  }
  token_holder_[pid] = client;
  TokenReply reply;
  auto frame = GetPage(pid);
  if (frame.ok()) {
    reply.page_image = frame.value()->page.raw();
  }
  rep->Set(MessageType::kTokenReply,
           kSmallMsg + (reply.page_image ? reply.page_image->size() : 0));
  return reply;
}

Status Server::TakeCheckpoint() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  LogRecord rec = LogRecord::ServerCheckpoint(dct_.All());
  auto lsn = log_->Append(rec);
  if (!lsn.ok()) return lsn.status();
  FINELOG_RETURN_IF_ERROR(log_->Force());
  channel_->clock()->Advance(channel_->costs().log_force_us);
  FINELOG_RETURN_IF_ERROR(log_->SetCheckpointLsn(lsn.value()));
  metrics_->Add(Counter::kServerCheckpoints);
  ReplicateCheckpoint();
  return Status::OK();
}

Status Server::TakeSynchronizedCheckpoint() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  // ARIES/CSA-style: synchronous round trip with every connected client
  // before the checkpoint record is written (Section 4.1).
  for (const auto& [id, ep] : clients_) {
    if (ClientUnreachable(id)) continue;
    ClientEndpoint* endpoint = ep;
    Status st = rpc_->Call(
        MakeOpts(RpcDir::kServerToClient, "checkpoint_sync", id,
                 MessageType::kCheckpointSync, 1, kSmallMsg),
        [&](RpcReply* rep) -> Status {
          FINELOG_RETURN_IF_ERROR(endpoint->HandleCheckpointSync());
          rep->Set(MessageType::kCheckpointSyncReply, kSmallMsg);
          return Status::OK();
        });
    FINELOG_RETURN_IF_ERROR(st);
  }
  metrics_->Add(Counter::kServerSyncCheckpoints);
  return TakeCheckpoint();
}

Status Server::DeallocatePage(PageId pid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  // Refuse while any client could still reference the page.
  if (dct_.HasPage(pid)) {
    return Status::FailedPrecondition("page has dirty client entries");
  }
  for (const auto& [cid, ep] : clients_) {
    (void)ep;
    if (!glm_.ExclusiveObjectLocksOf(cid).empty()) {
      for (const ObjectId& oid : glm_.ExclusiveObjectLocksOf(cid)) {
        if (oid.page == pid) {
          return Status::FailedPrecondition("page is exclusively locked");
        }
      }
    }
    for (PageId p : glm_.ExclusivePageLocksOf(cid)) {
      if (p == pid) {
        return Status::FailedPrecondition("page is exclusively locked");
      }
    }
  }
  Psn final_psn;
  if (BufferPool::Frame* frame = pool_->Peek(pid)) {
    final_psn = frame->page.psn();
    pool_->Drop(pid);
  } else {
    Page page(config_.page_size);
    if (disk_->ReadPage(pid, &page).ok()) final_psn = page.psn();
  }
  metrics_->Add(Counter::kServerDeallocations);
  return space_map_->DeallocatePage(pid, final_psn);
}

Status Server::FlushAllPages() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  for (PageId pid : pool_->PageIds()) {
    BufferPool::Frame* frame = pool_->Peek(pid);
    if (frame != nullptr && frame->dirty) {
      FINELOG_RETURN_IF_ERROR(WritePageToDisk(pid, *frame));
    }
  }
  return Status::OK();
}

Result<DctSnapshot> Server::RecGetMyDct(ClientId client) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "rec_get_dct", client,
               MessageType::kRecGetDct, 1, kSmallMsg, /*recovery_plane=*/true),
      [&](RpcReply* rep) -> Result<DctSnapshot> {
        liveness_.OpenRecoveryWindow(client);
        DctSnapshot snap;
        snap.authoritative = dct_authoritative_;
        snap.entries = dct_.EntriesForClient(client);
        rep->Set(MessageType::kRecDctReply,
                 snap.entries.size() * 24 + kSmallMsg);
        return snap;
      });
}

Result<ClientRecoveryState> Server::RecGetMyXLocks(ClientId client) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "rec_get_xlocks", client,
               MessageType::kRecXLocksFetch, 1, kSmallMsg,
               /*recovery_plane=*/true),
      [&](RpcReply* rep) -> Result<ClientRecoveryState> {
        liveness_.OpenRecoveryWindow(client);
        ClientRecoveryState state;
        for (const ObjectId& oid : glm_.ExclusiveObjectLocksOf(client)) {
          state.object_locks.emplace_back(oid, LockMode::kExclusive);
        }
        for (PageId pid : glm_.ExclusivePageLocksOf(client)) {
          state.page_locks.emplace_back(pid, LockMode::kExclusive);
        }
        rep->Set(MessageType::kRecXLocksReply,
                 state.object_locks.size() * 8 + state.page_locks.size() * 8 +
                     kSmallMsg);
        return state;
      });
}

Result<ClientRecoveryState> Server::RecInstallLocks(
    ClientId client, const std::vector<ObjectId>& objects,
    const std::vector<PageId>& pages) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "rec_install_locks", client,
               MessageType::kRecXLocksFetch, 1,
               objects.size() * 8 + pages.size() * 8 + kSmallMsg,
               /*recovery_plane=*/true),
      [&](RpcReply* rep) -> Result<ClientRecoveryState> {
        liveness_.OpenRecoveryWindow(client);
        ClientRecoveryState accepted;
        for (const ObjectId& oid : objects) {
          // A conflicting lock held by another client proves this claim is
          // an over-claim (the crashed client's lock was called back or
          // downgraded before the failure).
          if (!glm_.RequiredForObject(client, oid, LockMode::kExclusive)
                   .empty()) {
            continue;
          }
          glm_.GrantObject(client, oid, LockMode::kExclusive);
          accepted.object_locks.emplace_back(oid, LockMode::kExclusive);
        }
        for (PageId pid : pages) {
          if (!glm_.RequiredForPage(client, pid, LockMode::kExclusive)
                   .empty()) {
            continue;
          }
          glm_.GrantPage(client, pid, LockMode::kExclusive);
          accepted.page_locks.emplace_back(pid, LockMode::kExclusive);
        }
        rep->Set(MessageType::kRecXLocksReply, kSmallMsg);
        return accepted;
      });
}

Result<PageFetchReply> Server::RecFetchPage(ClientId client, PageId pid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "rec_fetch_page", client,
               MessageType::kRecPageFetch, 1, kSmallMsg,
               /*recovery_plane=*/true),
      [&](RpcReply* rep) -> Result<PageFetchReply> {
        return RecFetchPageBody(client, pid, rep);
      });
}

FINELOG_REPLAY_PATH("recovery plane: reconstructs a never-flushed page "
                    "from its space-map allocation PSN (Section 2 / [18])")
Result<PageFetchReply> Server::RecFetchPageBody(ClientId client, PageId pid,
                                                RpcReply* rep) {
  liveness_.OpenRecoveryWindow(client);
  // Lazy restart: the base image a restarting client replays onto must
  // already carry every other client's restart repair for this page.
  FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(pid));
  metrics_->Add(Counter::kServerRecoveryPageFetches);
  PageFetchReply reply;
  auto frame = GetPage(pid);
  if (frame.ok()) {
    reply.page_image = frame.value()->page.raw();
  } else if (frame.status().IsNotFound()) {
    // The page never reached the server disk and no copy survives: recovery
    // rebuilds it from a freshly formatted page seeded with the allocation
    // PSN from the space map (Section 2 / [18]).
    auto base = space_map_->BasePsn(pid);
    if (!base.ok()) return base.status();
    Page page(config_.page_size);
    page.Format(pid, base.value());
    reply.page_image = page.raw();
  } else {
    return frame.status();
  }
  auto entry = dct_.Get(pid, client);
  if (entry && entry->psn != kNullPsn) {
    reply.dct_psn = entry->psn;
  } else {
    // No reconstructed evidence for this client: the on-disk PSN is the
    // honest redo baseline (everything at or past it must be replayed).
    Page disk_page(config_.page_size);
    Status st = disk_->ReadPage(pid, &disk_page);
    if (st.ok()) {
      reply.dct_psn = disk_page.psn();
    } else {
      auto base = space_map_->BasePsn(pid);
      reply.dct_psn = base.ok() ? base.value() : kNullPsn;
    }
  }
  rep->Set(MessageType::kRecPageReply, reply.page_image.size() + kSmallMsg);
  return reply;
}

Status Server::RecComplete(ClientId client) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  // Request-only exchange: completion is announced, never acknowledged.
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "rec_complete", client,
               MessageType::kRecGetDct, 1, kSmallMsg,
               /*recovery_plane=*/true),
      [&](RpcReply*) -> Status {
        crashed_clients_.erase(client);
        // The standby's crashed set (seeded by the same harness hooks) must
        // not outlive this recovery, or a later takeover would treat the
        // operational client as still down and drop its lock state.
        ReplicateClientOperational(client);
        liveness_.CloseRecoveryWindow(client);
        if (liveness_.IsPresumedDead(client)) {
          // Balance the declaration with a durable clearing record *before*
          // lifting the quarantine, so a server restart between the two
          // cannot resurrect a stale presumed-dead status.
          FINELOG_RETURN_IF_ERROR(
              AppendMembershipRecord(client, /*presumed_dead=*/false));
          liveness_.MarkRecovered(client, channel_->clock()->now_us());
          metrics_->Add(Counter::kLivenessRecoveredZombies);
        }
        if (crashed_clients_.empty() && !liveness_.AnyPresumedDead()) {
          dct_authoritative_ = true;
        }
        // Retry page recoveries that were waiting on this client
        // (Section 3.5).
        std::vector<std::pair<ClientId, PageId>> pending;
        pending.swap(deferred_recoveries_);
        for (const auto& [c, p] : pending) {
          // Lazy restart: the page's remaining task list (other clients'
          // pulls/replays) must run before this pair's deferred replay, or
          // the replay would merge onto an unrepaired base.
          if (PageRecoveryPending(p)) {
            Status pre = AttemptPageRepair(p, /*demand=*/true);
            if (pre.IsWouldBlock()) {
              deferred_recoveries_.emplace_back(c, p);
              continue;
            } else if (!pre.ok()) {
              return pre;
            }
          }
          Status st = CoordinatePageRecovery(p, c);
          if (st.IsCrashed() || st.IsWouldBlock()) {
            deferred_recoveries_.emplace_back(c, p);
          } else if (!st.ok()) {
            return st;
          }
        }
        return Status::OK();
      });
}

Status Server::Heartbeat(ClientId client) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "heartbeat", client,
               MessageType::kHeartbeat, 1, kSmallMsg),
      [&](RpcReply* rep) -> Status {
        metrics_->Add(Counter::kLivenessHeartbeatsReceived);
        FINELOG_RETURN_IF_ERROR(MastershipAdmission());
        FINELOG_RETURN_IF_ERROR(LivenessAdmission(client));
        rep->Set(MessageType::kHeartbeatAck, kSmallMsg);
        return Status::OK();
      });
}

Status Server::LivenessAdmission(ClientId client) {
  if (!liveness_enabled()) return Status::OK();
  // An admitted request is proof of life: renew the caller *before* the
  // expiry sweep, so a lease that lapsed while this request was in flight
  // (real-clock scheduling or IO delay; impossible under the simulated
  // clock, where the client self-fences first) cannot get the sender
  // itself declared dead. Nothing is given away until a declaration runs,
  // so the renewal is safe -- and it cannot resurrect an already-declared
  // zombie, because Renew no-ops on presumed-dead clients until crash
  // recovery clears the flag.
  liveness_.Renew(client, channel_->clock()->now_us());
  FINELOG_RETURN_IF_ERROR(CheckLeases());
  if (liveness_.IsPresumedDead(client) &&
      !liveness_.InRecoveryWindow(client)) {
    // Zombie: the pre-expiry incarnation's epoch is already fenced at the
    // RPC layer; a fresh request that does reach us is rejected with a
    // distinguishable status until the client runs crash recovery.
    metrics_->Add(Counter::kLivenessZombieFenced);
    return Status::WouldBlock(WouldBlockReason::kZombieFenced,
                              "client presumed dead; crash recovery required");
  }
  return Status::OK();
}

Status Server::CheckLeases() {
  for (ClientId id : liveness_.CollectExpired(channel_->clock()->now_us())) {
    metrics_->Add(Counter::kLivenessLeaseExpiries);
    FINELOG_RETURN_IF_ERROR(DeclarePresumedDead(id));
  }
  return Status::OK();
}

Status Server::DeclarePresumedDead(ClientId id) {
  if (config_.fault_injector != nullptr &&
      config_.fault_injector->Evaluate("liveness.server.expire", 0, false)
              .action != FaultAction::kNone) {
    // Armed suppression models a distracted watchdog: the declaration is
    // skipped this round; the lease stays expired, so a later check retries.
    return Status::OK();
  }
  // The membership change is durable before any lock state is given away: a
  // server crash after this point re-quarantines the client's dirty pages
  // from the log alone.
  FINELOG_RETURN_IF_ERROR(AppendMembershipRecord(id, /*presumed_dead=*/true));
  liveness_.MarkPresumedDead(id);
  metrics_->Add(Counter::kLivenessPresumedDead);
  // Fence the zombie: bump the session epoch so ghosts and retries from the
  // pre-expiry incarnation are dropped at the RPC layer.
  rpc_->BumpEpoch(id);

  // Same treatment as an announced crash (Section 3.3): shared locks are
  // released and update tokens revoked...
  glm_.ReleaseSharedLocksOf(id);
  for (auto it = token_holder_.begin(); it != token_holder_.end();) {
    if (it->second == id) {
      it = token_holder_.erase(it);
    } else {
      ++it;
    }
  }
  // ...and exclusive locks on pages with no unflushed updates by `id` (no
  // DCT entry) are reclaimed outright: nothing unrecovered depends on them,
  // so survivors may use those pages immediately. Exclusive locks covering
  // DCT-dirty pages are retained: those pages stay quarantined until the
  // zombie's crash recovery replays or discards its updates
  // (CheckPageReachable).
  for (const ObjectId& oid : glm_.ExclusiveObjectLocksOf(id)) {
    if (!dct_.Get(oid.page, id).has_value()) glm_.ReleaseObject(id, oid);
  }
  for (PageId pid : glm_.ExclusivePageLocksOf(id)) {
    if (!dct_.Get(pid, id).has_value()) glm_.ReleasePage(id, pid);
  }
  return Status::OK();
}

Status Server::AppendMembershipRecord(ClientId member, bool presumed_dead) {
  LogRecord rec = LogRecord::Membership(member, presumed_dead);
  auto lsn = log_->Append(rec);
  if (!lsn.ok()) return lsn.status();
  FINELOG_RETURN_IF_ERROR(log_->Force());
  channel_->clock()->Advance(channel_->costs().log_force_us);
  // Membership is the standby's hottest input: mirror the record right
  // after the force, so a takeover can fence the declared-dead sessions
  // before its own membership replay confirms them.
  ReplicateMembership(member, presumed_dead);
  return Status::OK();
}

// Hot standby / mastership (DESIGN.md section 19) -----------------------------

void Server::ConfigureMastership(int node, MastershipTable* table,
                                 Server* peer) {
  node_id_ = node;
  mastership_ = table;
  peer_ = peer;
}

Status Server::AcquireMastership() {
  SimMutexLock lock(mu_);
  if (mastership_ == nullptr) {
    return Status::FailedPrecondition("mastership not configured");
  }
  auto grant = mastership_->Acquire(node_id_, channel_->clock()->now_us());
  if (!grant.ok()) return grant.status();
  mastership_epoch_ = grant.value().epoch;
  mastership_valid_until_ = grant.value().valid_until_us;
  return Status::OK();
}

Status Server::MastershipAdmission() {
  if (mastership_ == nullptr) return Status::OK();
  const uint64_t now = channel_->clock()->now_us();
  auto grant = mastership_->Renew(node_id_, now);
  if (grant.ok()) {
    mastership_epoch_ = grant.value().epoch;
    mastership_valid_until_ = grant.value().valid_until_us;
    return Status::OK();
  }
  if (grant.status().IsWouldBlock() &&
      grant.status().would_block_reason() == WouldBlockReason::kRpcTimeout &&
      mastership_epoch_ != 0 && now < mastership_valid_until_) {
    // Partitioned from the arbiter: lease non-overlap lets the incumbent
    // keep serving up to its locally known horizon -- the arbiter cannot
    // grant a successor an overlapping lease, so no second master exists
    // before that horizon passes.
    return Status::OK();
  }
  // Deposed (another node holds the lease), or the local horizon passed
  // while partitioned: self-fence. Every grant this node could issue from
  // here on would belong to a dead epoch.
  mastership_epoch_ = 0;
  mastership_valid_until_ = 0;
  metrics_->Add(Counter::kFailoverDeposedFenced);
  return Status::WouldBlock(WouldBlockReason::kFailoverInProgress,
                            "node is not the serving master");
}

Result<uint64_t> Server::FailoverProbe(ClientId client) {
  // The probe follows the standard endpoint protocol -- mu_ taken on the
  // calling thread, held cooperatively across the park -- because the
  // reactor must never acquire a node capability inside a frame body (the
  // holder's own frame could be queued behind it: priority inversion until
  // the holder's timeout). But unlike data endpoints, a probe can escalate
  // into a takeover whose Rec sweep re-enters every client inline on the
  // reactor, while peer probers are blocked right here on mu_. Releasing
  // the prober's own gate for the whole probe (not just the parked frame)
  // keeps those blocked peers from wedging the sweep.
  GateGuard gate(rpc_->transport(), client);
  SimMutexLock lock(mu_);
  if (halted_) return Status::Crashed("standby node down");
  if (mastership_ == nullptr) {
    return Status::FailedPrecondition("mastership not configured");
  }
  return rpc_->Call(
      MakeOpts(RpcDir::kClientToServer, "failover_probe", client,
               MessageType::kFailoverProbe, 1, kSmallMsg),
      [&](RpcReply* rep) -> Result<uint64_t> {
        // The body may escalate into TakeOver -> Restart, whose Rec sweep
        // re-enters this node's endpoints from client handlers (a fetched
        // page ships back through ShipPage). Those re-entries must see the
        // executing thread as mu_'s owner -- in real-clock mode that is the
        // reactor, while the parked prober is the nominal holder.
        SimMutexAdopt adopt(mu_);
        metrics_->Add(Counter::kFailoverProbes);
        rep->Set(MessageType::kFailoverProbeReply, kSmallMsg);
        const uint64_t now = channel_->clock()->now_us();
        if (!crashed_) {
          // Already serving (the probe raced a recovery, or the client's
          // timeout was spurious): renewing confirms the epoch.
          auto renewed = mastership_->Renew(node_id_, now);
          if (renewed.ok()) {
            mastership_epoch_ = renewed.value().epoch;
            mastership_valid_until_ = renewed.value().valid_until_us;
            return mastership_epoch_;
          }
        }
        auto grant = mastership_->Acquire(node_id_, now);
        if (!grant.ok()) {
          // The incumbent's lease is still valid: this IS the mastership
          // gap the client sits out (kFailoverInProgress).
          if (grant.status().IsFailoverInProgress()) {
            metrics_->Add(Counter::kFailoverBlocked);
          }
          return grant.status();
        }
        FINELOG_RETURN_IF_ERROR(TakeOver(grant.value()));
        return grant.value().epoch;
      });
}

Status Server::TakeOver(const MastershipTable::Grant& grant) {
  // Reopen the store fresh: the deposed peer wrote through its own handles,
  // so inherited (or never-opened) handles could serve stale bytes.
  // DiskManager::Open also resolves any torn write the dead primary left in
  // the doublewrite journal.
  FINELOG_ASSIGN_OR_RETURN(
      disk_, DiskManager::Open(config_.dir + "/db.pages", config_.page_size,
                               DiskIo()));
  FINELOG_ASSIGN_OR_RETURN(
      space_map_,
      SpaceMap::Open(config_.dir + "/db.spacemap", config_.num_pages));
  FINELOG_ASSIGN_OR_RETURN(
      log_, LogManager::Open(config_.dir + "/server.log", 0, LogIo()));
  store_open_ = true;
  pool_->Clear();
  glm_.Clear();
  dct_.Clear();
  token_holder_.clear();
  page_rec_.clear();
  rec_priority_.clear();
  repair_depth_ = 0;
  restart_begin_us_ = 0;
  halted_ = false;
  mastership_epoch_ = grant.epoch;
  mastership_valid_until_ = grant.valid_until_us;
  metrics_->Add(Counter::kFailoverTakeovers);
  // Fence the deposed epoch before admission opens: sessions of clients the
  // old primary declared dead (known from the replication mirror) must not
  // slip a ghost in before the authoritative membership replay (Restart
  // step 0) re-derives and re-fences the same set from the shared log.
  for (ClientId id : repl_dead_) rpc_->BumpEpoch(id);
  // Restart recovery (Sections 3.4-3.5): reconstructs the DCT from the
  // durable store plus the clients' logs, honoring instant_restart so
  // admission can open before every page is repaired. RestartLocked, not
  // Restart: mu_ is already held (cooperatively by the parked prober in
  // real-clock mode, where re-acquiring would deadlock the reactor).
  return RestartLocked();
}

Status Server::StepDown() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  if (mastership_ == nullptr || mastership_epoch_ == 0) {
    return Status::FailedPrecondition("not the serving master");
  }
  // Hand the lease back first: the successor's Acquire then needs no wait
  // (the epoch still advances, so the handover is fenced like any other).
  mastership_->Release(node_id_);
  FINELOG_RETURN_IF_ERROR(DropVolatileState());
  // Unlike a crash, a stepped-down node remains a probeable cold standby.
  // (kFailoverSwitchovers is counted by the router when its table flips.)
  halted_ = false;
  return Status::OK();
}

void Server::ReplicateMembership(ClientId member, bool presumed_dead) {
  if (peer_ == nullptr || mastership_ == nullptr) return;
  Server* peer = peer_;
  const uint64_t epoch = mastership_epoch_;
  rpc_->Send(MakeOpts(RpcDir::kClientToServer, "standby_membership", kServerId,
                      MessageType::kStandbyMembership, 1, kSmallMsg),
             [&] { peer->ApplyReplicatedMembership(member, presumed_dead,
                                                   epoch); });
  metrics_->Add(Counter::kFailoverReplRecordsShipped);
}

void Server::ReplicateCheckpoint() {
  if (peer_ == nullptr || mastership_ == nullptr) return;
  Server* peer = peer_;
  const uint64_t epoch = mastership_epoch_;
  rpc_->Send(MakeOpts(RpcDir::kClientToServer, "standby_checkpoint", kServerId,
                      MessageType::kStandbyCheckpoint, 1, kSmallMsg),
             [&] { peer->ApplyReplicatedCheckpoint(epoch); });
  metrics_->Add(Counter::kFailoverReplRecordsShipped);
}

void Server::ApplyReplicatedMembership(ClientId member, bool presumed_dead,
                                       uint64_t epoch) {
  SimMutexLock lock(mu_);
  // Split-brain fencing: a record stamped with an epoch older than the
  // arbiter's current one comes from a deposed primary and is dropped.
  if (mastership_ == nullptr || epoch < mastership_->epoch()) {
    metrics_->Add(Counter::kFailoverReplEpochRejected);
    return;
  }
  if (presumed_dead) {
    repl_dead_.insert(member);
  } else {
    repl_dead_.erase(member);
  }
}

void Server::ApplyReplicatedCheckpoint(uint64_t epoch) {
  SimMutexLock lock(mu_);
  if (mastership_ == nullptr || epoch < mastership_->epoch()) {
    metrics_->Add(Counter::kFailoverReplEpochRejected);
    return;
  }
  ++repl_checkpoints_;
}

void Server::ReplicateClientOperational(ClientId client) {
  if (peer_ == nullptr || mastership_ == nullptr) return;
  Server* peer = peer_;
  const uint64_t epoch = mastership_epoch_;
  rpc_->Send(MakeOpts(RpcDir::kClientToServer, "standby_membership", kServerId,
                      MessageType::kStandbyMembership, 1, kSmallMsg),
             [&] { peer->ApplyReplicatedOperational(client, epoch); });
  metrics_->Add(Counter::kFailoverReplRecordsShipped);
}

void Server::ApplyReplicatedOperational(ClientId client, uint64_t epoch) {
  SimMutexLock lock(mu_);
  if (mastership_ == nullptr || epoch < mastership_->epoch()) {
    metrics_->Add(Counter::kFailoverReplEpochRejected);
    return;
  }
  crashed_clients_.erase(client);
  repl_dead_.erase(client);
}

}  // namespace finelog
