// Server restart recovery, Sections 3.4 and 3.5.
//
// After a server crash the buffer pool, GLM and DCT are gone; the database
// disk, the space map, and the (always forced) server log survive. Restart:
//
//  1. Rebuild the GLM and collect each operational client's DPT, cached page
//     list and LLM snapshot.
//  2. Determine the pages requiring recovery: in some client's DPT but not
//     in that client's cache. For a complex crash, add DCT placeholders for
//     crashed clients found in the checkpoint DCT and replacement records.
//  3. Reconstruct the DCT: read candidate pages from disk, remember their
//     PSNs, and scan the server log from the checkpoint's minimum RedoLSN;
//     a replacement record whose PSN equals the on-disk PSN of the page
//     fixes the per-client PSNs (Property 2).
//  4. Pull dirty cached pages from operational clients and merge them.
//  5. Coordinate per-(page, client) recovery: collect CallBack_P lists from
//     the other clients, send the base copy with the DCT PSN, and let the
//     client replay its private log. Recoveries that depend on a crashed
//     client are deferred until that client completes restart (Section 3.5).

#include "server/server.h"

#include <algorithm>

#include "net/rpc.h"
#include "server/page_merge.h"
#include "util/fault.h"

namespace finelog {

namespace {

constexpr size_t kSmallMsg = 32;

// Recovery-plane exchanges: exempt from injected wire faults unless the
// config opts recovery traffic in (NetFaultConfig::fault_recovery).
CallOptions RecOpts(RpcDir dir, const char* endpoint, ClientId peer,
                    MessageType req_type, uint64_t req_bytes) {
  CallOptions opts;
  opts.dir = dir;
  opts.endpoint = endpoint;
  opts.peer = peer;
  opts.req_type = req_type;
  opts.req_items = 1;
  opts.req_bytes = req_bytes;
  opts.recovery_plane = true;
  return opts;
}

}  // namespace

Status Server::Restart() {
  SimMutexLock lock(mu_);
  return RestartLocked();
}

Status Server::RestartLocked() {
  const uint64_t t0 = channel_->clock()->now_us();
  crashed_ = false;
  metrics_->Add(Counter::kServerRestarts);

  // Step 0: membership. Presumed-dead declarations are durable; reload them
  // before rebuilding lock state so quarantines survive the server crash.
  FINELOG_RETURN_IF_ERROR(ReloadMembership());

  std::map<ClientId, ClientRecoveryState> states;
  FINELOG_RETURN_IF_ERROR(RebuildGlmAndCollectState(&states));

  std::map<PageId, std::set<ClientId>> to_recover;
  FINELOG_RETURN_IF_ERROR(ReconstructDct(states, &to_recover));

  if (config_.instant_restart) {
    // Lazy arm (DESIGN.md section 18): the GLM, membership and DCT are fully
    // authoritative at this point -- that is the whole safety argument -- so
    // admission opens now and steps 4-5 become the per-page task lists the
    // endpoint guards and the background sweep drain on demand. Per page the
    // task order matches the eager sweep: cache pulls first, then
    // coordinated log replays, client id order within each kind.
    page_rec_.clear();
    rec_priority_.clear();
    for (const auto& [cid, state] : states) {
      std::set<PageId> cached(state.cached_pages.begin(),
                              state.cached_pages.end());
      for (const DptEntry& d : state.dpt) {
        if (cached.count(d.page) == 0) continue;
        page_rec_[d.page].tasks.push_back(PageRecTask{cid, true});
      }
    }
    for (const auto& [pid, involved] : to_recover) {
      for (ClientId cid : involved) {
        page_rec_[pid].tasks.push_back(PageRecTask{cid, false});
      }
    }
    restart_begin_us_ = t0;
    metrics_->Add(Counter::kRecoveryPagesMarked, page_rec_.size());
    metrics_->SetMax(Counter::kRecoveryPagesPendingHighWater,
                     page_rec_.size());
    metrics_->Add(Counter::kRecoveryTimeToFirstAdmitUs,
                  channel_->clock()->now_us() - t0);
    if (page_rec_.empty()) FinishLazyRecovery();
    return Status::OK();
  }

  // Step 4: merge dirty pages still cached at operational clients.
  for (const auto& [cid, state] : states) {
    std::set<PageId> cached(state.cached_pages.begin(),
                            state.cached_pages.end());
    for (const DptEntry& d : state.dpt) {
      if (cached.count(d.page) == 0) continue;
      auto suppress = CollectCallbackList(d.page, cid);
      if (!suppress.ok()) return suppress.status();
      const ClientId owner = cid;
      const PageId page = d.page;
      auto shipped = rpc_->Call(
          RecOpts(RpcDir::kServerToClient, "rec_fetch_cached_page", owner,
                  MessageType::kRecFetchCachedPage, kSmallMsg),
          [&](RpcReply* rep) -> Result<ShippedPage> {
            auto sp = clients_.at(owner)->HandleRecFetchCachedPage(
                page, suppress.value());
            if (sp.ok()) {
              rep->Set(MessageType::kRecCachedPageReply,
                       sp.value().wire_size());
            }
            return sp;
          });
      if (!shipped.ok()) {
        if (shipped.status().IsNotFound()) continue;
        return shipped.status();
      }
      FINELOG_RETURN_IF_ERROR(
          ApplyShippedPage(cid, shipped.value(), /*update_dct_psn=*/false));
    }
  }

  // Step 5: coordinate recovery of every (page, client) pair.
  for (const auto& [pid, involved] : to_recover) {
    for (ClientId cid : involved) {
      Status st = CoordinatePageRecovery(pid, cid);
      if (st.IsCrashed() || st.IsWouldBlock()) {
        deferred_recoveries_.emplace_back(cid, pid);
      } else if (!st.ok()) {
        return st;
      }
    }
  }
  return Status::OK();
}

Status Server::RebuildGlmAndCollectState(
    std::map<ClientId, ClientRecoveryState>* states) {
  for (const auto& [cid, ep] : clients_) {
    if (ClientUnreachable(cid)) continue;
    ClientEndpoint* endpoint = ep;
    auto state = rpc_->Call(
        RecOpts(RpcDir::kServerToClient, "rec_get_state", cid,
                MessageType::kRecGetDpt, kSmallMsg),
        [&](RpcReply* rep) -> Result<ClientRecoveryState> {
          auto s = endpoint->HandleRecGetState();
          if (s.ok()) {
            rep->Set(MessageType::kRecDptReply,
                     s.value().dpt.size() * 12 +
                         s.value().cached_pages.size() * 4 +
                         s.value().object_locks.size() * 8 + kSmallMsg);
          }
          return s;
        });
    if (!state.ok()) {
      if (liveness_enabled() && state.status().IsWouldBlock() &&
          state.status().would_block_reason() ==
              WouldBlockReason::kRpcTimeout) {
        // Partition-tolerant restart: a client that cannot be reached is
        // declared presumed dead on the spot and the rebuild continues
        // without it. Its dirty pages stay quarantined via the DCT
        // placeholders reconstructed from checkpoint and replacement
        // records below.
        FINELOG_RETURN_IF_ERROR(DeclarePresumedDead(cid));
        continue;
      }
      return state.status();
    }
    for (const auto& [oid, mode] : state.value().object_locks) {
      glm_.GrantObject(cid, oid, mode);
    }
    for (const auto& [pid, mode] : state.value().page_locks) {
      glm_.GrantPage(cid, pid, mode);
    }
    (*states)[cid] = std::move(state).value();
  }
  return Status::OK();
}

Status Server::ReconstructDct(
    const std::map<ClientId, ClientRecoveryState>& states,
    std::map<PageId, std::set<ClientId>>* to_recover) {
  // Step 1: placeholder entries for every page in an operational DPT. Every
  // (page, client) pair gets a coordinated log replay -- a cached copy
  // merged in step 4 covers the client's *current* authority, but only the
  // log (with CallBack_P ordering) restores values whose exclusive lock
  // moved on before the crash.
  for (const auto& [cid, state] : states) {
    for (const DptEntry& d : state.dpt) {
      dct_.Set(d.page, cid, kNullPsn, kNullLsn);
      (*to_recover)[d.page].insert(cid);
    }
  }

  // Determine the scan start: the minimum RedoLSN in the checkpoint DCT.
  Lsn ckpt_lsn = log_->checkpoint_lsn();
  Lsn scan_start = log_->begin_lsn();
  if (ckpt_lsn != kNullLsn) {
    auto ckpt = log_->Read(ckpt_lsn);
    if (!ckpt.ok()) return ckpt.status();
    scan_start = ckpt_lsn;
    for (const DctEntry& e : ckpt.value().dct) {
      if (e.redo_lsn != kNullLsn) scan_start = std::min(scan_start, e.redo_lsn);
      // Complex crash: checkpoint entries of crashed or presumed-dead
      // clients seed placeholders (their DPTs are unavailable until they
      // recover).
      if (ClientUnreachable(e.client) && !dct_.Get(e.page, e.client)) {
        dct_.Set(e.page, e.client, kNullPsn, kNullLsn);
      }
    }
  }

  // First pass: placeholders for crashed or presumed-dead clients named in
  // replacement records (Section 3.5).
  if (!crashed_clients_.empty() || liveness_.AnyPresumedDead()) {
    FINELOG_RETURN_IF_ERROR(
        log_->Scan(scan_start, [&](const LogRecord& rec) -> Status {
          if (rec.type != LogRecordType::kReplacement) return Status::OK();
          for (const DctEntry& e : rec.dct) {
            if (ClientUnreachable(e.client) && !dct_.Get(e.page, e.client)) {
              dct_.Set(e.page, e.client, kNullPsn, kNullLsn);
            }
          }
          return Status::OK();
        }));
  }

  // Step 2: read every page with a DCT entry from disk and remember its PSN.
  std::map<PageId, Psn> disk_psn;
  for (const DctEntry& e : dct_.All()) {
    if (disk_psn.count(e.page) > 0) continue;
    Page page(config_.page_size);
    Status st = disk_->ReadPage(e.page, &page);
    if (st.ok()) {
      channel_->clock()->Advance(channel_->costs().disk_read_us);
      ++disk_reads_;
      disk_psn[e.page] = page.psn();
    } else if (!st.IsNotFound()) {
      return st;
    }
  }

  // Step 3: forward scan; Property 2 fixes per-client PSNs when a
  // replacement record's PSN equals the on-disk PSN.
  FINELOG_RETURN_IF_ERROR(
      log_->Scan(scan_start, [&](const LogRecord& rec) -> Status {
        if (rec.type != LogRecordType::kReplacement) return Status::OK();
        if (!dct_.HasPage(rec.page)) return Status::OK();
        dct_.SetRedoLsnIfNull(rec.page, rec.lsn);
        auto it = disk_psn.find(rec.page);
        if (it == disk_psn.end() || rec.page_psn != it->second) {
          return Status::OK();
        }
        for (const DctEntry& e : rec.dct) {
          if (dct_.Get(rec.page, e.client)) {
            dct_.SetPsn(rec.page, e.client, e.psn);
          }
        }
        return Status::OK();
      }));

  // Entries whose PSN is still unknown get the on-disk page PSN as their
  // baseline: no replacement record vouches for any of that client's updates
  // being on disk, so "everything at or past the disk PSN" must be redone.
  // Captured here (before any re-merging into the pool) so later merges
  // cannot inflate another client's redo baseline.
  for (const DctEntry& e : dct_.All()) {
    if (e.psn != kNullPsn) continue;
    auto it = disk_psn.find(e.page);
    if (it != disk_psn.end()) {
      dct_.SetPsn(e.page, e.client, it->second);
    } else {
      auto base = space_map_->BasePsn(e.page);
      if (base.ok()) dct_.SetPsn(e.page, e.client, base.value());
    }
  }
  return Status::OK();
}

Result<std::vector<CallbackListEntry>> Server::CollectCallbackList(
    PageId pid, ClientId client) {
  std::map<ObjectId, Psn> merged;
  for (const auto& [cid, ep] : clients_) {
    if (cid == client) continue;
    // Crashed clients are scanned too: callback records live in the durable
    // private log, which is readable without the client's volatile state
    // (Section 2 allows any node with access to a log to process it).
    ClientEndpoint* endpoint = ep;
    auto entries = rpc_->Call(
        RecOpts(RpcDir::kServerToClient, "rec_scan_callbacks", cid,
                MessageType::kRecScanCallbacks, kSmallMsg),
        [&](RpcReply* rep) -> Result<std::vector<CallbackListEntry>> {
          auto e = endpoint->HandleRecScanCallbacks(pid, client);
          if (e.ok()) {
            rep->Set(MessageType::kRecCallbacksReply,
                     e.value().size() * 16 + kSmallMsg);
          }
          return e;
        });
    if (!entries.ok()) return entries.status();
    for (const CallbackListEntry& e : entries.value()) {
      auto [it, inserted] = merged.try_emplace(e.object, e.psn);
      if (!inserted) it->second = std::max(it->second, e.psn);
    }
  }
  std::vector<CallbackListEntry> out;
  out.reserve(merged.size());
  for (const auto& [oid, psn] : merged) {
    out.push_back(CallbackListEntry{oid, psn});
  }
  return out;
}

FINELOG_REPLAY_PATH("recovery plane: base images come from disk or a "
                    "formatted page; the client's log drives the replay")
Status Server::CoordinatePageRecovery(PageId pid, ClientId client) {
  if (ClientUnreachable(client)) {
    return Status::Crashed("client still down");
  }
  auto list = CollectCallbackList(pid, client);
  if (!list.ok()) return list.status();

  std::string base_image;
  auto frame = GetPage(pid);
  if (frame.ok()) {
    base_image = frame.value()->page.raw();
  } else if (frame.status().IsNotFound()) {
    auto base = space_map_->BasePsn(pid);
    if (!base.ok()) return base.status();
    Page page(config_.page_size);
    page.Format(pid, base.value());
    base_image = page.raw();
  } else {
    return frame.status();
  }
  auto entry = dct_.Get(pid, client);
  Psn base_psn = (entry && entry->psn != kNullPsn) ? entry->psn : kNullPsn;

  Status st = rpc_->Call(
      RecOpts(RpcDir::kServerToClient, "rec_recover_page", client,
              MessageType::kRecRecoverPage, base_image.size() + kSmallMsg),
      [&](RpcReply* rep) -> Status {
        Status s = clients_.at(client)->HandleRecRecoverPage(
            pid, list.value(), base_image, base_psn, kNullPsn);
        // The completion reply is sent (and counted) even when replay fails:
        // the client reports the failure back to the coordinator.
        rep->Set(MessageType::kRecRecoverPageReply, kSmallMsg);
        return s;
      });
  metrics_->Add(Counter::kServerCoordinatedPageRecoveries);
  return st;
}

Status Server::ReloadMembership() {
  // Every lease is volatile: clients must renew against the new incarnation.
  liveness_.DropLeases();
  // So is the recovery-admission window: a zombie mid-recovery when the
  // server went down must re-enter through the Rec plane.
  liveness_.ClearRecoveryWindows();
  if (!liveness_enabled()) return Status::OK();
  // Replay declaration/clearing pairs in log order; whoever is still marked
  // at the end is presumed dead in this incarnation too.
  std::set<ClientId> dead;
  FINELOG_RETURN_IF_ERROR(
      log_->Scan(log_->begin_lsn(), [&](const LogRecord& rec) -> Status {
        if (rec.type != LogRecordType::kMembership) return Status::OK();
        if (rec.presumed_dead) {
          dead.insert(rec.member);
        } else {
          dead.erase(rec.member);
        }
        return Status::OK();
      }));
  for (ClientId id : dead) {
    liveness_.MarkPresumedDead(id);
    // Re-fence: the new incarnation must keep rejecting the zombie's stale
    // session until it completes crash recovery.
    rpc_->BumpEpoch(id);
  }
  return Status::OK();
}

Result<std::vector<CallbackListEntry>> Server::RecGetCallbackList(
    ClientId client, PageId pid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  return rpc_->Call(
      RecOpts(RpcDir::kClientToServer, "rec_get_callback_list", client,
              MessageType::kRecScanCallbacks, kSmallMsg),
      [&](RpcReply* rep) -> Result<std::vector<CallbackListEntry>> {
        liveness_.OpenRecoveryWindow(client);
        FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(pid));
        auto list = CollectCallbackList(pid, client);
        if (list.ok()) {
          rep->Set(MessageType::kRecCallbacksReply,
                   list.value().size() * 16 + kSmallMsg);
        }
        return list;
      });
}

Result<PageFetchReply> Server::RecOrderedFetch(ClientId client, PageId pid,
                                               ClientId other, Psn psn) {
  SimMutexLock lock(mu_);
  return rpc_->Call(
      RecOpts(RpcDir::kClientToServer, "rec_ordered_fetch", client,
              MessageType::kRecOrderedFetch, kSmallMsg),
      [&](RpcReply* rep) -> Result<PageFetchReply> {
        return RecOrderedFetchBody(client, pid, other, psn, rep);
      });
}

FINELOG_REPLAY_PATH("recovery plane: ordered fetch rebuilds the base "
                    "image the requester then replays its own log onto")
Result<PageFetchReply> Server::RecOrderedFetchBody(ClientId client, PageId pid,
                                                   ClientId other, Psn psn,
                                                   RpcReply* rep) {
  liveness_.OpenRecoveryWindow(client);
  // Lazy restart: the ordered-fetch base must include every other client's
  // restart repair work before the requester replays its own log onto it.
  FINELOG_RETURN_IF_ERROR(EnsurePageRecovered(pid));
  metrics_->Add(Counter::kServerOrderedFetches);

  auto entry = dct_.Get(pid, other);
  bool satisfied = entry && entry->psn != kNullPsn && entry->psn >= psn;
  if (!satisfied) {
    if (ClientUnreachable(other) &&
        config_.lock_granularity != LockGranularity::kPage) {
      // Object granularity: the caller's machinery (deferred coordinated
      // recoveries, CallBack_P suppression) handles the dependency once the
      // client restarts. Page granularity instead runs the responder's
      // replay below even while it is down -- its session reads only the
      // durable log (Section 3.4 partial recovery).
      rep->Set(MessageType::kRecOrderedFetchReply, kSmallMsg);
      return Status::Crashed("ordering dependency on crashed client");
    }
    auto oit = clients_.find(other);
    if (oit == clients_.end()) {
      return Status::Internal("unknown client in ordered fetch");
    }
    // If `other` still has the page cached, its copy is complete: pull it.
    auto suppress = CollectCallbackList(pid, other);
    if (!suppress.ok()) return suppress.status();
    ClientEndpoint* responder = oit->second;
    auto shipped = rpc_->Call(
        RecOpts(RpcDir::kServerToClient, "rec_fetch_cached_page", other,
                MessageType::kRecFetchCachedPage, kSmallMsg),
        [&](RpcReply* irep) -> Result<ShippedPage> {
          auto sp = responder->HandleRecFetchCachedPage(pid, suppress.value());
          if (sp.ok()) {
            irep->Set(MessageType::kRecCachedPageReply,
                      sp.value().wire_size());
          }
          return sp;
        });
    if (shipped.ok()) {
      FINELOG_RETURN_IF_ERROR(
          ApplyShippedPage(other, shipped.value(), /*update_dct_psn=*/false));
    } else if (shipped.status().IsNotFound()) {
      // `other` is recovering the page in parallel: ask it to process all
      // records with PSN < `psn` first (Section 3.4, last paragraph).
      auto list = CollectCallbackList(pid, other);
      if (!list.ok()) return list.status();
      std::string base_image;
      auto frame = GetPage(pid);
      if (frame.ok()) {
        base_image = frame.value()->page.raw();
      } else {
        auto base = space_map_->BasePsn(pid);
        if (!base.ok()) return base.status();
        Page page(config_.page_size);
        page.Format(pid, base.value());
        base_image = page.raw();
      }
      auto oentry = dct_.Get(pid, other);
      Psn base_psn = (oentry && oentry->psn != kNullPsn) ? oentry->psn : kNullPsn;
      Status st = rpc_->Call(
          RecOpts(RpcDir::kServerToClient, "rec_recover_page", other,
                  MessageType::kRecRecoverPage, base_image.size() + kSmallMsg),
          [&](RpcReply* irep) -> Status {
            Status s = responder->HandleRecRecoverPage(
                pid, list.value(), base_image, base_psn, psn);
            // Completion reply is sent even when replay fails (see
            // CoordinatePageRecovery).
            irep->Set(MessageType::kRecRecoverPageReply, kSmallMsg);
            return s;
          });
      if (!st.ok()) return st;
    } else {
      return shipped.status();
    }
  }

  PageFetchReply reply;
  auto frame = GetPage(pid);
  if (!frame.ok()) return frame.status();
  reply.page_image = frame.value()->page.raw();
  auto my_entry = dct_.Get(pid, client);
  reply.dct_psn = my_entry ? my_entry->psn : kNullPsn;
  rep->Set(MessageType::kRecOrderedFetchReply,
           reply.page_image.size() + kSmallMsg);
  return reply;
}

// Instant restart (DESIGN.md section 18) -------------------------------------

Status Server::EnsurePageRecovered(PageId pid) {
  if (page_rec_.empty()) return Status::OK();
  Status st = AttemptPageRepair(pid, /*demand=*/true);
  if (!st.ok()) {
    if (st.IsWouldBlock()) {
      metrics_->Add(Counter::kRecoveryDegradedResponses);
    }
    return st;
  }
  MaybeBackgroundSweep();
  return Status::OK();
}

Status Server::AttemptPageRepair(PageId pid, bool demand) {
  auto it = page_rec_.find(pid);
  if (it == page_rec_.end() || it->second.state == PageRecState::kRecovering) {
    // Clean, or this very page's repair traffic re-entering (the client
    // ships the recovered copy back through ShipPage / ordered fetch).
    return Status::OK();
  }
  if (it->second.state == PageRecState::kFailed) {
    FINELOG_RETURN_IF_ERROR(SinglePageRepair(pid));
    page_rec_.erase(pid);
    metrics_->Add(Counter::kRecoveryPagesRepaired);
    if (page_rec_.empty()) FinishLazyRecovery();
    return Status::OK();
  }
  return RepairPage(pid, demand);
}

Status Server::RepairPage(PageId pid, bool demand) {
  auto it = page_rec_.find(pid);
  if (it == page_rec_.end()) return Status::OK();
  it->second.state = PageRecState::kRecovering;
  metrics_->Add(demand ? Counter::kRecoveryDemandRepairs
                       : Counter::kRecoverySweepRepairs);
  ++repair_depth_;

  std::vector<PageRecTask> tasks;
  tasks.swap(it->second.tasks);
  Status degraded = Status::OK();
  size_t done = 0;
  for (const PageRecTask& t : tasks) {
    if (config_.fault_injector != nullptr &&
        config_.fault_injector->Evaluate("recovery.server.lazy_repair", 0,
                                         false)
                .action != FaultAction::kNone) {
      // Armed interruption: keep this and the remaining tasks and degrade.
      degraded = Status::WouldBlock(WouldBlockReason::kRecoveringPage,
                                    "lazy page repair interrupted");
      break;
    }
    Status st;
    if (t.pull_cached) {
      // An unreachable client's cache is volatile and gone; its durable log
      // is covered by its replay task (or its own restart). Nothing to pull.
      st = ClientUnreachable(t.client) ? Status::OK()
                                       : PullCachedPage(pid, t.client);
    } else {
      st = CoordinatePageRecovery(pid, t.client);
      if (st.IsCrashed()) {
        // Same deferral the eager sweep used: retried at the client's
        // RecComplete; meanwhile CheckPageReachable quarantines the page.
        deferred_recoveries_.emplace_back(t.client, pid);
        st = Status::OK();
      }
    }
    if (st.IsWouldBlock()) {
      degraded = Status::WouldBlock(WouldBlockReason::kRecoveringPage,
                                    "page repair waiting on the network");
      break;
    }
    if (!st.ok()) {
      // Hard error: restore the remaining work and surface it.
      --repair_depth_;
      it = page_rec_.find(pid);
      if (it != page_rec_.end()) {
        it->second.tasks.assign(tasks.begin() + done, tasks.end());
        it->second.state = PageRecState::kNeedsRecovery;
      }
      return st;
    }
    ++done;
  }
  --repair_depth_;

  it = page_rec_.find(pid);
  if (it == page_rec_.end()) return Status::OK();
  if (!degraded.ok()) {
    it->second.tasks.assign(tasks.begin() + done, tasks.end());
    it->second.state = PageRecState::kNeedsRecovery;
    // Demand-priority: a touched-but-interrupted page goes to the front of
    // the sweep queue.
    rec_priority_.push_front(pid);
    return degraded;
  }

  Status check = VerifyRecoveredPage(pid);
  if (!check.ok()) {
    metrics_->Add(Counter::kRecoveryFailedChecks);
    it->second.state = PageRecState::kFailed;
    // Single-page repair right away; if it cannot complete either, the
    // kFailed state persists and the next touch retries.
    Status repair = SinglePageRepair(pid);
    if (!repair.ok()) return repair;
  }
  page_rec_.erase(pid);
  metrics_->Add(Counter::kRecoveryPagesRepaired);
  if (page_rec_.empty()) FinishLazyRecovery();
  return Status::OK();
}

Status Server::PullCachedPage(PageId pid, ClientId client) {
  // Restart step 4 for one (page, client): CallBack_P suppression list, then
  // the client's cached copy, merged without advancing its DCT baseline.
  auto suppress = CollectCallbackList(pid, client);
  if (!suppress.ok()) return suppress.status();
  auto cit = clients_.find(client);
  if (cit == clients_.end()) {
    return Status::Internal("unknown client in lazy cache pull");
  }
  ClientEndpoint* endpoint = cit->second;
  auto shipped = rpc_->Call(
      RecOpts(RpcDir::kServerToClient, "rec_fetch_cached_page", client,
              MessageType::kRecFetchCachedPage, kSmallMsg),
      [&](RpcReply* rep) -> Result<ShippedPage> {
        auto sp = endpoint->HandleRecFetchCachedPage(pid, suppress.value());
        if (sp.ok()) {
          rep->Set(MessageType::kRecCachedPageReply, sp.value().wire_size());
        }
        return sp;
      });
  if (!shipped.ok()) {
    // Evicted (or crashed) since restart marked the task: the replay task
    // and flush notifications cover whatever the cache no longer holds.
    if (shipped.status().IsNotFound()) return Status::OK();
    return shipped.status();
  }
  return ApplyShippedPage(client, shipped.value(), /*update_dct_psn=*/false);
}

FINELOG_REPLAY_PATH("recovery plane: discards the suspect merged copy and "
                    "rebuilds the page from its durable base plus the "
                    "responsible clients' logs")
Status Server::SinglePageRepair(PageId pid) {
  metrics_->Add(Counter::kRecoverySinglePageRepairs);
  auto it = page_rec_.find(pid);
  if (it != page_rec_.end()) it->second.state = PageRecState::kRecovering;
  ++repair_depth_;

  // Drop the suspect copy: WAL guarantees the durable base plus the
  // responsible clients' logs regenerate every update.
  pool_->Drop(pid);

  // Reset each responsible client's baseline to the honest redo floor (the
  // on-disk PSN, or the allocation PSN for a never-flushed page): earlier
  // partial repairs may have advanced DCT PSNs past updates the drop just
  // discarded.
  Psn floor = kNullPsn;
  {
    Page disk_page(config_.page_size);
    Status st = disk_->ReadPage(pid, &disk_page);
    if (st.ok()) {
      channel_->clock()->Advance(channel_->costs().disk_read_us);
      ++disk_reads_;
      floor = disk_page.psn();
    } else if (st.IsNotFound()) {
      auto base = space_map_->BasePsn(pid);
      if (base.ok()) floor = base.value();
    } else {
      --repair_depth_;
      return st;
    }
  }
  std::vector<DctEntry> responsible = dct_.EntriesForPage(pid);
  // The disk copy can carry a partially-repaired image (an earlier degraded
  // repair merged some clients, then an eviction flushed it), so its PSN
  // alone is not a safe floor: also take the minimum over the preserved
  // per-client baselines. A lower floor only means more (idempotent) replay.
  for (const DctEntry& e : responsible) {
    if (e.psn != kNullPsn && e.psn < floor) floor = e.psn;
  }
  dct_.ResetPagePsns(pid, floor);

  Status result = Status::OK();
  for (const DctEntry& e : responsible) {
    Status st = CoordinatePageRecovery(pid, e.client);
    if (st.IsCrashed()) {
      deferred_recoveries_.emplace_back(e.client, pid);
      continue;
    }
    if (st.IsWouldBlock()) {
      result = Status::WouldBlock(WouldBlockReason::kRecoveringPage,
                                  "single-page repair interrupted");
      break;
    }
    if (!st.ok()) {
      result = st;
      break;
    }
  }
  if (result.ok()) result = VerifyRecoveredPage(pid);
  --repair_depth_;
  if (!result.ok()) {
    it = page_rec_.find(pid);
    if (it != page_rec_.end()) it->second.state = PageRecState::kFailed;
  }
  return result;
}

Status Server::VerifyRecoveredPage(PageId pid) {
  if (config_.fault_injector != nullptr &&
      config_.fault_injector->Evaluate("recovery.server.page_check", 0, false)
              .action != FaultAction::kNone) {
    return Status::Corruption("armed page consistency-check failure");
  }
  auto frame = GetPage(pid);
  if (!frame.ok()) {
    // Never materialized (no pull, no replay shipped): nothing to check;
    // the disk/allocation base is the page.
    if (frame.status().IsNotFound()) return Status::OK();
    return frame.status();
  }
  const Psn have = frame.value()->page.psn();
  for (const DctEntry& e : dct_.EntriesForPage(pid)) {
    if (e.psn == kNullPsn || ClientUnreachable(e.client)) continue;
    if (e.psn > have) {
      return Status::Corruption(
          "recovered page PSN below a responsible client's baseline");
    }
  }
  return Status::OK();
}

bool Server::PickSweepPage(PageId* out) {
  while (!rec_priority_.empty()) {
    PageId cand = rec_priority_.front();
    rec_priority_.pop_front();
    auto it = page_rec_.find(cand);
    if (it != page_rec_.end() &&
        it->second.state != PageRecState::kRecovering) {
      *out = cand;
      return true;
    }
  }
  for (const auto& [pid, pr] : page_rec_) {
    if (pr.state != PageRecState::kRecovering) {
      *out = pid;
      return true;
    }
  }
  return false;
}

void Server::MaybeBackgroundSweep() {
  if (page_rec_.empty() || repair_depth_ > 0) return;
  uint32_t budget = std::max<uint32_t>(1, config_.recovery_sweep_batch);
  PageId pick;
  while (budget-- > 0 && !page_rec_.empty() && PickSweepPage(&pick)) {
    // A degraded (or deliberately interrupted) repair ends this round; the
    // page re-queued itself at the front of rec_priority_. Hard errors are
    // also left for the next demand touch to surface -- the sweep is
    // opportunistic.
    if (!AttemptPageRepair(pick, /*demand=*/false).ok()) return;
  }
}

void Server::FinishLazyRecovery() {
  if (restart_begin_us_ == 0) return;
  metrics_->Add(Counter::kRecoveryTimeToFullyRecoveredUs,
                channel_->clock()->now_us() - restart_begin_us_);
  restart_begin_us_ = 0;
}

Status Server::SweepRecovery(uint32_t max_pages) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("server down");
  PageId pick;
  uint32_t budget = max_pages;
  while (budget-- > 0 && !page_rec_.empty() && PickSweepPage(&pick)) {
    FINELOG_RETURN_IF_ERROR(AttemptPageRepair(pick, /*demand=*/false));
  }
  return Status::OK();
}

}  // namespace finelog
