// Server: the page server. Owns the database disk, the space allocation map,
// the global lock manager (GLM), the dirty client table (DCT), the server
// buffer pool, and the server log (replacement + checkpoint records only --
// the server never logs data updates; those live in client logs).
//
// Implements the ServerEndpoint RPC surface for normal processing and for
// the recovery protocols of Sections 3.3-3.5.

#ifndef FINELOG_SERVER_SERVER_H_
#define FINELOG_SERVER_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/annotations.h"
#include "common/config.h"
#include "common/result.h"
#include "common/types.h"
#include "lock/glm.h"
#include "log/log_manager.h"
#include "net/channel.h"
#include "net/endpoints.h"
#include "net/server_router.h"
#include "server/dct.h"
#include "server/liveness.h"
#include "server/mastership.h"
#include "storage/disk_manager.h"
#include "storage/space_map.h"
#include "util/metrics.h"

namespace finelog {

class Rpc;
class RpcReply;

class FINELOG_SHARED_STATE_CLASS Server : public FailoverNode {
 public:
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Creates the server over `config.dir` (database file, space map, server
  // log). `channel`, `rpc` and `metrics` are owned by the caller
  // (core::System). Every request/reply exchange is accounted through `rpc`.
  static Result<std::unique_ptr<Server>> Create(const SystemConfig& config,
                                                Channel* channel, Rpc* rpc,
                                                Metrics* metrics);

  // Creates a cold hot-standby node over the same `config.dir`: the store
  // files stay closed (the primary owns them; a second set of buffered
  // handles would read stale bytes) and the node starts crashed. A failover
  // probe that wins the mastership lease opens the store fresh and runs
  // restart recovery (DESIGN.md section 19).
  static Result<std::unique_ptr<Server>> CreateStandby(
      const SystemConfig& config, Channel* channel, Rpc* rpc, Metrics* metrics);

  // Wiring ------------------------------------------------------------------

  void RegisterClient(ClientId id, ClientEndpoint* endpoint);
  void SetClientCrashed(ClientId id, bool crashed);
  bool IsClientCrashed(ClientId id) const {
    SimMutexLock lock(mu_);
    return crashed_clients_.count(id) > 0;
  }

  // Lifecycle ---------------------------------------------------------------

  // Simulated server crash: drops the buffer pool, GLM, DCT and token table.
  // The database file, space map and (always forced) server log survive.
  Status Crash();
  bool crashed() const { return crashed_; }

  // Server restart recovery, Sections 3.4-3.5. `crashed_clients` is the set
  // of clients that are down at restart time (complex crash); their DCT
  // entries are reconstructed from the server log and their page recovery is
  // deferred until they restart.
  Status Restart();

  // Fuzzy server checkpoint: a log record carrying the whole DCT.
  Status TakeCheckpoint();

  // Forces every dirty page in the pool to disk (used by tests/benches to
  // reach a quiescent state).
  Status FlushAllPages();

  // Bootstrap: allocate and format `n` pages each pre-loaded with
  // `objects_per_page` objects of `object_size` bytes, flushed to disk.
  Status Bootstrap(uint32_t n, uint32_t objects_per_page, uint32_t object_size);

  // Administrative page deallocation (quiescent operation: no client may
  // hold locks on or cache the page). Records the page's final PSN in the
  // space map so a future reallocation continues the PSN lineage
  // (Section 2 / [18]).
  Status DeallocatePage(PageId pid);

  // ServerEndpoint ----------------------------------------------------------

  Result<ObjectLockReply> LockObject(ClientId client, ObjectId oid,
                                     LockMode mode, Psn cached_psn) override;
  Result<PageLockReply> LockPage(ClientId client, PageId pid, LockMode mode,
                                 Psn cached_psn) override;
  Result<PageFetchReply> FetchPage(ClientId client, PageId pid) override;
  Status ShipPage(ClientId client, const ShippedPage& page) override;
  Result<std::vector<ObjectLockOutcome>> LockObjectBatch(
      ClientId client, const std::vector<ObjectLockRequest>& items) override;
  Result<std::vector<PageFetchReply>> FetchPages(
      ClientId client, const std::vector<PageId>& pids) override;
  Status ShipPages(ClientId client,
                   const std::vector<ShippedPage>& pages) override;
  Result<AllocReply> AllocatePage(ClientId client) override;
  Status ForcePage(ClientId client, PageId pid) override;
  Status ReleaseLocks(ClientId client, const std::vector<ObjectId>& objects,
                      const std::vector<PageId>& pages) override;
  Status CommitShipLogs(ClientId client, size_t log_bytes) override;
  Status CommitShipPages(ClientId client,
                         const std::vector<ShippedPage>& pages) override;
  Result<TokenReply> AcquireToken(ClientId client, PageId pid) override;
  Result<DctSnapshot> RecGetMyDct(ClientId client) override;
  Result<ClientRecoveryState> RecGetMyXLocks(ClientId client) override;
  Result<PageFetchReply> RecFetchPage(ClientId client, PageId pid) override;
  Status RecComplete(ClientId client) override;
  Result<PageFetchReply> RecOrderedFetch(ClientId client, PageId pid,
                                         ClientId other, Psn psn) override;

  Result<ClientRecoveryState> RecInstallLocks(
      ClientId client, const std::vector<ObjectId>& objects,
      const std::vector<PageId>& pages) override;
  Result<std::vector<CallbackListEntry>> RecGetCallbackList(
      ClientId client, PageId pid) override;

  // Liveness (DESIGN.md section 14): lease renewal. Every admitted request
  // also renews the lease; the explicit heartbeat covers idle clients. A
  // presumed-dead caller is fenced with WouldBlockReason::kZombieFenced.
  Status Heartbeat(ClientId client) override;

  // Hot standby / mastership (DESIGN.md section 19) --------------------------

  // Wires this node into a two-node mastership group: `node` is its arbiter
  // id, `table` the shared lease arbiter, `peer` the other node (replication
  // target; may be null on the standby side). Leaves mastership disabled
  // when `table` is null -- the default single-server deployment never pays
  // a mastership check.
  void ConfigureMastership(int node, MastershipTable* table, Server* peer);

  // Bootstrap: takes the initial mastership lease (no takeover recovery;
  // the store is already open). Used by System::Create on the first primary.
  Status AcquireMastership();

  // Client-driven failover entry point: a client that timed out against the
  // primary asks this node to become master. Renews if this node already
  // serves; otherwise tries to Acquire the lease and, on success, fences the
  // old epoch and runs takeover recovery (reopen store, rebuild DCT from the
  // durable store plus client logs). Refused while the incumbent's lease is
  // still valid (kFailoverInProgress -- the mastership gap) or while this
  // node is halted (Crashed). Returns the serving epoch.
  Result<uint64_t> FailoverProbe(ClientId client) override;

  // Clean switchover: releases the lease and drops to cold standby (volatile
  // state discarded exactly as a crash would; the successor rebuilds it).
  Status StepDown();

  // Harness: makes a crashed node probeable again as a cold standby (the
  // hot-standby replacement for Restart, which would seize the store while
  // the surviving primary serves).
  void ProvisionStandby() { halted_ = false; }
  bool halted() const { return halted_; }

  uint64_t mastership_epoch() const {
    SimMutexLock lock(mu_);
    return mastership_epoch_;
  }

  // Replication receivers: the primary mirrors membership records and
  // checkpoint markers here right after forcing them. Records carrying an
  // epoch older than the arbiter's current one come from a deposed primary
  // and are rejected (split-brain fencing).
  void ApplyReplicatedMembership(ClientId member, bool presumed_dead,
                                 uint64_t epoch);
  void ApplyReplicatedCheckpoint(uint64_t epoch);
  // A client completed crash recovery at the primary: the standby drops it
  // from its (harness-seeded) crashed set so a later takeover treats it as
  // operational.
  void ApplyReplicatedOperational(ClientId client, uint64_t epoch);
  size_t ReplicatedDeadCountForTest() const {
    SimMutexLock lock(mu_);
    return repl_dead_.size();
  }
  uint64_t ReplicatedCheckpointsForTest() const {
    SimMutexLock lock(mu_);
    return repl_checkpoints_;
  }

  // ARIES/CSA-baseline synchronized checkpoint: contacts every live client.
  Status TakeSynchronizedCheckpoint();

  // Instant restart (DESIGN.md section 18) ----------------------------------

  // Harness hook: repairs up to `max_pages` still-unrecovered pages in
  // priority order (demand-degraded pages first, then lowest page id), as
  // the background sweep would. Returns the first degraded/hard status.
  Status SweepRecovery(uint32_t max_pages);

  // Pages still owing lazy post-restart repair work.
  size_t RecoveryPagesPending() const {
    SimMutexLock lock(mu_);
    return page_rec_.size();
  }
  bool PagePendingRecoveryForTest(PageId pid) const {
    SimMutexLock lock(mu_);
    return page_rec_.count(pid) != 0;
  }

  // Introspection (tests and benchmarks). The reference-returning accessors
  // escape the capability on purpose: harnesses use them on quiesced
  // systems, and the components carry their own capabilities.
  GlobalLockManager& glm() FINELOG_NO_THREAD_SAFETY_ANALYSIS { return glm_; }
  DirtyClientTable& dct() FINELOG_NO_THREAD_SAFETY_ANALYSIS { return dct_; }
  LivenessTable& liveness() FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    return liveness_;
  }
  bool IsPresumedDead(ClientId id) const {
    SimMutexLock lock(mu_);
    return liveness_.IsPresumedDead(id);
  }
  LogManager& log() FINELOG_NO_THREAD_SAFETY_ANALYSIS { return *log_; }
  BufferPool& pool() FINELOG_NO_THREAD_SAFETY_ANALYSIS { return *pool_; }
  SpaceMap& space_map() FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    return *space_map_;
  }
  Metrics& metrics() { return *metrics_; }
  uint64_t disk_reads() const {
    SimMutexLock lock(mu_);
    return disk_reads_;
  }
  uint64_t disk_writes() const {
    SimMutexLock lock(mu_);
    return disk_writes_;
  }

 private:
  Server(const SystemConfig& config, Channel* channel, Rpc* rpc,
         Metrics* metrics)
      : config_(config),
        channel_(channel),
        rpc_(rpc),
        metrics_(metrics),
        liveness_(config.lease_duration_us) {}

  // Fault-injection I/O options for the database disk and the server log,
  // derived from config_ (used at Create and at every post-crash reopen).
  DiskIoOptions DiskIo() const;
  LogIoOptions LogIo() const;

  // Returns the server's current copy of `pid`, reading it from disk into
  // the pool if needed. Fails with NotFound if the page was never written
  // and is not in the pool.
  Result<BufferPool::Frame*> GetPage(PageId pid) FINELOG_REQUIRES(mu_);

  // Returns the pool's eviction handler (writes dirty victims to disk with
  // a preceding replacement log record).
  BufferPool::EvictHandler EvictHandler();

  // Forces one page to disk: replacement log record, force, in-place write,
  // flush notifications, DCT cleanup (Sections 3.2, 3.6).
  Status WritePageToDisk(PageId pid, BufferPool::Frame& frame)
      FINELOG_REQUIRES(mu_);

  // Executes the callbacks the GLM requires before a grant. Returns
  // kWouldBlock if any target denies or is crashed. Appends (responder,
  // DCT PSN) pairs for exclusive-lock callbacks to `x_callbacks` so the
  // requester can write callback log records (Section 3.1). Consecutive
  // actions against the same target client are coalesced into one request/
  // reply message pair of up to config_.max_batch_items actions.
  Status ExecuteCallbacks(const std::vector<CallbackAction>& actions,
                          std::vector<XCallbackInfo>* x_callbacks)
      FINELOG_REQUIRES(mu_);

  // One callback hop against one target, with its reply payload size
  // reported through `reply_bytes` instead of counted on the channel (the
  // caller charges whole batches).
  Status ExecuteOneCallback(const CallbackAction& action,
                            std::vector<XCallbackInfo>* x_callbacks,
                            size_t* reply_bytes) FINELOG_REQUIRES(mu_);

  // Grant logic of LockObject/FetchPage without the request/reply channel
  // accounting, so single and batched entry points share one implementation.
  // `reply_bytes` reports the payload the reply message would carry.
  Result<ObjectLockReply> LockObjectInternal(ClientId client, ObjectId oid,
                                             LockMode mode, Psn cached_psn,
                                             size_t* reply_bytes)
      FINELOG_REQUIRES(mu_);
  Result<PageFetchReply> FetchPageInternal(ClientId client, PageId pid,
                                           size_t* reply_bytes)
      FINELOG_REQUIRES(mu_);

  // Endpoint bodies run inside the RPC chokepoint; each records its reply
  // message (granted or denied) through `rep`.
  Result<PageLockReply> LockPageBody(ClientId client, PageId pid,
                                     LockMode mode, Psn cached_psn,
                                     RpcReply* rep) FINELOG_REQUIRES(mu_);
  Status ReleaseLocksBody(ClientId client,
                          const std::vector<ObjectId>& objects,
                          const std::vector<PageId>& pages, RpcReply* rep)
      FINELOG_REQUIRES(mu_);
  Result<TokenReply> AcquireTokenBody(ClientId client, PageId pid,
                                      RpcReply* rep) FINELOG_REQUIRES(mu_);
  Result<PageFetchReply> RecFetchPageBody(ClientId client, PageId pid,
                                          RpcReply* rep)
      FINELOG_REQUIRES(mu_);
  Result<PageFetchReply> RecOrderedFetchBody(ClientId client, PageId pid,
                                             ClientId other, Psn psn,
                                             RpcReply* rep)
      FINELOG_REQUIRES(mu_);

  // Merges a shipped page into the server copy and updates the DCT.
  // `update_dct_psn` is false for restart cache pulls: they overlay only the
  // sender's currently-held authority, so the sender's cached PSN must not
  // become its Property-1 baseline (its log replay still has work to do).
  Status ApplyShippedPage(ClientId client, const ShippedPage& page,
                          bool update_dct_psn = true) FINELOG_REQUIRES(mu_);

  // OK when no crashed or presumed-dead client may hold recoverable state
  // on `pid` (conservative guard while its GLM/DCT entries are not
  // authoritative); otherwise a kWouldBlock carrying the machine-readable
  // reason (kCrashedDependency / kQuarantinedPage).
  Status CheckPageReachable(PageId pid, ClientId requester)
      FINELOG_REQUIRES(mu_);

  // Mastership helpers (DESIGN.md section 19). All are no-ops with no
  // mastership table wired, so the default single-server schedule is
  // byte-identical.

  // The epoch fence, checked before LivenessAdmission by every normal-plane
  // and recovery-plane endpoint body. Renews this node's lease; a node that
  // cannot renew because another node holds the lease is deposed (fenced
  // with kFailoverInProgress). While the arbiter is unreachable (partition)
  // the node keeps serving only up to its locally known lease horizon --
  // lease non-overlap guarantees no successor serves before that horizon.
  Status MastershipAdmission() FINELOG_REQUIRES(mu_);

  // Installs a won grant: reopens the store fresh (the deposed peer wrote
  // through its own handles), drops all volatile state, and runs restart
  // recovery, which reconstructs the DCT from the durable store plus client
  // logs and arms the configured (eager or instant-restart) repair policy.
  Status TakeOver(const MastershipTable::Grant& grant) FINELOG_REQUIRES(mu_);

  // Restart body for callers that already hold mu_. TakeOver runs inside a
  // probe frame whose mu_ is held cooperatively by the parked prober, so it
  // must not re-acquire (the owner is another thread: not a recursion).
  Status RestartLocked() FINELOG_REQUIRES(mu_);

  // Drops to cold standby: volatile protocol state gone, store handles
  // released, crashed_ set. Shared tail of Crash() and StepDown().
  Status DropVolatileState() FINELOG_REQUIRES(mu_);

  // Primary-side replication: mirrors a just-forced membership record /
  // checkpoint marker to the standby through the Rpc chokepoint. No-ops
  // without a wired peer.
  void ReplicateMembership(ClientId member, bool presumed_dead)
      FINELOG_REQUIRES(mu_);
  void ReplicateCheckpoint() FINELOG_REQUIRES(mu_);
  void ReplicateClientOperational(ClientId client) FINELOG_REQUIRES(mu_);

  // Liveness helpers (DESIGN.md section 14). All are no-ops with the
  // heartbeat knob off, so the default message/clock schedule is untouched.
  bool liveness_enabled() const { return config_.liveness_enabled(); }

  // Expires overdue leases, then fences `client` if it is presumed dead;
  // on admission, renews its lease (any request proves liveness). Called at
  // the top of every normal-plane endpoint body. The recovery plane is
  // deliberately not fenced: crash recovery is how a zombie rejoins.
  Status LivenessAdmission(ClientId client) FINELOG_REQUIRES(mu_);

  // Declares every lease-expired client presumed dead.
  Status CheckLeases() FINELOG_REQUIRES(mu_);

  // The declaration itself: forces a membership record, fences the session
  // epoch, releases shared locks (§3.3), drops update tokens, and reclaims
  // exclusive locks on pages with no DCT entry for the client. Pages the
  // client has dirtied per the DCT stay quarantined (CheckPageReachable).
  Status DeclarePresumedDead(ClientId id) FINELOG_REQUIRES(mu_);

  // Appends and forces a kMembership record (declaration or clearing).
  Status AppendMembershipRecord(ClientId member, bool presumed_dead)
      FINELOG_REQUIRES(mu_);

  // True if `id` cannot currently serve or answer for its state: explicitly
  // crashed or presumed dead. The two sets get identical treatment in the
  // grant, callback, flush and restart paths.
  bool ClientUnreachable(ClientId id) const FINELOG_REQUIRES(mu_) {
    return crashed_clients_.count(id) != 0 || liveness_.IsPresumedDead(id);
  }

  // Restart step 0: replays kMembership records from the server log so the
  // presumed-dead set (and its quarantines) survives a server crash.
  Status ReloadMembership() FINELOG_REQUIRES(mu_);

  // Recovery helpers (Section 3.4), defined in server_recovery.cc.
  Status RebuildGlmAndCollectState(
      std::map<ClientId, ClientRecoveryState>* states) FINELOG_REQUIRES(mu_);
  Status ReconstructDct(const std::map<ClientId, ClientRecoveryState>& states,
                        std::map<PageId, std::set<ClientId>>* to_recover)
      FINELOG_REQUIRES(mu_);
  Status CoordinatePageRecovery(PageId pid, ClientId client)
      FINELOG_REQUIRES(mu_);
  Result<std::vector<CallbackListEntry>> CollectCallbackList(PageId pid,
                                                             ClientId client)
      FINELOG_REQUIRES(mu_);

  // Instant restart internals (DESIGN.md section 18), defined in
  // server_recovery.cc. All no-ops once page_rec_ is empty, so the default
  // (eager) configuration keeps a byte-identical schedule.

  // True while `pid` still owes restart repair work.
  bool PageRecoveryPending(PageId pid) const FINELOG_REQUIRES(mu_) {
    return page_rec_.count(pid) != 0;
  }

  // The per-endpoint guard: called right after LivenessAdmission by every
  // page-touching endpoint body. Demand-repairs `pid` if it is unrecovered,
  // then lets the background sweep drain up to recovery_sweep_batch more
  // pages. Degrades to WouldBlock(kRecoveringPage) when the repair cannot
  // complete yet (fault point, unreachable dependency, network).
  Status EnsurePageRecovered(PageId pid) FINELOG_REQUIRES(mu_);

  // Dispatches one pending page to RepairPage or (kFailed) SinglePageRepair
  // and retires its page_rec_ entry on success.
  Status AttemptPageRepair(PageId pid, bool demand) FINELOG_REQUIRES(mu_);

  // Runs `pid`'s outstanding task list (cache pulls, then coordinated log
  // replays), verifies the result, and erases the entry. On interruption the
  // remaining tasks are kept and the page re-queued for the sweep.
  Status RepairPage(PageId pid, bool demand) FINELOG_REQUIRES(mu_);

  // Restart step 4 for one (page, client): callback-list collection plus the
  // client's cached copy, merged without advancing its DCT baseline.
  Status PullCachedPage(PageId pid, ClientId client) FINELOG_REQUIRES(mu_);

  // Discards the suspect merged copy and rebuilds `pid` from its durable
  // base plus replay from every responsible (DCT) client's log.
  Status SinglePageRepair(PageId pid) FINELOG_REQUIRES(mu_);

  // Consistency check after repair: the merged page PSN must cover every
  // reachable responsible client's DCT baseline. Also the seat of the
  // recovery.server.page_check fault point.
  Status VerifyRecoveredPage(PageId pid) FINELOG_REQUIRES(mu_);

  // Picks the next page the sweep should repair; false when none eligible.
  bool PickSweepPage(PageId* out) FINELOG_REQUIRES(mu_);

  // Opportunistically drains up to recovery_sweep_batch pages after an
  // admitted request; stops at the first degraded repair.
  void MaybeBackgroundSweep() FINELOG_REQUIRES(mu_);

  // Emits recovery.time_to_fully_recovered_us once the backlog drains.
  void FinishLazyRecovery() FINELOG_REQUIRES(mu_);

  // Capability guarding the server's shared protocol state. Uncontended in
  // the simulation; in the real-clock mode every endpoint body takes it on
  // the reactor thread (recursively across nested endpoint calls).
  mutable SimMutex mu_;

  SystemConfig config_ FINELOG_UNGUARDED("immutable after construction");
  // Clock/cost charges only; message counting goes via rpc_.
  Channel* channel_ FINELOG_UNGUARDED("externally owned wiring, set once");
  Rpc* rpc_ FINELOG_UNGUARDED("externally owned wiring, set once");
  Metrics* metrics_ FINELOG_UNGUARDED("monotonic counters, not protocol state");

  std::unique_ptr<DiskManager> disk_ FINELOG_PT_GUARDED_BY(mu_);
  std::unique_ptr<SpaceMap> space_map_ FINELOG_PT_GUARDED_BY(mu_);
  std::unique_ptr<LogManager> log_ FINELOG_PT_GUARDED_BY(mu_);
  std::unique_ptr<BufferPool> pool_ FINELOG_PT_GUARDED_BY(mu_);
  GlobalLockManager glm_ FINELOG_GUARDED_BY(mu_);
  DirtyClientTable dct_ FINELOG_GUARDED_BY(mu_);

  std::map<ClientId, ClientEndpoint*> clients_ FINELOG_GUARDED_BY(mu_);
  std::set<ClientId> crashed_clients_ FINELOG_GUARDED_BY(mu_);
  // Also holds the per-client recovery-admission windows (a presumed-dead
  // client that has started crash recovery is admitted until RecComplete).
  LivenessTable liveness_ FINELOG_GUARDED_BY(mu_);
  bool crashed_ FINELOG_UNGUARDED("harness lifecycle flag, toggled while "
                                  "no request is in flight") = false;

  // Hot standby / mastership (DESIGN.md section 19).
  int node_id_ FINELOG_UNGUARDED("wiring, set once") = 0;
  MastershipTable* mastership_ FINELOG_UNGUARDED(
      "externally owned wiring, set once; null = mastership disabled") =
      nullptr;
  Server* peer_ FINELOG_UNGUARDED("externally owned wiring, set once") =
      nullptr;
  // The grant this node serves under; epoch 0 = not serving master.
  uint64_t mastership_epoch_ FINELOG_GUARDED_BY(mu_) = 0;
  uint64_t mastership_valid_until_ FINELOG_GUARDED_BY(mu_) = 0;
  // True while the node's process is dead (crashed, not merely deposed):
  // failover probes are refused. A cold standby is crashed_ but not halted_.
  bool halted_ FINELOG_UNGUARDED("harness lifecycle flag, toggled while "
                                 "no request is in flight") = false;
  // False on a standby whose store handles were never opened (or were
  // released at step-down); TakeOver opens them fresh.
  bool store_open_ FINELOG_GUARDED_BY(mu_) = true;
  // Standby-side mirror of the primary's presumed-dead set, fed by
  // replicated membership records. Advisory: takeover replays the
  // authoritative membership history from the shared durable log; the
  // mirror lets tests observe replication and epoch fencing directly.
  std::set<ClientId> repl_dead_ FINELOG_GUARDED_BY(mu_);
  uint64_t repl_checkpoints_ FINELOG_GUARDED_BY(mu_) = 0;
  // False from a server crash until every client has completed restart: the
  // reconstructed DCT may be missing entries for crashed clients.
  bool dct_authoritative_ FINELOG_GUARDED_BY(mu_) = true;

  // Update-token baseline state (volatile).
  std::map<PageId, ClientId> token_holder_ FINELOG_GUARDED_BY(mu_);

  // Page recoveries deferred because they depend on a crashed client
  // (Section 3.5); retried when that client completes restart.
  std::vector<std::pair<ClientId, PageId>> deferred_recoveries_
      FINELOG_GUARDED_BY(mu_);

  // Instant restart (DESIGN.md section 18): per-page recovery state machine.
  // A page is *clean* when absent from page_rec_; otherwise it still owes
  // part of the Sections 3.4-3.5 restart work, held as an ordered task list
  // (cache pulls before log replays, client id order within each kind --
  // the same order the eager sweep used).
  enum class PageRecState : uint8_t {
    kNeedsRecovery,  // Tasks pending; first touch triggers demand repair.
    kRecovering,     // Repair in flight; the page's own Rec traffic passes.
    kFailed,         // Consistency check failed; next touch runs
                     // single-page repair from the responsible logs.
  };
  struct PageRecTask {
    ClientId client;
    bool pull_cached;  // true: restart cache pull; false: coordinated replay.
  };
  struct PageRecovery {
    PageRecState state = PageRecState::kNeedsRecovery;
    std::vector<PageRecTask> tasks;
  };
  std::map<PageId, PageRecovery> page_rec_ FINELOG_GUARDED_BY(mu_);
  // Pages to sweep next, most-recently-degraded first candidates at the
  // front. May hold stale ids; the sweep skips entries no longer pending.
  std::deque<PageId> rec_priority_ FINELOG_GUARDED_BY(mu_);
  // Reentrancy depth of RepairPage/SinglePageRepair: nested endpoint calls
  // made by a repair (the client ships the recovered page back through
  // ShipPage) must not start another sweep.
  int repair_depth_ FINELOG_GUARDED_BY(mu_) = 0;
  // Clock at the restart that armed lazy recovery; 0 once fully recovered.
  uint64_t restart_begin_us_ FINELOG_GUARDED_BY(mu_) = 0;

  uint64_t disk_reads_ FINELOG_GUARDED_BY(mu_) = 0;
  uint64_t disk_writes_ FINELOG_GUARDED_BY(mu_) = 0;
};

}  // namespace finelog

#endif  // FINELOG_SERVER_SERVER_H_
