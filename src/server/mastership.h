// MastershipTable: the lease that decides which server instance is primary
// (DESIGN.md section 19).
//
// Modeled on PaxosLease: a quorum of acceptors grants a time-bounded,
// epoch-numbered mastership lease, and the safety argument is lease
// non-overlap -- a new holder cannot be granted the lease until the previous
// grant's horizon has passed on the acceptors' clocks. finelog collapses
// the acceptor quorum into one in-process arbiter sharing the system Clock
// (the same SimClock/RealClock seam leases already use), which preserves
// exactly the property the protocol needs: the arbiter never grants a new
// epoch while an unexpired grant is outstanding, and the holder's locally
// known horizon can only be earlier than or equal to the arbiter's view.
//
// State machine per node:
//
//   (nobody) --Acquire--> holder @ epoch e --Renew--> holder, horizon moves
//       ^                     |        \--Release--> (nobody), epoch kept
//       |                     v
//       +---- lease expires; a competitor's Acquire grants epoch e+1 and
//             the old holder's Renew is refused (deposed)
//
// Renew never acquires: a stray data-plane request routed to the standby
// must not steal mastership -- only an explicit Acquire (the failover probe
// path) can, and only once the incumbent's grant has expired.

#ifndef FINELOG_SERVER_MASTERSHIP_H_
#define FINELOG_SERVER_MASTERSHIP_H_

#include <cstdint>

#include "common/annotations.h"
#include "common/result.h"
#include "common/status.h"

namespace finelog {

class FINELOG_SHARED_STATE_CLASS MastershipTable {
 public:
  // One grant: the epoch the holder serves under and the horizon up to
  // which the arbiter promises not to grant anyone else.
  struct Grant {
    uint64_t epoch = 0;
    uint64_t valid_until_us = 0;
  };

  static constexpr int kNoHolder = -1;

  explicit MastershipTable(uint64_t lease_duration_us)
      : lease_duration_us_(lease_duration_us) {}

  MastershipTable(const MastershipTable&) = delete;
  MastershipTable& operator=(const MastershipTable&) = delete;

  // Extends `node`'s existing grant to now + lease duration. Refused
  // (kFailoverInProgress) if `node` is not the current holder -- renewal
  // never acquires. Refused with kRpcTimeout while the arbiter is
  // unreachable from `node` (partition modeling; the holder then decides
  // locally whether its last known horizon still covers `now`).
  Result<Grant> Renew(int node, uint64_t now_us);

  // Grants the lease to `node`: immediately if `node` already holds it
  // (degenerates to Renew) or if nobody does; at epoch+1 once the
  // incumbent's grant has expired. Refused (kFailoverInProgress) while an
  // unexpired grant is held by another node -- this refusal IS the
  // non-overlap guarantee.
  Result<Grant> Acquire(int node, uint64_t now_us);

  // Clean switchover: the holder gives the lease up. The epoch is not
  // advanced here -- the next Acquire advances it, so every distinct
  // holder tenure has a distinct epoch.
  void Release(int node);

  // Partition modeling: while unreachable, `node`'s Renew/Acquire calls
  // fail with kRpcTimeout, exactly like a client whose legs are dropped.
  void SetUnreachable(int node, bool unreachable);

  // Introspection (tests / harness).
  uint64_t epoch() const {
    SimMutexLock lock(mu_);
    return epoch_;
  }
  int holder() const {
    SimMutexLock lock(mu_);
    return holder_;
  }
  uint64_t valid_until_us() const {
    SimMutexLock lock(mu_);
    return valid_until_us_;
  }

 private:
  mutable SimMutex mu_;
  uint64_t lease_duration_us_ FINELOG_UNGUARDED("immutable after construction");
  int holder_ FINELOG_GUARDED_BY(mu_) = kNoHolder;
  uint64_t epoch_ FINELOG_GUARDED_BY(mu_) = 0;
  uint64_t valid_until_us_ FINELOG_GUARDED_BY(mu_) = 0;
  // Bitmask of nodes currently partitioned away from the arbiter.
  uint64_t unreachable_mask_ FINELOG_GUARDED_BY(mu_) = 0;
};

}  // namespace finelog

#endif  // FINELOG_SERVER_MASTERSHIP_H_
