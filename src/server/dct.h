// DirtyClientTable (DCT), Section 3.2.
//
// The server tracks, per (page, client) pair, the PSN the page had the last
// time it was received from that client (or when the client was first
// granted an exclusive lock), plus the LSN of the first replacement log
// record written for the page. Property 1 rests on these PSNs: a client log
// record's updates are reflected in the server's copy of P iff the record's
// PSN is less than the PSN the server remembers for (P, client).

#ifndef FINELOG_SERVER_DCT_H_
#define FINELOG_SERVER_DCT_H_

#include <map>
#include <optional>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"
#include "log/log_record.h"

namespace finelog {

class FINELOG_SHARED_STATE_CLASS DirtyClientTable {
 public:
  DirtyClientTable() = default;
  DirtyClientTable(const DirtyClientTable&) = delete;
  DirtyClientTable& operator=(const DirtyClientTable&) = delete;

  // Inserts an entry if none exists (first exclusive grant). Existing
  // entries are left untouched.
  void Insert(PageId page, ClientId client, Psn psn);

  // Updates the PSN after the server receives the page from the client.
  // Creates the entry if missing.
  void SetPsn(PageId page, ClientId client, Psn psn);

  // Explicitly overwrites an entry (used by restart reconstruction).
  void Set(PageId page, ClientId client, Psn psn, Lsn redo_lsn);

  // Assigns `lsn` to every entry of `page` whose RedoLSN is still null
  // (done when a replacement log record is written, Section 3.2).
  void SetRedoLsnIfNull(PageId page, Lsn lsn);

  // Resets every entry of `page` to the given redo baseline. Used by
  // single-page repair (DESIGN.md section 18): after the suspect merged
  // copy is discarded, earlier partial repairs may have advanced per-client
  // PSNs past updates the discard just dropped, so replay must restart from
  // the durable floor for every responsible client.
  void ResetPagePsns(PageId page, Psn psn);

  void Remove(PageId page, ClientId client);

  std::optional<DctEntry> Get(PageId page, ClientId client) const;
  std::vector<DctEntry> EntriesForPage(PageId page) const;
  std::vector<DctEntry> EntriesForClient(ClientId client) const;
  std::vector<DctEntry> All() const;
  bool HasPage(PageId page) const;

  // Minimum non-null RedoLSN across all entries; kMaxLsn if none.
  Lsn MinRedoLsn() const;

  void Clear();
  size_t size() const;

 private:
  struct Value {
    Psn psn = kNullPsn;
    Lsn redo_lsn = kNullLsn;
  };
  mutable SimMutex mu_;
  std::map<PageId, std::map<ClientId, Value>> table_ FINELOG_GUARDED_BY(mu_);
};

}  // namespace finelog

#endif  // FINELOG_SERVER_DCT_H_
