#include "server/liveness.h"

namespace finelog {

void LivenessTable::Renew(ClientId client, uint64_t now_us) {
  SimMutexLock lock(mu_);
  if (IsPresumedDead(client)) return;
  deadlines_[client] = now_us + lease_duration_us_;
}

std::vector<ClientId> LivenessTable::CollectExpired(uint64_t now_us) const {
  SimMutexLock lock(mu_);
  std::vector<ClientId> expired;
  for (const auto& [client, deadline] : deadlines_) {
    if (now_us >= deadline && !IsPresumedDead(client)) {
      expired.push_back(client);
    }
  }
  return expired;
}

void LivenessTable::MarkPresumedDead(ClientId client) {
  SimMutexLock lock(mu_);
  deadlines_.erase(client);
  presumed_dead_.insert(client);
}

void LivenessTable::MarkRecovered(ClientId client, uint64_t now_us) {
  SimMutexLock lock(mu_);
  presumed_dead_.erase(client);
  deadlines_[client] = now_us + lease_duration_us_;
}

void LivenessTable::Suspend(ClientId client) {
  SimMutexLock lock(mu_);
  deadlines_.erase(client);
}

void LivenessTable::DropLeases() {
  SimMutexLock lock(mu_);
  deadlines_.clear();
}

void LivenessTable::OpenRecoveryWindow(ClientId client) {
  SimMutexLock lock(mu_);
  recovery_windows_.insert(client);
}

void LivenessTable::CloseRecoveryWindow(ClientId client) {
  SimMutexLock lock(mu_);
  recovery_windows_.erase(client);
}

void LivenessTable::ClearRecoveryWindows() {
  SimMutexLock lock(mu_);
  recovery_windows_.clear();
}

}  // namespace finelog
