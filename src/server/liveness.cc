#include "server/liveness.h"

namespace finelog {

void LivenessTable::Renew(ClientId client, uint64_t now_us) {
  if (IsPresumedDead(client)) return;
  deadlines_[client] = now_us + lease_duration_us_;
}

std::vector<ClientId> LivenessTable::CollectExpired(uint64_t now_us) const {
  std::vector<ClientId> expired;
  for (const auto& [client, deadline] : deadlines_) {
    if (now_us >= deadline && !IsPresumedDead(client)) {
      expired.push_back(client);
    }
  }
  return expired;
}

void LivenessTable::MarkPresumedDead(ClientId client) {
  deadlines_.erase(client);
  presumed_dead_.insert(client);
}

void LivenessTable::MarkRecovered(ClientId client, uint64_t now_us) {
  presumed_dead_.erase(client);
  deadlines_[client] = now_us + lease_duration_us_;
}

void LivenessTable::Suspend(ClientId client) { deadlines_.erase(client); }

void LivenessTable::DropLeases() { deadlines_.clear(); }

}  // namespace finelog
