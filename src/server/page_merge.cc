#include "server/page_merge.h"

#include <algorithm>

namespace finelog {

namespace {

// Writes `data` into `slot` of `page` regardless of current size/liveness,
// preserving at least `capacity` bytes of reservation.
FINELOG_REPLAY_PATH("installs an already-logged image: size-adapting "
                    "slot overwrite used by merge and recovery install")
Status ForceSlotValue(Page* page, SlotId slot, const std::string& data,
                      uint16_t capacity = 0) {
  if (page->SlotExists(slot)) {
    if (page->ObjectSize(slot) == data.size()) {
      return page->WriteObject(slot, data);
    }
    return page->ResizeObject(slot, data);
  }
  return page->CreateObjectAt(slot, data, capacity);
}

}  // namespace

FINELOG_REPLAY_PATH("merges a shipped copy whose updates the shipping "
                    "client already logged (WAL held at its ship/force)")
Status MergeShippedPage(Page* local, const ShippedPage& incoming) {
  Page in(static_cast<uint32_t>(incoming.image.size()));
  in.raw() = incoming.image;
  if (in.id() != local->id()) {
    return Status::InvalidArgument("merging copies of different pages");
  }
  Psn merged_psn = Psn::Merge(local->psn(), in.psn());
  if (incoming.structural) {
    // The sender held a page-level X lock: its image is authoritative.
    local->raw() = incoming.image;
  } else {
    for (SlotId slot : incoming.modified_slots) {
      if (in.SlotExists(slot)) {
        auto data = in.ReadObject(slot);
        if (!data.ok()) return data.status();
        FINELOG_RETURN_IF_ERROR(ForceSlotValue(local, slot, data.value(),
                                               in.ObjectCapacity(slot)));
      } else if (local->SlotExists(slot)) {
        FINELOG_RETURN_IF_ERROR(local->DeleteObject(slot));
      }
    }
  }
  local->set_psn(merged_psn);
  return Status::OK();
}

FINELOG_REPLAY_PATH("installs the server-granted object image carried "
                    "by a lock reply; logged by its original writer")
Status InstallObject(Page* local, SlotId slot,
                     const std::optional<std::string>& image, Psn server_psn) {
  if (image.has_value()) {
    FINELOG_RETURN_IF_ERROR(ForceSlotValue(local, slot, *image));
  } else if (local->SlotExists(slot)) {
    FINELOG_RETURN_IF_ERROR(local->DeleteObject(slot));
  }
  // No "+1" here, unlike a copy merge: an install merely catches the local
  // copy up to the server's version. Inflating past the server's PSN would
  // poison the DCT at the next first-X grant (the entry would record a PSN
  // the server never reaches, silently suppressing redo after a crash).
  local->set_psn(std::max(local->psn(), server_psn));
  return Status::OK();
}

}  // namespace finelog
