// LivenessTable: the server's lease table (DESIGN.md section 14).
//
// The paper assumes clients eventually answer callbacks and announce their
// own crashes; a silently-dead or partitioned client would otherwise hold
// its locks forever. The lease table closes that gap: each client renews a
// simulated-clock lease via heartbeats (or any admitted request), and a
// client whose lease runs out is *presumed dead*. The declaration itself --
// releasing shared locks, reclaiming clean exclusive locks, quarantining
// DCT-dirty pages, fencing the session epoch -- lives in Server; this class
// only tracks deadlines and the presumed-dead set.
//
// Lease state machine per client:
//
//     (untracked) --first renewal--> live --deadline passes--> expired
//         ^                           ^                           |
//         |                           |                     declaration
//     Forget()                  MarkRecovered()                  v
//     (explicit crash:          (crash recovery            presumed dead
//      the §3.3 path            completed: fresh           (zombie if it
//      already handles it)      lease)                      still talks)
//
// A client that never renews is never tracked and never expires: membership
// is heartbeat-driven, so a system with liveness disabled (interval 0) keeps
// an empty table.

#ifndef FINELOG_SERVER_LIVENESS_H_
#define FINELOG_SERVER_LIVENESS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "common/annotations.h"
#include "common/types.h"

namespace finelog {

class FINELOG_SHARED_STATE_CLASS LivenessTable {
 public:
  explicit LivenessTable(uint64_t lease_duration_us)
      : lease_duration_us_(lease_duration_us) {}

  LivenessTable(const LivenessTable&) = delete;
  LivenessTable& operator=(const LivenessTable&) = delete;

  // Renews (or starts) `client`'s lease: valid until now + lease duration.
  // Ignored for a presumed-dead client -- a zombie cannot talk its way back
  // to life; it must run crash recovery and MarkRecovered.
  void Renew(ClientId client, uint64_t now_us);

  // Clients whose lease deadline has passed and that are not yet presumed
  // dead, in id order (deterministic declaration order).
  std::vector<ClientId> CollectExpired(uint64_t now_us) const;

  // Moves `client` to the presumed-dead set (lease dropped).
  void MarkPresumedDead(ClientId client);

  // Clears presumed-dead status after the client completed crash recovery
  // and grants a fresh lease.
  void MarkRecovered(ClientId client, uint64_t now_us);

  // Drops the lease of a client the harness explicitly crashed: the §3.3
  // crash path supersedes lease tracking while it is down. Presumed-dead
  // status, if any, is NOT cleared -- only completed crash recovery
  // (MarkRecovered) clears it, so every logged declaration is balanced by
  // exactly one logged clearing record.
  void Suspend(ClientId client);

  // Wipes every lease but keeps the presumed-dead set. Used at server
  // restart: deadlines are volatile (clients must renew against the new
  // incarnation), but presumed-dead status is reloaded from the membership
  // records in the server log before this is consulted.
  void DropLeases();

  bool IsPresumedDead(ClientId client) const {
    SimMutexLock lock(mu_);
    return presumed_dead_.count(client) != 0;
  }
  bool AnyPresumedDead() const {
    SimMutexLock lock(mu_);
    return !presumed_dead_.empty();
  }
  // Escapes the capability on purpose: callers iterate it while the owning
  // Server's capability already serializes liveness mutations.
  const std::set<ClientId>& presumed_dead() const
      FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    return presumed_dead_;
  }
  bool HasLease(ClientId client) const {
    SimMutexLock lock(mu_);
    return deadlines_.count(client) != 0;
  }

  // Recovery-admission window (DESIGN.md sections 14 and 18). A presumed-dead
  // client that has started crash recovery (its first Rec-plane request) must
  // be admitted at the data plane -- recovery itself fetches pages and ships
  // copies -- even though MarkRecovered has not run yet. The window opens at
  // the first Rec-plane touch, closes at RecComplete or a renewed crash, and
  // is volatile: a server restart clears every window (the client must
  // re-enter recovery against the new incarnation). PR 9 generalized this
  // from an ad-hoc Server-side set into the lease table proper so the whole
  // data plane shares one notion of "dead but mid-recovery".
  void OpenRecoveryWindow(ClientId client);
  void CloseRecoveryWindow(ClientId client);
  void ClearRecoveryWindows();
  bool InRecoveryWindow(ClientId client) const {
    SimMutexLock lock(mu_);
    return recovery_windows_.count(client) != 0;
  }

 private:
  mutable SimMutex mu_;
  uint64_t lease_duration_us_ FINELOG_UNGUARDED("immutable after construction");
  // Absolute expiry, simulated us.
  std::map<ClientId, uint64_t> deadlines_ FINELOG_GUARDED_BY(mu_);
  std::set<ClientId> presumed_dead_ FINELOG_GUARDED_BY(mu_);
  // Presumed-dead clients currently inside their recovery-admission window.
  std::set<ClientId> recovery_windows_ FINELOG_GUARDED_BY(mu_);
};

}  // namespace finelog

#endif  // FINELOG_SERVER_LIVENESS_H_
