#include "core/system.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "common/errno_util.h"
#include "util/fault.h"

namespace finelog {

System::~System() {
  if (transport_ != nullptr) transport_->Shutdown();
}

Result<std::unique_ptr<System>> System::Create(const SystemConfig& config) {
  if (config.preloaded_pages > config.num_pages) {
    return Status::InvalidArgument("preloaded_pages exceeds num_pages");
  }
  if (config.exec_mode == ExecMode::kRealClock && config.net_faults.enabled()) {
    // The delivery fault model draws from a seeded RNG keyed to the message
    // sequence; under concurrent clients that sequence is racy, so verdicts
    // would be neither deterministic nor meaningful. Fault exploration stays
    // in the simulated oracle.
    return Status::InvalidArgument(
        "net faults require ExecMode::kSimulated (the deterministic oracle)");
  }
  if (mkdir(config.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + config.dir + ": " + ErrnoString(errno));
  }
  auto system = std::unique_ptr<System>(new System(config));
  // Mutable view: real-clock mode may install its default durable sink
  // before the server and clients snapshot the config.
  SystemConfig& cfg = system->config_;
  if (cfg.exec_mode == ExecMode::kRealClock && cfg.log_sink == nullptr) {
    system->owned_sink_ = std::make_unique<DurableSink>();
    cfg.log_sink = system->owned_sink_.get();
  }
  system->channel_ = std::make_unique<Channel>(system->clock_.get(), cfg.costs);
  if (cfg.fault_injector != nullptr) {
    cfg.fault_injector->AttachMetrics(&system->metrics_);
  }
  system->rpc_ = std::make_unique<Rpc>(system->channel_.get(),
                                       &system->metrics_, cfg.net_faults,
                                       cfg.fault_injector);

  FINELOG_ASSIGN_OR_RETURN(
      auto primary, Server::Create(cfg, system->channel_.get(),
                                   system->rpc_.get(), &system->metrics_));
  system->servers_.push_back(std::move(primary));
  if (cfg.hot_standby) {
    // Hot standby (DESIGN.md section 19): a second server instance over the
    // same durable store, a shared mastership arbiter on the same clock
    // seam, and a failover router fronting the pair. The initial lease goes
    // to node 0 before any client traffic exists.
    system->mastership_ =
        std::make_unique<MastershipTable>(cfg.mastership_lease_us);
    FINELOG_ASSIGN_OR_RETURN(
        auto standby,
        Server::CreateStandby(cfg, system->channel_.get(), system->rpc_.get(),
                              &system->metrics_));
    system->servers_.push_back(std::move(standby));
    system->servers_[0]->ConfigureMastership(0, system->mastership_.get(),
                                             system->servers_[1].get());
    system->servers_[1]->ConfigureMastership(1, system->mastership_.get(),
                                             system->servers_[0].get());
    FINELOG_RETURN_IF_ERROR(system->servers_[0]->AcquireMastership());
    system->router_ = std::make_unique<ServerRouter>(
        system->servers_[0].get(), system->servers_[1].get(),
        system->channel_.get(), &system->metrics_, cfg.failover_timeout_us);
  }
  bool fresh = system->servers_[0]->space_map().allocated_count() == 0;
  if (fresh) {
    FINELOG_RETURN_IF_ERROR(system->servers_[0]->Bootstrap(
        cfg.preloaded_pages, cfg.objects_per_page, cfg.object_size));
  }

  // Clients talk to the router when a standby exists, so a primary death
  // becomes a probe-and-retry instead of an outage.
  ServerEndpoint* endpoint = system->router_ != nullptr
                                 ? static_cast<ServerEndpoint*>(
                                       system->router_.get())
                                 : system->servers_[0].get();
  for (uint32_t i = 0; i < cfg.num_clients; ++i) {
    ClientId cid(i);
    FINELOG_ASSIGN_OR_RETURN(
        auto client,
        Client::Create(cid, cfg, endpoint, system->channel_.get(),
                       system->rpc_.get(), &system->metrics_));
    for (auto& node : system->servers_) {
      node->RegisterClient(cid, client.get());
    }
    system->clients_.push_back(std::move(client));
  }

  if (cfg.exec_mode == ExecMode::kRealClock) {
    system->transport_ = std::make_unique<QueueTransport>();
    for (auto& client : system->clients_) {
      system->transport_->RegisterGate(client->id(), &client->gate());
    }
    system->transport_->Start();
    system->rpc_->SetTransport(system->transport_.get(),
                               cfg.realclock_rpc_timeout_us);
  }
  return system;
}

Status System::RunSerialized(const std::function<Status()>& fn) {
  if (transport_ != nullptr) return transport_->RunOnReactor(fn);
  return fn();
}

Status System::CrashClient(size_t i) {
  return RunSerialized([&] {
    FINELOG_RETURN_IF_ERROR(clients_.at(i)->Crash());
    // Every node learns of the crash, not just the active one: a standby
    // that later takes over must treat the client as crashed or its restart
    // recovery would consult a dead cache (oracle divergence).
    for (auto& node : servers_) {
      node->SetClientCrashed(static_cast<ClientId>(i), true);
    }
    return Status::OK();
  });
}

Status System::CrashServer() {
  return RunSerialized([&] { return ActiveServer().Crash(); });
}

Status System::RecoverClient(size_t i) {
  return RunSerialized([&] {
    if (ActiveServer().crashed()) {
      return Status::FailedPrecondition("recover the server first");
    }
    return clients_.at(i)->Restart();
  });
}

Status System::RecoverServer() {
  return RunSerialized([&]() -> Status {
    if (router_ == nullptr) return servers_[0]->Restart();
    // Hot standby: a dead node comes back as a probeable cold standby; it
    // rejoins service only by winning the lease through a client probe, so
    // the harness never silently re-crowns an old primary.
    for (auto& node : servers_) {
      if (node->halted()) node->ProvisionStandby();
    }
    return Status::OK();
  });
}

Status System::RecoverZombie(size_t i) {
  return RunSerialized([&]() -> Status {
    if (ActiveServer().crashed()) {
      return Status::FailedPrecondition("recover the server first");
    }
    ClientId cid(static_cast<uint32_t>(i));
    if (!ActiveServer().IsPresumedDead(cid)) {
      return Status::FailedPrecondition("client is not presumed dead");
    }
    // Deliberately NOT SetClientCrashed: the server already ran the
    // declaration path; this exercises pure liveness machinery (the zombie
    // discards its fenced state and rejoins via crash recovery).
    FINELOG_RETURN_IF_ERROR(clients_.at(i)->Crash());
    return clients_.at(i)->Restart();
  });
}

Status System::RecoverAll() {
  return RunSerialized([&]() -> Status {
    if (router_ == nullptr && servers_[0]->crashed()) {
      FINELOG_RETURN_IF_ERROR(servers_[0]->Restart());
    } else if (router_ != nullptr) {
      for (auto& node : servers_) {
        if (node->halted()) node->ProvisionStandby();
      }
    }
    // A restarting client may depend on another crashed client's recovered
    // state (a hand-off recorded in its log, Section 3.5): its restart
    // defers with kWouldBlock. Multiple passes resolve the
    // (acyclic-per-page) dependency chains; a final pass surfaces any
    // genuine error.
    for (size_t pass = 0; pass <= clients_.size(); ++pass) {
      bool any_deferred = false;
      for (size_t i = 0; i < clients_.size(); ++i) {
        if (!clients_[i]->crashed()) continue;
        Status st = clients_[i]->Restart();
        if (st.IsWouldBlock()) {
          any_deferred = true;
          continue;
        }
        FINELOG_RETURN_IF_ERROR(st);
      }
      if (!any_deferred) return Status::OK();
    }
    return Status::Internal("client restart dependency did not resolve");
  });
}

Status System::DrainRecovery(uint32_t max_pages) {
  return RunSerialized([&]() -> Status {
    const uint32_t budget =
        max_pages == 0 ? static_cast<uint32_t>(-1) : max_pages;
    return ActiveServer().SweepRecovery(budget);
  });
}

Status System::FlushEverything() {
  return RunSerialized([&]() -> Status {
    for (auto& client : clients_) {
      if (client->crashed()) continue;
      FINELOG_RETURN_IF_ERROR(client->ShipAllDirtyPages());
    }
    return ActiveServer().FlushAllPages();
  });
}

Status System::PartitionServerNode(size_t i, bool partitioned) {
  return RunSerialized([&]() -> Status {
    if (router_ == nullptr) {
      return Status::FailedPrecondition("hot_standby is not enabled");
    }
    if (i >= servers_.size()) {
      return Status::InvalidArgument("no such server node");
    }
    // Both faces of the partition at once: clients cannot reach the node
    // (requests burn their timeout budget at the router) and the node cannot
    // reach the arbiter (renewals report kRpcTimeout, so it serves only down
    // its locally known lease horizon -- the split-brain bound).
    router_->SetNodeUnreachable(static_cast<int>(i), partitioned);
    mastership_->SetUnreachable(static_cast<int>(i), partitioned);
    return Status::OK();
  });
}

Status System::Switchover() {
  return RunSerialized([&]() -> Status {
    if (router_ == nullptr) {
      return Status::FailedPrecondition("hot_standby is not enabled");
    }
    return ActiveServer().StepDown();
  });
}

}  // namespace finelog
