#include "core/system.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "util/fault.h"

namespace finelog {

Result<std::unique_ptr<System>> System::Create(const SystemConfig& config) {
  if (config.preloaded_pages > config.num_pages) {
    return Status::InvalidArgument("preloaded_pages exceeds num_pages");
  }
  if (mkdir(config.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir " + config.dir + ": " + std::strerror(errno));
  }
  auto system = std::unique_ptr<System>(new System(config));
  system->channel_ = std::make_unique<Channel>(&system->clock_, config.costs);
  if (config.fault_injector != nullptr) {
    config.fault_injector->AttachMetrics(&system->metrics_);
  }
  system->rpc_ = std::make_unique<Rpc>(system->channel_.get(),
                                       &system->metrics_, config.net_faults,
                                       config.fault_injector);

  FINELOG_ASSIGN_OR_RETURN(
      system->server_,
      Server::Create(config, system->channel_.get(), system->rpc_.get(),
                     &system->metrics_));
  bool fresh = system->server_->space_map().allocated_count() == 0;
  if (fresh) {
    FINELOG_RETURN_IF_ERROR(system->server_->Bootstrap(
        config.preloaded_pages, config.objects_per_page, config.object_size));
  }

  for (uint32_t i = 0; i < config.num_clients; ++i) {
    ClientId cid(i);
    FINELOG_ASSIGN_OR_RETURN(
        auto client,
        Client::Create(cid, config, system->server_.get(),
                       system->channel_.get(), system->rpc_.get(),
                       &system->metrics_));
    system->server_->RegisterClient(cid, client.get());
    system->clients_.push_back(std::move(client));
  }
  return system;
}

Status System::CrashClient(size_t i) {
  FINELOG_RETURN_IF_ERROR(clients_.at(i)->Crash());
  server_->SetClientCrashed(static_cast<ClientId>(i), true);
  return Status::OK();
}

Status System::CrashServer() { return server_->Crash(); }

Status System::RecoverClient(size_t i) {
  if (server_->crashed()) {
    return Status::FailedPrecondition("recover the server first");
  }
  return clients_.at(i)->Restart();
}

Status System::RecoverServer() { return server_->Restart(); }

Status System::RecoverZombie(size_t i) {
  if (server_->crashed()) {
    return Status::FailedPrecondition("recover the server first");
  }
  ClientId cid(static_cast<uint32_t>(i));
  if (!server_->IsPresumedDead(cid)) {
    return Status::FailedPrecondition("client is not presumed dead");
  }
  // Deliberately NOT SetClientCrashed: the server already ran the
  // declaration path; this exercises pure liveness machinery (the zombie
  // discards its fenced state and rejoins via crash recovery).
  FINELOG_RETURN_IF_ERROR(clients_.at(i)->Crash());
  return clients_.at(i)->Restart();
}

Status System::RecoverAll() {
  if (server_->crashed()) {
    FINELOG_RETURN_IF_ERROR(server_->Restart());
  }
  // A restarting client may depend on another crashed client's recovered
  // state (a hand-off recorded in its log, Section 3.5): its restart
  // defers with kWouldBlock. Multiple passes resolve the (acyclic-per-page)
  // dependency chains; a final pass surfaces any genuine error.
  for (size_t pass = 0; pass <= clients_.size(); ++pass) {
    bool any_deferred = false;
    for (size_t i = 0; i < clients_.size(); ++i) {
      if (!clients_[i]->crashed()) continue;
      Status st = clients_[i]->Restart();
      if (st.IsWouldBlock()) {
        any_deferred = true;
        continue;
      }
      FINELOG_RETURN_IF_ERROR(st);
    }
    if (!any_deferred) return Status::OK();
  }
  return Status::Internal("client restart dependency did not resolve");
}

Status System::FlushEverything() {
  for (auto& client : clients_) {
    if (client->crashed()) continue;
    FINELOG_RETURN_IF_ERROR(client->ShipAllDirtyPages());
  }
  return server_->FlushAllPages();
}

}  // namespace finelog
