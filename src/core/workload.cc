#include "core/workload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace finelog {

Workload::Workload(System* system, Oracle* oracle, WorkloadOptions options)
    : system_(system),
      oracle_(oracle),
      options_(options),
      rng_(options.seed),
      states_(system->num_clients()),
      start_time_us_(system->clock().now_us()) {}

std::string Workload::RandomValue() {
  std::string value(system_->config().object_size, '\0');
  for (char& c : value) {
    c = static_cast<char>('a' + rng_.Uniform(26));
  }
  return value;
}

ObjectId Workload::PickObject(size_t i, bool for_write) {
  if (options_.object_picker) {
    return options_.object_picker(i, for_write, rng_);
  }
  const SystemConfig& cfg = system_->config();
  uint32_t pages = cfg.preloaded_pages;
  uint32_t slots = cfg.objects_per_page;
  uint32_t n = static_cast<uint32_t>(system_->num_clients());
  uint32_t page = 0;
  SlotId slot = 0;
  switch (options_.pattern) {
    case AccessPattern::kUniform:
      page = rng_.Uniform(pages);
      slot = static_cast<SlotId>(rng_.Uniform(slots));
      break;
    case AccessPattern::kHotCold: {
      uint32_t hot = std::max<uint32_t>(
          1, static_cast<uint32_t>(pages * options_.hot_fraction));
      page = rng_.Bernoulli(options_.hot_access_prob)
                 ? rng_.Uniform(hot)
                 : hot + rng_.Uniform(pages - hot);
      slot = static_cast<SlotId>(rng_.Uniform(slots));
      break;
    }
    case AccessPattern::kPrivate: {
      // With more clients than pages, spans wrap: clients i and i+pages
      // share a span ("as private as the database allows"). The unwrapped
      // form (`i * span`) walked off the preloaded range past ~64 clients.
      uint32_t span = std::max<uint32_t>(1, pages / n);
      uint32_t spans = std::max<uint32_t>(1, pages / span);
      page = static_cast<uint32_t>((i % spans) * span + rng_.Uniform(span));
      slot = static_cast<SlotId>(rng_.Uniform(slots));
      break;
    }
    case AccessPattern::kSharedHot: {
      uint32_t hot = std::min(options_.shared_pages, pages);
      if (rng_.Bernoulli(options_.hot_access_prob)) {
        page = rng_.Uniform(hot);
        if (for_write) {
          // Disjoint slots per client: concurrent updates to different
          // objects of the same page, the Section 3.1 scenario. With more
          // clients than slots the assignment wraps (i mod slots), which
          // keeps indices in range where the old clamp collapsed every
          // excess client onto the last slot.
          uint32_t mine = slots / n;
          if (mine == 0) mine = 1;
          uint32_t base = static_cast<uint32_t>((i * mine) % slots);
          slot = static_cast<SlotId>((base + rng_.Uniform(mine)) % slots);
        } else {
          slot = static_cast<SlotId>(rng_.Uniform(slots));
        }
      } else {
        uint32_t cold = pages - hot;
        uint32_t span = std::max<uint32_t>(1, cold / n);
        uint32_t spans = std::max<uint32_t>(1, cold / span);
        page = static_cast<uint32_t>(hot + (i % spans) * span +
                                     rng_.Uniform(span));
        page = std::min<uint32_t>(page, pages - 1);
        slot = static_cast<SlotId>(rng_.Uniform(slots));
      }
      break;
    }
  }
  return ObjectId{PageId(page), slot};
}

Status Workload::Step(size_t i) {
  Client& client = system_->client(i);
  ClientState& st = states_[i];

  // A fenced client (presumed dead by the server, or self-fenced on a
  // locally-expired lease) cannot make progress until it runs crash
  // recovery: sideline it like a crashed client instead of failing the run.
  // The machine-readable reason is what makes this distinguishable from an
  // ordinary lock-conflict WouldBlock.
  auto sideline_if_fenced = [&](const Status& s) {
    if (!s.IsZombieFenced()) return false;
    if (st.txn != kInvalidTxnId) oracle_->AbortTxn(st.txn);
    st.txn = kInvalidTxnId;
    st.crashed = true;
    ++stats_.zombie_fences;
    return true;
  };
  auto count_would_block = [&](const Status& s) {
    ++stats_.would_blocks;
    if (s.IsFailoverInProgress()) ++stats_.failover_blocks;
  };

  if (st.txn == kInvalidTxnId) {
    auto txn = client.Begin();
    if (!txn.ok()) {
      if (sideline_if_fenced(txn.status())) return Status::OK();
      if (txn.status().IsWouldBlock()) {
        // A mastership gap (or a recovering page touched by the heartbeat
        // path) surfaces here too; retry on the client's next turn exactly
        // like an operation-level WouldBlock.
        count_would_block(txn.status());
        if (++st.retries > options_.max_retries) {
          last_failure_ = FailureInfo{i, kInvalidTxnId, false};
          return txn.status();
        }
        return Status::OK();
      }
      last_failure_ = FailureInfo{i, kInvalidTxnId, false};
      return txn.status();
    }
    st.txn = txn.value();
    st.ops_done = 0;
    st.retries = 0;
    return Status::OK();
  }

  if (st.ops_done >= options_.ops_per_txn) {
    Status s = client.Commit(st.txn);
    if (!s.ok()) {
      if (sideline_if_fenced(s)) return Status::OK();
      if (s.IsWouldBlock()) {
        // Commit cannot be unilaterally aborted here (the record may be
        // mid-flight), but a WouldBlock commit made no durable progress:
        // retry it on the next turn until the gap closes.
        count_would_block(s);
        if (++st.retries > options_.max_retries) {
          last_failure_ = FailureInfo{i, st.txn, true};
          return s;
        }
        return Status::OK();
      }
      last_failure_ = FailureInfo{i, st.txn, true};
      return s;
    }
    oracle_->CommitTxn(st.txn);
    st.txn = kInvalidTxnId;
    ++st.txns_done;
    ++stats_.commits;
    return Status::OK();
  }

  bool is_write = rng_.Bernoulli(options_.write_fraction);
  ObjectId oid = PickObject(i, is_write);
  Status s;
  if (is_write) {
    std::string value = RandomValue();
    s = client.Write(st.txn, oid, value);
    if (s.ok()) oracle_->StageWrite(st.txn, oid, std::move(value));
  } else {
    auto got = client.Read(st.txn, oid);
    s = got.status();
    if (s.ok() && options_.validate_reads) {
      auto expected = oracle_->ExpectedRead(st.txn, oid);
      if (expected.has_value() && expected->has_value() &&
          got.value() != **expected) {
        ++stats_.read_mismatches;
        // NOLINTNEXTLINE(concurrency-mt-unsafe): harness-only debug knob;
        // the environment is never mutated after process start.
        if (std::getenv("FINELOG_DEBUG_MISMATCH") != nullptr) {
          std::fprintf(stderr,
                       "read mismatch: client=%zu obj=%u:%u got=%.8s... "
                       "expected=%.8s...\n",
                       i, oid.page.value(), oid.slot, got.value().c_str(),
                       (*expected)->c_str());
        }
      }
    }
  }
  ++stats_.ops;

  if (s.ok()) {
    ++st.ops_done;
    st.retries = 0;
    return Status::OK();
  }
  if (sideline_if_fenced(s)) return Status::OK();
  if (s.IsWouldBlock()) {
    count_would_block(s);
    if (++st.retries > options_.max_retries) {
      Status a = client.Abort(st.txn);
      if (!a.ok()) {
        last_failure_ = FailureInfo{i, st.txn, false};
        return a;
      }
      oracle_->AbortTxn(st.txn);
      st.txn = kInvalidTxnId;
      ++stats_.aborts;
    }
    return Status::OK();
  }
  if (s.IsLogFull()) {
    // The log space protocol could not make room (pinned by this very
    // transaction): abort to release the log tail.
    Status a = client.Abort(st.txn);
    if (!a.ok()) {
      last_failure_ = FailureInfo{i, st.txn, false};
      return a;
    }
    oracle_->AbortTxn(st.txn);
    st.txn = kInvalidTxnId;
    ++stats_.aborts;
    return Status::OK();
  }
  last_failure_ = FailureInfo{i, st.txn, false};
  return s;
}

Result<bool> Workload::RunSteps(uint64_t steps) {
  uint64_t done_rounds = 0;
  for (uint64_t step = 0; step < steps;) {
    bool all_done = true;
    bool progressed = false;
    for (size_t i = 0; i < states_.size() && step < steps; ++i) {
      ClientState& st = states_[i];
      if (st.crashed || st.txns_done >= options_.txns_per_client) continue;
      all_done = false;
      FINELOG_RETURN_IF_ERROR(Step(i));
      progressed = true;
      ++step;
    }
    if (all_done) {
      stats_.sim_time_us = system_->clock().now_us() - start_time_us_;
      return true;
    }
    if (!progressed && ++done_rounds > 4) {
      // Only crashed clients remain.
      stats_.sim_time_us = system_->clock().now_us() - start_time_us_;
      return true;
    }
  }
  stats_.sim_time_us = system_->clock().now_us() - start_time_us_;
  bool complete = true;
  for (const ClientState& st : states_) {
    if (!st.crashed && st.txns_done < options_.txns_per_client) complete = false;
  }
  return complete;
}

Status Workload::Run() {
  while (true) {
    auto done = RunSteps(100000);
    if (!done.ok()) return done.status();
    if (done.value()) return Status::OK();
  }
}

void Workload::OnClientCrashed(size_t i) {
  ClientState& st = states_[i];
  if (st.txn != kInvalidTxnId) {
    oracle_->AbortTxn(st.txn);
    st.txn = kInvalidTxnId;
  }
  st.crashed = true;
}

void Workload::OnClientRecovered(size_t i) { states_[i].crashed = false; }

}  // namespace finelog
