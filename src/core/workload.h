// Workload generator and driver.
//
// Transactions from all clients are interleaved at operation granularity by
// a deterministic round-robin driver, which is how the single-process
// simulation expresses multi-client concurrency. Lock conflicts surface as
// kWouldBlock; the driver retries the operation on the client's next turn
// and aborts the transaction after too many failed attempts (timeout-style
// deadlock resolution).
//
// Access patterns (named after the client-server caching literature):
//   kUniform   -- every client accesses every page uniformly.
//   kHotCold   -- a small hot page set absorbs most accesses of all clients.
//   kPrivate   -- pages are partitioned per client; no data sharing.
//   kSharedHot -- most updates hit a small shared page set, but each client
//                 updates its *own* slots there: exactly the concurrent
//                 same-page updates that fine-granularity locking plus copy
//                 merging enables (Section 3.1).

#ifndef FINELOG_CORE_WORKLOAD_H_
#define FINELOG_CORE_WORKLOAD_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/oracle.h"
#include "core/system.h"

namespace finelog {

enum class AccessPattern { kUniform, kHotCold, kPrivate, kSharedHot };

struct WorkloadOptions {
  uint32_t txns_per_client = 10;
  uint32_t ops_per_txn = 8;
  double write_fraction = 0.5;
  AccessPattern pattern = AccessPattern::kUniform;
  double hot_fraction = 0.1;      // Fraction of pages forming the hot set.
  double hot_access_prob = 0.8;   // Probability an access hits the hot set.
  uint32_t shared_pages = 4;      // Hot set size for kSharedHot.
  uint32_t max_retries = 25;      // WouldBlock retries before aborting.
  uint64_t seed = 42;
  bool validate_reads = true;     // Check reads against the oracle.

  // Pluggable object selection. When set, it replaces the built-in
  // `pattern` logic entirely: the driver calls it with the acting client,
  // whether the access is a write, and the workload's own RNG (the sole
  // randomness source, so a seeded schedule stays reproducible). This is
  // the seam the scalable generator (core/workload_gen.h) plugs Zipf
  // selection and merge-storm phases into without forking the driver.
  std::function<ObjectId(size_t client, bool for_write, Rng& rng)>
      object_picker;
};

struct WorkloadStats {
  uint64_t commits = 0;
  uint64_t aborts = 0;
  uint64_t would_blocks = 0;
  // Subset of would_blocks that carried kFailoverInProgress: retries spent
  // waiting out a mastership gap rather than a lock conflict.
  uint64_t failover_blocks = 0;
  uint64_t zombie_fences = 0;  // Clients sidelined by a kZombieFenced status.
  uint64_t ops = 0;
  uint64_t read_mismatches = 0;
  uint64_t sim_time_us = 0;
};

class Workload {
 public:
  Workload(System* system, Oracle* oracle, WorkloadOptions options);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  // Runs the full workload to completion (all clients finish their quota).
  Status Run();

  // Runs at most `steps` driver steps (one client operation each); returns
  // true when the workload is complete. Lets tests inject crashes at exact
  // interleaving points.
  Result<bool> RunSteps(uint64_t steps);

  // Marks a client crashed so the driver skips it (its in-flight txn is
  // discarded, mirroring what the crash did).
  void OnClientCrashed(size_t i);
  // Resumes driving a recovered client.
  void OnClientRecovered(size_t i);

  // True while the driver is skipping client `i` (harness crash or a
  // zombie-fence sideline). The generator reads this to carry sidelined
  // clients across phase boundaries.
  bool client_sidelined(size_t i) const { return states_.at(i).crashed; }

  // Transactions client `i` has committed so far (its progress toward
  // options.txns_per_client).
  uint32_t client_txns_done(size_t i) const { return states_.at(i).txns_done; }

  const WorkloadStats& stats() const { return stats_; }

  // Attribution of the last hard (non-retriable) Step error: which client's
  // operation failed, the transaction it was running, and whether the error
  // surfaced from Commit. A failed Commit is special for fault-injection
  // harnesses: the commit record may or may not be durable (in-doubt).
  struct FailureInfo {
    size_t client = 0;
    TxnId txn = kInvalidTxnId;
    bool during_commit = false;
  };
  const std::optional<FailureInfo>& last_failure() const {
    return last_failure_;
  }

 private:
  struct ClientState {
    TxnId txn = kInvalidTxnId;
    uint32_t ops_done = 0;
    uint32_t txns_done = 0;
    uint32_t retries = 0;
    bool crashed = false;
  };

  // One operation (or txn begin/commit) on client `i`.
  Status Step(size_t i);
  ObjectId PickObject(size_t i, bool for_write);
  std::string RandomValue();

  System* system_;
  Oracle* oracle_;
  WorkloadOptions options_;
  Rng rng_;
  std::vector<ClientState> states_;
  WorkloadStats stats_;
  std::optional<FailureInfo> last_failure_;
  uint64_t start_time_us_;
};

}  // namespace finelog

#endif  // FINELOG_CORE_WORKLOAD_H_
