// Scalable contention-sweep workload generator.
//
// The paper's thesis -- clients do the transactional work so the server
// stays thin -- only shows its limits under pressure: lock callbacks, page
// merges, lease renewals and group-commit windows each saturate somewhere
// as client count and access skew grow. This generator produces that
// pressure deterministically, behind the existing Workload/System seams:
//
//  - Client count is whatever the System was built with (4 to 512+; the
//    driver and access patterns stay in range past the old ~64-client
//    assumptions).
//  - Object selection is Zipf-skewed (ZipfSampler below, seeded through
//    common/rng.h; theta = 0 degrades to the uniform pattern exactly).
//  - Phases compose into long-running soaks: mixed read/write phases with
//    configurable skew alternate with hot-page merge storms (every client
//    updates its own slots of a few shared pages -- the Section 3.1
//    merge scenario at full intensity). Chaos (net faults, partitions,
//    crashes from the PR 4/5 knobs) is injected *between* driver steps by
//    the harness, which is why the stepwise RunSteps API exists.
//
// Every phase runs through the ordinary Workload driver (oracle-verified
// reads, WouldBlock retry/abort, zombie sidelining), so everything the
// chaos and crash sweeps prove about the driver holds here too.

#ifndef FINELOG_CORE_WORKLOAD_GEN_H_
#define FINELOG_CORE_WORKLOAD_GEN_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/oracle.h"
#include "core/system.h"
#include "core/workload.h"

namespace finelog {

// Deterministic Zipf(theta) sampler over ranks [0, n). Probability of rank
// k is proportional to 1 / (k+1)^theta. theta = 0 is exactly one
// rng.Uniform(n) draw, so a theta-0 schedule is byte-identical to a uniform
// one; theta > 0 inverts a precomputed CDF with exactly one NextDouble()
// draw per sample, keeping the RNG stream a deterministic function of the
// sample sequence.
class ZipfSampler {
 public:
  ZipfSampler(uint32_t n, double theta);

  uint32_t Sample(Rng& rng) const;

  // Theoretical probability of rank k, for property tests.
  double Probability(uint32_t rank) const;

  uint32_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint32_t n_;
  double theta_;
  std::vector<double> cdf_;  // Empty when theta == 0 (uniform fast path).
};

enum class PhaseKind {
  // Zipf-skewed reads and writes over the whole preloaded object space.
  // Rank r maps to page r / objects_per_page, slot r % objects_per_page,
  // so under skew the hottest page absorbs the hottest `objects_per_page`
  // ranks: fine-granularity locking and copy merging are what keep that
  // page writable by everyone at once.
  kMixed,
  // Merge storm: every access hits one of `storm_pages` shared pages, and
  // writes go to the acting client's own slot range (disjoint up to
  // objects_per_page clients, wrapping beyond). Maximizes concurrent
  // same-page updates and therefore PSN merges and callback traffic.
  kMergeStorm,
};

struct PhaseOptions {
  PhaseKind kind = PhaseKind::kMixed;
  uint32_t txns_per_client = 8;
  uint32_t ops_per_txn = 4;
  double write_fraction = 0.5;
  double zipf_theta = 0.0;     // kMixed only. 0 = uniform.
  uint32_t storm_pages = 4;    // kMergeStorm only.
};

struct WorkloadGenOptions {
  uint64_t seed = 42;
  uint32_t max_retries = 25;
  bool validate_reads = true;
  std::vector<PhaseOptions> phases;
};

// Saturation counters for one phase: the raw driver stats plus the metric
// deltas E14 charts (callbacks, merges, lease renewals, group-commit fill).
struct PhaseGenStats {
  WorkloadStats workload;
  uint64_t callbacks = 0;          // server.callbacks_object + _page deltas.
  uint64_t merges = 0;             // server.pages_merged delta.
  uint64_t lease_renewals = 0;     // liveness.heartbeats_received delta.
  uint64_t group_commits = 0;      // client.group_commits delta.
  uint64_t group_commit_txns = 0;  // client.group_commit_txns delta.
  uint64_t sim_us = 0;             // Simulated time spent in the phase.
};

class WorkloadGen {
 public:
  WorkloadGen(System* system, Oracle* oracle, WorkloadGenOptions options);

  WorkloadGen(const WorkloadGen&) = delete;
  WorkloadGen& operator=(const WorkloadGen&) = delete;

  // Runs every remaining phase to completion.
  Status Run();

  // Drives at most `steps` operations of the current phase; finished phases
  // advance automatically. Returns true once every phase is complete. This
  // is the soak seam: harnesses interleave crashes, partitions and fault
  // reconfiguration between calls.
  Result<bool> RunSteps(uint64_t steps);

  bool done() const { return phase_index_ >= options_.phases.size(); }
  size_t current_phase() const { return phase_index_; }

  // Crash bookkeeping, forwarded to the active phase's driver and
  // remembered across phase boundaries.
  void OnClientCrashed(size_t i);
  void OnClientRecovered(size_t i);

  // Per-phase saturation stats (finished phases only) and the aggregate.
  const std::vector<PhaseGenStats>& phase_stats() const { return stats_; }
  WorkloadStats TotalWorkloadStats() const;

  // Committed-transaction quota progress of client `i`, summed over
  // finished phases plus the active one.
  uint64_t client_commits(size_t i) const;

 private:
  void StartPhase();
  void FinishPhase();
  ObjectId PickMixed(const PhaseOptions& phase, const ZipfSampler& sampler,
                     Rng& rng) const;
  ObjectId PickStorm(const PhaseOptions& phase, size_t client, bool for_write,
                     Rng& rng) const;

  System* system_;
  Oracle* oracle_;
  WorkloadGenOptions options_;
  size_t phase_index_ = 0;
  std::unique_ptr<Workload> active_;
  std::unique_ptr<ZipfSampler> sampler_;  // kMixed with theta > 0 only.
  std::vector<bool> sidelined_;           // Carried across phases.
  std::vector<uint64_t> finished_commits_;  // Per client, finished phases.
  std::vector<PhaseGenStats> stats_;
  // Metric snapshot at phase start, for delta-based saturation counters.
  uint64_t base_callbacks_ = 0;
  uint64_t base_merges_ = 0;
  uint64_t base_renewals_ = 0;
  uint64_t base_group_commits_ = 0;
  uint64_t base_group_txns_ = 0;
  uint64_t base_sim_us_ = 0;
};

}  // namespace finelog

#endif  // FINELOG_CORE_WORKLOAD_GEN_H_
