#include "core/workload_gen.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace finelog {

// ---------------------------------------------------------------------------
// ZipfSampler
// ---------------------------------------------------------------------------

ZipfSampler::ZipfSampler(uint32_t n, double theta) : n_(n), theta_(theta) {
  FINELOG_CHECK(n > 0, "ZipfSampler needs a non-empty rank space");
  FINELOG_CHECK(theta >= 0.0, "Zipf theta must be non-negative");
  if (theta_ == 0.0) return;  // Uniform fast path: no table.
  cdf_.resize(n_);
  double total = 0.0;
  for (uint32_t k = 0; k < n_; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k) + 1.0, theta_);
    cdf_[k] = total;
  }
  for (uint32_t k = 0; k < n_; ++k) cdf_[k] /= total;
  cdf_[n_ - 1] = 1.0;  // Guard against accumulated rounding at the tail.
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  if (theta_ == 0.0) return static_cast<uint32_t>(rng.Uniform(n_));
  double u = rng.NextDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint32_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint32_t rank) const {
  FINELOG_CHECK(rank < n_, "Zipf rank out of range");
  if (theta_ == 0.0) return 1.0 / static_cast<double>(n_);
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

// ---------------------------------------------------------------------------
// WorkloadGen
// ---------------------------------------------------------------------------

WorkloadGen::WorkloadGen(System* system, Oracle* oracle,
                         WorkloadGenOptions options)
    : system_(system),
      oracle_(oracle),
      options_(std::move(options)),
      sidelined_(system->num_clients(), false),
      finished_commits_(system->num_clients(), 0) {
  FINELOG_CHECK(!options_.phases.empty(), "WorkloadGen needs >= 1 phase");
  StartPhase();
}

ObjectId WorkloadGen::PickMixed(const PhaseOptions& phase,
                                const ZipfSampler& sampler, Rng& rng) const {
  (void)phase;
  uint32_t slots = system_->config().objects_per_page;
  uint32_t rank = sampler.Sample(rng);
  return ObjectId{PageId(rank / slots), static_cast<SlotId>(rank % slots)};
}

ObjectId WorkloadGen::PickStorm(const PhaseOptions& phase, size_t client,
                                bool for_write, Rng& rng) const {
  const SystemConfig& cfg = system_->config();
  uint32_t pages = std::max<uint32_t>(
      1, std::min(phase.storm_pages, cfg.preloaded_pages));
  uint32_t slots = cfg.objects_per_page;
  uint32_t n = static_cast<uint32_t>(system_->num_clients());
  uint32_t page = static_cast<uint32_t>(rng.Uniform(pages));
  SlotId slot;
  if (for_write) {
    // Each client owns a slot range; ranges wrap past objects_per_page
    // clients so indices stay valid at any scale.
    uint32_t mine = std::max<uint32_t>(1, slots / n);
    uint32_t base = static_cast<uint32_t>((client * mine) % slots);
    slot = static_cast<SlotId>((base + rng.Uniform(mine)) % slots);
  } else {
    slot = static_cast<SlotId>(rng.Uniform(slots));
  }
  return ObjectId{PageId(page), slot};
}

void WorkloadGen::StartPhase() {
  const PhaseOptions& phase = options_.phases[phase_index_];
  const SystemConfig& cfg = system_->config();

  WorkloadOptions wopts;
  wopts.txns_per_client = phase.txns_per_client;
  wopts.ops_per_txn = phase.ops_per_txn;
  wopts.write_fraction = phase.write_fraction;
  wopts.max_retries = options_.max_retries;
  wopts.validate_reads = options_.validate_reads;
  // Distinct deterministic stream per phase: a phase reorder or resize
  // shows up as a schedule change instead of silently reusing draws.
  wopts.seed = options_.seed + 0x9E37 * (phase_index_ + 1);

  if (phase.kind == PhaseKind::kMixed && phase.zipf_theta == 0.0) {
    // Degenerates to the built-in uniform pattern: no picker installed,
    // so the schedule is byte-identical to a plain uniform Workload.
    wopts.pattern = AccessPattern::kUniform;
    sampler_.reset();
  } else if (phase.kind == PhaseKind::kMixed) {
    uint64_t objects =
        uint64_t{cfg.preloaded_pages} * uint64_t{cfg.objects_per_page};
    sampler_ = std::make_unique<ZipfSampler>(static_cast<uint32_t>(objects),
                                             phase.zipf_theta);
    wopts.object_picker = [this, &phase](size_t, bool, Rng& rng) {
      return PickMixed(phase, *sampler_, rng);
    };
  } else {
    sampler_.reset();
    wopts.object_picker = [this, &phase](size_t client, bool for_write,
                                         Rng& rng) {
      return PickStorm(phase, client, for_write, rng);
    };
  }

  active_ = std::make_unique<Workload>(system_, oracle_, wopts);
  for (size_t i = 0; i < sidelined_.size(); ++i) {
    if (sidelined_[i]) active_->OnClientCrashed(i);
  }

  Metrics& m = system_->metrics();
  base_callbacks_ = m.Get(Counter::kServerCallbacksObject) +
                    m.Get(Counter::kServerCallbacksPage);
  base_merges_ = m.Get(Counter::kServerPagesMerged);
  base_renewals_ = m.Get(Counter::kLivenessHeartbeatsReceived);
  base_group_commits_ = m.Get(Counter::kClientGroupCommits);
  base_group_txns_ = m.Get(Counter::kClientGroupCommitTxns);
  base_sim_us_ = system_->clock().now_us();
}

void WorkloadGen::FinishPhase() {
  Metrics& m = system_->metrics();
  PhaseGenStats ps;
  ps.workload = active_->stats();
  ps.callbacks = m.Get(Counter::kServerCallbacksObject) +
                 m.Get(Counter::kServerCallbacksPage) - base_callbacks_;
  ps.merges = m.Get(Counter::kServerPagesMerged) - base_merges_;
  ps.lease_renewals =
      m.Get(Counter::kLivenessHeartbeatsReceived) - base_renewals_;
  ps.group_commits = m.Get(Counter::kClientGroupCommits) - base_group_commits_;
  ps.group_commit_txns =
      m.Get(Counter::kClientGroupCommitTxns) - base_group_txns_;
  ps.sim_us = system_->clock().now_us() - base_sim_us_;
  stats_.push_back(ps);

  // Sidelines (zombie fences) discovered by the driver persist into the
  // next phase; commit progress is banked per client.
  for (size_t i = 0; i < sidelined_.size(); ++i) {
    if (active_->client_sidelined(i)) sidelined_[i] = true;
    finished_commits_[i] += active_->client_txns_done(i);
  }
  active_.reset();
  ++phase_index_;
  if (!done()) StartPhase();
}

Result<bool> WorkloadGen::RunSteps(uint64_t steps) {
  if (done()) return true;
  auto phase_done = active_->RunSteps(steps);
  FINELOG_RETURN_IF_ERROR(phase_done.status());
  // A completed phase advances, but the next one only starts consuming
  // steps on the following call: one call never drives more than `steps`
  // operations, so harness-injected chaos lands where it was aimed.
  if (phase_done.value()) FinishPhase();
  return done();
}

Status WorkloadGen::Run() {
  while (!done()) {
    auto complete = RunSteps(100000);
    FINELOG_RETURN_IF_ERROR(complete.status());
  }
  return Status::OK();
}

void WorkloadGen::OnClientCrashed(size_t i) {
  sidelined_.at(i) = true;
  if (active_ != nullptr) active_->OnClientCrashed(i);
}

void WorkloadGen::OnClientRecovered(size_t i) {
  sidelined_.at(i) = false;
  if (active_ != nullptr) active_->OnClientRecovered(i);
}

WorkloadStats WorkloadGen::TotalWorkloadStats() const {
  WorkloadStats total;
  for (const PhaseGenStats& ps : stats_) {
    total.commits += ps.workload.commits;
    total.aborts += ps.workload.aborts;
    total.would_blocks += ps.workload.would_blocks;
    total.zombie_fences += ps.workload.zombie_fences;
    total.ops += ps.workload.ops;
    total.read_mismatches += ps.workload.read_mismatches;
    total.sim_time_us += ps.sim_us;
  }
  if (active_ != nullptr) {
    const WorkloadStats& cur = active_->stats();
    total.commits += cur.commits;
    total.aborts += cur.aborts;
    total.would_blocks += cur.would_blocks;
    total.zombie_fences += cur.zombie_fences;
    total.ops += cur.ops;
    total.read_mismatches += cur.read_mismatches;
    total.sim_time_us += system_->clock().now_us() - base_sim_us_;
  }
  return total;
}

uint64_t WorkloadGen::client_commits(size_t i) const {
  uint64_t total = finished_commits_.at(i);
  if (active_ != nullptr) total += active_->client_txns_done(i);
  return total;
}

}  // namespace finelog
