#include "core/oracle.h"

#include <cstdio>
#include <cstdlib>

namespace finelog {

Result<size_t> Oracle::Verify(System* system, size_t reader_index) {
  Client& reader = system->client(reader_index);
  size_t mismatches = 0;
  FINELOG_ASSIGN_OR_RETURN(TxnId txn, reader.Begin());
  for (const auto& [oid, expected] : committed_) {
    auto got = reader.Read(txn, oid);
    if (got.status().IsWouldBlock()) {
      // Another client legitimately holds the object; skip rather than spin
      // (verification is usually run on a quiescent system).
      continue;
    }
    bool bad;
    if (expected.has_value()) {
      bad = !got.ok() || got.value() != *expected;
    } else {
      bad = got.ok();  // Deleted object came back.
    }
    if (bad) {
      ++mismatches;
      // NOLINTNEXTLINE(concurrency-mt-unsafe): harness-only debug knob;
      // the environment is never mutated after process start.
      if (std::getenv("FINELOG_DEBUG_MISMATCH") != nullptr) {
        std::fprintf(stderr, "verify mismatch obj=%u:%u got=%.8s expected=%.8s\n",
                     oid.page.value(), oid.slot,
                     got.ok() ? got.value().c_str() : got.status().ToString().c_str(),
                     expected.has_value() ? expected->c_str() : "<deleted>");
      }
    }
  }
  FINELOG_RETURN_IF_ERROR(reader.Commit(txn));
  return mismatches;
}

}  // namespace finelog
