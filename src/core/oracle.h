// Oracle: ground truth for durability verification.
//
// The workload driver stages every operation it performs; on commit the
// staged values become the expected committed state, on abort they are
// discarded. Verify() then reads every tracked object back through a client
// transaction and checks that (a) every committed update survived whatever
// crashes were injected and (b) no uncommitted update did.

#ifndef FINELOG_CORE_ORACLE_H_
#define FINELOG_CORE_ORACLE_H_

#include <map>
#include <optional>
#include <string>

#include "common/result.h"
#include "common/types.h"
#include "core/system.h"

namespace finelog {

class Oracle {
 public:
  Oracle() = default;
  Oracle(const Oracle&) = delete;
  Oracle& operator=(const Oracle&) = delete;

  // Staging (call alongside the corresponding Client operation).
  void StageWrite(TxnId txn, ObjectId oid, std::string value) {
    staged_[txn][oid] = std::move(value);
  }
  void StageDelete(TxnId txn, ObjectId oid) {
    staged_[txn][oid] = std::nullopt;
  }

  void CommitTxn(TxnId txn) {
    auto it = staged_.find(txn);
    if (it == staged_.end()) return;
    for (auto& [oid, value] : it->second) {
      committed_[oid] = std::move(value);
    }
    staged_.erase(it);
  }
  void AbortTxn(TxnId txn) { staged_.erase(txn); }
  // A crash aborts every staged transaction of a client.
  void CrashClient(ClientId client) {
    for (auto it = staged_.begin(); it != staged_.end();) {
      if (ClientOfTxn(it->first) == client) {
        it = staged_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // In-doubt commits (fault injection): a Commit() call that returned an
  // error may still be durably committed -- the commit record can reach the
  // log before the injected failure is reported. MarkInDoubt moves the
  // transaction's staged updates to a holding area that survives
  // CrashClient; after recovery the harness probes the database and settles
  // the outcome with ResolveInDoubt.
  void MarkInDoubt(TxnId txn) {
    auto it = staged_.find(txn);
    if (it == staged_.end()) return;
    in_doubt_[txn] = std::move(it->second);
    staged_.erase(it);
  }
  const std::map<ObjectId, std::optional<std::string>>* InDoubt(
      TxnId txn) const {
    auto it = in_doubt_.find(txn);
    return it == in_doubt_.end() ? nullptr : &it->second;
  }
  void ResolveInDoubt(TxnId txn, bool committed) {
    auto it = in_doubt_.find(txn);
    if (it == in_doubt_.end()) return;
    if (committed) {
      for (auto& [oid, value] : it->second) {
        committed_[oid] = std::move(value);
      }
    }
    in_doubt_.erase(it);
  }
  size_t in_doubt_count() const { return in_doubt_.size(); }

  // Expected committed value of `oid` (outer nullopt = untracked; inner
  // nullopt = tracked but deleted).
  std::optional<std::optional<std::string>> CommittedValue(ObjectId oid) const {
    auto it = committed_.find(oid);
    if (it == committed_.end()) return std::nullopt;
    return it->second;
  }

  // Seeds the expected value of untouched bootstrap objects.
  void SeedCommitted(ObjectId oid, std::string value) {
    committed_.emplace(oid, std::move(value));
  }

  size_t tracked_objects() const { return committed_.size(); }

  // Expected result of a read by `txn`: its own staged value if present,
  // else the committed value. Outer nullopt = object untracked.
  std::optional<std::optional<std::string>> ExpectedRead(TxnId txn,
                                                         ObjectId oid) const {
    auto sit = staged_.find(txn);
    if (sit != staged_.end()) {
      auto oit = sit->second.find(oid);
      if (oit != sit->second.end()) return oit->second;
    }
    auto cit = committed_.find(oid);
    if (cit == committed_.end()) return std::nullopt;
    return cit->second;
  }

  // Reads every tracked object via a transaction on `reader` and compares
  // with the expected committed state. Returns the number of mismatches
  // (0 = fully consistent).
  Result<size_t> Verify(System* system, size_t reader_index);

 private:
  std::map<TxnId, std::map<ObjectId, std::optional<std::string>>> staged_;
  std::map<TxnId, std::map<ObjectId, std::optional<std::string>>> in_doubt_;
  std::map<ObjectId, std::optional<std::string>> committed_;
};

}  // namespace finelog

#endif  // FINELOG_CORE_ORACLE_H_
