// finelog::System -- the public entry point.
//
// A System is a complete deployment: one page server plus N clients, all in
// one process, exchanging messages through an accounted channel and sharing
// a clock. Files (database, space map, server log, private client logs)
// live under `config.dir` and survive simulated crashes; everything else is
// volatile.
//
//   SystemConfig config;
//   config.dir = "/tmp/mydb";
//   auto system = System::Create(config).value();
//   Client& c = system->client(0);
//   TxnId txn = c.Begin().value();
//   c.Write(txn, ObjectId{0, 3}, "new-value-of-object-3");
//   c.Commit(txn);              // forces only the client's private log
//   system->CrashClient(0);     // lock tables, cache, log tail: gone
//   system->RecoverClient(0);   // Section 3.3 restart recovery
//
// Crash injection drops exactly the state the paper treats as volatile, so
// the recovery algorithms of Sections 3.3-3.5 run against honest wreckage.
//
// Execution modes (DESIGN.md section 17): the default ExecMode::kSimulated
// runs everything on the caller's thread against a SimClock -- the
// deterministic oracle. ExecMode::kRealClock swaps in a RealClock, a
// QueueTransport reactor behind the Rpc chokepoint, and a DurableSink
// (fdatasync) behind log forces; the caller then drives each client from
// its own std::thread and harness operations below serialize through the
// reactor.

#ifndef FINELOG_CORE_SYSTEM_H_
#define FINELOG_CORE_SYSTEM_H_

#include <functional>
#include <memory>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/result.h"
#include "log/log_sink.h"
#include "net/channel.h"
#include "net/rpc.h"
#include "net/transport.h"
#include "server/server.h"
#include "util/metrics.h"

namespace finelog {

class System {
 public:
  System(const System&) = delete;
  System& operator=(const System&) = delete;
  // Shuts down the transport (real-clock mode) before any member it may
  // still be delivering into is destroyed.
  ~System();

  // Creates (or reopens) a deployment under `config.dir`. A fresh directory
  // is bootstrapped with `config.preloaded_pages` pages of
  // `config.objects_per_page` objects each.
  static Result<std::unique_ptr<System>> Create(const SystemConfig& config);

  Client& client(size_t i) { return *clients_.at(i); }
  // The node currently fronting traffic: the single server by default; with
  // hot_standby, whichever node the failover router points at.
  Server& server() { return ActiveServer(); }
  size_t num_clients() const { return clients_.size(); }

  // Hot standby (DESIGN.md section 19) ---------------------------------------

  size_t num_server_nodes() const { return servers_.size(); }
  Server& server_node(size_t i) { return *servers_.at(i); }
  int active_server_node() const {
    return router_ != nullptr ? router_->active_node() : 0;
  }
  // Null without hot_standby.
  MastershipTable* mastership() { return mastership_.get(); }
  ServerRouter* router() { return router_.get(); }

  // Partitions server node `i` away from both the clients (requests burn
  // their timeout budget) and the mastership arbiter (the node can only
  // serve down its locally known lease horizon) -- the split-brain drill.
  Status PartitionServerNode(size_t i, bool partitioned);

  // Clean switchover: the active node releases the lease and drops to cold
  // standby; the next client request probes and promotes the peer.
  Status Switchover();

  Clock& clock() { return *clock_; }
  Channel& channel() { return *channel_; }
  Rpc& rpc() { return *rpc_; }
  Metrics& metrics() { return metrics_; }
  const SystemConfig& config() const { return config_; }
  // Null in simulated mode. Real-clock benches read frame counters here.
  QueueTransport* transport() { return transport_.get(); }
  // The sink behind log/page forces (null in simulated mode unless the
  // config injected one). Benches read DurableSink::sync_count() here.
  LogSink* log_sink() { return config_.log_sink; }

  // Crash injection ----------------------------------------------------------
  //
  // In real-clock mode every operation below runs serialized on the reactor
  // thread, so it cannot interleave with endpoint bodies; callers must have
  // quiesced the client threads they are crashing or recovering.

  Status CrashClient(size_t i);
  Status CrashServer();

  // Recovery. RecoverAll handles any combination of crashes in the order
  // Section 3.5 requires: server restart first (deferring work that depends
  // on crashed clients), then each crashed client.
  Status RecoverClient(size_t i);
  Status RecoverServer();
  Status RecoverAll();

  // Recovers a client the *server* declared presumed dead (lease expiry)
  // but that never crashed in the harness sense: its process state is
  // discarded (Crash) and client crash recovery re-registers it with a
  // fresh session epoch, which is the only path off the presumed-dead set.
  // Heal any partition affecting the client first, or recovery-plane calls
  // cannot reach the server.
  Status RecoverZombie(size_t i);

  // Pushes every dirty page (client caches, then server pool) to disk --
  // a quiescent point for tests and benchmarks.
  Status FlushEverything();

  // Instant restart (DESIGN.md section 18): repairs up to `max_pages` pages
  // still marked needs-recovery after a lazy server restart, in sweep
  // priority order. Harnesses call this between workload steps to model the
  // background sweeper; a no-op when nothing is pending. Pass 0 to drain
  // everything.
  Status DrainRecovery(uint32_t max_pages = 0);
  size_t RecoveryPagesPending() const {
    return ActiveServer().RecoveryPagesPending();
  }

 private:
  static std::unique_ptr<Clock> MakeClock(ExecMode mode) {
    if (mode == ExecMode::kRealClock) return std::make_unique<RealClock>();
    return std::make_unique<SimClock>();
  }

  explicit System(const SystemConfig& config)
      : config_(config), clock_(MakeClock(config.exec_mode)), metrics_() {}

  // Harness operations run on the caller's stack in simulated mode and on
  // the reactor in real-clock mode (one serialization point, no endpoint
  // body in flight while volatile state is being dropped or rebuilt).
  Status RunSerialized(const std::function<Status()>& fn);

  Server& ActiveServer() const {
    return *servers_.at(router_ != nullptr
                            ? static_cast<size_t>(router_->active_node())
                            : 0);
  }

  SystemConfig config_;
  std::unique_ptr<Clock> clock_;
  Metrics metrics_;
  std::unique_ptr<DurableSink> owned_sink_;  // Real-clock default sink.
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<Rpc> rpc_;
  // servers_[0] is the initial primary; with hot_standby, servers_[1] is the
  // standby and the roles float with the mastership lease.
  std::vector<std::unique_ptr<Server>> servers_;
  std::unique_ptr<MastershipTable> mastership_;  // hot_standby only.
  std::unique_ptr<ServerRouter> router_;         // hot_standby only.
  std::vector<std::unique_ptr<Client>> clients_;
  std::unique_ptr<QueueTransport> transport_;  // Real-clock mode only.
};

}  // namespace finelog

#endif  // FINELOG_CORE_SYSTEM_H_
