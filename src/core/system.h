// finelog::System -- the public entry point.
//
// A System is a complete simulated deployment: one page server plus N
// clients, all in one process, exchanging messages through an accounted
// channel and sharing a simulated clock. Files (database, space map, server
// log, private client logs) live under `config.dir` and survive simulated
// crashes; everything else is volatile.
//
//   SystemConfig config;
//   config.dir = "/tmp/mydb";
//   auto system = System::Create(config).value();
//   Client& c = system->client(0);
//   TxnId txn = c.Begin().value();
//   c.Write(txn, ObjectId{0, 3}, "new-value-of-object-3");
//   c.Commit(txn);              // forces only the client's private log
//   system->CrashClient(0);     // lock tables, cache, log tail: gone
//   system->RecoverClient(0);   // Section 3.3 restart recovery
//
// Crash injection drops exactly the state the paper treats as volatile, so
// the recovery algorithms of Sections 3.3-3.5 run against honest wreckage.

#ifndef FINELOG_CORE_SYSTEM_H_
#define FINELOG_CORE_SYSTEM_H_

#include <memory>
#include <vector>

#include "client/client.h"
#include "common/clock.h"
#include "common/config.h"
#include "common/result.h"
#include "net/channel.h"
#include "net/rpc.h"
#include "server/server.h"
#include "util/metrics.h"

namespace finelog {

class System {
 public:
  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Creates (or reopens) a deployment under `config.dir`. A fresh directory
  // is bootstrapped with `config.preloaded_pages` pages of
  // `config.objects_per_page` objects each.
  static Result<std::unique_ptr<System>> Create(const SystemConfig& config);

  Client& client(size_t i) { return *clients_.at(i); }
  Server& server() { return *server_; }
  size_t num_clients() const { return clients_.size(); }

  SimClock& clock() { return clock_; }
  Channel& channel() { return *channel_; }
  Rpc& rpc() { return *rpc_; }
  Metrics& metrics() { return metrics_; }
  const SystemConfig& config() const { return config_; }

  // Crash injection ----------------------------------------------------------

  Status CrashClient(size_t i);
  Status CrashServer();

  // Recovery. RecoverAll handles any combination of crashes in the order
  // Section 3.5 requires: server restart first (deferring work that depends
  // on crashed clients), then each crashed client.
  Status RecoverClient(size_t i);
  Status RecoverServer();
  Status RecoverAll();

  // Recovers a client the *server* declared presumed dead (lease expiry)
  // but that never crashed in the harness sense: its process state is
  // discarded (Crash) and client crash recovery re-registers it with a
  // fresh session epoch, which is the only path off the presumed-dead set.
  // Heal any partition affecting the client first, or recovery-plane calls
  // cannot reach the server.
  Status RecoverZombie(size_t i);

  // Pushes every dirty page (client caches, then server pool) to disk --
  // a quiescent point for tests and benchmarks.
  Status FlushEverything();

 private:
  explicit System(const SystemConfig& config)
      : config_(config), clock_(), metrics_() {}

  SystemConfig config_;
  SimClock clock_;
  Metrics metrics_;
  std::unique_ptr<Channel> channel_;
  std::unique_ptr<Rpc> rpc_;
  std::unique_ptr<Server> server_;
  std::vector<std::unique_ptr<Client>> clients_;
};

}  // namespace finelog

#endif  // FINELOG_CORE_SYSTEM_H_
