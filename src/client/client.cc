#include "client/client.h"

#include <algorithm>
#include <cassert>

#include "common/check.h"
#include "buffer/pin_guard.h"
#include "server/page_merge.h"
#include "util/fault.h"

namespace finelog {

Result<std::unique_ptr<Client>> Client::Create(ClientId id,
                                               const SystemConfig& config,
                                               ServerEndpoint* server,
                                               Channel* channel, Rpc* rpc,
                                               Metrics* metrics) {
  auto client = std::unique_ptr<Client>(
      new Client(id, config, server, channel, rpc, metrics));
  FINELOG_ASSIGN_OR_RETURN(
      client->log_,
      LogManager::Open(config.dir + "/client" + ToString(id) + ".log",
                       config.client_log_capacity, client->LogIo()));
  client->cache_ = std::make_unique<BufferPool>(config.client_cache_pages);
  return client;
}

size_t Client::active_txns() const {
  SimMutexLock lock(mu_);
  size_t n = 0;
  for (const auto& [id, t] : txns_) {
    (void)id;
    if (t.state == Txn::State::kActive) ++n;
  }
  return n;
}

Result<Client::Txn*> Client::GetActiveTxn(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.state != Txn::State::kActive) {
    return Status::InvalidArgument("no such active transaction");
  }
  return &it->second;
}

Result<TxnId> Client::Begin() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  // A new transaction is the clock edge that can close an expired
  // group-commit window (the simulation has no background flusher).
  if (GroupForceDue()) {
    FINELOG_RETURN_IF_ERROR(ForceLog());
  }
  // MakeTxnId packs the sequence into the low 32 bits; a wrap would alias
  // the owner field and mis-attribute log records to another client.
  FINELOG_CHECK(next_txn_seq_ <= 0xFFFFFFFFull,
                "per-client txn sequence exhausted (2^32 txns)");
  TxnId id = MakeTxnId(id_, next_txn_seq_++);
  txns_[id] = Txn{};
  metrics_->Add(Counter::kClientTxnBegins);
  return id;
}

// ---------------------------------------------------------------------------
// Locking
// ---------------------------------------------------------------------------

Status Client::AcquireObjectLock(TxnId txn, ObjectId oid, LockMode mode) {
  if (config_.lock_granularity == LockGranularity::kPage) {
    // Page-locking baseline: every object access locks the whole page.
    return AcquirePageLock(txn, oid.page, mode);
  }
  switch (llm_.TryAcquireObject(txn, oid, mode)) {
    case LocalLockManager::Acquire::kHit:
      metrics_->Add(Counter::kClientLockHits);
      return Status::OK();
    case LocalLockManager::Acquire::kLocalConflict:
      return Status::WouldBlock("local transaction holds conflicting lock");
    case LocalLockManager::Acquire::kMiss:
      break;
  }
  metrics_->Add(Counter::kClientLockMisses);
  BufferPool::Frame* frame = cache_->Peek(oid.page);
  Psn cached_psn = frame != nullptr ? frame->page.psn() : kNullPsn;
  auto reply = server_->LockObject(id_, oid, mode, cached_psn);
  if (!reply.ok()) return reply.status();
  return InstallObjectLockReply(txn, oid, mode, reply.value());
}

Status Client::InstallObjectLockReply(TxnId txn, ObjectId oid, LockMode mode,
                                      const ObjectLockReply& reply) {
  llm_.AddObjectLock(txn, oid, mode);
  for (const XCallbackInfo& info : reply.x_callbacks) {
    pending_callbacks_[info.object].push_back(info);
  }
  if (mode == LockMode::kExclusive) {
    // Authority for the object now rests here: our (just refreshed) copy is
    // the latest version, and restart pulls must overlay it even if we
    // never update it ourselves.
    unflushed_slots_[oid.page].insert(oid.slot);
  }

  // Re-resolve the frame at install time: in a batch, an earlier item may
  // have installed (or evicted) this page since the request was built.
  BufferPool::Frame* frame = cache_->Peek(oid.page);
  if (reply.page_image) {
    // We asked with no cached copy, so the reply carries the whole page.
    // Any frame present now was installed clean by an earlier batch item;
    // adopting the server copy again is safe.
    Page page(config_.page_size);
    page.raw() = *reply.page_image;
    auto put = cache_->Put(oid.page, std::move(page), EvictHandler());
    if (!put.ok()) return put.status();
  } else if (frame != nullptr) {
    // Install the fresh object value into the cached copy (Section 2).
    std::optional<std::string> image;
    if (reply.object_present && reply.object_image) {
      image = *reply.object_image;
    }
    FINELOG_RETURN_IF_ERROR(
        InstallObject(&frame->page, oid.slot, image, reply.server_psn));
  }

  // Adaptive escalation [3]: many exclusive object locks on one page ->
  // try to trade them for a page lock (best effort).
  if (mode == LockMode::kExclusive &&
      llm_.ExclusiveObjectCountOnPage(oid.page) > config_.escalation_threshold &&
      !llm_.CoversPage(oid.page, LockMode::kExclusive)) {
    Status st = AcquirePageLock(txn, oid.page, LockMode::kExclusive);
    if (st.ok()) metrics_->Add(Counter::kClientEscalations);
    // A WouldBlock here is fine: object locks still cover the access.
    if (!st.ok() && !st.IsWouldBlock() && !st.IsCrashed()) return st;
  }
  return Status::OK();
}

Status Client::BatchAcquireObjectLocks(TxnId txn,
                                       const std::vector<ObjectId>& oids,
                                       LockMode mode) {
  if (config_.lock_granularity == LockGranularity::kPage) {
    for (ObjectId oid : oids) {
      FINELOG_RETURN_IF_ERROR(AcquirePageLock(txn, oid.page, mode));
    }
    return Status::OK();
  }
  // Collect the LLM misses in request order, deduplicated.
  std::vector<ObjectLockRequest> misses;
  std::set<ObjectId> seen;
  for (ObjectId oid : oids) {
    if (!seen.insert(oid).second) continue;
    switch (llm_.TryAcquireObject(txn, oid, mode)) {
      case LocalLockManager::Acquire::kHit:
        metrics_->Add(Counter::kClientLockHits);
        continue;
      case LocalLockManager::Acquire::kLocalConflict:
        return Status::WouldBlock("local transaction holds conflicting lock");
      case LocalLockManager::Acquire::kMiss:
        break;
    }
    metrics_->Add(Counter::kClientLockMisses);
    BufferPool::Frame* frame = cache_->Peek(oid.page);
    ObjectLockRequest req;
    req.oid = oid;
    req.mode = mode;
    req.cached_psn = frame != nullptr ? frame->page.psn() : kNullPsn;
    misses.push_back(req);
  }
  const size_t limit = std::max<uint32_t>(1, config_.max_batch_items);
  for (size_t i = 0; i < misses.size(); i += limit) {
    size_t n = std::min(limit, misses.size() - i);
    std::vector<ObjectLockRequest> chunk(misses.begin() + i,
                                         misses.begin() + i + n);
    auto outcomes = server_->LockObjectBatch(id_, chunk);
    if (!outcomes.ok()) return outcomes.status();
    if (n > 1) {
      metrics_->Add(Counter::kClientBatchLockRequests);
      metrics_->Add(Counter::kClientBatchLockItems, n);
    }
    for (size_t j = 0; j < n; ++j) {
      const ObjectLockOutcome& out = outcomes.value()[j];
      // Earlier grants in the chunk stay installed; the caller sees the
      // first failure, exactly as the sequential loop would report it.
      FINELOG_RETURN_IF_ERROR(out.status);
      FINELOG_RETURN_IF_ERROR(
          InstallObjectLockReply(txn, chunk[j].oid, mode, out.reply));
    }
  }
  return Status::OK();
}

FINELOG_REPLAY_PATH("overlays our modified slots onto the server's page "
                    "image from the lock grant; those updates are already "
                    "in the private log")
Status Client::AcquirePageLock(TxnId txn, PageId pid, LockMode mode) {
  switch (llm_.TryAcquirePage(txn, pid, mode)) {
    case LocalLockManager::Acquire::kHit:
      metrics_->Add(Counter::kClientLockHits);
      return Status::OK();
    case LocalLockManager::Acquire::kLocalConflict:
      return Status::WouldBlock("local transaction holds conflicting lock");
    case LocalLockManager::Acquire::kMiss:
      break;
  }
  metrics_->Add(Counter::kClientLockMisses);
  BufferPool::Frame* frame = cache_->Peek(pid);
  Psn cached_psn = frame != nullptr ? frame->page.psn() : kNullPsn;
  auto reply = server_->LockPage(id_, pid, mode, cached_psn);
  if (!reply.ok()) return reply.status();

  llm_.AddPageLock(txn, pid, mode);
  for (const XCallbackInfo& info : reply.value().x_callbacks) {
    pending_callbacks_[info.object].push_back(info);
  }

  if (reply.value().page_image) {
    if (frame != nullptr && frame->dirty) {
      // Merge: adopt the server's copy, then re-apply our unshipped
      // modifications on top (they are strictly newer for those slots --
      // our locks protected them).
      Page incoming(config_.page_size);
      incoming.raw() = *reply.value().page_image;
      Psn merged = Psn::Merge(frame->page.psn(), incoming.psn());
      for (SlotId slot : frame->modified_slots) {
        if (frame->page.SlotExists(slot)) {
          auto data = frame->page.ReadObject(slot);
          if (!data.ok()) return data.status();
          if (incoming.SlotExists(slot) &&
              incoming.ObjectSize(slot) == data.value().size()) {
            FINELOG_RETURN_IF_ERROR(incoming.WriteObject(slot, data.value()));
          } else if (incoming.SlotExists(slot)) {
            FINELOG_RETURN_IF_ERROR(incoming.ResizeObject(slot, data.value()));
          } else {
            FINELOG_RETURN_IF_ERROR(incoming.CreateObjectAt(slot, data.value()));
          }
        } else if (incoming.SlotExists(slot)) {
          FINELOG_RETURN_IF_ERROR(incoming.DeleteObject(slot));
        }
      }
      incoming.set_psn(merged);
      frame->page = std::move(incoming);
    } else {
      Page page(config_.page_size);
      page.raw() = *reply.value().page_image;
      auto put = cache_->Put(pid, std::move(page), EvictHandler());
      if (!put.ok()) return put.status();
      frame = put.value();
    }
  }
  if (mode == LockMode::kExclusive) {
    // A page-level exclusive grant transfers update authority for the whole
    // page: every conflicting holder shipped its copy and relinquished its
    // unflushed claims, so this client's copy is now the newest version of
    // every object. Claim them all, or a server restart that pulls our
    // cached copy would resurrect the disk version of slots we never
    // modified ourselves.
    if (frame == nullptr) frame = cache_->Peek(pid);
    if (frame != nullptr) {
      std::set<SlotId>& unflushed = unflushed_slots_[pid];
      for (SlotId slot : frame->page.LiveSlots()) {
        unflushed.insert(slot);
      }
    }
  }
  return Status::OK();
}

Status Client::LogPendingCallback(TxnId txn, ObjectId oid) {
  auto pit = pending_callbacks_.find(oid);
  if (pit == pending_callbacks_.end()) return Status::OK();
  std::vector<XCallbackInfo> infos = std::move(pit->second);
  pending_callbacks_.erase(pit);
  auto it = txns_.find(txn);
  Txn* t = it != txns_.end() ? &it->second : nullptr;
  for (const XCallbackInfo& info : infos) {
    LogRecord rec = LogRecord::Callback(
        txn, t != nullptr ? t->last_lsn : kNullLsn, info.object,
        info.responder, info.psn);
    auto lsn = AppendLog(rec);
    if (!lsn.ok()) return lsn.status();
    if (t != nullptr) {
      if (t->first_lsn == kNullLsn) t->first_lsn = lsn.value();
      t->last_lsn = lsn.value();
    }
    metrics_->Add(Counter::kClientCallbackRecords);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

ShippedPage Client::BuildShip(PageId pid, BufferPool::Frame& frame) {
  ShippedPage s;
  s.page = pid;
  s.image = frame.page.raw();
  s.modified_slots.assign(frame.modified_slots.begin(),
                          frame.modified_slots.end());
  s.structural = frame.structurally_modified;
  frame.modified_slots.clear();
  frame.structurally_modified = false;
  frame.dirty = false;
  ship_info_[pid] = ShipInfo{frame.page.psn(), log_->end_lsn()};
  frame.ship_log_lsn = log_->end_lsn();
  return s;
}

BufferPool::EvictHandler Client::EvictHandler() {
  return [this](PageId pid, BufferPool::Frame& frame) -> Status {
    // Recursive: the pool only calls back while the owning method holds the
    // capability; the analysis can't see through the std::function.
    SimMutexLock lock(mu_);
    if (!frame.dirty) return Status::OK();
    // WAL: log records covering the updates must be durable before the page
    // leaves the client (Section 2).
    FINELOG_RETURN_IF_ERROR(ForceLog());
    metrics_->Add(Counter::kClientWalForcesOnReplace);
    ShippedPage shipped = BuildShip(pid, frame);
    metrics_->Add(Counter::kClientPagesShipped);
    return server_->ShipPage(id_, shipped);
  };
}

Result<BufferPool::Frame*> Client::GetCachedPage(PageId pid) {
  if (BufferPool::Frame* f = cache_->Get(pid)) return f;
  auto reply = server_->FetchPage(id_, pid);
  if (!reply.ok()) return reply.status();
  Page page(config_.page_size);
  page.raw() = reply.value().page_image;
  // The DCT PSN sent along is ignored during normal processing (Section 3.2).
  metrics_->Add(Counter::kClientPageFetches);
  return cache_->Put(pid, std::move(page), EvictHandler());
}

// ---------------------------------------------------------------------------
// Log management
// ---------------------------------------------------------------------------

void Client::TrackModification(BufferPool::Frame* frame, PageId pid,
                               SlotId slot) {
  frame->dirty = true;
  frame->modified_slots.insert(slot);
  unflushed_slots_[pid].insert(slot);
}

void Client::EnsureDptEntry(PageId pid) {
  if (dpt_.count(pid) == 0) {
    // Conservative RedoLSN: the current end of the log (Section 3.2).
    dpt_[pid] = log_->end_lsn();
  }
}

void Client::UpdateReclaimLsn() {
  Lsn reclaim = log_->end_lsn();
  for (const auto& [pid, redo] : dpt_) {
    (void)pid;
    reclaim = std::min(reclaim, redo);
  }
  for (const auto& [id, t] : txns_) {
    (void)id;
    if (t.state == Txn::State::kActive && t.first_lsn != kNullLsn) {
      reclaim = std::min(reclaim, t.first_lsn);
    }
  }
  if (log_->checkpoint_lsn() != kNullLsn) {
    reclaim = std::min(reclaim, log_->checkpoint_lsn());
  }
  log_->SetReclaimLsn(reclaim);
  if (config_.punch_reclaimed_log_space) {
    // Hand the reclaimed prefix back to the filesystem (hole punch
    // preserves LSN = offset, so no record addressing changes). Off by
    // default: recovery after complex crashes can consult records below
    // the reclaim point (old callback log records ordering another
    // client's replay), which the paper's flush-coverage argument bounds
    // only when the DCT survives. See DESIGN.md section 8.
    auto punched = log_->PunchReclaimedSpace();
    if (punched.ok() && punched.value() > 0) {
      metrics_->Add(Counter::kClientLogBytesPunched, punched.value());
    }
  }
}

Result<Lsn> Client::AppendLog(const LogRecord& rec) {
  auto lsn = log_->Append(rec);
  if (lsn.ok()) return lsn;
  if (!lsn.status().IsLogFull()) return lsn;
  metrics_->Add(Counter::kClientLogFullEvents);
  FINELOG_RETURN_IF_ERROR(TryFreeLogSpace());
  return log_->Append(rec);
}

Status Client::ForceLog() {
  FINELOG_RETURN_IF_ERROR(log_->Force());
  channel_->clock()->Advance(channel_->costs().log_force_us);
  if (!pending_commits_.empty()) {
    metrics_->Add(Counter::kClientGroupCommits);
    metrics_->Add(Counter::kClientGroupCommitTxns, pending_commits_.size());
    metrics_->SetMax(Counter::kClientGroupCommitMaxBatch,
                     pending_commits_.size());
    pending_commits_.clear();
  }
  metrics_->SetMax(Counter::kClientLogPendingHighWater,
                   log_->pending_high_water());
  return Status::OK();
}

bool Client::GroupForceDue() const {
  if (pending_commits_.empty()) return false;
  if (pending_commits_.size() >=
      std::max<uint32_t>(1, config_.group_commit_max_txns)) {
    return true;
  }
  return channel_->clock()->now_us() - oldest_pending_commit_us_ >=
         config_.group_commit_window;
}

Status Client::FlushCommitGroup() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  if (pending_commits_.empty()) return Status::OK();
  return ForceLog();
}

Status Client::TryFreeLogSpace() {
  // Section 3.6: replace the page with the minimum RedoLSN from the cache
  // (shipping it) and ask the server to force it; the flush notification
  // advances our DPT RedoLSN, letting the log tail move forward. A fresh
  // checkpoint first keeps the analysis anchor from pinning the tail.
  FINELOG_RETURN_IF_ERROR(TakeCheckpoint());
  for (int attempts = 0; attempts < 64; ++attempts) {
    UpdateReclaimLsn();
    if (log_->capacity() == 0 ||
        log_->used_bytes() < log_->capacity() * 3 / 4) {
      return Status::OK();
    }
    // Find the DPT entry with the minimum RedoLSN.
    PageId victim = kInvalidPageId;
    Lsn min_redo = kMaxLsn;
    for (const auto& [pid, redo] : dpt_) {
      if (redo < min_redo) {
        min_redo = redo;
        victim = pid;
      }
    }
    if (victim == kInvalidPageId) {
      return Status::LogFull("log pinned by active transactions");
    }
    BufferPool::Frame* frame = cache_->Peek(victim);
    if (frame != nullptr && frame->dirty) {
      if (cache_->IsPinned(victim)) {
        // The page is in use by the very operation that ran out of log
        // space: ship a copy without evicting it.
        FINELOG_RETURN_IF_ERROR(ForceLog());
        ShippedPage shipped = BuildShip(victim, *frame);
        metrics_->Add(Counter::kClientPagesShipped);
        FINELOG_RETURN_IF_ERROR(server_->ShipPage(id_, shipped));
      } else {
        FINELOG_RETURN_IF_ERROR(cache_->Evict(victim, EvictHandler()));
      }
    }
    Lsn before = dpt_.count(victim) ? dpt_[victim] : kNullLsn;
    FINELOG_RETURN_IF_ERROR(server_->ForcePage(id_, victim));
    metrics_->Add(Counter::kClientLogSpaceForces);
    Lsn after = dpt_.count(victim) ? dpt_[victim] : kMaxLsn;
    if (after <= before && dpt_.count(victim)) {
      // No progress (e.g. the entry is pinned by an active transaction's
      // unshipped update newer than the flush): give up.
      return Status::LogFull("log space protocol made no progress");
    }
  }
  return Status::LogFull("log space protocol exhausted attempts");
}

Status Client::ShipAllDirtyPages() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  if (config_.max_batch_items <= 1) {
    // During an instant restart (DESIGN.md section 18) a ship can come back
    // degraded because the page's lazy repair was interrupted; skip that
    // page, ship the rest, and surface the degradation at the end so one
    // recovering page never blocks the whole flush.
    Status deferred = Status::OK();
    for (PageId pid : cache_->PageIds()) {
      BufferPool::Frame* frame = cache_->Peek(pid);
      if (frame != nullptr && frame->dirty) {
        Status st = cache_->Evict(pid, EvictHandler());
        if (st.IsRecoveringPage()) {
          deferred = st;
          continue;
        }
        FINELOG_RETURN_IF_ERROR(st);
      }
    }
    return deferred;
  }
  // Batched: one WAL force covers every victim, and the page images travel
  // in multi-page ship messages instead of one round trip per page.
  std::vector<PageId> dirty;
  for (PageId pid : cache_->PageIds()) {
    BufferPool::Frame* frame = cache_->Peek(pid);
    if (frame != nullptr && frame->dirty) dirty.push_back(pid);
  }
  if (dirty.empty()) return Status::OK();
  FINELOG_RETURN_IF_ERROR(ForceLog());
  metrics_->Add(Counter::kClientWalForcesOnReplace);
  const size_t limit = config_.max_batch_items;
  for (size_t i = 0; i < dirty.size(); i += limit) {
    size_t n = std::min(limit, dirty.size() - i);
    std::vector<ShippedPage> chunk;
    chunk.reserve(n);
    for (size_t j = 0; j < n; ++j) {
      BufferPool::Frame* frame = cache_->Peek(dirty[i + j]);
      chunk.push_back(BuildShip(dirty[i + j], *frame));
      metrics_->Add(Counter::kClientPagesShipped);
    }
    FINELOG_RETURN_IF_ERROR(server_->ShipPages(id_, chunk));
    if (n > 1) {
      metrics_->Add(Counter::kClientBatchShipRequests);
      metrics_->Add(Counter::kClientBatchShipItems, n);
    }
    // BuildShip left the frames clean, so these evictions just drop them.
    for (size_t j = 0; j < n; ++j) {
      FINELOG_RETURN_IF_ERROR(cache_->Evict(dirty[i + j], EvictHandler()));
    }
  }
  return Status::OK();
}

Status Client::PrefetchPages(const std::vector<PageId>& pids) {
  std::vector<PageId> missing;
  std::set<PageId> seen;
  for (PageId pid : pids) {
    if (!seen.insert(pid).second) continue;
    if (cache_->Peek(pid) != nullptr) continue;
    missing.push_back(pid);
  }
  const size_t limit = std::max<uint32_t>(1, config_.max_batch_items);
  for (size_t i = 0; i < missing.size(); i += limit) {
    size_t n = std::min(limit, missing.size() - i);
    std::vector<PageId> chunk(missing.begin() + i, missing.begin() + i + n);
    auto replies = server_->FetchPages(id_, chunk);
    if (!replies.ok()) return replies.status();
    if (n > 1) {
      metrics_->Add(Counter::kClientBatchFetchRequests);
      metrics_->Add(Counter::kClientBatchFetchItems, n);
    }
    for (size_t j = 0; j < n; ++j) {
      Page page(config_.page_size);
      page.raw() = replies.value()[j].page_image;
      metrics_->Add(Counter::kClientPageFetches);
      auto put = cache_->Put(chunk[j], std::move(page), EvictHandler());
      if (!put.ok()) return put.status();
    }
  }
  return Status::OK();
}

Status Client::ReleaseIdleLocks() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_RETURN_IF_ERROR(ShipAllDirtyPages());
  auto snap = llm_.GetSnapshot();
  std::vector<ObjectId> objects;
  std::vector<PageId> pages;
  for (const auto& [oid, mode] : snap.objects) {
    (void)mode;
    if (llm_.CanReleaseObject(oid)) {
      objects.push_back(oid);
    }
  }
  for (const auto& [pid, mode] : snap.pages) {
    (void)mode;
    if (llm_.CanDeescalatePage(pid)) {
      pages.push_back(pid);
    }
  }
  FINELOG_RETURN_IF_ERROR(server_->ReleaseLocks(id_, objects, pages));
  for (const ObjectId& oid : objects) {
    llm_.ReleaseObject(oid);
    pending_callbacks_.erase(oid);
    auto uit = unflushed_slots_.find(oid.page);
    if (uit != unflushed_slots_.end()) {
      uit->second.erase(oid.slot);
      if (uit->second.empty()) unflushed_slots_.erase(uit);
    }
  }
  for (PageId pid : pages) {
    llm_.ReleasePage(pid);
    unflushed_slots_.erase(pid);
  }
  // Drop cached pages no longer covered by any lock.
  for (PageId pid : cache_->PageIds()) {
    if (!llm_.HasAnyLockOnPage(pid)) {
      cache_->Drop(pid);
    }
  }
  metrics_->Add(Counter::kClientIdleReleases);
  return Status::OK();
}

Status Client::TakeCheckpoint() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  std::vector<TxnCheckpointInfo> active;
  for (const auto& [id, t] : txns_) {
    if (t.state == Txn::State::kActive) {
      active.push_back(TxnCheckpointInfo{id, t.first_lsn, t.last_lsn});
    }
  }
  std::vector<DptEntry> dpt;
  dpt.reserve(dpt_.size());
  for (const auto& [pid, redo] : dpt_) {
    dpt.push_back(DptEntry{pid, redo});
  }
  LogRecord rec = LogRecord::ClientCheckpoint(std::move(active), std::move(dpt));
  // Checkpoints bypass both the Section 3.6 retry path and the capacity
  // check: a successful checkpoint is what lets the log tail advance.
  auto lsn = log_->Append(rec, /*enforce_capacity=*/false);
  if (!lsn.ok()) return lsn.status();
  FINELOG_RETURN_IF_ERROR(ForceLog());
  FINELOG_RETURN_IF_ERROR(log_->SetCheckpointLsn(lsn.value()));
  UpdateReclaimLsn();
  metrics_->Add(Counter::kClientCheckpoints);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Data operations
// ---------------------------------------------------------------------------

Status Client::EnsureToken(PageId pid) {
  if (config_.same_page_policy != SamePageUpdatePolicy::kUpdateToken) {
    return Status::OK();
  }
  if (tokens_held_.count(pid) > 0) return Status::OK();
  auto reply = server_->AcquireToken(id_, pid);
  if (!reply.ok()) return reply.status();
  tokens_held_.insert(pid);
  if (reply.value().page_image) {
    // The page travels with the token (Section 3.1). Our own committed
    // values are already in the server's copy (we shipped when the token
    // was recalled from us), so plain adoption is safe.
    Page page(config_.page_size);
    page.raw() = *reply.value().page_image;
    BufferPool::Frame* frame = cache_->Peek(pid);
    if (frame != nullptr && frame->dirty) {
      // Unshipped modifications exist only while we held the token; keep
      // our newer copy.
      return Status::OK();
    }
    auto put = cache_->Put(pid, std::move(page), EvictHandler());
    if (!put.ok()) return put.status();
  }
  return Status::OK();
}

Status Client::MaybeHeartbeat() {
  if (!config_.liveness_enabled()) return Status::OK();
  const uint64_t now = channel_->clock()->now_us();
  if (last_heartbeat_us_ == 0 ||
      now - last_heartbeat_us_ >= config_.heartbeat_interval_us) {
    last_heartbeat_us_ = now;
    bool suppressed =
        config_.fault_injector != nullptr &&
        config_.fault_injector->Evaluate("liveness.client.heartbeat", 0, false)
                .action != FaultAction::kNone;
    if (!suppressed) {
      metrics_->Add(Counter::kLivenessHeartbeatsSent);
      Status st = server_->Heartbeat(id_);
      if (st.ok()) {
        lease_valid_until_ = now + config_.lease_duration_us;
      } else if (st.IsZombieFenced()) {
        return st;
      } else if (st.IsFailoverInProgress()) {
        // Mastership gap: no node is serving, so no node can give our locks
        // away either -- the time-based self-fence below must not fire off a
        // renewal we were never allowed to send. Re-arm the heartbeat so the
        // next call retries it immediately, and surface the WouldBlock so
        // the operation itself retries. If the takeover actually declared us
        // dead, the first successful contact returns ZombieFenced.
        last_heartbeat_us_ = 0;
        return st;
      }
      // Any other failure (e.g. a dropped leg under partition) is non-fatal:
      // the next call retries, and the self-fence below takes over once the
      // lease horizon passes.
    }
  }
  if (lease_valid_until_ != 0 && now >= lease_valid_until_) {
    // Self-fencing: the single simulated clock means our deadline can only
    // be earlier than (or equal to) the server's view, so by now the server
    // may have declared us presumed dead and given our shared locks away.
    // Refuse to operate on cached state; crash recovery re-registers us.
    return Status::WouldBlock(WouldBlockReason::kZombieFenced,
                              "lease expired locally; crash recovery required");
  }
  return Status::OK();
}

Result<std::string> Client::Read(TxnId txn, ObjectId oid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));
  (void)t;
  FINELOG_RETURN_IF_ERROR(AcquireObjectLock(txn, oid, LockMode::kShared));
  FINELOG_ASSIGN_OR_RETURN(BufferPool::Frame * frame, GetCachedPage(oid.page));
  metrics_->Add(Counter::kClientReads);
  return frame->page.ReadObject(oid.slot);
}

Status Client::Write(TxnId txn, ObjectId oid, Slice data) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));
  FINELOG_RETURN_IF_ERROR(AcquireObjectLock(txn, oid, LockMode::kExclusive));
  FINELOG_RETURN_IF_ERROR(EnsureToken(oid.page));
  FINELOG_ASSIGN_OR_RETURN(BufferPool::Frame * frame, GetCachedPage(oid.page));
  ScopedPin pin(cache_.get(), oid.page);
  Page& page = frame->page;
  auto old = page.ReadObject(oid.slot);
  if (!old.ok()) return old.status();
  if (old.value().size() != data.size()) {
    return Status::InvalidArgument(
        "Write() requires a same-sized value; use Resize()");
  }
  EnsureDptEntry(oid.page);
  FINELOG_RETURN_IF_ERROR(LogPendingCallback(txn, oid));
  FINELOG_RETURN_IF_ERROR(
      LogPendingCallback(txn, ObjectId{oid.page, kInvalidSlotId}));
  LogRecord rec = LogRecord::Update(txn, t->last_lsn, oid.page, oid.slot,
                                    UpdateOp::kOverwrite, page.psn(),
                                    data.ToString(), std::move(old).value());
  FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(rec));
  if (t->first_lsn == kNullLsn) t->first_lsn = lsn;
  t->last_lsn = lsn;
  t->dirtied_pages.insert(oid.page);

  FINELOG_RETURN_IF_ERROR(page.WriteObject(oid.slot, data));
  page.BumpPsn();
  TrackModification(frame, oid.page, oid.slot);
  metrics_->Add(Counter::kClientWrites);
  return Status::OK();
}

Status Client::WriteBatch(
    TxnId txn, const std::vector<std::pair<ObjectId, std::string>>& writes) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));
  (void)t;
  std::vector<ObjectId> oids;
  oids.reserve(writes.size());
  for (const auto& [oid, data] : writes) {
    (void)data;
    oids.push_back(oid);
  }
  FINELOG_RETURN_IF_ERROR(
      BatchAcquireObjectLocks(txn, oids, LockMode::kExclusive));
  std::vector<PageId> pages;
  pages.reserve(oids.size());
  for (ObjectId oid : oids) pages.push_back(oid.page);
  FINELOG_RETURN_IF_ERROR(PrefetchPages(pages));
  // Locks and pages are warm now; the per-object writes run locally.
  for (const auto& [oid, data] : writes) {
    FINELOG_RETURN_IF_ERROR(Write(txn, oid, data));
  }
  return Status::OK();
}

Result<std::vector<std::string>> Client::ReadBatch(
    TxnId txn, const std::vector<ObjectId>& oids) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));
  (void)t;
  FINELOG_RETURN_IF_ERROR(BatchAcquireObjectLocks(txn, oids, LockMode::kShared));
  std::vector<PageId> pages;
  pages.reserve(oids.size());
  for (ObjectId oid : oids) pages.push_back(oid.page);
  FINELOG_RETURN_IF_ERROR(PrefetchPages(pages));
  std::vector<std::string> values;
  values.reserve(oids.size());
  for (ObjectId oid : oids) {
    FINELOG_ASSIGN_OR_RETURN(std::string value, Read(txn, oid));
    values.push_back(std::move(value));
  }
  return values;
}

Result<ObjectId> Client::Create(TxnId txn, PageId pid, Slice data) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));
  FINELOG_RETURN_IF_ERROR(AcquirePageLock(txn, pid, LockMode::kExclusive));
  FINELOG_RETURN_IF_ERROR(EnsureToken(pid));
  FINELOG_ASSIGN_OR_RETURN(BufferPool::Frame * frame, GetCachedPage(pid));
  ScopedPin pin(cache_.get(), pid);
  Page& page = frame->page;
  Psn before = page.psn();
  // Footnote-3 reservation: create with headroom so later growth can stay
  // in place (and therefore mergeable).
  uint16_t capacity = static_cast<uint16_t>(
      std::min<size_t>(0xFFFF, data.size() * (1.0 + config_.resize_reserve)));
  auto slot = page.CreateObject(data, capacity);
  if (!slot.ok()) return slot.status();

  EnsureDptEntry(pid);
  FINELOG_RETURN_IF_ERROR(
      LogPendingCallback(txn, ObjectId{pid, kInvalidSlotId}));
  LogRecord rec = LogRecord::Update(txn, t->last_lsn, pid, slot.value(),
                                    UpdateOp::kCreate, before, data.ToString(),
                                    std::string());
  rec.capacity = capacity;
  FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(rec));
  if (t->first_lsn == kNullLsn) t->first_lsn = lsn;
  t->last_lsn = lsn;
  t->dirtied_pages.insert(pid);

  page.BumpPsn();
  TrackModification(frame, pid, slot.value());
  frame->structurally_modified = true;
  metrics_->Add(Counter::kClientCreates);
  return ObjectId{pid, slot.value()};
}

Status Client::Resize(TxnId txn, ObjectId oid, Slice data) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));

  // Footnote-3 fast path: take the object lock first; if the new size fits
  // the slot's reserved capacity, the resize is in place and mergeable --
  // no page-level lock, no structural flag, full same-page concurrency.
  FINELOG_RETURN_IF_ERROR(AcquireObjectLock(txn, oid, LockMode::kExclusive));
  FINELOG_RETURN_IF_ERROR(EnsureToken(oid.page));
  {
    FINELOG_ASSIGN_OR_RETURN(BufferPool::Frame * frame,
                             GetCachedPage(oid.page));
    ScopedPin pin(cache_.get(), oid.page);
    Page& page = frame->page;
    if (config_.lock_granularity == LockGranularity::kObject &&
        page.ResizeFitsInPlace(oid.slot, data.size())) {
      auto old = page.ReadObject(oid.slot);
      if (!old.ok()) return old.status();
      EnsureDptEntry(oid.page);
      FINELOG_RETURN_IF_ERROR(LogPendingCallback(txn, oid));
      LogRecord rec = LogRecord::Update(
          txn, t->last_lsn, oid.page, oid.slot, UpdateOp::kResizeInPlace,
          page.psn(), data.ToString(), std::move(old).value());
      FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(rec));
      if (t->first_lsn == kNullLsn) t->first_lsn = lsn;
      t->last_lsn = lsn;
      t->dirtied_pages.insert(oid.page);
      FINELOG_RETURN_IF_ERROR(page.ResizeObject(oid.slot, data));
      page.BumpPsn();
      TrackModification(frame, oid.page, oid.slot);
      metrics_->Add(Counter::kClientResizesInPlace);
      return Status::OK();
    }
  }

  // Structural path: the object must be reallocated on the page.
  FINELOG_RETURN_IF_ERROR(AcquirePageLock(txn, oid.page, LockMode::kExclusive));
  FINELOG_ASSIGN_OR_RETURN(BufferPool::Frame * frame, GetCachedPage(oid.page));
  ScopedPin pin(cache_.get(), oid.page);
  Page& page = frame->page;
  auto old = page.ReadObject(oid.slot);
  if (!old.ok()) return old.status();

  EnsureDptEntry(oid.page);
  FINELOG_RETURN_IF_ERROR(LogPendingCallback(txn, oid));
  FINELOG_RETURN_IF_ERROR(
      LogPendingCallback(txn, ObjectId{oid.page, kInvalidSlotId}));
  LogRecord rec = LogRecord::Update(txn, t->last_lsn, oid.page, oid.slot,
                                    UpdateOp::kResize, page.psn(),
                                    data.ToString(), std::move(old).value());
  FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(rec));
  if (t->first_lsn == kNullLsn) t->first_lsn = lsn;
  t->last_lsn = lsn;
  t->dirtied_pages.insert(oid.page);

  FINELOG_RETURN_IF_ERROR(page.ResizeObject(oid.slot, data));
  page.BumpPsn();
  TrackModification(frame, oid.page, oid.slot);
  frame->structurally_modified = true;
  metrics_->Add(Counter::kClientResizes);
  return Status::OK();
}

Status Client::Delete(TxnId txn, ObjectId oid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));
  FINELOG_RETURN_IF_ERROR(AcquirePageLock(txn, oid.page, LockMode::kExclusive));
  FINELOG_RETURN_IF_ERROR(EnsureToken(oid.page));
  FINELOG_ASSIGN_OR_RETURN(BufferPool::Frame * frame, GetCachedPage(oid.page));
  ScopedPin pin(cache_.get(), oid.page);
  Page& page = frame->page;
  auto old = page.ReadObject(oid.slot);
  if (!old.ok()) return old.status();

  EnsureDptEntry(oid.page);
  FINELOG_RETURN_IF_ERROR(LogPendingCallback(txn, oid));
  FINELOG_RETURN_IF_ERROR(
      LogPendingCallback(txn, ObjectId{oid.page, kInvalidSlotId}));
  LogRecord rec = LogRecord::Update(txn, t->last_lsn, oid.page, oid.slot,
                                    UpdateOp::kDelete, page.psn(), std::string(),
                                    std::move(old).value());
  FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(rec));
  if (t->first_lsn == kNullLsn) t->first_lsn = lsn;
  t->last_lsn = lsn;
  t->dirtied_pages.insert(oid.page);

  FINELOG_RETURN_IF_ERROR(page.DeleteObject(oid.slot));
  page.BumpPsn();
  TrackModification(frame, oid.page, oid.slot);
  frame->structurally_modified = true;
  metrics_->Add(Counter::kClientDeletes);
  return Status::OK();
}

Result<PageId> Client::AllocatePage(TxnId txn) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn));
  (void)t;
  auto reply = server_->AllocatePage(id_);
  if (!reply.ok()) return reply.status();
  llm_.AddPageLock(txn, reply.value().page, LockMode::kExclusive);
  Page page(config_.page_size);
  page.raw() = reply.value().page_image;
  auto put = cache_->Put(reply.value().page, std::move(page), EvictHandler());
  if (!put.ok()) return put.status();
  return reply.value().page;
}

// ---------------------------------------------------------------------------
// Commit / rollback
// ---------------------------------------------------------------------------

Status Client::Commit(TxnId txn_id) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn_id));

  LogRecord commit = LogRecord::Control(LogRecordType::kCommit, txn_id,
                                        t->last_lsn);
  FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(commit));
  t->last_lsn = lsn;

  switch (config_.logging_policy) {
    case LoggingPolicy::kClientLocal: {
      // The headline property: commit is a purely local log force; no
      // server interaction, no page or log shipping (Section 5, item 1).
      if (config_.group_commit_window == 0) {
        FINELOG_RETURN_IF_ERROR(ForceLog());
      } else {
        // Group commit: durability is deferred. The commit record sits in
        // the log buffer until the group reaches group_commit_max_txns or
        // the window expires, and one force then covers every queued
        // transaction. A crash before the force loses the whole group --
        // restart recovery sees no durable commit records and rolls the
        // members back, which is the deferred-durability contract.
        if (pending_commits_.empty()) {
          oldest_pending_commit_us_ = channel_->clock()->now_us();
        }
        pending_commits_.push_back(txn_id);
        if (GroupForceDue()) {
          FINELOG_RETURN_IF_ERROR(ForceLog());
        }
      }
      break;
    }
    case LoggingPolicy::kShipLogsAtCommit: {
      // ARIES/CSA: ship the transaction's log records to the server, which
      // forces them to its log before acknowledging (Section 4.1).
      size_t bytes = 0;
      Lsn cur = t->last_lsn;
      while (cur != kNullLsn) {
        auto rec = log_->Read(cur);
        if (!rec.ok()) return rec.status();
        bytes += rec.value().Encode().size() + 8;
        cur = rec.value().prev_lsn;
      }
      FINELOG_RETURN_IF_ERROR(server_->CommitShipLogs(id_, bytes));
      break;
    }
    case LoggingPolicy::kShipPagesAtCommit: {
      // Versant-style: every page the transaction modified travels to the
      // server at commit (Section 4.1).
      std::vector<ShippedPage> pages;
      for (PageId pid : t->dirtied_pages) {
        BufferPool::Frame* frame = cache_->Peek(pid);
        if (frame != nullptr && frame->dirty) {
          pages.push_back(BuildShip(pid, *frame));
        }
      }
      if (!pages.empty()) {
        FINELOG_RETURN_IF_ERROR(server_->CommitShipPages(id_, pages));
      }
      break;
    }
  }

  LogRecord end = LogRecord::Control(LogRecordType::kTxnEnd, txn_id, t->last_lsn);
  auto end_lsn = AppendLog(end);
  if (!end_lsn.ok()) return end_lsn.status();

  t->state = Txn::State::kCommitted;
  llm_.OnTxnEnd(txn_id);  // Locks stay cached (inter-transaction caching).
  UpdateReclaimLsn();
  ++commits_;
  metrics_->Add(Counter::kClientCommits);
  return Status::OK();
}

FINELOG_REPLAY_PATH("redo arm of recovery/rollback: the record being "
                    "applied IS the log")
Status Client::ApplyRedo(Page* page, const LogRecord& rec) {
  switch (rec.op) {
    case UpdateOp::kOverwrite:
      if (!page->SlotExists(rec.slot) ||
          page->ObjectSize(rec.slot) != rec.redo.size()) {
        // Defensive: the slot should exist with the right size; recreate.
        if (page->SlotExists(rec.slot)) {
          return page->ResizeObject(rec.slot, rec.redo);
        }
        return page->CreateObjectAt(rec.slot, rec.redo);
      }
      return page->WriteObject(rec.slot, rec.redo);
    case UpdateOp::kCreate:
      if (page->SlotExists(rec.slot)) {
        return page->ResizeObject(rec.slot, rec.redo);
      }
      return page->CreateObjectAt(rec.slot, rec.redo, rec.capacity);
    case UpdateOp::kResize:
    case UpdateOp::kResizeInPlace:
      if (!page->SlotExists(rec.slot)) {
        return page->CreateObjectAt(rec.slot, rec.redo);
      }
      return page->ResizeObject(rec.slot, rec.redo);
    case UpdateOp::kDelete:
      if (page->SlotExists(rec.slot)) {
        return page->DeleteObject(rec.slot);
      }
      return Status::OK();
  }
  return Status::Internal("unknown update op");
}

FINELOG_REPLAY_PATH("undo arm of recovery/rollback: callers write the "
                    "covering CLRs")
Status Client::ApplyUndo(Page* page, const LogRecord& rec) {
  switch (rec.op) {
    case UpdateOp::kOverwrite:
      return page->WriteObject(rec.slot, rec.undo);
    case UpdateOp::kCreate:
      return page->DeleteObject(rec.slot);
    case UpdateOp::kResize:
    case UpdateOp::kResizeInPlace:
      return page->ResizeObject(rec.slot, rec.undo);
    case UpdateOp::kDelete:
      return page->CreateObjectAt(rec.slot, rec.undo);
  }
  return Status::Internal("unknown update op");
}

Status Client::RollbackTo(TxnId txn_id, Txn* txn, Lsn stop_lsn) {
  // ARIES undo with compensation records. Walk the transaction's backward
  // chain from last_lsn; CLRs redirect via undo_next_lsn so compensated
  // work is never undone twice.
  Lsn cur = txn->last_lsn;
  while (cur != kNullLsn && cur > stop_lsn) {
    auto rec_or = log_->Read(cur);
    if (!rec_or.ok()) return rec_or.status();
    const LogRecord& rec = rec_or.value();
    if (rec.type == LogRecordType::kClr) {
      cur = rec.undo_next_lsn;
      continue;
    }
    if (rec.type != LogRecordType::kUpdate) {
      cur = rec.prev_lsn;
      continue;
    }
    FINELOG_RETURN_IF_ERROR(EnsureToken(rec.page));
    FINELOG_ASSIGN_OR_RETURN(BufferPool::Frame * frame, GetCachedPage(rec.page));
    ScopedPin pin(cache_.get(), rec.page);
    Page& page = frame->page;

    // Compensation record: redo-able inverse of `rec`.
    UpdateOp inverse = rec.op;
    if (rec.op == UpdateOp::kCreate) inverse = UpdateOp::kDelete;
    if (rec.op == UpdateOp::kDelete) inverse = UpdateOp::kCreate;
    LogRecord clr = LogRecord::Clr(txn_id, txn->last_lsn, rec.page, rec.slot,
                                   inverse, page.psn(), rec.undo, rec.prev_lsn);
    EnsureDptEntry(rec.page);
    // Rollback must always succeed: compensation records bypass the log
    // capacity check (rolling back is what ultimately frees the space).
    auto clr_lsn_or = log_->Append(clr, /*enforce_capacity=*/false);
    if (!clr_lsn_or.ok()) return clr_lsn_or.status();
    Lsn clr_lsn = clr_lsn_or.value();
    txn->last_lsn = clr_lsn;

    FINELOG_RETURN_IF_ERROR(ApplyUndo(&page, rec));
    page.BumpPsn();
    TrackModification(frame, rec.page, rec.slot);
    if (rec.op != UpdateOp::kOverwrite &&
        rec.op != UpdateOp::kResizeInPlace) {
      frame->structurally_modified = true;
    }
    metrics_->Add(Counter::kClientUndos);
    cur = rec.prev_lsn;
  }
  return Status::OK();
}

Status Client::Abort(TxnId txn_id) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn_id));

  LogRecord abort = LogRecord::Control(LogRecordType::kAbort, txn_id, t->last_lsn);
  auto lsn_or = log_->Append(abort, /*enforce_capacity=*/false);
  if (!lsn_or.ok()) return lsn_or.status();
  t->last_lsn = lsn_or.value();

  FINELOG_RETURN_IF_ERROR(RollbackTo(txn_id, t, kNullLsn));

  LogRecord end = LogRecord::Control(LogRecordType::kTxnEnd, txn_id, t->last_lsn);
  auto end_lsn_or = log_->Append(end, /*enforce_capacity=*/false);
  if (!end_lsn_or.ok()) return end_lsn_or.status();
  Lsn end_lsn = end_lsn_or.value();
  t->last_lsn = end_lsn;
  FINELOG_RETURN_IF_ERROR(ForceLog());

  t->state = Txn::State::kAborted;
  llm_.OnTxnEnd(txn_id);  // Locks retained even after rollback (Section 2).
  UpdateReclaimLsn();
  ++aborts_;
  metrics_->Add(Counter::kClientAborts);
  return Status::OK();
}

Result<size_t> Client::SetSavepoint(TxnId txn_id) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_RETURN_IF_ERROR(MaybeHeartbeat());
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn_id));
  LogRecord rec = LogRecord::Control(LogRecordType::kSavepoint, txn_id,
                                     t->last_lsn);
  FINELOG_ASSIGN_OR_RETURN(Lsn lsn, AppendLog(rec));
  t->last_lsn = lsn;
  t->savepoints.push_back(lsn);
  metrics_->Add(Counter::kClientSavepoints);
  return t->savepoints.size() - 1;
}

Status Client::RollbackToSavepoint(TxnId txn_id, size_t savepoint) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  FINELOG_ASSIGN_OR_RETURN(Txn * t, GetActiveTxn(txn_id));
  if (savepoint >= t->savepoints.size()) {
    return Status::InvalidArgument("no such savepoint");
  }
  Lsn stop = t->savepoints[savepoint];
  FINELOG_RETURN_IF_ERROR(RollbackTo(txn_id, t, stop));
  t->savepoints.resize(savepoint + 1);
  metrics_->Add(Counter::kClientPartialRollbacks);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Callback handling (ClientEndpoint)
// ---------------------------------------------------------------------------

Client::CallbackReply Client::HandleObjectCallback(ObjectId oid,
                                                   LockMode requested) {
  SimMutexLock lock(mu_);
  CallbackReply reply;
  if (crashed_) return reply;  // Denied; the server queues the request.
  if (requested == LockMode::kExclusive) {
    if (!llm_.CanReleaseObject(oid)) return reply;  // In use: deny.
  } else {
    if (!llm_.CanDowngradeObject(oid)) return reply;
  }
  reply.granted = true;

  BufferPool::Frame* frame = cache_->Peek(oid.page);
  if (frame != nullptr) {
    reply.psn_at_response = frame->page.psn();
    if (frame->dirty) {
      // WAL before the copy leaves the client.
      Status st = ForceLog();
      if (!st.ok()) {
        reply.granted = false;
        return reply;
      }
      reply.page = BuildShip(oid.page, *frame);
    }
  } else {
    auto si = ship_info_.find(oid.page);
    reply.psn_at_response = si != ship_info_.end() ? si->second.psn : kNullPsn;
  }

  if (requested == LockMode::kExclusive) {
    llm_.ReleaseObject(oid);
    pending_callbacks_.erase(oid);  // We never updated it; ordering is moot.
    // Update authority for the object moves to the requester: our (just
    // shipped) value is at the server and must never overlay the new
    // holder's later updates via a restart cache pull. If the merged copy
    // is later lost with the server, our *log* (replayed with CallBack_P
    // ordering) restores the value.
    auto uit = unflushed_slots_.find(oid.page);
    if (uit != unflushed_slots_.end()) {
      uit->second.erase(oid.slot);
      if (uit->second.empty()) unflushed_slots_.erase(uit);
    }
    // Drop the page if no other locks cover objects on it (Section 3.2).
    if (frame != nullptr && !llm_.HasAnyLockOnPage(oid.page)) {
      cache_->Drop(oid.page);
      reply.dropped_page = true;
    }
  } else {
    llm_.DowngradeObject(oid);
  }
  metrics_->Add(Counter::kClientCallbacksHandled);
  return reply;
}

Client::DeescalateReply Client::HandleDeescalate(PageId pid) {
  SimMutexLock lock(mu_);
  DeescalateReply reply;
  if (crashed_) return reply;
  if (!llm_.CanDeescalatePage(pid)) return reply;  // Structural txn active.
  reply.granted = true;
  reply.object_locks = llm_.Deescalate(pid);

  BufferPool::Frame* frame = cache_->Peek(pid);
  if (frame != nullptr) {
    reply.psn_at_response = frame->page.psn();
    if (frame->dirty) {
      Status st = ForceLog();
      if (!st.ok()) {
        reply.granted = false;
        return reply;
      }
      reply.page = BuildShip(pid, *frame);
    }
    if (!llm_.HasAnyLockOnPage(pid)) {
      cache_->Drop(pid);
    }
  }
  metrics_->Add(Counter::kClientDeescalationsHandled);
  return reply;
}

Client::CallbackReply Client::HandlePageCallback(PageId pid,
                                                 LockMode requested) {
  SimMutexLock lock(mu_);
  CallbackReply reply;
  if (crashed_) return reply;
  // Deny while any local transaction uses the page (or objects on it).
  if (requested == LockMode::kExclusive) {
    if (!llm_.CanDeescalatePage(pid)) return reply;
    for (const ObjectId& oid : llm_.ExclusiveObjects()) {
      if (oid.page == pid && !llm_.CanReleaseObject(oid)) return reply;
    }
  } else {
    if (!llm_.CanDeescalatePage(pid)) return reply;
  }
  reply.granted = true;

  BufferPool::Frame* frame = cache_->Peek(pid);
  if (frame != nullptr) {
    reply.psn_at_response = frame->page.psn();
    if (frame->dirty) {
      Status st = ForceLog();
      if (!st.ok()) {
        reply.granted = false;
        return reply;
      }
      reply.page = BuildShip(pid, *frame);
    }
  }
  if (requested == LockMode::kExclusive) {
    llm_.ReleasePage(pid);
    // Authority over the whole page moves on.
    unflushed_slots_.erase(pid);
    if (frame != nullptr) {
      cache_->Drop(pid);
      reply.dropped_page = true;
    }
  } else {
    // Downgrade: keep the page cached under the shared lock.
    llm_.DowngradePage(pid);
  }
  metrics_->Add(Counter::kClientPageCallbacksHandled);
  return reply;
}

void Client::HandleFlushNotify(PageId pid, Psn flushed_psn) {
  SimMutexLock lock(mu_);
  if (crashed_) return;
  auto si = ship_info_.find(pid);
  if (si == ship_info_.end()) return;
  if (flushed_psn == kNullPsn || flushed_psn < si->second.psn) {
    return;  // Stale flush: our latest ship is not on disk yet.
  }
  BufferPool::Frame* frame = cache_->Peek(pid);
  if (frame != nullptr && frame->dirty) {
    // Updated again since the ship: advance the RedoLSN to the remembered
    // end-of-log (Section 3.6). Only the post-ship modifications remain
    // unflushed.
    auto it = dpt_.find(pid);
    if (it != dpt_.end() && it->second < si->second.log_end) {
      it->second = si->second.log_end;
    }
    unflushed_slots_[pid] = frame->modified_slots;
  } else {
    // All our updates for this page are on disk: drop the DPT entry
    // (Section 3.2).
    dpt_.erase(pid);
    ship_info_.erase(si);
    unflushed_slots_.erase(pid);
  }
  UpdateReclaimLsn();
  metrics_->Add(Counter::kClientFlushNotifies);
}

Result<ShippedPage> Client::HandleTokenRecall(PageId pid) {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  tokens_held_.erase(pid);
  BufferPool::Frame* frame = cache_->Peek(pid);
  if (frame == nullptr || !frame->dirty) {
    ShippedPage empty;
    empty.page = pid;
    return empty;  // Nothing unshipped; token moves without data.
  }
  FINELOG_RETURN_IF_ERROR(ForceLog());
  return BuildShip(pid, *frame);
}

Status Client::HandleCheckpointSync() {
  SimMutexLock lock(mu_);
  if (crashed_) return Status::Crashed("client down");
  // ARIES/CSA-style synchronized checkpoint: the client forces its state so
  // the server checkpoint can bound recovery (Section 4.1).
  FINELOG_RETURN_IF_ERROR(ForceLog());
  return Status::OK();
}

}  // namespace finelog
