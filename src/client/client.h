// Client: a workstation offering full local transactional facilities
// (Sections 2 and 3). Owns a private write-ahead log, a local page cache,
// a local lock manager (LLM) with inter-transaction lock caching, a dirty
// page table (DPT), and a transaction manager with savepoints.
//
// Transactions execute entirely at the client: commit forces only the
// private log (no server interaction under the paper's policy); rollback and
// crash recovery replay the private log. The client implements the
// ClientEndpoint surface for callbacks, flush notifications and the recovery
// protocol.

#ifndef FINELOG_CLIENT_CLIENT_H_
#define FINELOG_CLIENT_CLIENT_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/annotations.h"
#include "common/config.h"
#include "common/result.h"
#include "common/types.h"
#include "lock/llm.h"
#include "log/log_manager.h"
#include "net/channel.h"
#include "net/rpc.h"
#include "net/endpoints.h"
#include "util/metrics.h"

namespace finelog {

class FINELOG_SHARED_STATE_CLASS Client : public ClientEndpoint {
 public:
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<std::unique_ptr<Client>> Create(ClientId id,
                                                const SystemConfig& config,
                                                ServerEndpoint* server,
                                                Channel* channel, Rpc* rpc,
                                                Metrics* metrics);

  ClientId id() const { return id_; }

  // The client's capability, registered with the QueueTransport as this
  // client's gate: released in full while the client parks on an RPC frame
  // so the reactor can deliver callbacks into it (DESIGN.md section 17).
  SimMutex& gate() { return mu_; }

  // Transaction API ----------------------------------------------------------

  Result<TxnId> Begin();

  // Reads an object under a shared lock.
  Result<std::string> Read(TxnId txn, ObjectId oid);

  // Overwrites an object in place with a same-sized value -- the "mergeable"
  // update of Section 3.1; requires only an object-level exclusive lock, so
  // other clients may concurrently update other objects of the same page.
  Status Write(TxnId txn, ObjectId oid, Slice data);

  // Batched variants: lock misses are sent to the server in multi-item
  // messages (up to config.max_batch_items per message) and uncached pages
  // are prefetched the same way, then the per-object work proceeds against
  // warm local state. With max_batch_items == 1 these degenerate to the
  // sequential paths above.
  Status WriteBatch(TxnId txn,
                    const std::vector<std::pair<ObjectId, std::string>>& writes);
  Result<std::vector<std::string>> ReadBatch(TxnId txn,
                                             const std::vector<ObjectId>& oids);

  // Structure-modifying (non-mergeable) updates; require a page-level
  // exclusive lock (Section 3.1).
  Result<ObjectId> Create(TxnId txn, PageId pid, Slice data);
  Status Resize(TxnId txn, ObjectId oid, Slice data);
  Status Delete(TxnId txn, ObjectId oid);

  // Allocates a fresh page from the server (the caller gets a page X lock).
  Result<PageId> AllocatePage(TxnId txn);

  // Commit: forces the private log (client-local policy) or ships log
  // records / pages to the server (baseline policies, Section 4.1). Locks
  // are retained in the LLM as cached.
  Status Commit(TxnId txn);

  // Total rollback with CLRs, handled entirely by the client.
  Status Abort(TxnId txn);

  // Savepoints and partial rollback (Section 3.2).
  Result<size_t> SetSavepoint(TxnId txn);
  Status RollbackToSavepoint(TxnId txn, size_t savepoint);

  // Group commit (config.group_commit_window > 0, client-local logging):
  // forces the private log if any committed transactions are still waiting
  // for durability. Benchmarks and tests call this to close the final,
  // partially-filled window. A no-op when nothing is pending.
  Status FlushCommitGroup();
  size_t pending_group_commits() const FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    return pending_commits_.size();
  }

  // Independent fuzzy checkpoint: active transactions + DPT (Section 3.2).
  Status TakeCheckpoint();

  // Ships every dirty cached page to the server (evicting it), as cache
  // pressure eventually would. Used to reach quiescent states.
  Status ShipAllDirtyPages();

  // Orderly resource release (a client preparing to disconnect): ships all
  // dirty pages, then gives up every cached lock not used by an active
  // transaction and drops the corresponding cached pages.
  Status ReleaseIdleLocks();

  // Crash / recovery ----------------------------------------------------------

  // Simulated crash: lock tables, cache, DPT and unforced log tail are lost;
  // the private log file survives.
  Status Crash();
  bool crashed() const { return crashed_; }

  // Restart recovery (Section 3.3): ARIES analysis / conditional redo / undo
  // against the private log, fetching base pages (with DCT PSNs installed)
  // from the server.
  Status Restart();

  // ClientEndpoint ------------------------------------------------------------

  CallbackReply HandleObjectCallback(ObjectId oid, LockMode requested) override;
  DeescalateReply HandleDeescalate(PageId pid) override;
  CallbackReply HandlePageCallback(PageId pid, LockMode requested) override;
  void HandleFlushNotify(PageId pid, Psn flushed_psn) override;
  Result<ShippedPage> HandleTokenRecall(PageId pid) override;
  Status HandleCheckpointSync() override;
  Result<ClientRecoveryState> HandleRecGetState() override;
  Result<ShippedPage> HandleRecFetchCachedPage(
      PageId pid, const std::vector<CallbackListEntry>& suppress) override;
  Result<std::vector<CallbackListEntry>> HandleRecScanCallbacks(
      PageId pid, ClientId crashed) override;
  Status HandleRecRecoverPage(PageId pid,
                              const std::vector<CallbackListEntry>& callback_list,
                              const std::string& base_image, Psn base_psn,
                              Psn psn_limit) override;

  // Introspection -------------------------------------------------------------

  // Reference-returning accessors escape the capability on purpose: tests
  // and benches use them on quiesced systems (and the components they
  // return carry their own capabilities).
  LocalLockManager& llm() FINELOG_NO_THREAD_SAFETY_ANALYSIS { return llm_; }
  BufferPool& cache() FINELOG_NO_THREAD_SAFETY_ANALYSIS { return *cache_; }
  LogManager& log() FINELOG_NO_THREAD_SAFETY_ANALYSIS { return *log_; }
  const std::map<PageId, Lsn>& dpt() const FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    return dpt_;
  }
  size_t active_txns() const;
  // Benign racy reads (monotonic counters read by harnesses at quiescence).
  uint64_t commits() const FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    return commits_;
  }
  uint64_t aborts() const FINELOG_NO_THREAD_SAFETY_ANALYSIS {
    return aborts_;
  }

 private:
  struct Txn {
    enum class State { kActive, kCommitted, kAborted };
    State state = State::kActive;
    Lsn first_lsn = kNullLsn;
    Lsn last_lsn = kNullLsn;
    std::vector<Lsn> savepoints;
    std::set<PageId> dirtied_pages;  // For the ship-pages-at-commit baseline.
  };

  // Remembered per page at ship time (Section 3.6): the PSN the page had and
  // the end of the private log, used to advance the DPT RedoLSN when the
  // server reports the page flushed.
  struct ShipInfo {
    Psn psn;
    Lsn log_end = kNullLsn;
  };

  // State of one page's replay during coordinated server-crash recovery
  // (Section 3.4): a resumable cursor so a parallel-recovery handshake can
  // ask for a bounded prefix (all records with PSN < limit).
  struct RecoverySession {
    Page page{0};
    std::vector<LogRecord> records;  // LSN-ordered, for this page.
    size_t cursor = 0;
    std::map<ObjectId, Psn> callback_list;
    std::set<SlotId> modified;
    bool complete = false;
  };

  Client(ClientId id, const SystemConfig& config, ServerEndpoint* server,
         Channel* channel, Rpc* rpc, Metrics* metrics)
      : id_(id), config_(config), server_(server), channel_(channel),
        rpc_(rpc), metrics_(metrics) {}

  Result<Txn*> GetActiveTxn(TxnId txn) FINELOG_REQUIRES(mu_);

  // Fault-injection I/O options for the private log, derived from config_
  // (used at Create and at every post-crash reopen).
  LogIoOptions LogIo() const {
    return LogIoOptions{config_.fault_injector, config_.log_sink,
                        "client" + ToString(id_) + ".log",
                        config_.debug_trust_log_tail};
  }

  // Lock acquisition with LLM caching; a miss goes to the server and the
  // reply's object/page image is installed (client-side merge, Section 2).
  Status AcquireObjectLock(TxnId txn, ObjectId oid, LockMode mode)
      FINELOG_REQUIRES(mu_);
  Status AcquirePageLock(TxnId txn, PageId pid, LockMode mode)
      FINELOG_REQUIRES(mu_);

  // Installs a server object-lock grant into local state: LLM entry,
  // pending exclusive callbacks, unflushed-slot tracking, the object or page
  // image carried by the reply, and the escalation check. Shared by the
  // single and batched acquisition paths.
  Status InstallObjectLockReply(TxnId txn, ObjectId oid, LockMode mode,
                                const ObjectLockReply& reply)
      FINELOG_REQUIRES(mu_);

  // Acquires object locks for `oids`, coalescing LLM misses into multi-item
  // server messages of up to config.max_batch_items. Page-granularity
  // configurations fall back to per-item acquisition.
  Status BatchAcquireObjectLocks(TxnId txn, const std::vector<ObjectId>& oids,
                                 LockMode mode) FINELOG_REQUIRES(mu_);

  // Fetches any of `pids` that are not cached, batching the fetch requests.
  Status PrefetchPages(const std::vector<PageId>& pids)
      FINELOG_REQUIRES(mu_);

  // Forces the private log and charges the cost model's force latency. Any
  // successful force makes every queued group commit durable, so the pending
  // group drains here no matter which call site triggered the force.
  Status ForceLog() FINELOG_REQUIRES(mu_);

  // True when the group-commit window must close now: the group reached
  // config.group_commit_max_txns, or the oldest queued commit has waited
  // at least config.group_commit_window simulated microseconds.
  bool GroupForceDue() const FINELOG_REQUIRES(mu_);

  // Returns the cached frame for `pid`, fetching from the server on a miss.
  Result<BufferPool::Frame*> GetCachedPage(PageId pid) FINELOG_REQUIRES(mu_);

  // The cache eviction handler: WAL-force the private log, then ship dirty
  // victims to the server (Section 2).
  BufferPool::EvictHandler EvictHandler();

  // Builds a ShippedPage from a frame and resets its modification tracking
  // (the frame is then "clean" = in sync with what the server has been sent).
  ShippedPage BuildShip(PageId pid, BufferPool::Frame& frame)
      FINELOG_REQUIRES(mu_);

  // Appends to the private log, running the log space protocol of Section
  // 3.6 on kLogFull.
  Result<Lsn> AppendLog(const LogRecord& rec) FINELOG_REQUIRES(mu_);

  // Log space management (Section 3.6): replace/force the page with the
  // minimum RedoLSN until an append fits.
  Status TryFreeLogSpace() FINELOG_REQUIRES(mu_);
  void UpdateReclaimLsn() FINELOG_REQUIRES(mu_);

  // Ensures a DPT entry exists for `pid` before an update is logged.
  void EnsureDptEntry(PageId pid) FINELOG_REQUIRES(mu_);

  // Records a local modification of (pid, slot) in both tracking sets.
  void TrackModification(BufferPool::Frame* frame, PageId pid, SlotId slot)
      FINELOG_REQUIRES(mu_);

  // Writes the pending callback log record for `oid`, if any (Section 3.1).
  // Callback records are logged lazily at the first update of the
  // called-back object: a grant that is never followed by an update must
  // not suppress the responder's recovery replay.
  Status LogPendingCallback(TxnId txn, ObjectId oid) FINELOG_REQUIRES(mu_);

  // Update-token baseline: acquire the page's update token before a
  // physical update (Section 3.1).
  Status EnsureToken(PageId pid) FINELOG_REQUIRES(mu_);

  // Liveness (DESIGN.md section 14), called at the top of every public API
  // entry point except the local rollback paths (Abort,
  // RollbackToSavepoint). Piggybacks a heartbeat when the configured
  // interval has elapsed -- no background thread; the simulated clock only
  // moves when someone acts. A heartbeat that cannot reach the server is
  // non-fatal (the next call retries), but once the last granted lease
  // horizon has passed without a successful renewal the client self-fences
  // with kZombieFenced: the server may already have given its locks away,
  // so continuing against cached state would be unsafe. A no-op with the
  // heartbeat knob off.
  Status MaybeHeartbeat() FINELOG_REQUIRES(mu_);

  // Applies one logged operation (redo direction) to a page.
  static Status ApplyRedo(Page* page, const LogRecord& rec);
  // Applies the inverse of an update record (undo direction).
  static Status ApplyUndo(Page* page, const LogRecord& rec);

  // Rolls `txn` back to `stop_lsn` (kNullLsn = total rollback), writing CLRs.
  Status RollbackTo(TxnId txn_id, Txn* txn, Lsn stop_lsn)
      FINELOG_REQUIRES(mu_);

  // Restart helpers (client_recovery.cc).
  struct AnalysisResult {
    std::map<TxnId, Txn> txns;
    std::map<PageId, Lsn> dpt;
    std::vector<ObjectId> x_objects;   // Derived from update records.
    std::vector<PageId> x_pages;       // Derived from structural records.
    std::map<ObjectId, Psn> max_psn;   // Highest record PSN per object.
    // Our own callback records per page: responder -> latest hand-off PSN.
    std::map<PageId, std::map<ClientId, Psn>> own_handoffs;
  };
  Result<AnalysisResult> RunAnalysis() FINELOG_REQUIRES(mu_);
  Status RunRedo(const AnalysisResult& analysis,
                 const std::map<PageId, Psn>& dct_psn, bool dct_authoritative,
                 const std::map<ObjectId, Psn>& callback_lists)
      FINELOG_REQUIRES(mu_);
  Status RunUndo(std::map<TxnId, Txn> losers) FINELOG_REQUIRES(mu_);

  // Capability guarding the client's transactional state. Uncontended in
  // the simulation; in the real-clock mode it is this client's gate,
  // contended between the client's own thread and the reactor delivering
  // callbacks (and released in full while the client parks on a frame).
  mutable SimMutex mu_;

  ClientId id_ FINELOG_UNGUARDED("immutable after construction");
  SystemConfig config_ FINELOG_UNGUARDED("immutable after construction");
  ServerEndpoint* server_ FINELOG_UNGUARDED("externally owned wiring, set once");
  Channel* channel_ FINELOG_UNGUARDED("externally owned wiring, set once");
  Rpc* rpc_ FINELOG_UNGUARDED("externally owned wiring, set once");
  Metrics* metrics_ FINELOG_UNGUARDED("monotonic counters, not protocol state");

  std::unique_ptr<LogManager> log_ FINELOG_PT_GUARDED_BY(mu_);
  std::unique_ptr<BufferPool> cache_ FINELOG_PT_GUARDED_BY(mu_);
  LocalLockManager llm_ FINELOG_GUARDED_BY(mu_);

  std::map<TxnId, Txn> txns_ FINELOG_GUARDED_BY(mu_);
  std::map<PageId, Lsn> dpt_ FINELOG_GUARDED_BY(mu_);
  std::map<PageId, ShipInfo> ship_info_ FINELOG_GUARDED_BY(mu_);
  // Exclusive callbacks granted to us, not yet covered by an update record.
  // One X request can call back several holders of the same object (the
  // previous writer plus readers), so each object keeps a list.
  std::map<ObjectId, std::vector<XCallbackInfo>> pending_callbacks_
      FINELOG_GUARDED_BY(mu_);
  // Slots modified since the server last confirmed a flush of the page.
  // Unlike Frame::modified_slots (since last *ship*), this set survives
  // ships, evictions and re-fetches; it is what a restarting server needs
  // merged when it pulls our cached copy (Section 3.4, step 4).
  std::map<PageId, std::set<SlotId>> unflushed_slots_ FINELOG_GUARDED_BY(mu_);
  std::set<PageId> tokens_held_ FINELOG_GUARDED_BY(mu_);
  std::map<PageId, RecoverySession> recovery_sessions_
      FINELOG_GUARDED_BY(mu_);

  // Group commit: transactions whose commit records are appended but not yet
  // forced, in commit order, plus the simulated enqueue time of the oldest.
  // Lost (with the unforced log tail) on crash; recovery then treats them as
  // losers, which is exactly the deferred-durability contract.
  std::vector<TxnId> pending_commits_ FINELOG_GUARDED_BY(mu_);
  uint64_t oldest_pending_commit_us_ FINELOG_GUARDED_BY(mu_) = 0;

  // Liveness: simulated time of the last heartbeat attempt, and the lease
  // horizon granted by the last successful renewal (0 = no lease yet).
  uint64_t last_heartbeat_us_ FINELOG_GUARDED_BY(mu_) = 0;
  uint64_t lease_valid_until_ FINELOG_GUARDED_BY(mu_) = 0;

  uint64_t next_txn_seq_ FINELOG_GUARDED_BY(mu_) = 1;
  bool crashed_ FINELOG_UNGUARDED("harness lifecycle flag, toggled while "
                                  "no request is in flight") = false;
  uint64_t commits_ FINELOG_GUARDED_BY(mu_) = 0;
  uint64_t aborts_ FINELOG_GUARDED_BY(mu_) = 0;
};

}  // namespace finelog

#endif  // FINELOG_CLIENT_CLIENT_H_
